//! Property tests for the telemetry primitives (ISSUE 3 satellite):
//! sharded counters must aggregate exactly, and histogram quantiles must
//! land within one log-linear bucket of the exact sample quantile.

#![cfg(feature = "enabled")]

use logsynergy_telemetry::{Counter, Histogram};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merged sharded counts equal the sequential count: spreading the
    /// same increments over racing threads (each landing on its own home
    /// shard) must sum to exactly what a single-threaded loop would.
    #[test]
    fn sharded_counter_equals_sequential_count(
        per_thread in proptest::collection::vec(
            proptest::collection::vec(0u64..1000, 0..50), 1..8)
    ) {
        let sequential: u64 = per_thread.iter().flatten().sum();
        let counter = Arc::new(Counter::new());
        let handles: Vec<_> = per_thread
            .into_iter()
            .map(|amounts| {
                let c = counter.clone();
                std::thread::spawn(move || {
                    for a in amounts {
                        c.add(a);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        prop_assert_eq!(counter.get(), sequential);
    }

    /// Histogram quantiles are within one bucket of exact quantiles: for
    /// random samples, the reported p50/p90/p95/p99 must fall in the same
    /// log-linear bucket as the exact order statistic, or an adjacent one.
    #[test]
    fn histogram_quantiles_within_one_bucket(
        raw in proptest::collection::vec(0u64..2_000_000, 1..2000),
        qs in proptest::collection::vec(0.01f64..1.0, 1..6)
    ) {
        let h = Histogram::new();
        for &s in &raw {
            h.record(s);
        }
        let mut samples = raw;
        samples.sort_unstable();
        prop_assert_eq!(h.count(), samples.len() as u64);
        for q in qs {
            let rank = ((q * samples.len() as f64).ceil() as usize)
                .clamp(1, samples.len());
            let exact = samples[rank - 1];
            let got = h.quantile(q);
            let (be, bg) = (Histogram::bucket_of(exact), Histogram::bucket_of(got));
            prop_assert!(
                be.abs_diff(bg) <= 1,
                "q={} exact={} (bucket {}) got={} (bucket {})",
                q, exact, be, got, bg
            );
        }
    }

    /// Merging per-worker histograms is exact in count and sum, and the
    /// merged quantile matches a histogram fed every sample directly.
    #[test]
    fn histogram_merge_matches_single_feed(
        parts in proptest::collection::vec(
            proptest::collection::vec(0u64..100_000, 0..300), 1..6)
    ) {
        let merged = Histogram::new();
        let direct = Histogram::new();
        for part in &parts {
            let worker = Histogram::new();
            for &v in part {
                worker.record(v);
                direct.record(v);
            }
            merged.merge(&worker);
        }
        prop_assert_eq!(merged.count(), direct.count());
        prop_assert_eq!(merged.sum(), direct.sum());
        for q in [0.5, 0.95, 0.99] {
            prop_assert_eq!(merged.quantile(q), direct.quantile(q));
        }
    }
}
