//! The runtime kill-switch, exercised in its own process: integration
//! tests are separate binaries, so flipping the global switch here cannot
//! race the crate's unit tests.

#![cfg(feature = "enabled")]

use logsynergy_telemetry as tel;

#[test]
fn disabled_telemetry_records_nothing_and_reenables_cleanly() {
    let reg = tel::global();
    let counter = reg.counter("kill_switch.counter");
    let hist = reg.histogram("kill_switch.hist");
    let series = reg.series("kill_switch.series");

    tel::configure(&tel::TelemetryConfig { enabled: false });
    counter.add(100);
    hist.record(42);
    series.push(0, 1.0);
    {
        let _s = tel::span("kill_switch_span");
    }
    assert_eq!(counter.get(), 0, "disabled counter must not move");
    assert_eq!(hist.count(), 0, "disabled histogram must not record");
    assert!(series.is_empty(), "disabled series must not grow");
    let snap = reg.snapshot();
    assert!(
        !snap.histograms.contains_key("span.kill_switch_span.ns"),
        "disabled span must not materialize"
    );

    tel::set_enabled(true);
    counter.add(7);
    hist.record(42);
    assert_eq!(counter.get(), 7);
    assert_eq!(hist.count(), 1);
}
