//! A std-only `/metrics` HTTP endpoint.
//!
//! One accept thread serves the global registry over `TcpListener`:
//! `GET /metrics` answers Prometheus text, `GET /metrics.json` the JSON
//! snapshot. Connections are HTTP/1.0-style one-shot (read the request
//! head, write the full response, close), which every Prometheus scraper
//! and `curl` handles — no keep-alive state machine, no dependencies.
//!
//! Each accepted connection is answered on its own short-lived thread
//! under a hard per-connection deadline, so a slow-loris client (connects
//! and stalls, or dribbles header bytes) cannot pin the accept loop and
//! starve concurrent scrapes — the regression tests below hold a stalled
//! and a dribbling client open while asserting a scrape still answers
//! promptly.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::export::{json_snapshot_of, prometheus_text_of};
use crate::registry::global;

/// A running metrics endpoint; shuts down when dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with a `:0` request port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Ceiling on concurrently-live connection-handler threads. A stalled
/// handler lives at most [`HEAD_DEADLINE`]; past the cap new
/// connections are dropped on accept, so a connection flood costs a
/// bounded number of threads instead of one per SYN.
const MAX_CONN_HANDLERS: usize = 64;

/// Binds `addr` (e.g. `127.0.0.1:9187`, port 0 for ephemeral) and serves
/// the global registry until the returned handle is dropped.
pub fn serve(addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("logsynergy-metrics".to_string())
        .spawn(move || {
            // Only the accept loop increments, so the admission check is
            // exact; handlers decrement as they finish.
            let active = Arc::new(AtomicUsize::new(0));
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A misbehaving client must not wedge the endpoint:
                    // bound every socket operation, answer off the
                    // accept thread so a stalled connection only ever
                    // costs its own short-lived handler, and shed
                    // connections past the handler cap outright.
                    if active.load(Ordering::Relaxed) >= MAX_CONN_HANDLERS {
                        drop(stream);
                        continue;
                    }
                    let _ = stream.set_read_timeout(Some(Duration::from_millis(500)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    active.fetch_add(1, Ordering::Relaxed);
                    let slot = active.clone();
                    let spawned = std::thread::Builder::new()
                        .name("logsynergy-metrics-conn".to_string())
                        .spawn(move || {
                            let _ = answer(stream);
                            slot.fetch_sub(1, Ordering::Relaxed);
                        });
                    if spawned.is_err() {
                        active.fetch_sub(1, Ordering::Relaxed);
                    }
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

/// Hard wall-clock budget for reading one request head. A dribbling
/// client (one byte per read-timeout window) would otherwise extend the
/// read indefinitely; past this deadline the connection is dropped.
const HEAD_DEADLINE: Duration = Duration::from_secs(2);

/// Reads until the end of the HTTP request head (`\r\n\r\n`), the buffer
/// fills, the per-read timeout fires, or the cumulative deadline elapses.
/// Returns however much arrived — the request line is all that's needed.
fn read_head(stream: &mut TcpStream, buf: &mut [u8]) -> usize {
    let deadline = std::time::Instant::now() + HEAD_DEADLINE;
    let mut filled = 0usize;
    while filled < buf.len() && std::time::Instant::now() < deadline {
        match stream.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => {
                filled += n;
                if buf[..filled].windows(4).any(|w| w == b"\r\n\r\n") {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    filled
}

fn answer(mut stream: TcpStream) -> io::Result<()> {
    let mut buf = [0u8; 1024];
    let n = read_head(&mut stream, &mut buf);
    let head = String::from_utf8_lossy(&buf[..n]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let snap = global().snapshot();
    let (status, content_type, body) = match path {
        "/metrics" | "/" => (
            "200 OK",
            "text/plain; version=0.0.4",
            prometheus_text_of(&snap),
        ),
        "/metrics.json" | "/snapshot" => ("200 OK", "application/json", json_snapshot_of(&snap)),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_and_json() {
        global().counter("server.test.requests").add(3);
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();

        let prom = get(addr, "/metrics");
        assert!(prom.starts_with("HTTP/1.0 200 OK"));
        assert!(prom.contains("logsynergy_server_test_requests_total 3"));

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("\"server.test.requests\":3"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));

        server.shutdown();
    }

    #[test]
    fn dropping_the_handle_stops_the_thread_and_releases_the_port() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();
        assert!(get(addr, "/metrics").starts_with("HTTP/1.0 200 OK"));

        // Capture the serving thread's handle indirectly: after drop, the
        // accept loop must have exited (Drop joins it), so a fresh bind on
        // the very same address succeeds — the OS has released the port.
        drop(server);
        let rebound =
            TcpListener::bind(addr).expect("the port must be released once the handle is dropped");
        assert_eq!(rebound.local_addr().unwrap(), addr);

        // And the old endpoint is really gone: a scrape against the
        // rebound-but-not-serving listener cannot reach the old server.
        drop(rebound);
        let err = TcpStream::connect(addr);
        assert!(
            err.is_err() || {
                // A TIME_WAIT race may still accept the SYN; a read then
                // sees EOF/ECONNRESET rather than a metrics response.
                let mut s = err.unwrap();
                let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                let _ = s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                let mut out = String::new();
                let _ = s.read_to_string(&mut out);
                out.is_empty()
            },
            "no thread may keep serving after shutdown"
        );
    }

    #[test]
    fn stalled_client_cannot_starve_a_concurrent_scrape() {
        // Slow-loris regression: a client that connects and never sends a
        // byte must not pin the endpoint. The scrape racing it has to be
        // answered long before the staller's own read deadline expires.
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();
        let _stallers: Vec<TcpStream> = (0..4)
            .map(|_| TcpStream::connect(addr).expect("staller connects"))
            .collect();
        // Give the accept loop a beat to take the stalled connections.
        std::thread::sleep(Duration::from_millis(50));
        let start = std::time::Instant::now();
        let prom = get(addr, "/metrics");
        assert!(
            prom.starts_with("HTTP/1.0 200 OK"),
            "scrape must succeed while stallers hold connections open"
        );
        assert!(
            start.elapsed() < Duration::from_millis(400),
            "scrape took {:?} behind 4 stalled connections",
            start.elapsed()
        );
        server.shutdown();
    }

    #[test]
    fn dribbling_client_is_cut_off_at_the_head_deadline() {
        // A client feeding one header byte at a time must be dropped at
        // the cumulative deadline instead of holding its handler forever,
        // and must not block other scrapes meanwhile.
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();
        let dribbler = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let _ = s.set_read_timeout(Some(Duration::from_secs(5)));
            for b in b"GET /metrics HTTP/1.0\r\n" {
                if s.write_all(&[*b]).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            // Never sends the terminating blank line; just waits for the
            // server to give up.
            let mut out = Vec::new();
            let _ = s.read_to_end(&mut out);
        });
        std::thread::sleep(Duration::from_millis(50));
        assert!(
            get(addr, "/metrics").starts_with("HTTP/1.0 200 OK"),
            "scrapes must keep working while a dribbler is mid-request"
        );
        dribbler.join().unwrap();
        server.shutdown();
    }

    #[test]
    fn connection_flood_is_shed_at_the_handler_cap_and_recovers() {
        // A flood of stalled connections far past the handler cap must
        // not spawn a thread per connection: overflow is dropped on
        // accept, and once the capped handlers hit their read timeouts
        // the endpoint answers scrapes again.
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();
        let stallers: Vec<TcpStream> = (0..3 * MAX_CONN_HANDLERS)
            .filter_map(|_| TcpStream::connect(addr).ok())
            .collect();
        assert!(
            stallers.len() > MAX_CONN_HANDLERS,
            "flood precondition: more connections than handler slots"
        );
        let try_get = |path: &str| -> Option<String> {
            let mut s = TcpStream::connect(addr).ok()?;
            s.set_read_timeout(Some(Duration::from_secs(3))).ok()?;
            s.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
                .ok()?;
            let mut out = String::new();
            s.read_to_string(&mut out).ok()?;
            Some(out)
        };
        // Scrapes may be shed while every slot is held; the endpoint
        // must come back within the stalled handlers' read budget.
        let deadline = std::time::Instant::now() + HEAD_DEADLINE + Duration::from_secs(8);
        loop {
            if let Some(resp) = try_get("/metrics") {
                if resp.starts_with("HTTP/1.0 200 OK") {
                    break;
                }
            }
            assert!(
                std::time::Instant::now() < deadline,
                "endpoint never recovered from the connection flood"
            );
            std::thread::sleep(Duration::from_millis(100));
        }
        server.shutdown();
    }

    #[test]
    fn explicit_shutdown_joins_the_serving_thread() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();
        assert!(get(addr, "/metrics.json").contains("application/json"));
        // shutdown() consumes the handle and joins: by the time it
        // returns, rebinding must succeed deterministically.
        server.shutdown();
        TcpListener::bind(addr).expect("shutdown must join before returning");
    }
}
