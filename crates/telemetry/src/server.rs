//! A std-only `/metrics` HTTP endpoint.
//!
//! One accept thread serves the global registry over `TcpListener`:
//! `GET /metrics` answers Prometheus text, `GET /metrics.json` the JSON
//! snapshot. Connections are HTTP/1.0-style one-shot (read the request
//! head, write the full response, close), which every Prometheus scraper
//! and `curl` handles — no keep-alive state machine, no dependencies.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::export::{json_snapshot_of, prometheus_text_of};
use crate::registry::global;

/// A running metrics endpoint; shuts down when dropped.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with a `:0` request port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept loop and joins the serving thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the accept call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9187`, port 0 for ephemeral) and serves
/// the global registry until the returned handle is dropped.
pub fn serve(addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = stop.clone();
    let handle = std::thread::Builder::new()
        .name("logsynergy-metrics".to_string())
        .spawn(move || {
            for conn in listener.incoming() {
                if stop_flag.load(Ordering::Relaxed) {
                    break;
                }
                if let Ok(stream) = conn {
                    // A misbehaving client must not wedge the endpoint.
                    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
                    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
                    let _ = answer(stream);
                }
            }
        })?;
    Ok(MetricsServer {
        addr: local,
        stop,
        handle: Some(handle),
    })
}

fn answer(mut stream: TcpStream) -> io::Result<()> {
    let mut buf = [0u8; 1024];
    let n = stream.read(&mut buf)?;
    let head = String::from_utf8_lossy(&buf[..n]);
    let path = head
        .lines()
        .next()
        .and_then(|line| line.split_whitespace().nth(1))
        .unwrap_or("/");
    let snap = global().snapshot();
    let (status, content_type, body) = match path {
        "/metrics" | "/" => (
            "200 OK",
            "text/plain; version=0.0.4",
            prometheus_text_of(&snap),
        ),
        "/metrics.json" | "/snapshot" => ("200 OK", "application/json", json_snapshot_of(&snap)),
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let response = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        s.write_all(format!("GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").as_bytes())
            .unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_prometheus_and_json() {
        global().counter("server.test.requests").add(3);
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();

        let prom = get(addr, "/metrics");
        assert!(prom.starts_with("HTTP/1.0 200 OK"));
        assert!(prom.contains("logsynergy_server_test_requests_total 3"));

        let json = get(addr, "/metrics.json");
        assert!(json.contains("application/json"));
        assert!(json.contains("\"server.test.requests\":3"));

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.0 404"));

        server.shutdown();
    }

    #[test]
    fn dropping_the_handle_stops_the_thread_and_releases_the_port() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();
        assert!(get(addr, "/metrics").starts_with("HTTP/1.0 200 OK"));

        // Capture the serving thread's handle indirectly: after drop, the
        // accept loop must have exited (Drop joins it), so a fresh bind on
        // the very same address succeeds — the OS has released the port.
        drop(server);
        let rebound =
            TcpListener::bind(addr).expect("the port must be released once the handle is dropped");
        assert_eq!(rebound.local_addr().unwrap(), addr);

        // And the old endpoint is really gone: a scrape against the
        // rebound-but-not-serving listener cannot reach the old server.
        drop(rebound);
        let err = TcpStream::connect(addr);
        assert!(
            err.is_err() || {
                // A TIME_WAIT race may still accept the SYN; a read then
                // sees EOF/ECONNRESET rather than a metrics response.
                let mut s = err.unwrap();
                let _ = s.set_read_timeout(Some(Duration::from_millis(200)));
                let _ = s.write_all(b"GET /metrics HTTP/1.0\r\n\r\n");
                let mut out = String::new();
                let _ = s.read_to_string(&mut out);
                out.is_empty()
            },
            "no thread may keep serving after shutdown"
        );
    }

    #[test]
    fn explicit_shutdown_joins_the_serving_thread() {
        let server = serve("127.0.0.1:0").expect("bind ephemeral port");
        let addr = server.addr();
        assert!(get(addr, "/metrics.json").contains("application/json"));
        // shutdown() consumes the handle and joins: by the time it
        // returns, rebinding must succeed deterministically.
        server.shutdown();
        TcpListener::bind(addr).expect("shutdown must join before returning");
    }
}
