//! Log-linear (HDR-style) histograms with quantile extraction.
//!
//! Values are non-negative integers (nanoseconds, window counts, queue
//! depths). Buckets follow the HDR scheme: the first 16 values get one
//! bucket each, and every further power-of-two range `[2^k, 2^(k+1))` is
//! split into 16 linear sub-buckets — so the relative width of any bucket
//! is at most 1/16 (6.25%), and a reported quantile is always within one
//! bucket of the exact sample quantile. Recording is lock-free (relaxed
//! `fetch_add` on the bucket plus count/sum/min/max), and histograms merge
//! bucket-wise, which is what makes per-worker recording exact in
//! aggregate.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-bucket resolution: each power-of-two group splits into `1 << SUB_BITS`
/// linear buckets.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS; // 16

/// Total buckets: 16 unit buckets for values < 16, then 16 per group for
/// the 60 groups `[2^4, 2^5) .. [2^63, 2^64)`.
const BUCKETS: usize = SUB + SUB * (64 - SUB_BITS as usize);

/// Index of the bucket containing `v`.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB as u64 {
        v as usize
    } else {
        let k = 63 - v.leading_zeros() as usize; // v in [2^k, 2^(k+1)), k >= 4
        let off = ((v >> (k - SUB_BITS as usize)) & (SUB as u64 - 1)) as usize;
        SUB * (k - SUB_BITS as usize + 1) + off
    }
}

/// Inclusive lower bound of bucket `idx`.
fn bucket_low(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let group = idx / SUB; // >= 1
        let off = (idx % SUB) as u64;
        let k = group + SUB_BITS as usize - 1;
        (SUB as u64 + off) << (k - SUB_BITS as usize)
    }
}

/// Inclusive upper bound of bucket `idx`.
fn bucket_high(idx: usize) -> u64 {
    if idx < SUB {
        idx as u64
    } else {
        let group = idx / SUB;
        let k = group + SUB_BITS as usize - 1;
        // `((1 << w) - 1)` first: the top bucket's high is exactly
        // `u64::MAX`, so `low + (1 << w)` would overflow.
        bucket_low(idx) + ((1u64 << (k - SUB_BITS as usize)) - 1)
    }
}

/// A lock-free log-linear histogram over `u64` samples.
pub struct Histogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-data view of a histogram at one instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) as the upper bound of the bucket
    /// holding the sample of that rank — within one log-linear bucket
    /// (≤ 6.25% relative) of the exact sample quantile. Returns 0 for an
    /// empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (idx, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return bucket_high(idx).min(self.max());
            }
        }
        self.max()
    }

    /// Adds every bucket of `other` into `self` (exact: counts are sums).
    pub fn merge(&self, other: &Histogram) {
        for (a, b) in self.buckets.iter().zip(&other.buckets) {
            let v = b.load(Ordering::Relaxed);
            if v > 0 {
                a.fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count
            .fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum
            .fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        self.min
            .fetch_min(other.min.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max
            .fetch_max(other.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Plain-data snapshot with the standard percentiles.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            min: self.min(),
            max: self.max(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
        }
    }

    /// The index of the log-linear bucket `v` falls into (exposed so tests
    /// can assert the "within one bucket" quantile contract).
    pub fn bucket_of(v: u64) -> usize {
        bucket_index(v)
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_contiguous_and_ordered() {
        // Every value maps into a bucket whose [low, high] contains it,
        // and bucket indices are monotone in the value.
        let mut last_idx = 0usize;
        for v in (0..4096u64).chain([1 << 20, (1 << 20) + 7, u64::MAX / 2, u64::MAX]) {
            let idx = bucket_index(v);
            assert!(
                bucket_low(idx) <= v && v <= bucket_high(idx),
                "v={v} idx={idx}"
            );
            assert!(idx >= last_idx || v < 4096, "indices monotone");
            last_idx = idx.max(last_idx);
        }
        assert!(bucket_index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 1, 2, 3, 3, 3, 7, 15] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        // Values < 16 get unit buckets: quantiles are exact there.
        assert_eq!(h.quantile(0.5), 3);
        assert_eq!(h.quantile(1.0), 15);
    }

    #[test]
    fn quantiles_are_within_one_bucket() {
        let h = Histogram::new();
        let mut samples: Vec<u64> = (0..10_000u64).map(|i| (i * i * 31) % 1_000_000).collect();
        for &s in &samples {
            h.record(s);
        }
        samples.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let exact =
                samples[((q * samples.len() as f64).ceil() as usize - 1).min(samples.len() - 1)];
            let got = h.quantile(q);
            let (be, bg) = (bucket_index(exact), bucket_index(got));
            assert!(
                be.abs_diff(bg) <= 1,
                "q={q}: exact {exact} (bucket {be}) vs got {got} (bucket {bg})"
            );
        }
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v * 3);
            b.record(v * 7 + 1);
        }
        let merged = Histogram::new();
        merged.merge(&a);
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.sum(), a.sum() + b.sum());
        assert_eq!(merged.max(), a.max().max(b.max()));
        assert_eq!(merged.min(), a.min().min(b.min()));
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let h = Histogram::new();
        let s = h.snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0
            }
        );
    }
}
