//! Sharded atomic counters and gauges.
//!
//! A [`Counter`] spreads increments over a small fixed set of cache-line-
//! padded shards so concurrent workers never contend on one line; reads
//! sum the shards, which is exact because every mutation is a relaxed
//! `fetch_add` (commutative and never lost). A [`Gauge`] is a single
//! last-writer-wins cell — gauges are set, not accumulated, so sharding
//! would change semantics.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// Number of counter shards. 16 covers every realistic worker count in
/// this workspace (serving spawns one detection worker per partition, the
/// kernel pool is bounded by hardware parallelism) while keeping reads a
/// 16-load sum.
pub(crate) const SHARDS: usize = 16;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Round-robin shard assignment: each thread gets a home shard on first
/// use, so a thread's increments always land on the same cache line.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static HOME_SHARD: usize = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) % SHARDS;
}

#[inline]
fn home_shard() -> usize {
    HOME_SHARD.with(|s| *s)
}

/// A monotonically increasing, thread-sharded counter.
#[derive(Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the calling thread's home shard.
    #[inline]
    pub fn add(&self, n: u64) {
        if !crate::enabled() {
            return;
        }
        self.shards[home_shard()].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The exact total across all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Zeroes every shard (tests and benchmark harnesses).
    pub fn reset(&self) {
        for s in &self.shards {
            s.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-writer-wins signed gauge (queue depths, live worker counts).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by a signed delta.
    #[inline]
    pub fn add(&self, delta: i64) {
        if !crate::enabled() {
            return;
        }
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_sums_across_threads() {
        let c = Arc::new(Counter::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let c = c.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn counter_reset_zeroes() {
        let c = Counter::new();
        c.add(41);
        c.inc();
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_set_and_adjust() {
        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }
}
