//! Runtime configuration and the enabled-check every record path funnels
//! through.

use std::sync::atomic::{AtomicBool, Ordering};

/// Telemetry runtime knobs.
///
/// The struct is deliberately tiny: everything that costs something on the
/// hot path hangs off the single `enabled` switch. Exporter choices
/// (snapshot path, listen address) are caller concerns — see the CLI's
/// `--metrics-out` / `--metrics-listen` flags.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Master runtime switch. `false` turns every record/add/observe call
    /// into a single relaxed load; registries stay readable and exporters
    /// keep working (they just stop moving).
    pub enabled: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig { enabled: true }
    }
}

static RUNTIME_ENABLED: AtomicBool = AtomicBool::new(true);

/// Applies a configuration process-wide.
pub fn configure(cfg: &TelemetryConfig) {
    set_enabled(cfg.enabled);
}

/// Flips the runtime kill-switch.
pub fn set_enabled(on: bool) {
    RUNTIME_ENABLED.store(on, Ordering::Relaxed);
}

/// True when telemetry should record.
///
/// Compile-time gate first (`enabled` cargo feature; `const false` without
/// it, letting the optimizer delete the entire call site), then the
/// runtime switch (one relaxed load).
#[inline(always)]
pub fn enabled() -> bool {
    cfg!(feature = "enabled") && RUNTIME_ENABLED.load(Ordering::Relaxed)
}
