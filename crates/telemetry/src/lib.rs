//! # logsynergy-telemetry
//!
//! A from-scratch, dependency-free observability layer for the LogSynergy
//! serving stack: the measurement substrate every perf and robustness
//! claim in this repository is proved against.
//!
//! - **Counters and gauges** ([`Counter`], [`Gauge`]): sharded relaxed
//!   atomics, wait-free on the hot path, exact on read (shards are summed).
//! - **Histograms** ([`Histogram`]): log-linear (HDR-style) buckets with
//!   ≤ 1/16 relative bucket width and p50/p95/p99 extraction; lock-free
//!   recording, mergeable across shards/workers.
//! - **Spans** ([`span`]): lightweight scoped timers with parent/child
//!   nesting; each span records total and self (minus-children) time into
//!   histograms keyed by its dotted path.
//! - **Registries** ([`Registry`], [`global`]): named get-or-create metric
//!   storage, a process-global instance plus per-component [`Scope`]s,
//!   plain-data [`Snapshot`]s.
//! - **Exporters** ([`prometheus_text`], [`json_snapshot`]): Prometheus
//!   text exposition and a JSON snapshot document, plus a std-only
//!   `/metrics` HTTP endpoint ([`serve`]).
//!
//! ## Overhead contract
//!
//! Recording while enabled costs a few relaxed atomic operations; while
//! runtime-disabled ([`set_enabled`]) it costs one relaxed load; when the
//! `enabled` cargo feature is off it costs nothing at all (the check is
//! `const false` and the call inlines away). The serving pipeline's
//! end-to-end throughput budget for telemetry at defaults is < 2% —
//! enforced by `benches/telemetry_overhead.rs` and recorded in
//! `results/telemetry_overhead.json`. See `docs/telemetry.md`.

#![warn(missing_docs)]

pub mod config;
pub mod counter;
pub mod export;
pub mod histogram;
pub mod registry;
pub mod server;
pub mod span;

pub use config::{configure, enabled, set_enabled, TelemetryConfig};
pub use counter::{Counter, Gauge};
pub use export::{json_snapshot, prometheus_text};
pub use histogram::{Histogram, HistogramSnapshot};
pub use registry::{global, Registry, Scope, Series, Snapshot};
pub use server::{serve, MetricsServer};
pub use span::{span, Span};
