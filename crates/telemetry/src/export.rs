//! Exposition formats: Prometheus text and a JSON snapshot document.
//!
//! Both exporters consume a plain-data [`Snapshot`], so they can render a
//! live registry (`prometheus_text(global())`) or a frozen one. Names are
//! sanitized for Prometheus (`pipeline.tier.model` →
//! `logsynergy_pipeline_tier_model`); the JSON document keeps the dotted
//! names verbatim.

use crate::registry::{Registry, Snapshot};

fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Renders a registry in the Prometheus text exposition format.
///
/// Counters export as `<name>_total` counters, gauges as gauges,
/// histograms as summaries (`quantile` labels plus `_sum`/`_count`),
/// series as a `_last` gauge holding the most recent point, and tags as
/// one `logsynergy_info` metric with a label per tag.
pub fn prometheus_text(registry: &Registry) -> String {
    prometheus_text_of(&registry.snapshot())
}

/// [`prometheus_text`] over an already-taken snapshot.
pub fn prometheus_text_of(snap: &Snapshot) -> String {
    let prefix = sanitize(&snap.component);
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let n = format!("{prefix}_{}_total", sanitize(name));
        out.push_str(&format!("# TYPE {n} counter\n{n} {value}\n"));
    }
    for (name, value) in &snap.gauges {
        let n = format!("{prefix}_{}", sanitize(name));
        out.push_str(&format!("# TYPE {n} gauge\n{n} {value}\n"));
    }
    for (name, h) in &snap.histograms {
        let n = format!("{prefix}_{}", sanitize(name));
        out.push_str(&format!("# TYPE {n} summary\n"));
        for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
            out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
        }
        out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
    }
    for (name, points) in &snap.series {
        if let Some(&(x, y)) = points.last() {
            let n = format!("{prefix}_{}_last", sanitize(name));
            out.push_str(&format!(
                "# TYPE {n} gauge\n{n}{{index=\"{x}\"}} {}\n",
                fmt_f64(y)
            ));
        }
    }
    if !snap.tags.is_empty() {
        let n = format!("{prefix}_info");
        let labels: Vec<String> = snap
            .tags
            .iter()
            .map(|(k, v)| format!("{}=\"{}\"", sanitize(k), escape(v)))
            .collect();
        out.push_str(&format!(
            "# TYPE {n} gauge\n{n}{{{}}} 1\n",
            labels.join(",")
        ));
    }
    out
}

/// Renders a registry as a single JSON document:
///
/// ```json
/// {"component": "...", "counters": {...}, "gauges": {...},
///  "histograms": {"name": {"count": n, "sum": s, "min": m, "max": M,
///                          "p50": a, "p95": b, "p99": c}},
///  "series": {"name": [[x, y], ...]}, "tags": {...}}
/// ```
pub fn json_snapshot(registry: &Registry) -> String {
    json_snapshot_of(&registry.snapshot())
}

/// [`json_snapshot`] over an already-taken snapshot.
pub fn json_snapshot_of(snap: &Snapshot) -> String {
    let mut out = String::from("{");
    out.push_str(&format!("\"component\":\"{}\"", escape(&snap.component)));

    out.push_str(",\"counters\":{");
    push_entries(&mut out, snap.counters.iter(), |out, v| {
        out.push_str(&v.to_string())
    });
    out.push('}');

    out.push_str(",\"gauges\":{");
    push_entries(&mut out, snap.gauges.iter(), |out, v| {
        out.push_str(&v.to_string())
    });
    out.push('}');

    out.push_str(",\"histograms\":{");
    push_entries(&mut out, snap.histograms.iter(), |out, h| {
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.count, h.sum, h.min, h.max, h.p50, h.p95, h.p99
        ));
    });
    out.push('}');

    out.push_str(",\"series\":{");
    push_entries(&mut out, snap.series.iter(), |out, points| {
        out.push('[');
        for (i, (x, y)) in points.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[{x},{}]", fmt_f64(*y)));
        }
        out.push(']');
    });
    out.push('}');

    out.push_str(",\"tags\":{");
    push_entries(&mut out, snap.tags.iter(), |out, v| {
        out.push('"');
        out.push_str(&escape(v));
        out.push('"');
    });
    out.push_str("}}");
    out
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, V)>,
    mut write_value: impl FnMut(&mut String, V),
) {
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(&escape(k));
        out.push_str("\":");
        write_value(out, v);
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// JSON-safe float: non-finite values become `null`.
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    fn sample_registry() -> Registry {
        let r = Registry::new("logsynergy");
        r.counter("pipeline.tier.model").add(10);
        r.gauge("pipeline.queue.depth").set(3);
        let h = r.histogram("pipeline.batch.windows");
        for v in 1..=100u64 {
            h.record(v);
        }
        r.series("train.loss_total").push(0, 1.25);
        r.series("train.loss_total").push(1, 0.75);
        r.set_tag("nn.simd_tier", "avx2+fma");
        r
    }

    #[test]
    fn prometheus_format_has_types_and_values() {
        let text = prometheus_text(&sample_registry());
        assert!(text.contains("# TYPE logsynergy_pipeline_tier_model_total counter"));
        assert!(text.contains("logsynergy_pipeline_tier_model_total 10"));
        assert!(text.contains("logsynergy_pipeline_queue_depth 3"));
        assert!(text.contains("logsynergy_pipeline_batch_windows{quantile=\"0.5\"}"));
        assert!(text.contains("logsynergy_pipeline_batch_windows_count 100"));
        assert!(text.contains("logsynergy_train_loss_total_last{index=\"1\"} 0.75"));
        assert!(text.contains("logsynergy_info{nn_simd_tier=\"avx2+fma\"} 1"));
        // Every exposition line is either a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with("# ") || line.split_whitespace().count() == 2,
                "bad line: {line}"
            );
        }
    }

    #[test]
    fn json_snapshot_is_valid_and_complete() {
        let doc = json_snapshot(&sample_registry());
        assert!(doc.contains("\"pipeline.tier.model\":10"));
        assert!(doc.contains("\"count\":100"));
        assert!(doc.contains("[[0,1.25],[1,0.75]]"));
        assert!(doc.contains("\"nn.simd_tier\":\"avx2+fma\""));
        // Balanced braces/brackets outside strings — a cheap structural
        // check; scripts/ci.sh parses the real snapshot with python.
        let mut depth = 0i32;
        let mut in_str = false;
        let mut prev = ' ';
        for c in doc.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => depth -= 1,
                    _ => {}
                }
            }
            prev = c;
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn sanitize_handles_leading_digits_and_symbols() {
        assert_eq!(sanitize("9lives.a-b"), "_9lives_a_b");
    }
}
