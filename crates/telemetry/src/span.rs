//! Lightweight scoped spans with parent/child timing.
//!
//! A [`span`] is an RAII guard: entering pushes a frame on a thread-local
//! stack, dropping records the elapsed nanoseconds into two histograms in
//! the global registry, keyed by the dotted path of enclosing span names:
//!
//! - `span.<path>.ns` — total wall time of the span;
//! - `span.<path>.self_ns` — total minus the time spent in child spans,
//!   so a parent's own overhead is separable from the stages it wraps.
//!
//! Guards must drop in LIFO order (the natural order for scope-bound
//! guards). The enabled check happens at entry: a disabled span is inert —
//! no clock read, no stack push, nothing on drop.

use std::cell::RefCell;
use std::time::Instant;

struct Frame {
    name: &'static str,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// An active span; records timing into the global registry on drop.
pub struct Span {
    start: Option<Instant>,
}

/// Opens a span named `name` on the calling thread. Nested spans build a
/// dotted path: `span("pipeline.batch")` containing `span("detect")`
/// records under `span.pipeline.batch.detect.ns`.
#[inline]
pub fn span(name: &'static str) -> Span {
    if !crate::enabled() {
        return Span { start: None };
    }
    STACK.with(|s| s.borrow_mut().push(Frame { name, child_ns: 0 }));
    Span {
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let (path, child_ns) = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let frame = stack.pop().expect("span stack underflow (non-LIFO drop?)");
            let mut path = String::new();
            for f in stack.iter() {
                path.push_str(f.name);
                path.push('.');
            }
            path.push_str(frame.name);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += dur_ns;
            }
            (path, frame.child_ns)
        });
        let reg = crate::global();
        reg.histogram(&format!("span.{path}.ns")).record(dur_ns);
        reg.histogram(&format!("span.{path}.self_ns"))
            .record(dur_ns.saturating_sub(child_ns));
    }
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn nested_spans_record_paths_and_self_time() {
        {
            let _outer = span("test_span_outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = span("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = crate::global().snapshot();
        let outer = &snap.histograms["span.test_span_outer.ns"];
        let inner = &snap.histograms["span.test_span_outer.inner.ns"];
        let outer_self = &snap.histograms["span.test_span_outer.self_ns"];
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        assert!(outer.max >= inner.max, "parent covers child");
        // Self time excludes the inner sleep: strictly less than the total.
        assert!(outer_self.max < outer.max);
    }

    #[test]
    fn sibling_spans_attribute_to_the_same_parent() {
        {
            let _p = span("test_span_siblings");
            for _ in 0..3 {
                let _c = span("stage");
                std::hint::black_box(0u64);
            }
        }
        let snap = crate::global().snapshot();
        assert_eq!(snap.histograms["span.test_span_siblings.stage.ns"].count, 3);
        assert_eq!(snap.histograms["span.test_span_siblings.ns"].count, 1);
    }
}
