//! Named metric storage: a process-global registry plus per-component
//! scopes.
//!
//! Metric names are dotted paths (`pipeline.tier.model`,
//! `span.pipeline.batch.detect.ns`). Handles are `Arc`s resolved once at
//! setup (one short `RwLock` write the first time, a read afterwards);
//! the hot path then touches only the metric's own atomics. A
//! [`Snapshot`] is plain data — `BTreeMap`s of totals — consumed by the
//! exporters in [`crate::export`].

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::counter::{Counter, Gauge};
use crate::histogram::{Histogram, HistogramSnapshot};

/// An append-only `(x, y)` series for per-epoch training dynamics (loss,
/// accuracy, gradient norm, schedule values). Pushes take a mutex —
/// series are recorded once per epoch, never on a serving hot path.
#[derive(Default)]
pub struct Series {
    points: Mutex<Vec<(u64, f64)>>,
}

impl Series {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a point.
    pub fn push(&self, x: u64, y: f64) {
        if !crate::enabled() {
            return;
        }
        self.points.lock().expect("series poisoned").push((x, y));
    }

    /// All points in insertion order.
    pub fn points(&self) -> Vec<(u64, f64)> {
        self.points.lock().expect("series poisoned").clone()
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.lock().expect("series poisoned").len()
    }

    /// True when no point was pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Plain-data view of a registry at one instant.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    /// Registry name (the `component` in exports).
    pub component: String,
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Series points by name.
    pub series: BTreeMap<String, Vec<(u64, f64)>>,
    /// Static string tags (build/runtime facts like the SIMD tier).
    pub tags: BTreeMap<String, String>,
}

impl Snapshot {
    /// Counter total by name, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The delta of a counter between two snapshots (saturating).
    pub fn counter_delta(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name).saturating_sub(earlier.counter(name))
    }
}

#[derive(Default)]
struct Metrics {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
    series: BTreeMap<String, Arc<Series>>,
    tags: BTreeMap<String, String>,
}

/// A named collection of metrics.
pub struct Registry {
    name: String,
    metrics: RwLock<Metrics>,
}

macro_rules! get_or_create {
    ($self:ident, $field:ident, $name:ident, $ty:ty) => {{
        if let Some(m) = $self
            .metrics
            .read()
            .expect("registry poisoned")
            .$field
            .get($name)
        {
            return m.clone();
        }
        let mut w = $self.metrics.write().expect("registry poisoned");
        w.$field
            .entry($name.to_string())
            .or_insert_with(|| Arc::new(<$ty>::new()))
            .clone()
    }};
}

impl Registry {
    /// An empty registry named `name`.
    pub fn new(name: &str) -> Self {
        Registry {
            name: name.to_string(),
            metrics: RwLock::new(Metrics::default()),
        }
    }

    /// Registry name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Get-or-create a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create!(self, counters, name, Counter)
    }

    /// Get-or-create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create!(self, gauges, name, Gauge)
    }

    /// Get-or-create a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create!(self, histograms, name, Histogram)
    }

    /// Get-or-create a series.
    pub fn series(&self, name: &str) -> Arc<Series> {
        get_or_create!(self, series, name, Series)
    }

    /// Sets a static string tag.
    pub fn set_tag(&self, key: &str, value: &str) {
        if !crate::enabled() {
            return;
        }
        self.metrics
            .write()
            .expect("registry poisoned")
            .tags
            .insert(key.to_string(), value.to_string());
    }

    /// A per-component view: the same storage, every metric name prefixed
    /// with `prefix.`.
    pub fn scoped(&self, prefix: &str) -> Scope<'_> {
        Scope {
            registry: self,
            prefix: prefix.to_string(),
        }
    }

    /// Plain-data snapshot of everything registered so far.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.read().expect("registry poisoned");
        Snapshot {
            component: self.name.clone(),
            counters: m
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: m.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: m
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            series: m
                .series
                .iter()
                .map(|(k, v)| (k.clone(), v.points()))
                .collect(),
            tags: m.tags.clone(),
        }
    }

    /// Drops every registered metric (tests and benchmark harnesses; the
    /// `Arc` handles other holders retain keep working but are orphaned).
    pub fn reset(&self) {
        *self.metrics.write().expect("registry poisoned") = Metrics::default();
    }
}

/// A prefix view over a [`Registry`] for one component.
pub struct Scope<'a> {
    registry: &'a Registry,
    prefix: String,
}

impl Scope<'_> {
    fn full(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    /// Get-or-create `prefix.name` as a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.full(name))
    }

    /// Get-or-create `prefix.name` as a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.full(name))
    }

    /// Get-or-create `prefix.name` as a histogram.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.full(name))
    }

    /// Get-or-create `prefix.name` as a series.
    pub fn series(&self, name: &str) -> Arc<Series> {
        self.registry.series(&self.full(name))
    }

    /// Sets `prefix.key` as a tag.
    pub fn set_tag(&self, key: &str, value: &str) {
        self.registry.set_tag(&self.full(key), value);
    }
}

/// The process-global registry every component records into by default.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry::new("logsynergy"))
}

#[cfg(all(test, feature = "enabled"))]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_the_same_metric() {
        let r = Registry::new("t");
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.add(3);
        assert_eq!(r.counter("x").get(), 5);
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn scope_prefixes_names() {
        let r = Registry::new("t");
        let s = r.scoped("pipeline");
        s.counter("tier.model").inc();
        assert_eq!(r.snapshot().counter("pipeline.tier.model"), 1);
    }

    #[test]
    fn snapshot_captures_every_kind() {
        let r = Registry::new("t");
        r.counter("c").add(7);
        r.gauge("g").set(-2);
        r.histogram("h").record(100);
        r.series("s").push(0, 1.5);
        r.set_tag("tier", "avx2");
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 7);
        assert_eq!(snap.gauges["g"], -2);
        assert_eq!(snap.histograms["h"].count, 1);
        assert_eq!(snap.series["s"], vec![(0, 1.5)]);
        assert_eq!(snap.tags["tier"], "avx2");
    }

    #[test]
    fn counter_delta_between_snapshots() {
        let r = Registry::new("t");
        r.counter("c").add(5);
        let before = r.snapshot();
        r.counter("c").add(37);
        let after = r.snapshot();
        assert_eq!(after.counter_delta(&before, "c"), 37);
        assert_eq!(after.counter_delta(&before, "missing"), 0);
    }
}
