//! Speed-first f32 primitives for the int8 scoring path (`quant`
//! feature).
//!
//! [`crate::infer`] is **bitwise-pinned** to the tape: its loops keep the
//! tape's accumulation order, which locks them to the compiler's baseline
//! vector width (SSE2 without `target-cpu` flags) and to libm's scalar
//! `expf` in softmax. Between the int8 GEMMs those f32 interludes — layer
//! norm, attention, GELU — end up dominating the quantized forward.
//!
//! This module trades the bitwise pin for width: the same math
//! re-monomorphized inside `#[target_feature]` wrappers (the matmul-tier
//! pattern) with explicitly lane-split reductions so the vectorizer may
//! use the full register width, and a polynomial `exp` in softmax. Values
//! differ from the pinned primitives in the last ulps; the quantized path
//! is gated *statistically* (verdict agreement ≥ 99.5%, |ΔF1| ≤ 0.005
//! vs f32), for which ulp-level drift is noise against the int8 rounding
//! it already absorbs. The f32 serving default never calls these.

use crate::infer::AttnScratch;
use crate::kernels::matmul::{tier, Tier};
use crate::ops::gelu_scalar;

/// Vector-width hint for the lane-split reductions: one AVX-512 register
/// of f32. Wider than AVX2's natural width, but a 16-lane split still
/// vectorizes cleanly as two ymm accumulators.
const LANES: usize = 16;

/// In-place GELU — same `gelu_scalar` polynomial as the pinned
/// [`crate::infer::gelu_inplace`], vectorized at full width. The AVX-512
/// tier replaces the rational's division with a Newton-refined `rcp14`
/// (≈1 ulp drift — below this path's statistical gate).
pub fn gelu_inplace(buf: &mut [f32]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is only reported when the CPU has the features.
        Tier::Fma512 => unsafe { gelu_512(buf) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Tier::Fma256 => unsafe { gelu_256(buf) },
        _ => gelu_body(buf),
    }
}

#[inline(always)]
fn gelu_body(buf: &mut [f32]) {
    for o in buf.iter_mut() {
        *o = gelu_scalar(*o);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gelu_256(buf: &mut [f32]) {
    gelu_body(buf)
}

/// AVX-512 GELU: the same `fast_tanh` rational as [`gelu_scalar`], but
/// with the `p / q` division replaced by `rcp14` plus one Newton step
/// (`vdivps` costs ~3× a multiply in reciprocal throughput and this loop
/// is division-bound). Accurate to ~1 ulp of the divided form; the tail
/// (`len % 16`) runs the scalar polynomial.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn gelu_512(buf: &mut [f32]) {
    use std::arch::x86_64::*;
    let n = buf.len();
    let nfull = n - n % 16;
    let c = _mm512_set1_ps(0.797_884_6); // sqrt(2/pi)
    let a3 = _mm512_set1_ps(0.044715);
    let one = _mm512_set1_ps(1.0);
    let half = _mm512_set1_ps(0.5);
    let two = _mm512_set1_ps(2.0);
    let lim = _mm512_set1_ps(7.998_117);
    let nlim = _mm512_set1_ps(-7.998_117);
    let mut i = 0;
    while i < nfull {
        let x = _mm512_loadu_ps(buf.as_ptr().add(i));
        let x2 = _mm512_mul_ps(x, x);
        // u = C·(x + 0.044715·x³) = C·x·(1 + 0.044715·x²), clamped to
        // fast_tanh's fitted range.
        let u = _mm512_mul_ps(_mm512_mul_ps(c, x), _mm512_fmadd_ps(a3, x2, one));
        let u = _mm512_max_ps(nlim, _mm512_min_ps(lim, u));
        let u2 = _mm512_mul_ps(u, u);
        let mut p = _mm512_set1_ps(-2.760_768_4e-16);
        p = _mm512_fmadd_ps(u2, p, _mm512_set1_ps(2.000_188e-13));
        p = _mm512_fmadd_ps(u2, p, _mm512_set1_ps(-8.604_672e-11));
        p = _mm512_fmadd_ps(u2, p, _mm512_set1_ps(5.122_297e-8));
        p = _mm512_fmadd_ps(u2, p, _mm512_set1_ps(1.485_722_4e-5));
        p = _mm512_fmadd_ps(u2, p, _mm512_set1_ps(6.372_619_3e-4));
        p = _mm512_fmadd_ps(u2, p, _mm512_set1_ps(4.893_524_6e-3));
        let mut q = _mm512_set1_ps(1.198_258_4e-6);
        q = _mm512_fmadd_ps(u2, q, _mm512_set1_ps(1.185_347_1e-4));
        q = _mm512_fmadd_ps(u2, q, _mm512_set1_ps(2.268_434_6e-3));
        q = _mm512_fmadd_ps(u2, q, _mm512_set1_ps(4.893_525e-3));
        // t = u·p/q via rcp14 refined by one Newton step.
        let r0 = _mm512_rcp14_ps(q);
        let r = _mm512_mul_ps(r0, _mm512_fnmadd_ps(q, r0, two));
        let t = _mm512_mul_ps(_mm512_mul_ps(u, p), r);
        let out = _mm512_mul_ps(_mm512_mul_ps(half, x), _mm512_add_ps(one, t));
        _mm512_storeu_ps(buf.as_mut_ptr().add(i), out);
        i += 16;
    }
    gelu_body(&mut buf[nfull..]);
}

/// Collapses a lane accumulator by pairwise halving — a shuffle/add tree
/// the vectorizer keeps in registers, instead of the serial 16-add chain
/// `iter().sum()` compiles to.
#[inline(always)]
fn halve(mut acc: [f32; LANES]) -> f32 {
    let mut w = LANES;
    while w > 1 {
        w /= 2;
        for i in 0..w {
            acc[i] += acc[i + w];
        }
    }
    acc[0]
}

#[inline(always)]
fn lane_sum(row: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut it = row.chunks_exact(LANES);
    for ch in &mut it {
        for i in 0..LANES {
            acc[i] += ch[i];
        }
    }
    let mut s = halve(acc);
    for &v in it.remainder() {
        s += v;
    }
    s
}

#[inline(always)]
fn lane_sumsq_dev(row: &[f32], mu: f32) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut it = row.chunks_exact(LANES);
    for ch in &mut it {
        for i in 0..LANES {
            let e = ch[i] - mu;
            acc[i] += e * e;
        }
    }
    let mut s = halve(acc);
    for &v in it.remainder() {
        let e = v - mu;
        s += e * e;
    }
    s
}

#[inline(always)]
fn lane_dot(a: &[f32], b: &[f32]) -> f32 {
    let mut acc = [0.0f32; LANES];
    let mut ia = a.chunks_exact(LANES);
    let mut ib = b.chunks_exact(LANES);
    for (ca, cb) in (&mut ia).zip(&mut ib) {
        for i in 0..LANES {
            acc[i] += ca[i] * cb[i];
        }
    }
    let mut s = halve(acc);
    for (&x, &y) in ia.remainder().iter().zip(ib.remainder()) {
        s += x * y;
    }
    s
}

/// Row-wise layer norm with lane-split mean/variance reductions. Rows
/// whose width is a multiple of 16 (the model's `d_model` always is)
/// take a hand-written AVX-512 kernel on that tier; everything else runs
/// the re-monomorphized generic body.
pub fn layer_norm_into(src: &[f32], gamma: &[f32], beta: &[f32], eps: f32, dst: &mut [f32]) {
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is only reported when the CPU has the features.
        Tier::Fma512 if !gamma.is_empty() && gamma.len().is_multiple_of(16) => unsafe {
            ln_512_x16(src, gamma, beta, eps, dst)
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Tier::Fma512 => unsafe { ln_512(src, gamma, beta, eps, dst) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Tier::Fma256 => unsafe { ln_256(src, gamma, beta, eps, dst) },
        _ => ln_body(src, gamma, beta, eps, dst),
    }
}

/// AVX-512 layer norm for `d % 16 == 0`: three register-resident passes
/// per row (sum, centered square-sum, normalize), no lane spills.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn ln_512_x16(src: &[f32], gamma: &[f32], beta: &[f32], eps: f32, dst: &mut [f32]) {
    use std::arch::x86_64::*;
    let d = gamma.len();
    debug_assert_eq!(beta.len(), d);
    debug_assert_eq!(src.len(), dst.len());
    debug_assert_eq!(src.len() % d, 0);
    let nb = d / 16;
    let rows = src.len() / d;
    for r in 0..rows {
        let row = src.as_ptr().add(r * d);
        let orow = dst.as_mut_ptr().add(r * d);
        let mut acc = _mm512_setzero_ps();
        for c in 0..nb {
            acc = _mm512_add_ps(acc, _mm512_loadu_ps(row.add(c * 16)));
        }
        let mu = _mm512_reduce_add_ps(acc) / d as f32;
        let muv = _mm512_set1_ps(mu);
        let mut accsq = _mm512_setzero_ps();
        for c in 0..nb {
            let e = _mm512_sub_ps(_mm512_loadu_ps(row.add(c * 16)), muv);
            accsq = _mm512_fmadd_ps(e, e, accsq);
        }
        let var = _mm512_reduce_add_ps(accsq) / d as f32;
        let rst = _mm512_set1_ps(1.0 / (var + eps).sqrt());
        for c in 0..nb {
            let e = _mm512_sub_ps(_mm512_loadu_ps(row.add(c * 16)), muv);
            let g = _mm512_loadu_ps(gamma.as_ptr().add(c * 16));
            let b = _mm512_loadu_ps(beta.as_ptr().add(c * 16));
            let out = _mm512_fmadd_ps(_mm512_mul_ps(e, rst), g, b);
            _mm512_storeu_ps(orow.add(c * 16), out);
        }
    }
}

#[inline(always)]
fn ln_body(src: &[f32], gamma: &[f32], beta: &[f32], eps: f32, dst: &mut [f32]) {
    let d = gamma.len();
    debug_assert_eq!(beta.len(), d);
    debug_assert_eq!(src.len(), dst.len());
    debug_assert_eq!(src.len() % d.max(1), 0);
    for (row, orow) in src.chunks_exact(d).zip(dst.chunks_exact_mut(d)) {
        let mu = lane_sum(row) / d as f32;
        let var = lane_sumsq_dev(row, mu) / d as f32;
        let rst = 1.0 / (var + eps).sqrt();
        for j in 0..d {
            orow[j] = (row[j] - mu) * rst * gamma[j] + beta[j];
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn ln_256(src: &[f32], gamma: &[f32], beta: &[f32], eps: f32, dst: &mut [f32]) {
    ln_body(src, gamma, beta, eps, dst)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn ln_512(src: &[f32], gamma: &[f32], beta: &[f32], eps: f32, dst: &mut [f32]) {
    ln_body(src, gamma, beta, eps, dst)
}

/// Polynomial `e^x`: `2^k · e^r` with `k = round(x / ln 2)` and a
/// degree-6 Taylor horner for `e^r`, `r ∈ [-ln2/2, ln2/2]`. Branch-free
/// and autovectorizable (libm's `expf` is a scalar call); relative error
/// ≲ 2e-7, far below the int8 quantization noise this path tolerates.
#[inline(always)]
fn fast_exp(x: f32) -> f32 {
    const LOG2_E: f32 = std::f32::consts::LOG2_E;
    // Exactly 355/512 — the top bits of ln 2 with a zero low mantissa,
    // so `k · LN2_HI` is exact for the k range here (Cody–Waite split).
    #[allow(clippy::excessive_precision)]
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    const MAGIC: f32 = 12_582_912.0; // 1.5 × 2²³: round-to-nearest-even
    let x = x.clamp(-87.0, 88.0);
    let biased = x * LOG2_E + MAGIC;
    // The rounded k as an integer, read straight out of the mantissa bits
    // (same trick as the int8 quantizer) — a `k as i32` cast here is a
    // saturating fptosi that stops the loop from vectorizing.
    let ki = biased.to_bits().wrapping_sub(MAGIC.to_bits()) as i32;
    let k = biased - MAGIC;
    let r = x - k * LN2_HI - k * LN2_LO;
    let mut p = 1.0 / 720.0f32;
    p = r * p + 1.0 / 120.0;
    p = r * p + 1.0 / 24.0;
    p = r * p + 1.0 / 6.0;
    p = r * p + 0.5;
    p = r * p + 1.0;
    p = r * p + 1.0;
    f32::from_bits((p.to_bits() as i32).wrapping_add(ki << 23) as u32)
}

/// In-place row softmax over rows of length `d`. The max shift and the
/// normalizing sum run per row, but the exponentials run over the *flat*
/// buffer in one pass — at attention's `d = T` (10 here) per-row loops
/// sit below vector width, while the flat pass keeps the polynomial exp
/// full-width.
#[inline(always)]
fn softmax_rows_body(buf: &mut [f32], d: usize) {
    debug_assert_eq!(buf.len() % d.max(1), 0);
    for row in buf.chunks_exact_mut(d) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        for o in row.iter_mut() {
            *o -= m;
        }
    }
    for o in buf.iter_mut() {
        *o = fast_exp(*o);
    }
    for row in buf.chunks_exact_mut(d) {
        let inv = 1.0 / lane_sum(row);
        for o in row.iter_mut() {
            *o *= inv;
        }
    }
}

/// Fused multi-head attention, same dataflow as the pinned
/// [`crate::infer::attention_sweep`] but with no head gather/scatter at
/// all: heads are contiguous `head_dim` slices of each `[B·T, D]` row, so
/// the score pass reads Q/K rows in place (a lane-split dot per
/// `(ti, tj)` pair — at `T×T×head_dim` these products are far below any
/// GEMM kernel's profitability threshold, and the per-head `mm`/`mm_nt`
/// dispatch was most of the pinned version's cost) and the value pass
/// broadcast-FMAs straight into `concat`. Softmax uses the polynomial
/// exp. Only the `[T, T]` score buffer of `scratch` is used.
#[allow(clippy::too_many_arguments)]
pub fn attention_sweep(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    batch: usize,
    t: usize,
    heads: usize,
    head_dim: usize,
    scale: f32,
    concat: &mut [f32],
    scratch: &mut AttnScratch,
) {
    let d = heads * head_dim;
    attn_dispatch(
        q, k, v, d, batch, t, heads, head_dim, scale, concat, scratch,
    );
}

/// [`attention_sweep`] reading Q/K/V in place from the packed `[B·T, 3D]`
/// output of the fused QKV projection (`Q | K | V` per row, row stride
/// `3D`). Skips the three `[B·T, D]` split copies entirely — the score
/// and value passes are stride-agnostic anyway.
#[allow(clippy::too_many_arguments)]
pub fn attention_sweep_packed(
    qkv: &[f32],
    batch: usize,
    t: usize,
    heads: usize,
    head_dim: usize,
    scale: f32,
    concat: &mut [f32],
    scratch: &mut AttnScratch,
) {
    let d = heads * head_dim;
    assert_eq!(qkv.len(), batch * t * 3 * d, "packed qkv shape");
    attn_dispatch(
        qkv,
        &qkv[d..],
        &qkv[2 * d..],
        3 * d,
        batch,
        t,
        heads,
        head_dim,
        scale,
        concat,
        scratch,
    );
}

/// Shared tier dispatch. `q`/`k`/`v` are read with token-row stride `rs`
/// (they may alias one packed buffer at different base offsets); `concat`
/// always has row stride `D = heads · head_dim`.
#[allow(clippy::too_many_arguments)]
fn attn_dispatch(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    rs: usize,
    batch: usize,
    t: usize,
    heads: usize,
    head_dim: usize,
    scale: f32,
    concat: &mut [f32],
    scratch: &mut AttnScratch,
) {
    crate::kernels::stats::record_fused_attention();
    match tier() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: the tier is only reported when the CPU has the features.
        Tier::Fma512 if head_dim.is_multiple_of(16) && head_dim > 0 => unsafe {
            attn_512_hd16(
                q, k, v, rs, batch, t, heads, head_dim, scale, concat, scratch,
            )
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Tier::Fma512 => unsafe {
            attn_512(
                q, k, v, rs, batch, t, heads, head_dim, scale, concat, scratch,
            )
        },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: as above.
        Tier::Fma256 => unsafe {
            attn_256(
                q, k, v, rs, batch, t, heads, head_dim, scale, concat, scratch,
            )
        },
        _ => attn_body(
            q, k, v, rs, batch, t, heads, head_dim, scale, concat, scratch,
        ),
    }
}

/// AVX-512 attention for `head_dim % 16 == 0` (the model's 16): Q/K rows
/// load as whole zmm registers straight from the interleaved `[B·T, D]`
/// layout, each score is one `mul` + lane reduce, and the value pass is a
/// broadcast-FMA chain that stores the head's output row directly into
/// `concat` — no gathers, no spills, no per-head kernel dispatch.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn attn_512_hd16(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    rs: usize,
    batch: usize,
    t: usize,
    heads: usize,
    head_dim: usize,
    scale: f32,
    concat: &mut [f32],
    s: &mut AttnScratch,
) {
    use std::arch::x86_64::*;
    let d = heads * head_dim;
    debug_assert!(q.len() >= batch * t * rs - (rs - d));
    debug_assert_eq!(concat.len(), batch * t * d);
    let scores = s.scores_mut();
    let scores = &mut scores[..t * t];
    let nb = head_dim / 16;
    for b in 0..batch {
        for h in 0..heads {
            let ioff = b * t * rs + h * head_dim;
            let ooff = b * t * d + h * head_dim;
            for ti in 0..t {
                let qp = q.as_ptr().add(ioff + ti * rs);
                let srow = &mut scores[ti * t..(ti + 1) * t];
                for (tj, sv) in srow.iter_mut().enumerate() {
                    let kp = k.as_ptr().add(ioff + tj * rs);
                    let mut prod = _mm512_mul_ps(_mm512_loadu_ps(qp), _mm512_loadu_ps(kp));
                    for c in 1..nb {
                        prod = _mm512_fmadd_ps(
                            _mm512_loadu_ps(qp.add(c * 16)),
                            _mm512_loadu_ps(kp.add(c * 16)),
                            prod,
                        );
                    }
                    *sv = _mm512_reduce_add_ps(prod) * scale;
                }
            }
            softmax_rows_body(scores, t);
            for ti in 0..t {
                let srow = &scores[ti * t..(ti + 1) * t];
                let op = concat.as_mut_ptr().add(ooff + ti * d);
                for c in 0..nb {
                    let mut acc = _mm512_setzero_ps();
                    for (tj, &sv) in srow.iter().enumerate() {
                        let vv = _mm512_loadu_ps(v.as_ptr().add(ioff + tj * rs + c * 16));
                        acc = _mm512_fmadd_ps(_mm512_set1_ps(sv), vv, acc);
                    }
                    _mm512_storeu_ps(op.add(c * 16), acc);
                }
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline(always)]
fn attn_body(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    rs: usize,
    batch: usize,
    t: usize,
    heads: usize,
    head_dim: usize,
    scale: f32,
    concat: &mut [f32],
    s: &mut AttnScratch,
) {
    let d = heads * head_dim;
    debug_assert!(q.len() >= batch * t * rs - (rs - d));
    debug_assert_eq!(concat.len(), batch * t * d);
    let scores = s.scores_mut();
    let scores = &mut scores[..t * t];
    for b in 0..batch {
        for h in 0..heads {
            let ioff = b * t * rs + h * head_dim;
            let ooff = b * t * d + h * head_dim;
            for ti in 0..t {
                let qrow = &q[ioff + ti * rs..ioff + ti * rs + head_dim];
                let srow = &mut scores[ti * t..(ti + 1) * t];
                for (tj, sv) in srow.iter_mut().enumerate() {
                    let krow = &k[ioff + tj * rs..ioff + tj * rs + head_dim];
                    *sv = lane_dot(qrow, krow) * scale;
                }
            }
            softmax_rows_body(scores, t);
            for ti in 0..t {
                let orow = &mut concat[ooff + ti * d..ooff + ti * d + head_dim];
                orow.fill(0.0);
                let srow = &scores[ti * t..(ti + 1) * t];
                for (tj, &sv) in srow.iter().enumerate() {
                    let vrow = &v[ioff + tj * rs..ioff + tj * rs + head_dim];
                    for p in 0..head_dim {
                        orow[p] += sv * vrow[p];
                    }
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2,fma")]
unsafe fn attn_256(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    rs: usize,
    batch: usize,
    t: usize,
    heads: usize,
    head_dim: usize,
    scale: f32,
    concat: &mut [f32],
    s: &mut AttnScratch,
) {
    attn_body(q, k, v, rs, batch, t, heads, head_dim, scale, concat, s)
}

#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn attn_512(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    rs: usize,
    batch: usize,
    t: usize,
    heads: usize,
    head_dim: usize,
    scale: f32,
    concat: &mut [f32],
    s: &mut AttnScratch,
) {
    attn_body(q, k, v, rs, batch, t, heads, head_dim, scale, concat, s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_exp_tracks_libm() {
        for i in -800..=800 {
            let x = i as f32 * 0.1;
            let got = fast_exp(x);
            let want = x.exp();
            let rel = (got - want).abs() / want.max(f32::MIN_POSITIVE);
            assert!(rel < 1e-5, "x={x}: {got} vs {want} (rel {rel})");
        }
        assert_eq!(fast_exp(0.0), 1.0);
        assert!(fast_exp(-200.0) < 1e-37);
    }

    #[test]
    fn layer_norm_tracks_pinned_version() {
        let d = 64;
        let src: Vec<f32> = (0..4 * d)
            .map(|i| ((i * 13) % 29) as f32 * 0.17 - 2.0)
            .collect();
        let gamma: Vec<f32> = (0..d).map(|i| 1.0 + 0.01 * i as f32).collect();
        let beta: Vec<f32> = (0..d).map(|i| -0.2 + 0.005 * i as f32).collect();
        let mut pinned = vec![0.0f32; src.len()];
        let mut fast = vec![0.0f32; src.len()];
        crate::infer::layer_norm_into(&src, &gamma, &beta, 1e-5, &mut pinned);
        layer_norm_into(&src, &gamma, &beta, 1e-5, &mut fast);
        for (a, b) in pinned.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn attention_tracks_pinned_version() {
        let (batch, t, heads, head_dim) = (3, 10, 4, 16);
        let d = heads * head_dim;
        let gen = |seed: usize| -> Vec<f32> {
            (0..batch * t * d)
                .map(|i| (((i * 31 + seed * 7) % 23) as f32 - 11.0) * 0.1)
                .collect()
        };
        let (q, k, v) = (gen(1), gen(2), gen(3));
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut pinned = vec![0.0f32; batch * t * d];
        let mut fast = vec![0.0f32; batch * t * d];
        let mut s1 = AttnScratch::new(t, head_dim);
        let mut s2 = AttnScratch::new(t, head_dim);
        crate::infer::attention_sweep(
            &q,
            &k,
            &v,
            batch,
            t,
            heads,
            head_dim,
            scale,
            &mut pinned,
            &mut s1,
        );
        attention_sweep(
            &q, &k, &v, batch, t, heads, head_dim, scale, &mut fast, &mut s2,
        );
        for (a, b) in pinned.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn attention_handles_odd_head_dim_and_t() {
        // Shapes off the model's 16/10 defaults exercise the lane-split
        // remainders.
        let (batch, t, heads, head_dim) = (2, 7, 3, 5);
        let d = heads * head_dim;
        let gen = |seed: usize| -> Vec<f32> {
            (0..batch * t * d)
                .map(|i| (((i * 17 + seed * 11) % 19) as f32 - 9.0) * 0.13)
                .collect()
        };
        let (q, k, v) = (gen(1), gen(2), gen(3));
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut pinned = vec![0.0f32; batch * t * d];
        let mut fast = vec![0.0f32; batch * t * d];
        let mut s1 = AttnScratch::new(t, head_dim);
        let mut s2 = AttnScratch::new(t, head_dim);
        crate::infer::attention_sweep(
            &q,
            &k,
            &v,
            batch,
            t,
            heads,
            head_dim,
            scale,
            &mut pinned,
            &mut s1,
        );
        attention_sweep(
            &q, &k, &v, batch, t, heads, head_dim, scale, &mut fast, &mut s2,
        );
        for (a, b) in pinned.iter().zip(&fast) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn packed_qkv_attention_matches_split() {
        // Same kernel, same accumulation order — only the read stride
        // differs, so packed and split must agree bitwise.
        let (batch, t, heads, head_dim) = (2, 10, 4, 16);
        let d = heads * head_dim;
        let qkv: Vec<f32> = (0..batch * t * 3 * d)
            .map(|i| (((i * 29 + 5) % 31) as f32 - 15.0) * 0.11)
            .collect();
        let mut q = vec![0.0f32; batch * t * d];
        let mut k = q.clone();
        let mut v = q.clone();
        for r in 0..batch * t {
            q[r * d..(r + 1) * d].copy_from_slice(&qkv[r * 3 * d..r * 3 * d + d]);
            k[r * d..(r + 1) * d].copy_from_slice(&qkv[r * 3 * d + d..r * 3 * d + 2 * d]);
            v[r * d..(r + 1) * d].copy_from_slice(&qkv[r * 3 * d + 2 * d..(r + 1) * 3 * d]);
        }
        let scale = 1.0 / (head_dim as f32).sqrt();
        let mut split = vec![0.0f32; batch * t * d];
        let mut packed = vec![0.0f32; batch * t * d];
        let mut s1 = AttnScratch::new(t, head_dim);
        let mut s2 = AttnScratch::new(t, head_dim);
        attention_sweep(
            &q, &k, &v, batch, t, heads, head_dim, scale, &mut split, &mut s1,
        );
        attention_sweep_packed(&qkv, batch, t, heads, head_dim, scale, &mut packed, &mut s2);
        assert_eq!(split, packed);
    }

    #[test]
    fn gelu_tracks_pinned_version() {
        // Same polynomial; the AVX-512 tier's Newton-refined reciprocal
        // drifts at most a couple of ulps from the divided form.
        let mut a: Vec<f32> = (0..1000).map(|i| (i as f32 - 500.0) * 0.02).collect();
        let mut b = a.clone();
        crate::infer::gelu_inplace(&mut a);
        gelu_inplace(&mut b);
        for (x, y) in a.iter().zip(&b) {
            let tol = 1e-6 * x.abs().max(1.0);
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }
}
