//! # logsynergy-nn
//!
//! A from-scratch tensor / reverse-mode autodiff / neural-network substrate
//! for LogSynergy-RS. It stands in for the PyTorch stack the LogSynergy
//! paper (ICDE 2025) trains on: everything the framework and its ten
//! baselines need — Transformer encoders, LSTM/GRU/Bi-LSTM, spiking (LIF)
//! layers, a gradient-reversal layer for adversarial domain adaptation,
//! AdamW — is implemented here on plain `Vec<f32>` tensors.
//!
//! Design notes:
//! - [`tensor::Tensor`] is contiguous and row-major; all views copy.
//! - [`graph::Graph`] is a single-use tape; parameters live in a
//!   [`graph::ParamStore`] and are bound per forward pass.
//! - Ops are free functions in [`ops`]; layers in [`layers`] are plain
//!   structs of parameter ids.
//! - Gradients of every op are validated against finite differences (see
//!   [`gradcheck`] and the crate's test suite).
//!
//! ```
//! use logsynergy_nn::optim::AdamW;
//! use logsynergy_nn::{loss, ops, Graph, ParamStore, Tensor};
//!
//! // Fit y = 2x with a single weight.
//! let mut store = ParamStore::new();
//! let w = store.add("w", Tensor::zeros(&[1, 1]));
//! let mut opt = AdamW::with_config(&store, 0.1, 0.9, 0.999, 1e-8, 0.0);
//! for _ in 0..200 {
//!     let g = Graph::new();
//!     let wv = g.bind(&store, w);
//!     let x = g.input(Tensor::new(vec![1.0, 2.0, 3.0], &[3, 1]));
//!     let pred = ops::matmul(&g, x, wv);
//!     let target = Tensor::new(vec![2.0, 4.0, 6.0], &[3, 1]);
//!     let l = loss::mse(&g, pred, &target);
//!     g.backward(l);
//!     g.write_grads(&mut store);
//!     opt.step(&mut store);
//! }
//! assert!((store.value(w).data()[0] - 2.0).abs() < 0.05);
//! ```

#![warn(missing_docs)]

pub mod gradcheck;
pub mod graph;
pub mod infer;
#[cfg(feature = "quant")]
pub mod infer_fast;
pub mod init;
pub mod kernels;
pub mod layers;
pub mod loss;
pub mod ops;
pub mod optim;
pub mod tensor;

pub use graph::{Graph, ParamId, ParamStore, Var};
pub use tensor::Tensor;
