//! Dense row-major `f32` tensors.
//!
//! The tensor type is deliberately simple: a contiguous buffer plus a
//! shape. The buffer is held behind an `Arc` with copy-on-write semantics:
//! `Clone` (and `reshape`) share storage in O(1), and [`Tensor::data_mut`]
//! makes a private copy only when the storage is actually shared. That
//! makes it cheap for autograd backward closures to capture their operands
//! — the tape in [`crate::graph`] holds one buffer per node, not one per
//! capture. Heavy lifting (matmul, elementwise loops, reductions) routes
//! through the [`crate::kernels`] layer.

use std::sync::Arc;

use rand::distributions::Distribution;
use rand::Rng;

use crate::kernels;

/// A dense, row-major, contiguous `f32` tensor with copy-on-write storage.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Arc<Vec<f32>>,
    shape: Vec<usize>,
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor{:?}", self.shape)?;
        if self.data.len() <= 16 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, …; n={}]",
                self.data[0],
                self.data[1],
                self.data.len()
            )
        }
    }
}

/// Number of elements implied by a shape (empty shape = scalar = 1 element).
pub fn numel(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for a shape.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![0; shape.len()];
    let mut acc = 1;
    for i in (0..shape.len()).rev() {
        s[i] = acc;
        acc *= shape[i];
    }
    s
}

impl Tensor {
    /// Builds a tensor from raw data and a shape. Panics if sizes disagree.
    pub fn new(data: Vec<f32>, shape: &[usize]) -> Self {
        assert_eq!(
            data.len(),
            numel(shape),
            "data length {} does not match shape {:?}",
            data.len(),
            shape
        );
        Tensor {
            data: Arc::new(data),
            shape: shape.to_vec(),
        }
    }

    /// A scalar (0-dimensional) tensor.
    pub fn scalar(v: f32) -> Self {
        Tensor {
            data: Arc::new(vec![v]),
            shape: vec![],
        }
    }

    /// All-zeros tensor of the given shape (storage drawn from the arena).
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor {
            data: Arc::new(kernels::arena::take_zeroed(numel(shape))),
            shape: shape.to_vec(),
        }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Tensor filled with a constant.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let n = numel(shape);
        let mut data = kernels::arena::take_cleared(n);
        data.resize(n, v);
        Tensor {
            data: Arc::new(data),
            shape: shape.to_vec(),
        }
    }

    /// Standard-normal random tensor scaled by `std`.
    pub fn randn<R: Rng>(rng: &mut R, shape: &[usize], std: f32) -> Self {
        let normal = rand::distributions::Uniform::new(0.0f32, 1.0f32);
        // Box-Muller from two uniforms: avoids pulling in rand_distr.
        let n = numel(shape);
        let mut data = kernels::arena::take_cleared(n);
        while data.len() < n {
            let u1: f32 = normal.sample(rng).max(1e-12);
            let u2: f32 = normal.sample(rng);
            let r = (-2.0 * u1.ln()).sqrt();
            let th = 2.0 * std::f32::consts::PI * u2;
            data.push(r * th.cos() * std);
            if data.len() < n {
                data.push(r * th.sin() * std);
            }
        }
        Tensor {
            data: Arc::new(data),
            shape: shape.to_vec(),
        }
    }

    /// Uniform random tensor in `[lo, hi)`.
    pub fn rand_uniform<R: Rng>(rng: &mut R, shape: &[usize], lo: f32, hi: f32) -> Self {
        let dist = rand::distributions::Uniform::new(lo, hi);
        let n = numel(shape);
        let mut data = kernels::arena::take_cleared(n);
        data.extend((0..n).map(|_| dist.sample(rng)));
        Tensor {
            data: Arc::new(data),
            shape: shape.to_vec(),
        }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements (some dim is zero).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer (copies first if shared).
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consumes the tensor, returning its buffer (copies if shared).
    pub fn into_data(self) -> Vec<f32> {
        Arc::try_unwrap(self.data).unwrap_or_else(|shared| (*shared).clone())
    }

    /// True when both tensors view the same backing buffer.
    pub fn shares_storage(&self, other: &Tensor) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    /// Address of the backing buffer, for deduplicated accounting.
    pub fn storage_id(&self) -> usize {
        Arc::as_ptr(&self.data) as usize
    }

    /// Heap bytes held by the backing buffer (capacity, not length).
    pub fn storage_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f32>()
    }

    /// Recycles the buffer into the arena if this was its last owner.
    pub(crate) fn recycle(self) {
        if let Ok(buf) = Arc::try_unwrap(self.data) {
            kernels::arena::give(buf);
        }
    }

    /// Value of a scalar tensor (any single-element tensor qualifies).
    pub fn item(&self) -> f32 {
        assert_eq!(
            self.data.len(),
            1,
            "item() on tensor with {} elements",
            self.data.len()
        );
        self.data[0]
    }

    /// Reinterprets the buffer with a new shape of equal element count.
    /// Shares storage with `self` (copy-on-write).
    pub fn reshape(&self, shape: &[usize]) -> Tensor {
        assert_eq!(
            numel(shape),
            self.data.len(),
            "reshape {:?} -> {:?}",
            self.shape,
            shape
        );
        Tensor {
            data: Arc::clone(&self.data),
            shape: shape.to_vec(),
        }
    }

    /// Element at a multi-index.
    pub fn at(&self, idx: &[usize]) -> f32 {
        let s = strides(&self.shape);
        let mut off = 0;
        assert_eq!(idx.len(), self.shape.len());
        for (i, &ix) in idx.iter().enumerate() {
            debug_assert!(ix < self.shape[i]);
            off += ix * s[i];
        }
        self.data[off]
    }

    /// Applies `f` to every element, returning a new tensor (parallel for
    /// large buffers).
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = kernels::arena::take_zeroed(self.data.len());
        kernels::fill_map(&self.data, &mut out, f);
        Tensor {
            data: Arc::new(out),
            shape: self.shape.clone(),
        }
    }

    /// In-place elementwise `self += other` (shapes must match).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data_mut().iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, s: f32) {
        for a in self.data_mut().iter_mut() {
            *a *= s;
        }
    }

    /// Sum of all elements (deterministic fixed-chunk order; parallel for
    /// large buffers).
    pub fn sum(&self) -> f32 {
        kernels::sum(&self.data)
    }

    /// Mean of all elements (0.0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element; panics when empty.
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Index of the maximum element along the last axis for each row.
    ///
    /// For shape `[N, C]` returns `N` indices; for `[C]` returns one.
    pub fn argmax_last(&self) -> Vec<usize> {
        let c = *self.shape.last().expect("argmax on scalar");
        assert!(c > 0);
        self.data
            .chunks_exact(c)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap()
            })
            .collect()
    }

    /// L2 norm of the whole buffer.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

/// NumPy-style broadcast of two shapes; `None` when incompatible.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let n = a.len().max(b.len());
    let mut out = vec![0; n];
    for i in 0..n {
        let da = if i < n - a.len() {
            1
        } else {
            a[i - (n - a.len())]
        };
        let db = if i < n - b.len() {
            1
        } else {
            b[i - (n - b.len())]
        };
        out[i] = if da == db {
            da
        } else if da == 1 {
            db
        } else if db == 1 {
            da
        } else {
            return None;
        };
    }
    Some(out)
}

/// Strides of `shape` when broadcast to `out_shape`: broadcast dims get
/// stride 0, missing leading dims get stride 0.
pub fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let own = strides(shape);
    let pad = out_shape.len() - shape.len();
    let mut s = vec![0; out_shape.len()];
    for i in 0..shape.len() {
        s[pad + i] = if shape[i] == 1 && out_shape[pad + i] != 1 {
            0
        } else {
            own[i]
        };
    }
    s
}

/// Applies a binary op under broadcasting, returning the broadcast result.
/// The same-shape fast path is chunk-parallel.
pub fn broadcast_zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
    if a.shape == b.shape {
        let mut data = kernels::arena::take_zeroed(a.data.len());
        kernels::fill_zip(&a.data, &b.data, &mut data, f);
        return Tensor {
            data: Arc::new(data),
            shape: a.shape.clone(),
        };
    }
    // Fast path: one shape is a trailing suffix of the other — the bias-add
    // ([R,D]+[D]) and positional-embedding ([B,T,D]+[T,D]) pattern. In
    // row-major order the smaller operand just cycles every `small.len()`
    // elements, so the generic multi-index walk below degenerates to a tight
    // zip over repeating chunks: same element pairs, same order, bitwise
    // identical — only faster.
    if a.shape.ends_with(&b.shape) && !b.data.is_empty() {
        let w = b.data.len();
        let mut data = kernels::arena::take_zeroed(a.data.len());
        for (orow, arow) in data.chunks_exact_mut(w).zip(a.data.chunks_exact(w)) {
            for ((o, &x), &y) in orow.iter_mut().zip(arow).zip(b.data.iter()) {
                *o = f(x, y);
            }
        }
        return Tensor {
            data: Arc::new(data),
            shape: a.shape.clone(),
        };
    }
    if b.shape.ends_with(&a.shape) && !a.data.is_empty() {
        let w = a.data.len();
        let mut data = kernels::arena::take_zeroed(b.data.len());
        for (orow, brow) in data.chunks_exact_mut(w).zip(b.data.chunks_exact(w)) {
            for ((o, &y), &x) in orow.iter_mut().zip(brow).zip(a.data.iter()) {
                *o = f(x, y);
            }
        }
        return Tensor {
            data: Arc::new(data),
            shape: b.shape.clone(),
        };
    }
    let out_shape = broadcast_shape(&a.shape, &b.shape)
        .unwrap_or_else(|| panic!("incompatible broadcast {:?} vs {:?}", a.shape, b.shape));
    let sa = broadcast_strides(&a.shape, &out_shape);
    let sb = broadcast_strides(&b.shape, &out_shape);
    let n = numel(&out_shape);
    let mut data = kernels::arena::take_cleared(n);
    let mut idx = vec![0usize; out_shape.len()];
    let mut oa = 0usize;
    let mut ob = 0usize;
    for _ in 0..n {
        data.push(f(a.data[oa], b.data[ob]));
        // increment multi-index, updating offsets incrementally
        for d in (0..out_shape.len()).rev() {
            idx[d] += 1;
            oa += sa[d];
            ob += sb[d];
            if idx[d] < out_shape[d] {
                break;
            }
            idx[d] = 0;
            oa -= sa[d] * out_shape[d];
            ob -= sb[d] * out_shape[d];
        }
    }
    Tensor {
        data: Arc::new(data),
        shape: out_shape,
    }
}

/// Reduces `grad` (shaped like the broadcast output) back to `shape`,
/// summing over all broadcast axes. Used by elementwise backward passes.
pub fn reduce_to_shape(grad: &Tensor, shape: &[usize]) -> Tensor {
    if grad.shape == shape {
        return grad.clone();
    }
    let out_shape = grad.shape.clone();
    let s_in = broadcast_strides(shape, &out_shape);
    let mut out = Tensor::zeros(shape);
    let od = out.data_mut();
    let n = grad.data.len();
    let mut idx = vec![0usize; out_shape.len()];
    let mut off = 0usize;
    for i in 0..n {
        od[off] += grad.data[i];
        for d in (0..out_shape.len()).rev() {
            idx[d] += 1;
            off += s_in[d];
            if idx[d] < out_shape[d] {
                break;
            }
            idx[d] = 0;
            off -= s_in[d] * out_shape[d];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn shape_and_strides() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(numel(&[2, 3, 4]), 24);
        assert_eq!(numel(&[]), 1);
    }

    #[test]
    fn scalar_roundtrip() {
        let t = Tensor::scalar(3.5);
        assert_eq!(t.item(), 3.5);
        assert_eq!(t.shape(), &[] as &[usize]);
    }

    #[test]
    fn at_indexes_row_major() {
        let t = Tensor::new((0..6).map(|x| x as f32).collect(), &[2, 3]);
        assert_eq!(t.at(&[0, 0]), 0.0);
        assert_eq!(t.at(&[1, 2]), 5.0);
        assert_eq!(t.at(&[1, 0]), 3.0);
    }

    #[test]
    fn clone_shares_storage_until_written() {
        let mut a = Tensor::new(vec![1.0, 2.0], &[2]);
        let b = a.clone();
        assert!(a.shares_storage(&b));
        a.data_mut()[0] = 9.0;
        assert!(!a.shares_storage(&b), "write must detach shared storage");
        assert_eq!(b.data(), &[1.0, 2.0]);
        assert_eq!(a.data(), &[9.0, 2.0]);
    }

    #[test]
    fn reshape_shares_storage() {
        let a = Tensor::new(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = a.reshape(&[4]);
        assert!(a.shares_storage(&b));
        assert_eq!(b.shape(), &[4]);
    }

    #[test]
    fn broadcast_shapes() {
        assert_eq!(broadcast_shape(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shape(&[2, 1, 4], &[3, 1]), Some(vec![2, 3, 4]));
        assert_eq!(broadcast_shape(&[2, 3], &[4]), None);
        assert_eq!(broadcast_shape(&[], &[5]), Some(vec![5]));
    }

    #[test]
    fn broadcast_zip_bias_add() {
        let a = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::new(vec![10., 20., 30.], &[3]);
        let c = broadcast_zip(&a, &b, |x, y| x + y);
        assert_eq!(c.data(), &[11., 22., 33., 14., 25., 36.]);
        assert_eq!(c.shape(), &[2, 3]);
    }

    #[test]
    fn broadcast_zip_column() {
        let a = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let b = Tensor::new(vec![10., 100.], &[2, 1]);
        let c = broadcast_zip(&a, &b, |x, y| x * y);
        assert_eq!(c.data(), &[10., 20., 30., 400., 500., 600.]);
    }

    #[test]
    fn reduce_to_shape_sums_broadcast_axes() {
        let g = Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]);
        let r = reduce_to_shape(&g, &[3]);
        assert_eq!(r.data(), &[5., 7., 9.]);
        let r2 = reduce_to_shape(&g, &[2, 1]);
        assert_eq!(r2.data(), &[6., 15.]);
        let r3 = reduce_to_shape(&g, &[]);
        assert_eq!(r3.item(), 21.0);
    }

    #[test]
    fn randn_is_roughly_standard() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let t = Tensor::randn(&mut rng, &[10_000], 1.0);
        assert!(t.mean().abs() < 0.05, "mean {}", t.mean());
        let var = t.data().iter().map(|x| x * x).sum::<f32>() / 10_000.0;
        assert!((var - 1.0).abs() < 0.1, "var {}", var);
    }

    #[test]
    fn argmax_last_rows() {
        let t = Tensor::new(vec![0.1, 0.9, 0.5, 0.4, 0.2, 0.3], &[2, 3]);
        assert_eq!(t.argmax_last(), vec![1, 0]);
    }

    #[test]
    #[should_panic]
    fn new_rejects_bad_shape() {
        let _ = Tensor::new(vec![1.0, 2.0], &[3]);
    }
}
