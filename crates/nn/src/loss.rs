//! Loss functions (all return scalar means over the batch).

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Binary cross-entropy on raw logits `[N]` (or `[N,1]`) against `{0,1}`
/// targets, computed with the numerically stable log-sum-exp form:
/// `max(x,0) - x*y + ln(1 + e^{-|x|})`. This is Eq. (2) of the paper.
pub fn bce_with_logits(g: &Graph, logits: Var, targets: &[f32]) -> Var {
    let tl = g.value(logits);
    assert_eq!(
        tl.len(),
        targets.len(),
        "bce logits/targets length mismatch"
    );
    let n = targets.len() as f32;
    let mut loss = 0.0f64;
    for (&x, &y) in tl.data().iter().zip(targets) {
        loss += (x.max(0.0) - x * y + (1.0 + (-x.abs()).exp()).ln()) as f64;
    }
    let out = Tensor::scalar((loss / n as f64) as f32);
    let targets = targets.to_vec();
    let shape = tl.shape().to_vec();
    g.op(
        out,
        vec![logits],
        Box::new(move |og| {
            let s = og.item() / n;
            vec![Tensor::new(
                tl.data()
                    .iter()
                    .zip(&targets)
                    .map(|(&x, &y)| {
                        let p = 1.0 / (1.0 + (-x).exp());
                        s * (p - y)
                    })
                    .collect(),
                &shape,
            )]
        }),
    )
}

/// Multiclass cross-entropy on logits `[N, C]` against class indices.
/// This is Eq. (1) of the paper (system classification loss).
pub fn cross_entropy(g: &Graph, logits: Var, targets: &[usize]) -> Var {
    let tl = g.value(logits);
    assert_eq!(tl.shape().len(), 2, "cross_entropy expects [N, C]");
    let (n, c) = (tl.shape()[0], tl.shape()[1]);
    assert_eq!(n, targets.len(), "cross_entropy batch mismatch");
    let mut probs = Vec::with_capacity(n * c);
    let mut loss = 0.0f64;
    for (row, &t) in tl.data().chunks_exact(c).zip(targets) {
        assert!(t < c, "target class {t} out of {c}");
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - m).exp()).collect();
        let z: f32 = exps.iter().sum();
        loss -= ((exps[t] / z).max(1e-12) as f64).ln();
        probs.extend(exps.into_iter().map(|e| e / z));
    }
    let out = Tensor::scalar((loss / n as f64) as f32);
    let targets = targets.to_vec();
    g.op(
        out,
        vec![logits],
        Box::new(move |og| {
            let s = og.item() / n as f32;
            let mut grad = probs.clone();
            for (i, &t) in targets.iter().enumerate() {
                grad[i * c + t] -= 1.0;
            }
            grad.iter_mut().for_each(|x| *x *= s);
            vec![Tensor::new(grad, &[n, c])]
        }),
    )
}

/// Mean squared error against a constant target tensor.
pub fn mse(g: &Graph, pred: Var, target: &Tensor) -> Var {
    let tp = g.value(pred);
    assert_eq!(tp.shape(), target.shape(), "mse shape mismatch");
    let n = tp.len() as f32;
    let loss = tp
        .data()
        .iter()
        .zip(target.data())
        .map(|(&p, &t)| (p - t) * (p - t))
        .sum::<f32>()
        / n;
    let out = Tensor::scalar(loss);
    let target = target.clone();
    g.op(
        out,
        vec![pred],
        Box::new(move |og| {
            let s = og.item() * 2.0 / n;
            vec![Tensor::new(
                tp.data()
                    .iter()
                    .zip(target.data())
                    .map(|(&p, &t)| s * (p - t))
                    .collect(),
                tp.shape(),
            )]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bce_perfect_prediction_near_zero() {
        let g = Graph::new();
        let logits = g.input(Tensor::new(vec![10.0, -10.0], &[2]));
        let l = bce_with_logits(&g, logits, &[1.0, 0.0]);
        assert!(g.value(l).item() < 1e-3);
    }

    #[test]
    fn bce_uniform_is_ln2() {
        let g = Graph::new();
        let logits = g.input(Tensor::new(vec![0.0], &[1]));
        let l = bce_with_logits(&g, logits, &[1.0]);
        assert!((g.value(l).item() - std::f32::consts::LN_2).abs() < 1e-5);
    }

    #[test]
    fn bce_grad_is_p_minus_y() {
        let g = Graph::new();
        let logits = g.leaf(Tensor::new(vec![0.0], &[1]));
        let l = bce_with_logits(&g, logits, &[1.0]);
        g.backward(l);
        assert!((g.grad(logits).unwrap().data()[0] - (0.5 - 1.0)).abs() < 1e-6);
    }

    #[test]
    fn ce_uniform_is_ln_c() {
        let g = Graph::new();
        let logits = g.input(Tensor::zeros(&[1, 4]));
        let l = cross_entropy(&g, logits, &[2]);
        assert!((g.value(l).item() - 4.0f32.ln()).abs() < 1e-5);
    }

    #[test]
    fn ce_grad_softmax_minus_onehot() {
        let g = Graph::new();
        let logits = g.leaf(Tensor::zeros(&[1, 2]));
        let l = cross_entropy(&g, logits, &[0]);
        g.backward(l);
        let gr = g.grad(logits).unwrap();
        assert!((gr.data()[0] + 0.5).abs() < 1e-6);
        assert!((gr.data()[1] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mse_basics() {
        let g = Graph::new();
        let p = g.leaf(Tensor::new(vec![1.0, 3.0], &[2]));
        let t = Tensor::new(vec![0.0, 0.0], &[2]);
        let l = mse(&g, p, &t);
        assert!((g.value(l).item() - 5.0).abs() < 1e-6);
        g.backward(l);
        assert_eq!(g.grad(p).unwrap().data(), &[1.0, 3.0]);
    }
}
