//! Cache-blocked, register-tiled 2-D matmul micro-kernels.
//!
//! Three entry points cover every product the autograd tape needs without
//! ever materializing a transposed operand:
//!
//! - [`mm`]:    `C[m,n] += A[m,k] · B[k,n]`
//! - [`mm_nt`]: `C[m,n] += A[m,k] · B[n,k]ᵀ`   (backward dA, attention scores)
//! - [`mm_tn`]: `C[k,n] += A[m,k]ᵀ · B[m,n]`   (backward dB / weight grads)
//!
//! All three parallelize over disjoint blocks of **output rows** and fix the
//! per-element reduction order (ascending over the contracted index, with a
//! fixed lane structure in [`dot`]), so results are bitwise identical across
//! thread counts and between the tiled and edge paths.
//!
//! Register tiling: [`MR`]×[`NR`] accumulators live in registers across
//! the whole contraction loop, so each loaded `B` row-slice is reused for
//! every tile row and `C` is touched once per tile instead of once per
//! contraction step. The column loop is outermost, so one `k × NR` column
//! panel of `B` stays cache-resident while every row block sweeps over it;
//! with `k ≤ 1024` that panel sits in L1/L2, which is why there is no
//! further `k`-blocking.
//!
//! SIMD: the portable scalar form is the source of truth; on x86-64 the
//! generic bodies are re-monomorphized inside `#[target_feature]` wrappers
//! (AVX2+FMA tier), and machines with AVX-512 additionally get hand-written
//! 8×32 intrinsics microkernels (see [`mm_rows_512`]) — autovectorization
//! alone leaves ~2× on the table there because it won't keep enough
//! independent FMA chains in flight. The tier is selected once per process
//! by runtime detection (override: `LOGSYNERGY_NN_SIMD`) and never depends
//! on the thread count, so the cross-thread determinism contract is
//! unaffected; fused rounding does mean the FMA tiers differ from the
//! scalar reference in the last ulp (see `mm_ref`).

use super::{parallel_for, SharedMut};

/// Register-tile rows (output rows accumulated simultaneously) in the
/// generic autovectorized body. The hand-written AVX-512 microkernels use
/// their own 8×32 tile; see [`ROW_ALIGN`] for how the two coexist.
pub const MR: usize = 4;
/// Register-tile columns in the generic autovectorized body. 4×16 measured
/// fastest under autovectorization (wider tiles make LLVM spill the
/// accumulator array).
pub const NR: usize = 16;

/// Target FLOPs per parallel chunk; keeps chunks ≈tens of microseconds so
/// dispatch overhead stays invisible while small problems still spread.
const GRAIN_FLOPS: usize = 1 << 18;

/// Parallel row chunks are aligned to this — a common multiple of every
/// tile height in use ([`MR`] and the AVX-512 microkernel's 8) — so tile
/// boundaries, and therefore bits, are identical between the serial path
/// and any chunk decomposition.
const ROW_ALIGN: usize = 8;

/// Rows per parallel chunk for an output with `red`-long reductions of
/// width `n`: a pure function of the problem size (never thread count),
/// rounded to [`ROW_ALIGN`].
fn row_grain(red: usize, n: usize) -> usize {
    let per_row = 2 * red.max(1) * n.max(1);
    GRAIN_FLOPS.div_ceil(per_row).next_multiple_of(ROW_ALIGN)
}

/// Minimum FLOPs of matmul work per enlisted thread. Below this, the
/// dispatch + cache-contention cost of fanning out exceeds the compute
/// being shared: a 64³ GEMM (2^19 FLOPs) runs *slower* at 4 threads than
/// at 1 on every machine we measured. One thread per `2^20` FLOPs keeps
/// 64³-class shapes serial while 256³ (2^25) still spreads.
const MIN_FLOPS_PER_THREAD: usize = 1 << 20;

/// Effective thread count for a matmul of `flops` total work: the
/// requested count, capped at the machine's real parallelism (threads
/// beyond physical cores only time-slice — pure oversubscription loss)
/// and at one thread per [`MIN_FLOPS_PER_THREAD`] of work. Chunk
/// *boundaries* stay a pure function of the shape, so bits are unchanged;
/// only how many threads claim those chunks varies.
pub(crate) fn matmul_threads(flops: usize) -> usize {
    super::current_threads()
        .min(super::hardware_threads())
        .min((flops / MIN_FLOPS_PER_THREAD).max(1))
}

/// Instruction tier, detected once per process. Constant for the process
/// lifetime, so every thread (and every chunk) computes identical bits.
#[derive(Clone, Copy, PartialEq, Eq)]
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
pub(crate) enum Tier {
    Scalar,
    /// AVX2 + FMA: 256-bit lanes, fused multiply-add.
    Fma256,
    /// AVX-512: 16-float lanes — one register per [`NR`]-wide tile row.
    Fma512,
}

pub(crate) fn tier() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        static TIER: std::sync::OnceLock<Tier> = std::sync::OnceLock::new();
        *TIER.get_or_init(|| {
            // `LOGSYNERGY_NN_SIMD` pins a tier (`scalar` | `avx2` | `avx512`)
            // below what the CPU supports — for debugging, A/B benchmarks,
            // and reproducing another machine's bits. Read once, like the
            // thread default, so the tier stays process-constant.
            let cap = std::env::var("LOGSYNERGY_NN_SIMD").unwrap_or_default();
            let avx512 = std::arch::is_x86_feature_detected!("avx512f")
                && std::arch::is_x86_feature_detected!("avx512vl")
                && std::arch::is_x86_feature_detected!("fma");
            let avx2 = std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma");
            match cap.as_str() {
                "scalar" => Tier::Scalar,
                "avx2" if avx2 => Tier::Fma256,
                _ if avx512 => Tier::Fma512,
                _ if avx2 => Tier::Fma256,
                _ => Tier::Scalar,
            }
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Tier::Scalar
    }
}

/// Human-readable name of the active SIMD tier, for logs and benchmark
/// reports.
pub fn simd_tier_name() -> &'static str {
    match tier() {
        Tier::Scalar => "scalar",
        Tier::Fma256 => "avx2+fma",
        Tier::Fma512 => "avx512",
    }
}

/// `acc + x*y`, fused when the surrounding tier compiles with FMA.
#[inline(always)]
fn fmadd<const FMA: bool>(x: f32, y: f32, acc: f32) -> f32 {
    if FMA {
        x.mul_add(y, acc)
    } else {
        acc + x * y
    }
}

/// Declares `$name256` / `$name512` target-feature wrappers around the
/// generic `$imp::<true>` body, plus a safe `$disp` dispatcher.
macro_rules! simd_dispatch {
    ($disp:ident, $imp:ident, $name256:ident, $name512:ident,
     ($($arg:ident : $ty:ty),*)) => {
        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx2,fma")]
        unsafe fn $name256($($arg: $ty),*) {
            $imp::<true>($($arg),*)
        }

        #[cfg(target_arch = "x86_64")]
        #[target_feature(enable = "avx512f,avx512vl,fma")]
        unsafe fn $name512($($arg: $ty),*) {
            $imp::<true>($($arg),*)
        }

        fn $disp($($arg: $ty),*) {
            match tier() {
                // SAFETY: the tier is only reported when the CPU has the
                // features the wrapper enables.
                #[cfg(target_arch = "x86_64")]
                Tier::Fma512 => unsafe { $name512($($arg),*) },
                #[cfg(target_arch = "x86_64")]
                Tier::Fma256 => unsafe { $name256($($arg),*) },
                _ => $imp::<false>($($arg),*),
            }
        }
    };
}

/// `c[m,n] += a[m,k] · b[k,n]`, blocked and parallel.
pub fn mm(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    super::stats::record_matmul(m, k, n);
    let threads = matmul_threads(2 * m * k * n);
    let out = SharedMut::new(c);
    super::with_threads(threads, || {
        parallel_for(m, row_grain(k, n), |r0, r1| {
            // SAFETY: row blocks are disjoint across chunks.
            let rows = unsafe { out.range(r0 * n, r1 * n) };
            mm_rows(a, b, rows, r0, r1, k, n);
        });
    });
}

/// Row-range worker for [`mm`]: the AVX-512 tier runs a hand-written
/// microkernel over full tiles (rim handled by the generic body); other
/// tiers run the generic body over the whole range.
fn mm_rows(a: &[f32], b: &[f32], c: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    match tier() {
        // SAFETY: the tier is only reported when the CPU has the features
        // the wrapper enables.
        #[cfg(target_arch = "x86_64")]
        Tier::Fma512 => unsafe { mm_rows_512(a, b, c, r0, r1, k, n) },
        #[cfg(target_arch = "x86_64")]
        Tier::Fma256 => unsafe { mm_rows_256(a, b, c, r0, r1, k, n) },
        _ => mm_rows_impl::<false>(a, b, c, r0, r1, k, n, 0, n),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn mm_rows_256(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    mm_rows_impl::<true>(a, b, c, r0, r1, k, n, 0, n)
}

/// Hand-written AVX-512 microkernel for [`mm`]: 8×32 tiles, i.e. 16 zmm
/// accumulators — enough independent FMA chains to cover fused-multiply-add
/// latency on dual-FMA-port cores, which autovectorization of the generic
/// body does not reach. `B` is loaded once per `p` and reused for all 8
/// rows; `A` values enter as broadcasts.
///
/// Rim rows/columns fall back to the generic body. Each element's
/// accumulation chain (one fused multiply-add per ascending `p`, then one
/// add into `C`) is identical in both paths, so an element's bits do not
/// depend on which path computed it — and because parallel row chunks are
/// aligned to [`ROW_ALIGN`], tile boundaries (hence full-vs-rim
/// classification) are identical under every thread count.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn mm_rows_512(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    use core::arch::x86_64::*;
    const TM: usize = 8;
    const TN: usize = 32;
    let ifull = r0 + (r1 - r0) / TM * TM;
    let jfull = n / TN * TN;
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut j = 0;
    while j < jfull {
        let mut i = r0;
        while i < ifull {
            let mut acc = [[_mm512_setzero_ps(); 2]; TM];
            for p in 0..k {
                let bb = bp.add(p * n + j);
                let b0 = _mm512_loadu_ps(bb);
                let b1 = _mm512_loadu_ps(bb.add(16));
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*ap.add((i + r) * k + p));
                    accr[0] = _mm512_fmadd_ps(av, b0, accr[0]);
                    accr[1] = _mm512_fmadd_ps(av, b1, accr[1]);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let cp = c.as_mut_ptr().add((i - r0 + r) * n + j);
                _mm512_storeu_ps(cp, _mm512_add_ps(_mm512_loadu_ps(cp), accr[0]));
                let cp1 = cp.add(16);
                _mm512_storeu_ps(cp1, _mm512_add_ps(_mm512_loadu_ps(cp1), accr[1]));
            }
            i += TM;
        }
        j += TN;
    }
    if jfull < n {
        // right rim of the full-height rows
        mm_rows_impl::<true>(a, b, c, r0, ifull, k, n, jfull, n);
    }
    if ifull < r1 {
        // bottom rim, full width
        mm_rows_impl::<true>(a, b, &mut c[(ifull - r0) * n..], ifull, r1, k, n, 0, n);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn mm_rows_impl<const FMA: bool>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
    jlo: usize,
    jhi: usize,
) {
    // j outer / i inner: the k×NR column panel of B stays cache-resident
    // while every row block sweeps over it, instead of re-streaming all of
    // B once per row block. Per-element accumulation order (ascending p)
    // is identical either way.
    let mut j = jlo;
    while j < jhi {
        let nw = NR.min(jhi - j);
        let mut i = r0;
        while i < r1 {
            let mh = MR.min(r1 - i);
            let mut acc = [[0.0f32; NR]; MR];
            if mh == MR && nw == NR {
                // Hot path: fixed-size loops the compiler fully vectorizes.
                for p in 0..k {
                    let bv: &[f32; NR] = b[p * n + j..p * n + j + NR].try_into().unwrap();
                    for (r, accr) in acc.iter_mut().enumerate() {
                        let av = a[(i + r) * k + p];
                        for (x, &bb) in accr.iter_mut().zip(bv) {
                            *x = fmadd::<FMA>(av, bb, *x);
                        }
                    }
                }
            } else {
                // Edge tiles: same ascending-p order per element, partial bounds.
                for p in 0..k {
                    let bv = &b[p * n + j..p * n + j + nw];
                    for (r, accr) in acc.iter_mut().enumerate().take(mh) {
                        let av = a[(i + r) * k + p];
                        for (x, &bb) in accr[..nw].iter_mut().zip(bv) {
                            *x = fmadd::<FMA>(av, bb, *x);
                        }
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(mh) {
                let base = (i - r0 + r) * n + j;
                for (cv, &x) in c[base..base + nw].iter_mut().zip(&accr[..nw]) {
                    *cv += x;
                }
            }
            i += MR;
        }
        j += NR;
    }
}

const LANES: usize = 8;

/// Dot product with a fixed 8-lane accumulation structure.
///
/// The lane split and the final reduction tree are the same for every input
/// length, which makes [`mm_nt`] deterministic across thread counts and
/// vectorization-friendly (each lane maps onto a SIMD slot).
pub fn dot(x: &[f32], y: &[f32]) -> f32 {
    let mut out = 0.0f32;
    dot_into(x, y, &mut out);
    out
}

simd_dispatch!(dot_into, dot_impl, dot_256, dot_512, (x: &[f32], y: &[f32], out: &mut f32));

#[inline(always)]
fn dot_impl<const FMA: bool>(x: &[f32], y: &[f32], out: &mut f32) {
    debug_assert_eq!(x.len(), y.len());
    let mut lanes = [0.0f32; LANES];
    let blocks = x.len() / LANES;
    for c in 0..blocks {
        let xs: &[f32; LANES] = x[c * LANES..(c + 1) * LANES].try_into().unwrap();
        let ys: &[f32; LANES] = y[c * LANES..(c + 1) * LANES].try_into().unwrap();
        for l in 0..LANES {
            lanes[l] = fmadd::<FMA>(xs[l], ys[l], lanes[l]);
        }
    }
    let mut tail = 0.0f32;
    for i in blocks * LANES..x.len() {
        tail = fmadd::<FMA>(x[i], y[i], tail);
    }
    let even = (lanes[0] + lanes[4]) + (lanes[2] + lanes[6]);
    let odd = (lanes[1] + lanes[5]) + (lanes[3] + lanes[7]);
    *out = (even + odd) + tail;
}

/// `c[m,n] += a[m,k] · b[n,k]ᵀ` — both operands row-major, no transpose
/// copy. Each output element is one contiguous [`dot`].
pub fn mm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    super::stats::record_matmul(m, k, n);
    let threads = matmul_threads(2 * m * k * n);
    let out = SharedMut::new(c);
    super::with_threads(threads, || {
        parallel_for(m, row_grain(k, n), |r0, r1| {
            // SAFETY: row blocks are disjoint across chunks.
            let rows = unsafe { out.range(r0 * n, r1 * n) };
            nt_rows(a, b, rows, r0, r1, k, n);
        });
    });
}

/// Row-range worker for [`mm_nt`]; tier dispatch mirrors [`mm_rows`].
fn nt_rows(a: &[f32], b: &[f32], c: &mut [f32], r0: usize, r1: usize, k: usize, n: usize) {
    match tier() {
        // SAFETY: the tier is only reported when the CPU has the features
        // the wrapper enables.
        #[cfg(target_arch = "x86_64")]
        Tier::Fma512 => unsafe { nt_rows_512(a, b, c, r0, r1, k, n) },
        #[cfg(target_arch = "x86_64")]
        Tier::Fma256 => unsafe { nt_rows_256(a, b, c, r0, r1, k, n) },
        _ => nt_rows_impl::<false>(a, b, c, r0, r1, k, n, 0, n),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn nt_rows_256(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    nt_rows_impl::<true>(a, b, c, r0, r1, k, n, 0, n)
}

/// Hand-written AVX-512 microkernel for [`mm_nt`]: 4×4 output tiles, each
/// element accumulating 16-lane partial sums over the shared `k` axis (16
/// independent FMA chains), with a masked tail block so every element of a
/// tile sees the exact same chain structure regardless of `k`. The lane
/// partials collapse through `_mm512_reduce_add_ps`, whose reduction tree
/// is fixed at compile time — so, like everywhere else, bits depend only on
/// which path computed an element, never on the thread count. Rim elements
/// fall back to the [`dot`]-based generic body.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
unsafe fn nt_rows_512(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    use core::arch::x86_64::*;
    const TM: usize = 4;
    const TN: usize = 4;
    let ifull = r0 + (r1 - r0) / TM * TM;
    let jfull = n / TN * TN;
    let kblocks = k / 16;
    let krem = k % 16;
    let mask: __mmask16 = ((1u32 << krem) - 1) as __mmask16;
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut i = r0;
    while i < ifull {
        let mut j = 0;
        while j < jfull {
            let mut acc = [[_mm512_setzero_ps(); TN]; TM];
            for blk in 0..kblocks {
                let off = blk * 16;
                let mut bv = [_mm512_setzero_ps(); TN];
                for (cc, v) in bv.iter_mut().enumerate() {
                    *v = _mm512_loadu_ps(bp.add((j + cc) * k + off));
                }
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm512_loadu_ps(ap.add((i + r) * k + off));
                    for (x, &bb) in accr.iter_mut().zip(&bv) {
                        *x = _mm512_fmadd_ps(av, bb, *x);
                    }
                }
            }
            if krem > 0 {
                let off = kblocks * 16;
                let mut bv = [_mm512_setzero_ps(); TN];
                for (cc, v) in bv.iter_mut().enumerate() {
                    *v = _mm512_maskz_loadu_ps(mask, bp.add((j + cc) * k + off));
                }
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm512_maskz_loadu_ps(mask, ap.add((i + r) * k + off));
                    for (x, &bb) in accr.iter_mut().zip(&bv) {
                        *x = _mm512_fmadd_ps(av, bb, *x);
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let base = (i - r0 + r) * n + j;
                for (cc, &x) in accr.iter().enumerate() {
                    c[base + cc] += _mm512_reduce_add_ps(x);
                }
            }
            j += TN;
        }
        i += TM;
    }
    if jfull < n {
        // right rim of the full-height rows
        nt_rows_impl::<true>(a, b, c, r0, ifull, k, n, jfull, n);
    }
    if ifull < r1 {
        // bottom rim, full width
        nt_rows_impl::<true>(a, b, &mut c[(ifull - r0) * n..], ifull, r1, k, n, 0, n);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn nt_rows_impl<const FMA: bool>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
    jlo: usize,
    jhi: usize,
) {
    for i in r0..r1 {
        let ar = &a[i * k..(i + 1) * k];
        let crow = &mut c[(i - r0) * n + jlo..(i - r0) * n + jhi];
        for (j, cv) in (jlo..jhi).zip(crow.iter_mut()) {
            let mut d = 0.0f32;
            dot_impl::<FMA>(ar, &b[j * k..(j + 1) * k], &mut d);
            *cv += d;
        }
    }
}

/// `c[k,n] += a[m,k]ᵀ · b[m,n]` — reduction over rows of both operands
/// (ascending `i`), register-tiled like [`mm`], no transpose copy.
pub fn mm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), m * n);
    debug_assert_eq!(c.len(), k * n);
    super::stats::record_matmul(m, k, n);
    let threads = matmul_threads(2 * m * k * n);
    let out = SharedMut::new(c);
    super::with_threads(threads, || {
        parallel_for(k, row_grain(m, n), |p0, p1| {
            // SAFETY: output-row blocks are disjoint across chunks.
            let rows = unsafe { out.range(p0 * n, p1 * n) };
            tn_rows(a, b, rows, p0, p1, m, k, n);
        });
    });
}

/// Row-range worker for [`mm_tn`]; tier dispatch mirrors [`mm_rows`].
#[allow(clippy::too_many_arguments)]
fn tn_rows(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    match tier() {
        // SAFETY: the tier is only reported when the CPU has the features
        // the wrapper enables.
        #[cfg(target_arch = "x86_64")]
        Tier::Fma512 => unsafe { tn_rows_512(a, b, c, p0, p1, m, k, n) },
        #[cfg(target_arch = "x86_64")]
        Tier::Fma256 => unsafe { tn_rows_256(a, b, c, p0, p1, m, k, n) },
        _ => tn_rows_impl::<false>(a, b, c, p0, p1, m, k, n, 0, n),
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tn_rows_256(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    tn_rows_impl::<true>(a, b, c, p0, p1, m, k, n, 0, n)
}

/// Hand-written AVX-512 microkernel for [`mm_tn`]: same 8×32 tile as
/// [`mm_rows_512`], reducing over rows `i` of both operands (the `A`
/// broadcasts walk `a[i*k + p..p+8]` contiguously). Rim handling and the
/// bit-compatibility argument are identical to [`mm_rows_512`].
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512vl,fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn tn_rows_512(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
) {
    use core::arch::x86_64::*;
    const TM: usize = 8;
    const TN: usize = 32;
    let pfull = p0 + (p1 - p0) / TM * TM;
    let jfull = n / TN * TN;
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut j = 0;
    while j < jfull {
        let mut p = p0;
        while p < pfull {
            let mut acc = [[_mm512_setzero_ps(); 2]; TM];
            for i in 0..m {
                let bb = bp.add(i * n + j);
                let b0 = _mm512_loadu_ps(bb);
                let b1 = _mm512_loadu_ps(bb.add(16));
                let arow = ap.add(i * k + p);
                for (r, accr) in acc.iter_mut().enumerate() {
                    let av = _mm512_set1_ps(*arow.add(r));
                    accr[0] = _mm512_fmadd_ps(av, b0, accr[0]);
                    accr[1] = _mm512_fmadd_ps(av, b1, accr[1]);
                }
            }
            for (r, accr) in acc.iter().enumerate() {
                let cp = c.as_mut_ptr().add((p - p0 + r) * n + j);
                _mm512_storeu_ps(cp, _mm512_add_ps(_mm512_loadu_ps(cp), accr[0]));
                let cp1 = cp.add(16);
                _mm512_storeu_ps(cp1, _mm512_add_ps(_mm512_loadu_ps(cp1), accr[1]));
            }
            p += TM;
        }
        j += TN;
    }
    if jfull < n {
        // right rim of the full-height rows
        tn_rows_impl::<true>(a, b, c, p0, pfull, m, k, n, jfull, n);
    }
    if pfull < p1 {
        // bottom rim, full width
        tn_rows_impl::<true>(a, b, &mut c[(pfull - p0) * n..], pfull, p1, m, k, n, 0, n);
    }
}

#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn tn_rows_impl<const FMA: bool>(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    p0: usize,
    p1: usize,
    m: usize,
    k: usize,
    n: usize,
    jlo: usize,
    jhi: usize,
) {
    // j outer / p inner for the same panel-reuse reason as `mm_rows_impl`.
    let mut j = jlo;
    while j < jhi {
        let nw = NR.min(jhi - j);
        let mut p = p0;
        while p < p1 {
            let ph = MR.min(p1 - p);
            let mut acc = [[0.0f32; NR]; MR];
            if ph == MR && nw == NR {
                for i in 0..m {
                    let av: &[f32; MR] = a[i * k + p..i * k + p + MR].try_into().unwrap();
                    let bv: &[f32; NR] = b[i * n + j..i * n + j + NR].try_into().unwrap();
                    for (r, accr) in acc.iter_mut().enumerate() {
                        for (x, &bb) in accr.iter_mut().zip(bv) {
                            *x = fmadd::<FMA>(av[r], bb, *x);
                        }
                    }
                }
            } else {
                for i in 0..m {
                    let av = &a[i * k + p..i * k + p + ph];
                    let bv = &b[i * n + j..i * n + j + nw];
                    for (r, accr) in acc.iter_mut().enumerate().take(ph) {
                        for (x, &bb) in accr[..nw].iter_mut().zip(bv) {
                            *x = fmadd::<FMA>(av[r], bb, *x);
                        }
                    }
                }
            }
            for (r, accr) in acc.iter().enumerate().take(ph) {
                let base = (p - p0 + r) * n + j;
                for (cv, &x) in c[base..base + nw].iter_mut().zip(&accr[..nw]) {
                    *cv += x;
                }
            }
            p += MR;
        }
        j += NR;
    }
}

/// Naive single-thread reference for [`mm`]: the ikj loop with ascending-`p`
/// accumulation per element, plain multiply-then-add. On the scalar tier
/// [`mm`] matches this bitwise; FMA tiers agree to within fused-rounding
/// error (≈1 ulp per accumulation step).
pub fn mm_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// The seed kernel verbatim: [`mm_ref`] plus an `av == 0.0` skip branch.
/// Kept only so `benches/kernels.rs` can quantify what removing the branch
/// bought; nothing routes through it.
pub fn mm_ref_skip_zero(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Naive single-thread reference for [`mm_nt`] (plain sequential dots).
pub fn mm_nt_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for p in 0..k {
                s += a[i * k + p] * b[j * k + p];
            }
            c[i * n + j] += s;
        }
    }
}

/// Naive single-thread reference for [`mm_tn`] (ascending-`i` accumulation).
pub fn mm_tn_ref(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for p in 0..k {
        for j in 0..n {
            let mut s = 0.0f32;
            for i in 0..m {
                s += a[i * k + p] * b[i * n + j];
            }
            c[p * n + j] += s;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::with_threads;

    fn filled(len: usize, seed: u32) -> Vec<f32> {
        // cheap deterministic pseudo-values with varied magnitudes
        (0..len)
            .map(|i| (((i as u32).wrapping_mul(2654435761) ^ seed) % 1000) as f32 / 250.0 - 2.0)
            .collect()
    }

    fn close(x: f32, y: f32, red: usize) -> bool {
        // FMA tiers differ from the mul-then-add reference by at most one
        // rounding per accumulation step.
        (x - y).abs() <= 1e-6 * red as f32 * y.abs().max(1.0)
    }

    #[test]
    fn mm_matches_reference_on_edge_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 5, 7), (4, 16, 16), (5, 17, 33), (64, 64, 64)] {
            let a = filled(m * k, 1);
            let b = filled(k * n, 2);
            let mut c = vec![0.0; m * n];
            let mut r = vec![0.0; m * n];
            with_threads(4, || mm(&a, &b, &mut c, m, k, n));
            mm_ref(&a, &b, &mut r, m, k, n);
            assert!(
                c.iter().zip(&r).all(|(&x, &y)| close(x, y, k)),
                "mm mismatch at {m}x{k}x{n}"
            );
        }
    }

    #[test]
    fn mm_is_bitwise_stable_on_the_scalar_tier() {
        // The portable body (FMA off) reproduces the naive ikj reference
        // exactly — the blocked loop only reorders *independent* elements.
        let (m, k, n) = (13, 21, 19);
        let a = filled(m * k, 10);
        let b = filled(k * n, 11);
        let mut c = vec![0.0; m * n];
        let mut r = vec![0.0; m * n];
        mm_rows_impl::<false>(&a, &b, &mut c, 0, m, k, n, 0, n);
        mm_ref(&a, &b, &mut r, m, k, n);
        assert!(c.iter().zip(&r).all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn nt_and_tn_match_references() {
        let (m, k, n) = (13, 21, 19);
        let a = filled(m * k, 3);
        let bt = filled(n * k, 4);
        let b = filled(m * n, 5);
        let (mut c1, mut r1) = (vec![0.0; m * n], vec![0.0; m * n]);
        with_threads(4, || mm_nt(&a, &bt, &mut c1, m, k, n));
        mm_nt_ref(&a, &bt, &mut r1, m, k, n);
        for (x, y) in c1.iter().zip(&r1) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        let (mut c2, mut r2) = (vec![0.0; k * n], vec![0.0; k * n]);
        with_threads(4, || mm_tn(&a, &b, &mut c2, m, k, n));
        mm_tn_ref(&a, &b, &mut r2, m, k, n);
        for (x, y) in c2.iter().zip(&r2) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let (m, k, n) = (37, 29, 41);
        let a = filled(m * k, 6);
        let b = filled(k * n, 7);
        let bt = filled(n * k, 8);
        let bm = filled(m * n, 9); // [m,n] right operand for mm_tn
        let run = |threads: usize| {
            let mut c = vec![0.0; m * n];
            let mut cnt = vec![0.0; m * n];
            let mut ctn = vec![0.0; k * n];
            with_threads(threads, || {
                mm(&a, &b, &mut c, m, k, n);
                mm_nt(&a, &bt, &mut cnt, m, k, n);
                mm_tn(&a, &bm, &mut ctn, m, k, n);
            });
            [c, cnt, ctn]
        };
        for (one, four) in run(1).iter().zip(&run(4)) {
            assert!(one
                .iter()
                .zip(four)
                .all(|(x, y)| x.to_bits() == y.to_bits()));
        }
    }
}
