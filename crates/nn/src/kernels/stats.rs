//! Kernel-level telemetry: matmul FLOP accounting and worker-pool
//! utilization, recorded into the global `logsynergy-telemetry` registry.
//!
//! Handles are resolved once through a `OnceLock` so the per-call cost is
//! a couple of relaxed atomic adds — negligible next to even the smallest
//! blocked matmul. The SIMD tier the dispatcher selected is published as
//! the `nn.simd_tier` tag the first time any instrumented kernel runs.
//!
//! Metric catalog (see `docs/telemetry.md`):
//!
//! - `nn.matmul.calls` / `nn.matmul.flops` — counters; one call is
//!   `2·m·k·n` FLOPs (multiply + add per inner-product step).
//! - `nn.pool.jobs` — `parallel_for` dispatches that actually enlisted
//!   pool workers (serial-path calls are not jobs).
//! - `nn.pool.chunks.worker` / `nn.pool.chunks.caller` — chunks claimed by
//!   pool workers vs. the dispatching thread; their ratio is the pool's
//!   effective utilization.
//! - `nn.pool.workers` — gauge, pool size (set once at pool spawn).
//! - `nn.fused.attention` / `nn.fused.mlp` — counters; fused inference
//!   sweeps (one per attention block / MLP block per micro-batch).
//! - `nn.qgemm.calls` / `nn.qgemm.ops` — counters (`quant` feature only);
//!   one call is `2·m·k·n` int ops. The int8 kernel tier is published as
//!   the `nn.qgemm_tier` tag on first use.

use std::sync::{Arc, OnceLock};

use logsynergy_telemetry::{global, Counter, Gauge};

struct Handles {
    matmul_calls: Arc<Counter>,
    matmul_flops: Arc<Counter>,
    pool_jobs: Arc<Counter>,
    chunks_worker: Arc<Counter>,
    chunks_caller: Arc<Counter>,
    pool_workers: Arc<Gauge>,
    fused_attention: Arc<Counter>,
    fused_mlp: Arc<Counter>,
    #[cfg(feature = "quant")]
    qgemm_calls: Arc<Counter>,
    #[cfg(feature = "quant")]
    qgemm_ops: Arc<Counter>,
}

fn handles() -> &'static Handles {
    static HANDLES: OnceLock<Handles> = OnceLock::new();
    HANDLES.get_or_init(|| {
        let nn = global().scoped("nn");
        nn.set_tag("simd_tier", super::matmul::simd_tier_name());
        Handles {
            matmul_calls: nn.counter("matmul.calls"),
            matmul_flops: nn.counter("matmul.flops"),
            pool_jobs: nn.counter("pool.jobs"),
            chunks_worker: nn.counter("pool.chunks.worker"),
            chunks_caller: nn.counter("pool.chunks.caller"),
            pool_workers: nn.gauge("pool.workers"),
            fused_attention: nn.counter("fused.attention"),
            fused_mlp: nn.counter("fused.mlp"),
            #[cfg(feature = "quant")]
            qgemm_calls: nn.counter("qgemm.calls"),
            #[cfg(feature = "quant")]
            qgemm_ops: nn.counter("qgemm.ops"),
        }
    })
}

/// Accounts one blocked-matmul entry (`mm`, `mm_nt`, or `mm_tn`) of shape
/// `m×k · k×n`.
#[inline]
pub(crate) fn record_matmul(m: usize, k: usize, n: usize) {
    if !logsynergy_telemetry::enabled() {
        return;
    }
    let h = handles();
    h.matmul_calls.inc();
    h.matmul_flops.add(2 * (m as u64) * (k as u64) * (n as u64));
}

/// Accounts one fused attention sweep (one attention block over one
/// micro-batch in the graph-free inference engine).
#[inline]
pub(crate) fn record_fused_attention() {
    if !logsynergy_telemetry::enabled() {
        return;
    }
    handles().fused_attention.inc();
}

/// Accounts one fused MLP sweep (feed-forward block with the GELU fast
/// path applied in place, no intermediate tape nodes).
#[inline]
pub(crate) fn record_fused_mlp() {
    if !logsynergy_telemetry::enabled() {
        return;
    }
    handles().fused_mlp.inc();
}

/// Accounts one int8 GEMM of shape `m×k · k×n` and publishes the int8
/// kernel tier tag on first use.
#[cfg(feature = "quant")]
#[inline]
pub(crate) fn record_qgemm(m: usize, k: usize, n: usize) {
    if !logsynergy_telemetry::enabled() {
        return;
    }
    static TAG: OnceLock<()> = OnceLock::new();
    TAG.get_or_init(|| {
        global()
            .scoped("nn")
            .set_tag("qgemm_tier", super::qgemm::qgemm_tier_name());
    });
    let h = handles();
    h.qgemm_calls.inc();
    h.qgemm_ops.add(2 * (m as u64) * (k as u64) * (n as u64));
}

/// Accounts one pooled `parallel_for` dispatch.
#[inline]
pub(crate) fn record_pool_job() {
    if !logsynergy_telemetry::enabled() {
        return;
    }
    handles().pool_jobs.inc();
}

/// Accounts chunks claimed during one job, split by who claimed them.
#[inline]
pub(crate) fn record_pool_chunks(claimed: u64, by_worker: bool) {
    if claimed == 0 || !logsynergy_telemetry::enabled() {
        return;
    }
    let h = handles();
    if by_worker {
        h.chunks_worker.add(claimed);
    } else {
        h.chunks_caller.add(claimed);
    }
}

/// Publishes the pool size (called once when the pool spawns).
pub(crate) fn record_pool_size(workers: usize) {
    if !logsynergy_telemetry::enabled() {
        return;
    }
    handles().pool_workers.set(workers as i64);
}
