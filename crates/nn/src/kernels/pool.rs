//! Persistent worker pool behind [`super::parallel_for`].
//!
//! A fixed set of workers (hardware parallelism minus the caller's thread)
//! is spawned on first use and lives for the process. Jobs are dispatched
//! over a crossbeam MPMC channel; workers and the dispatching thread claim
//! chunk indices from a shared atomic counter, so load-balancing is dynamic
//! while the chunk *boundaries* stay fixed (see the determinism contract on
//! `parallel_for`). The dispatcher blocks until every enlisted worker has
//! acknowledged the job, which is what makes the borrowed body sound.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use crossbeam::channel::{self, Sender};

type Body = dyn Fn(usize) + Sync + 'static;

/// One dispatched `parallel_for` call: a chunk counter plus the body.
struct Job {
    next: AtomicUsize,
    chunks: usize,
    /// Borrowed from the dispatching stack frame; valid until every
    /// participant acknowledges completion (enforced in [`run`]).
    body: *const Body,
}

// SAFETY: the raw body pointer is only dereferenced between dispatch and
// acknowledgement, while the dispatcher keeps the referent alive.
unsafe impl Send for Job {}
unsafe impl Sync for Job {}

impl Job {
    /// Claims and runs chunks until the counter is exhausted; catches
    /// panics so a crashing body cannot kill a pool worker.
    fn work(&self) -> std::thread::Result<()> {
        let mut claimed = 0u64;
        let result = catch_unwind(AssertUnwindSafe(|| loop {
            let c = self.next.fetch_add(1, Ordering::Relaxed);
            if c >= self.chunks {
                break;
            }
            claimed += 1;
            // SAFETY: see the `Send`/`Sync` justification above.
            unsafe { (*self.body)(c) };
        }));
        super::stats::record_pool_chunks(claimed, IN_WORKER.with(|w| w.get()));
        result
    }
}

struct Pool {
    inject: Sender<(Arc<Job>, Sender<bool>)>,
    workers: usize,
}

thread_local! {
    /// Set inside pool workers so nested `parallel_for` calls degrade to
    /// the serial path instead of deadlocking the pool on itself.
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| {
        // Hardware parallelism minus the caller's thread, but always at
        // least 3 workers: on single-core machines an empty pool would make
        // every `with_threads(n > 1)` call silently serial, so thread-count
        // determinism tests would never exercise real cross-thread
        // execution. Idle workers block on `recv()` and cost nothing.
        let workers = super::max_threads().saturating_sub(1).max(3);
        let (inject, rx) = channel::unbounded::<(Arc<Job>, Sender<bool>)>();
        for i in 0..workers {
            let rx = rx.clone();
            std::thread::Builder::new()
                .name(format!("logsynergy-nn-worker-{i}"))
                .spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    while let Ok((job, ack)) = rx.recv() {
                        let ok = job.work().is_ok();
                        drop(job);
                        let _ = ack.send(ok);
                    }
                })
                .expect("failed to spawn logsynergy-nn worker");
        }
        super::stats::record_pool_size(workers);
        Pool { inject, workers }
    })
}

/// Runs `body(0..chunks)` using at most `threads` threads (including the
/// caller, which always participates). Blocks until every chunk is done.
pub(super) fn run(chunks: usize, threads: usize, body: &(dyn Fn(usize) + Sync)) {
    let serial = || {
        for c in 0..chunks {
            body(c);
        }
    };
    if IN_WORKER.with(|w| w.get()) {
        // Already on a pool worker: run inline rather than feeding the pool
        // a job its busy workers would have to finish first.
        return serial();
    }
    let p = pool();
    let helpers = threads
        .saturating_sub(1)
        .min(p.workers)
        .min(chunks.saturating_sub(1));
    if helpers == 0 {
        return serial();
    }
    // SAFETY: erases the borrow's lifetime from the fat pointer. `run` does
    // not return (or unwind past the acks) until every enlisted worker has
    // acknowledged, so the referent strictly outlives every dereference.
    let body: *const Body = unsafe { std::mem::transmute(body as *const (dyn Fn(usize) + Sync)) };
    let job = Arc::new(Job {
        next: AtomicUsize::new(0),
        chunks,
        body,
    });
    super::stats::record_pool_job();
    let (ack_tx, ack_rx) = channel::unbounded();
    for _ in 0..helpers {
        if p.inject.send((job.clone(), ack_tx.clone())).is_err() {
            panic!("worker pool channel closed");
        }
    }
    drop(ack_tx);
    let own = job.work();
    // The body borrow stays alive until every enlisted worker is done with
    // it — only then may this frame return (or unwind).
    let mut workers_ok = true;
    for _ in 0..helpers {
        workers_ok &= ack_rx.recv().expect("worker pool died mid-job");
    }
    if let Err(payload) = own {
        resume_unwind(payload);
    }
    assert!(workers_ok, "panic in parallel_for body on a worker thread");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_chunks_run_exactly_once() {
        let n = 64;
        let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        run(n, 4, &|c| {
            counts[c].fetch_add(1, Ordering::Relaxed);
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn worker_panic_is_reported_not_swallowed() {
        let res = std::panic::catch_unwind(|| {
            run(16, 4, &|c| {
                if c == 7 {
                    panic!("boom");
                }
            });
        });
        assert!(res.is_err());
    }

    #[test]
    fn nested_run_degrades_serially() {
        let total = AtomicUsize::new(0);
        run(4, 4, &|_| {
            run(4, 4, &|_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }
}
