//! Thread-local scratch-buffer arena for tape allocations.
//!
//! Every op on a [`crate::graph::Graph`] tape allocates an output buffer,
//! and training builds one tape per minibatch — the same buffer sizes over
//! and over. Dropping a graph recycles the buffers it uniquely owns back
//! into this arena (see `Graph`'s `Drop`), so steady-state training reuses
//! allocations instead of round-tripping the system allocator per node.
//!
//! Buffers are bucketed by power-of-two capacity class. [`take_zeroed`]
//! zero-fills what it hands out, so a recycled buffer is indistinguishable
//! from a fresh `vec![0.0; n]` — reuse cannot change results. The arena is
//! thread-local: graphs are single-threaded objects, and kernel worker
//! threads never allocate.

use std::cell::RefCell;

/// Buckets cover capacities up to `2^MAX_CLASS` elements (1 GiB of `f32`).
const MAX_CLASS: usize = 28;
/// Retained buffers per capacity class; excess is returned to the allocator.
const MAX_PER_CLASS: usize = 64;

#[derive(Default)]
struct Arena {
    /// `classes[c]` holds buffers with `2^c <= capacity < 2^(c+1)`.
    classes: Vec<Vec<Vec<f32>>>,
    fresh: usize,
    reused: usize,
}

thread_local! {
    static ARENA: RefCell<Arena> = RefCell::new(Arena::default());
}

fn class_of(capacity: usize) -> usize {
    (usize::BITS - 1 - capacity.leading_zeros()) as usize
}

/// A buffer of length `n`, all zeros, recycled from the arena when possible.
pub fn take_zeroed(n: usize) -> Vec<f32> {
    let mut v = take_cleared(n);
    v.resize(n, 0.0);
    v
}

/// An empty buffer with capacity ≥ `n`, recycled from the arena when
/// possible. Capacities are rounded up to a power of two so buffers keep
/// matching their bucket when they come back.
pub fn take_cleared(n: usize) -> Vec<f32> {
    if n == 0 {
        return Vec::new();
    }
    let want = n.next_power_of_two();
    ARENA.with(|a| {
        let a = &mut *a.borrow_mut();
        let c = class_of(want);
        if let Some(buf) = a.classes.get_mut(c).and_then(Vec::pop) {
            a.reused += 1;
            return buf;
        }
        a.fresh += 1;
        Vec::with_capacity(want)
    })
}

/// Returns a buffer to the arena for later reuse.
pub fn give(mut v: Vec<f32>) {
    if v.capacity() == 0 {
        return;
    }
    v.clear();
    let c = class_of(v.capacity());
    if c > MAX_CLASS {
        return;
    }
    ARENA.with(|a| {
        let a = &mut *a.borrow_mut();
        if a.classes.len() <= c {
            a.classes.resize_with(c + 1, Vec::new);
        }
        if a.classes[c].len() < MAX_PER_CLASS {
            a.classes[c].push(v);
        }
    });
}

/// `(fresh, reused)` allocation counters for this thread's arena.
pub fn stats() -> (usize, usize) {
    ARENA.with(|a| {
        let a = a.borrow();
        (a.fresh, a.reused)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_round_trip_through_the_arena() {
        let (fresh0, reused0) = stats();
        let v = take_zeroed(1000);
        assert_eq!(v.len(), 1000);
        assert!(v.capacity() >= 1024);
        assert!(v.iter().all(|&x| x == 0.0));
        give(v);
        let w = take_zeroed(800); // same power-of-two class as 1000
        let (fresh1, reused1) = stats();
        assert_eq!(fresh1, fresh0 + 1, "second take should reuse, not allocate");
        assert_eq!(reused1, reused0 + 1);
        assert!(
            w.iter().all(|&x| x == 0.0),
            "recycled buffers come back zeroed"
        );
    }

    #[test]
    fn zero_length_takes_are_free() {
        let (fresh0, _) = stats();
        let v = take_zeroed(0);
        assert!(v.is_empty());
        give(v);
        assert_eq!(stats().0, fresh0);
    }
}
