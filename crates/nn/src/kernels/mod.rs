//! Parallel, cache-blocked compute kernels.
//!
//! Every hot loop in the crate — matmul (plus its transposed-operand
//! variants), elementwise binops, reductions, softmax, layer norm, and the
//! per-timestep RNN gate math — bottoms out here. The module provides three
//! things:
//!
//! 1. **Blocked matmul micro-kernels** ([`mm`], [`mm_nt`], [`mm_tn`]):
//!    register-tiled 2-D kernels with dedicated `A·B`, `A·Bᵀ`, and `Aᵀ·B`
//!    entry points so matmul backward passes never materialize transposed
//!    copies of their operands.
//! 2. **A persistent worker pool** (see [`parallel_for`]): work is split
//!    into chunks whose boundaries depend only on the problem size and the
//!    grain — never on the thread count — and each output element is
//!    produced by exactly one chunk with a fixed accumulation order, so
//!    results are bitwise identical no matter how many threads run.
//! 3. **A scratch-buffer arena** ([`arena`]): freed tape buffers are
//!    recycled into subsequent forward/backward allocations instead of
//!    hitting the system allocator once per node.
//!
//! Threading is controlled by the `LOGSYNERGY_NN_THREADS` environment
//! variable (read once per process; default = available parallelism,
//! `1` = exact serial path) and can be overridden per-thread in-process
//! with [`with_threads`]. See `docs/kernels.md` for the full contract.

pub mod arena;
pub mod matmul;
mod pool;
#[cfg(feature = "quant")]
pub mod qgemm;
pub(crate) mod stats;

pub use matmul::{
    mm, mm_nt, mm_nt_ref, mm_ref, mm_ref_skip_zero, mm_tn, mm_tn_ref, simd_tier_name,
};

use std::cell::Cell;
use std::sync::OnceLock;

/// Elements per chunk for flat elementwise loops: large enough that chunk
/// dispatch never dominates, small enough to spread across the pool.
pub(crate) const ELEM_GRAIN: usize = 1 << 14;

/// Hardware thread budget: the upper bound on pool size, independent of
/// `LOGSYNERGY_NN_THREADS` (so an in-process [`with_threads`] override can
/// exceed a low env-var default).
pub(crate) fn max_threads() -> usize {
    static MAX: OnceLock<usize> = OnceLock::new();
    *MAX.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// The machine's real parallelism (`std::thread::available_parallelism`),
/// as the kernels see it. Serving layers use this to split a shared core
/// budget between partition workers and per-worker kernel threads.
pub fn hardware_threads() -> usize {
    max_threads()
}

/// Process-wide default thread count: `LOGSYNERGY_NN_THREADS` if set to a
/// positive integer, otherwise the available parallelism.
fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        std::env::var("LOGSYNERGY_NN_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(max_threads)
    })
}

thread_local! {
    static THREAD_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The thread count kernels on this thread will use: the innermost active
/// [`with_threads`] override, else the process default.
pub fn current_threads() -> usize {
    THREAD_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(default_threads)
}

/// Runs `f` with kernels on this thread capped at `n` threads (minimum 1).
///
/// Intended for tests and benchmarks that compare thread counts in-process;
/// production code should rely on `LOGSYNERGY_NN_THREADS`. The override
/// nests and is restored even if `f` panics.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(Some(n.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Splits `0..items` into fixed chunks of `grain` and runs `body(start, end)`
/// on each, spreading chunks across the worker pool.
///
/// Determinism contract: chunk boundaries are a pure function of `items` and
/// `grain`. The thread count only decides how many workers *claim* chunks,
/// never how the work is split, so any body that writes disjoint outputs per
/// chunk with a fixed per-element order produces bitwise-identical results
/// at every thread count (including the serial path).
pub fn parallel_for(items: usize, grain: usize, body: impl Fn(usize, usize) + Sync) {
    if items == 0 {
        return;
    }
    let grain = grain.max(1);
    let chunks = items.div_ceil(grain);
    let threads = current_threads();
    if chunks <= 1 || threads <= 1 {
        body(0, items);
        return;
    }
    pool::run(chunks, threads, &|c| {
        let start = c * grain;
        body(start, (start + grain).min(items));
    });
}

/// A `&mut [f32]` smuggled across the [`parallel_for`] closure boundary.
///
/// `parallel_for` bodies are `Fn` shared by every worker, so they cannot
/// capture a mutable slice directly; this wrapper carries the raw pointer
/// and hands back disjoint sub-slices.
pub struct SharedMut<'a> {
    ptr: *mut f32,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [f32]>,
}

// SAFETY: access is only through `range`, whose caller guarantees that
// concurrently handed-out ranges are disjoint.
unsafe impl Send for SharedMut<'_> {}
unsafe impl Sync for SharedMut<'_> {}

impl<'a> SharedMut<'a> {
    /// Wraps a mutable slice for disjoint parallel writes.
    pub fn new(slice: &'a mut [f32]) -> Self {
        SharedMut {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// Re-borrows `start..end` of the wrapped slice.
    ///
    /// # Safety
    /// Ranges handed out to concurrently running chunks must not overlap.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn range(&self, start: usize, end: usize) -> &'a mut [f32] {
        debug_assert!(start <= end && end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

/// `dst[i] = f(src[i])`, chunk-parallel.
pub(crate) fn fill_map(src: &[f32], dst: &mut [f32], f: impl Fn(f32) -> f32 + Sync) {
    assert_eq!(src.len(), dst.len());
    let out = SharedMut::new(dst);
    parallel_for(src.len(), ELEM_GRAIN, |lo, hi| {
        // SAFETY: chunks hand out disjoint ranges.
        let d = unsafe { out.range(lo, hi) };
        for (o, &x) in d.iter_mut().zip(&src[lo..hi]) {
            *o = f(x);
        }
    });
}

/// `dst[i] = f(a[i], b[i])`, chunk-parallel.
pub(crate) fn fill_zip(a: &[f32], b: &[f32], dst: &mut [f32], f: impl Fn(f32, f32) -> f32 + Sync) {
    assert_eq!(a.len(), b.len());
    assert_eq!(a.len(), dst.len());
    let out = SharedMut::new(dst);
    parallel_for(a.len(), ELEM_GRAIN, |lo, hi| {
        // SAFETY: chunks hand out disjoint ranges.
        let d = unsafe { out.range(lo, hi) };
        for ((o, &x), &y) in d.iter_mut().zip(&a[lo..hi]).zip(&b[lo..hi]) {
            *o = f(x, y);
        }
    });
}

/// Deterministic chunked sum: per-chunk partials (boundaries fixed by
/// [`ELEM_GRAIN`]) combined in chunk order. For fewer than `ELEM_GRAIN`
/// elements this degenerates to the plain sequential sum.
pub(crate) fn sum(src: &[f32]) -> f32 {
    let chunks = src.len().div_ceil(ELEM_GRAIN).max(1);
    if chunks == 1 {
        return src.iter().sum();
    }
    let mut partials = vec![0.0f32; chunks];
    let out = SharedMut::new(&mut partials);
    parallel_for(src.len(), ELEM_GRAIN, |lo, hi| {
        // The serial path hands the body one big range; split it at the same
        // ELEM_GRAIN boundaries the parallel path uses so the partial sums —
        // and therefore the final association order — never change.
        let mut start = lo;
        while start < hi {
            let end = (start + ELEM_GRAIN).min(hi);
            let c = start / ELEM_GRAIN;
            // SAFETY: one partial slot per chunk.
            let slot = unsafe { out.range(c, c + 1) };
            slot[0] = src[start..end].iter().sum();
            start = end;
        }
    });
    partials.iter().sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn parallel_for_covers_all_items_once() {
        let n = 100_000;
        let mut hits = vec![0.0f32; n];
        let out = SharedMut::new(&mut hits);
        parallel_for(n, 1024, |lo, hi| {
            let d = unsafe { out.range(lo, hi) };
            for x in d.iter_mut() {
                *x += 1.0;
            }
        });
        assert!(hits.iter().all(|&h| h == 1.0));
    }

    #[test]
    fn with_threads_nests_and_restores() {
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
    }

    #[test]
    fn serial_override_runs_on_caller_thread() {
        let calls = AtomicUsize::new(0);
        with_threads(1, || {
            parallel_for(10_000, 8, |_, _| {
                calls.fetch_add(1, Ordering::Relaxed);
            });
        });
        // threads = 1 takes the single-call serial path regardless of grain
        assert_eq!(calls.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn chunked_sum_matches_sequential_within_tolerance() {
        let data: Vec<f32> = (0..100_000)
            .map(|i| ((i % 97) as f32 - 48.0) * 0.125)
            .collect();
        let seq: f32 = data.iter().sum();
        let par = with_threads(4, || sum(&data));
        assert!((seq - par).abs() < 1e-2, "{seq} vs {par}");
        // chunk boundaries don't depend on thread count → bitwise equal
        assert_eq!(with_threads(1, || sum(&data)).to_bits(), par.to_bits());
    }
}
