//! Symmetric int8 quantization and the `i8×i8 → i32` GEMM behind the
//! `quant` feature — the kernel tier of the quantized scoring path.
//!
//! Quantization is symmetric (no zero point): `q = round(x / scale)`
//! clamped to `[-127, 127]`, with `scale = absmax / 127` chosen per weight
//! output channel at plan build and per activation tensor by calibration.
//! The GEMM accumulates exactly in `i32` (every product is ≤ 127², and
//! `k ≤ 65536` keeps even the paired `madd` terms far from overflow), so —
//! unlike the f32 kernels — results are *exact*: the scalar tier, the SIMD
//! tiers, and every thread count produce identical integers by arithmetic,
//! not by chunk-order discipline.
//!
//! `B` is stored `[n, k]` row-major (each output channel's weights
//! contiguous), so one output element is one contiguous dot product — the
//! natural layout for per-output-channel scales and for the widening
//! `madd` SIMD kernels. Tier selection follows the f32 dispatcher
//! ([`super::matmul::simd_tier_name`], `LOGSYNERGY_NN_SIMD` override),
//! with the AVX-512 kernel additionally requiring `avx512bw` for the
//! byte-widening converts.

use super::matmul::{matmul_threads, tier, Tier};
use super::parallel_for;

/// `SharedMut` for `i32` output rows: a `&mut [i32]` smuggled across the
/// `parallel_for` closure boundary, handed back as disjoint sub-slices.
struct SharedI32<'a> {
    ptr: *mut i32,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [i32]>,
}

// SAFETY: access is only through `range`, whose caller guarantees that
// concurrently handed-out ranges are disjoint.
unsafe impl Send for SharedI32<'_> {}
unsafe impl Sync for SharedI32<'_> {}

impl<'a> SharedI32<'a> {
    fn new(slice: &'a mut [i32]) -> Self {
        SharedI32 {
            ptr: slice.as_mut_ptr(),
            len: slice.len(),
            _marker: std::marker::PhantomData,
        }
    }

    /// # Safety
    /// Ranges handed out to concurrently running chunks must not overlap.
    #[allow(clippy::mut_from_ref)]
    unsafe fn range(&self, start: usize, end: usize) -> &'a mut [i32] {
        debug_assert!(start <= end && end <= self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

/// Marker string embedded in any binary that links the int8 kernels.
/// `scripts/ci.sh` greps the default release CLI for its *absence* to
/// prove the `quant` feature compiles out completely (and a feature-on
/// build for its presence, proving the gate can fail).
pub const QGEMM_MARKER: &str = "logsynergy-int8-qgemm";

/// Largest magnitude in `xs` (0.0 for an empty or all-zero slice).
pub fn absmax(xs: &[f32]) -> f32 {
    xs.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
}

/// Symmetric quantization scale for a tensor with the given `absmax`:
/// `absmax / 127`, or 0.0 when the tensor is all zeros (then every
/// quantized value is 0 and dequantization is exact).
pub fn scale_for(absmax: f32) -> f32 {
    if absmax > 0.0 {
        absmax / 127.0
    } else {
        0.0
    }
}

/// Rounds a clamped `x / scale` to the nearest integer (ties to even) via
/// the float magic-number trick: adding and subtracting `1.5·2²³` forces
/// the mantissa to drop every fractional bit under the current
/// round-to-nearest mode. Branch-free and autovectorizable — `f32::round`
/// (ties away from zero) has no x86 instruction and compiles to a libm
/// call, which at ~7k quantized elements per scored window dominated the
/// entire int8 path before this.
///
/// The rounding is fused with the int extraction: after adding the
/// magic constant the rounded integer sits in the low mantissa bits, so
/// `to_bits() - to_bits(MAGIC)` *is* the two's-complement result — no
/// float→int conversion instruction at all. The saturating `as i16` cast
/// in the plain path compiles to a compare/blend chain that blocks
/// vectorization; this is pure int subtract. (A NaN input yields an
/// unspecified in-range value rather than 0 — quantizing NaN activations
/// is meaningless either way, and this stays safe code.)
#[inline(always)]
pub(crate) fn round_clamped_i32(x: f32, inv: f32) -> i32 {
    const MAGIC: f32 = 12_582_912.0; // 1.5 × 2²³
    let v = (x * inv).clamp(-127.0, 127.0);
    (v + MAGIC).to_bits().wrapping_sub(MAGIC.to_bits()) as i32
}

/// Quantizes `src` into `dst` with `q = clamp(round(x / scale), ±127)`
/// (ties to even). A zero `scale` maps everything to 0.
pub fn quantize(src: &[f32], scale: f32, dst: &mut [i8]) {
    assert_eq!(src.len(), dst.len(), "quantize length mismatch");
    let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = round_clamped_i32(x, inv) as i8;
    }
}

/// Quantizes `[m, k]` f32 rows into `[m, kp]` i16 rows (`kp ≥ k`, the
/// extra tail zeroed) — the activation-side layout of
/// [`qgemm_nt_packed`]. Values are the same `±127` integers `quantize`
/// produces, pre-widened so the `madd` kernels skip the byte-widening
/// converts on the hot path.
pub fn quantize_rows_i16(src: &[f32], scale: f32, dst: &mut [i16], k: usize, kp: usize) {
    assert!(kp >= k && k > 0, "quantize_rows_i16 padding");
    assert_eq!(src.len() % k, 0, "quantize_rows_i16 source shape");
    let m = src.len() / k;
    assert_eq!(dst.len(), m * kp, "quantize_rows_i16 destination shape");
    let inv = if scale > 0.0 { 1.0 / scale } else { 0.0 };
    match tier() {
        // SAFETY: the tier is only reported when the CPU has the features.
        #[cfg(target_arch = "x86_64")]
        Tier::Fma512 => unsafe { quantize_rows_512(src, inv, dst, k, kp) },
        #[cfg(target_arch = "x86_64")]
        Tier::Fma256 => unsafe { quantize_rows_256(src, inv, dst, k, kp) },
        _ => quantize_rows_body(src, inv, dst, k, kp),
    }
}

/// Generic body for [`quantize_rows_i16`]; re-monomorphized inside the
/// `#[target_feature]` wrappers so the mul/clamp/magic-add/convert chain
/// vectorizes at full register width (this runs once per GEMM input —
/// ~7k elements per scored window — and was a top-three cost of the int8
/// path at baseline vector width).
#[inline(always)]
fn quantize_rows_body(src: &[f32], inv: f32, dst: &mut [i16], k: usize, kp: usize) {
    for (drow, srow) in dst.chunks_exact_mut(kp).zip(src.chunks_exact(k)) {
        for (d, &x) in drow[..k].iter_mut().zip(srow) {
            *d = round_clamped_i32(x, inv) as i16;
        }
        drow[k..].fill(0);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn quantize_rows_256(src: &[f32], inv: f32, dst: &mut [i16], k: usize, kp: usize) {
    quantize_rows_body(src, inv, dst, k, kp)
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn quantize_rows_512(src: &[f32], inv: f32, dst: &mut [i16], k: usize, kp: usize) {
    quantize_rows_body(src, inv, dst, k, kp)
}

/// Dequantize-and-bias pass: `out[i, j] = acc[i, j] · deq[j] (+ bias[j])`
/// over `[m, n]` rows — the f32 epilogue of every quantized GEMM,
/// tier-dispatched for the same reason as [`quantize_rows_i16`].
pub fn dequant_bias_rows(acc: &[i32], deq: &[f32], bias: Option<&[f32]>, out: &mut [f32]) {
    let n = deq.len();
    assert_eq!(acc.len(), out.len(), "dequant_bias_rows shape");
    assert_eq!(acc.len() % n.max(1), 0, "dequant_bias_rows row width");
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "dequant_bias_rows bias width");
    }
    match tier() {
        // SAFETY: the tier is only reported when the CPU has the features.
        #[cfg(target_arch = "x86_64")]
        Tier::Fma512 => unsafe { dequant_rows_512(acc, deq, bias, out, n) },
        #[cfg(target_arch = "x86_64")]
        Tier::Fma256 => unsafe { dequant_rows_256(acc, deq, bias, out, n) },
        _ => dequant_rows_body(acc, deq, bias, out, n),
    }
}

#[inline(always)]
fn dequant_rows_body(acc: &[i32], deq: &[f32], bias: Option<&[f32]>, out: &mut [f32], n: usize) {
    match bias {
        Some(b) => {
            for (orow, arow) in out.chunks_exact_mut(n).zip(acc.chunks_exact(n)) {
                for j in 0..n {
                    orow[j] = arow[j] as f32 * deq[j] + b[j];
                }
            }
        }
        None => {
            for (orow, arow) in out.chunks_exact_mut(n).zip(acc.chunks_exact(n)) {
                for j in 0..n {
                    orow[j] = arow[j] as f32 * deq[j];
                }
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn dequant_rows_256(
    acc: &[i32],
    deq: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    n: usize,
) {
    dequant_rows_body(acc, deq, bias, out, n)
}

/// [`dequant_bias_rows`] fused with a residual add:
/// `out[i, j] += acc[i, j] · deq[j] (+ bias[j])`. The transformer's
/// attention-output and FFN-output GEMMs both feed residual additions —
/// fusing the add saves a full read-modify-write pass over the block.
pub fn dequant_bias_add_rows(acc: &[i32], deq: &[f32], bias: Option<&[f32]>, out: &mut [f32]) {
    let n = deq.len();
    assert_eq!(acc.len(), out.len(), "dequant_bias_add_rows shape");
    assert_eq!(acc.len() % n.max(1), 0, "dequant_bias_add_rows row width");
    if let Some(b) = bias {
        assert_eq!(b.len(), n, "dequant_bias_add_rows bias width");
    }
    match tier() {
        // SAFETY: the tier is only reported when the CPU has the features.
        #[cfg(target_arch = "x86_64")]
        Tier::Fma512 => unsafe { dequant_add_rows_512(acc, deq, bias, out, n) },
        _ => dequant_add_rows_body(acc, deq, bias, out, n),
    }
}

#[inline(always)]
fn dequant_add_rows_body(
    acc: &[i32],
    deq: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    n: usize,
) {
    for (orow, arow) in out.chunks_exact_mut(n).zip(acc.chunks_exact(n)) {
        for j in 0..n {
            let b = bias.map_or(0.0, |b| b[j]);
            orow[j] += arow[j] as f32 * deq[j] + b;
        }
    }
}

/// AVX-512 fused dequantize-and-accumulate; scalar `n % 16` column tail.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn dequant_add_rows_512(
    acc: &[i32],
    deq: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    n: usize,
) {
    use std::arch::x86_64::*;
    let nfull = n - n % 16;
    if nfull > 0 {
        let rows = acc.len() / n;
        for r in 0..rows {
            let arow = acc.as_ptr().add(r * n);
            let orow = out.as_mut_ptr().add(r * n);
            let mut j = 0;
            while j < nfull {
                let q = _mm512_cvtepi32_ps(_mm512_loadu_si512(arow.add(j) as *const __m512i));
                let s = _mm512_loadu_ps(deq.as_ptr().add(j));
                let mut o = _mm512_loadu_ps(orow.add(j));
                if let Some(b) = bias {
                    o = _mm512_add_ps(o, _mm512_loadu_ps(b.as_ptr().add(j)));
                }
                _mm512_storeu_ps(orow.add(j), _mm512_fmadd_ps(q, s, o));
                j += 16;
            }
        }
    }
    if nfull < n {
        for (orow, arow) in out.chunks_exact_mut(n).zip(acc.chunks_exact(n)) {
            for j in nfull..n {
                let b = bias.map_or(0.0, |b| b[j]);
                orow[j] += arow[j] as f32 * deq[j] + b;
            }
        }
    }
}

/// AVX-512 dequantize: `vcvtdq2ps` + FMA against the per-channel scale
/// and bias vectors, 16 outputs per instruction group. The generic body
/// handles the `n % 16` column tail (and rows too narrow to vectorize).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn dequant_rows_512(
    acc: &[i32],
    deq: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    n: usize,
) {
    use std::arch::x86_64::*;
    let nfull = n - n % 16;
    if nfull > 0 {
        let rows = acc.len() / n;
        let zero = _mm512_setzero_ps();
        for r in 0..rows {
            let arow = acc.as_ptr().add(r * n);
            let orow = out.as_mut_ptr().add(r * n);
            let mut j = 0;
            while j < nfull {
                let q = _mm512_cvtepi32_ps(_mm512_loadu_si512(arow.add(j) as *const __m512i));
                let s = _mm512_loadu_ps(deq.as_ptr().add(j));
                let b = match bias {
                    Some(b) => _mm512_loadu_ps(b.as_ptr().add(j)),
                    None => zero,
                };
                _mm512_storeu_ps(orow.add(j), _mm512_fmadd_ps(q, s, b));
                j += 16;
            }
        }
    }
    if nfull < n {
        dequant_rows_tail(acc, deq, bias, out, n, nfull);
    }
}

/// Scalar column tail `j0..n` of the dequantize pass.
#[inline(always)]
fn dequant_rows_tail(
    acc: &[i32],
    deq: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    n: usize,
    j0: usize,
) {
    for (orow, arow) in out.chunks_exact_mut(n).zip(acc.chunks_exact(n)) {
        for j in j0..n {
            let b = bias.map_or(0.0, |b| b[j]);
            orow[j] = arow[j] as f32 * deq[j] + b;
        }
    }
}

/// Dequantizes a single value: `q * scale`.
#[inline(always)]
pub fn dequantize(q: i8, scale: f32) -> f32 {
    q as f32 * scale
}

/// `c[m,n] = a[m,k] · b[n,k]ᵀ` in exact i32 arithmetic (`c` is
/// overwritten, not accumulated into). `b` is `[n, k]` row-major:
/// output channel `j`'s weights are the contiguous row `b[j*k..]`.
pub fn qgemm_nt(a: &[i8], b: &[i8], c: &mut [i32], m: usize, k: usize, n: usize) {
    assert_eq!(a.len(), m * k, "qgemm_nt A shape");
    assert_eq!(b.len(), n * k, "qgemm_nt B shape");
    assert_eq!(c.len(), m * n, "qgemm_nt C shape");
    assert!(k <= 1 << 16, "qgemm_nt k={k} would risk i32 overflow");
    super::stats::record_qgemm(m, k, n);
    let threads = matmul_threads(2 * m * k * n);
    let grain = ((1usize << 18) / (2 * k.max(1) * n.max(1))).max(1);
    let out = SharedI32::new(c);
    super::with_threads(threads, || {
        parallel_for(m, grain, |r0, r1| {
            // SAFETY: row blocks are disjoint across chunks.
            let rows = unsafe { out.range(r0 * n, r1 * n) };
            qgemm_rows(a, b, rows, r0, r1, k, n);
        });
    });
}

/// Row-range worker: tier dispatch mirrors the f32 kernels. Integer math
/// is exact, so every tier returns identical values — asserted in tests.
fn qgemm_rows(a: &[i8], b: &[i8], c: &mut [i32], r0: usize, r1: usize, k: usize, n: usize) {
    match qtier() {
        // SAFETY: the tier is only reported when the CPU has the features
        // the wrapper enables.
        #[cfg(target_arch = "x86_64")]
        Tier::Fma512 => unsafe { qgemm_rows_512(a, b, c, r0, r1, k, n) },
        #[cfg(target_arch = "x86_64")]
        Tier::Fma256 => unsafe { qgemm_rows_256(a, b, c, r0, r1, k, n) },
        _ => qgemm_rows_scalar(a, b, c, r0, r1, k, n),
    }
}

/// The int8 tier: the f32 dispatcher's choice, demoted from AVX-512 when
/// the CPU lacks `avx512bw` (needed for the byte-widening converts the
/// `madd` kernel uses; plain avx512f boxes fall back to the AVX2 kernel).
fn qtier() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        static QTIER: std::sync::OnceLock<Tier> = std::sync::OnceLock::new();
        *QTIER.get_or_init(|| match tier() {
            Tier::Fma512 if std::arch::is_x86_feature_detected!("avx512bw") => Tier::Fma512,
            Tier::Fma512 => Tier::Fma256,
            t => t,
        })
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        tier()
    }
}

/// Human-readable name of the int8 kernel tier, for telemetry tags and
/// benchmark reports.
pub fn qgemm_tier_name() -> &'static str {
    match qtier() {
        Tier::Scalar => "scalar",
        Tier::Fma256 => "avx2-madd",
        Tier::Fma512 => "avx512-madd",
    }
}

/// Weights prepared for the serving-path kernel: the plain `[n, k]` i8
/// rows (scalar tier and column tails) plus, on the SIMD tiers, an
/// interleaved pre-widened i16 copy.
///
/// The interleaved layout is the classic VNNI-style packing: columns are
/// grouped into blocks of `block` (32 on AVX-512, 16 on AVX2), and within
/// a block the two `k`-adjacent weights of each column sit side by side —
/// `packed[blk][p/2][col][0..2] = (b[col][p], b[col][p+1])`. One
/// `madd_epi16` against a broadcast activation pair then produces one i32
/// partial sum *per column lane*, so output columns accumulate directly
/// in vector lanes and the kernel needs no horizontal reductions at all —
/// the reductions are what capped the naive `[n, k]` kernel below the f32
/// GEMM's MAC rate at this model's small `k`.
pub struct PackedWeights {
    /// `[n, k]` row-major i8 (the [`qgemm_nt`] B layout).
    rows: Vec<i8>,
    /// Interleaved i16 pairs for the full column blocks; empty on the
    /// scalar tier.
    packed: Vec<i16>,
    /// Column-block width (SIMD i32 lanes ×2); 0 on the scalar tier.
    block: usize,
    k: usize,
    /// `k` rounded up to an even pair count ×16 so vector loads never
    /// straddle the tail; activation rows must be padded to match.
    kp: usize,
    n: usize,
    /// Columns covered by full blocks; the `nfull..n` tail runs scalar.
    nfull: usize,
}

impl PackedWeights {
    /// Packs `[n, k]` i8 weight rows for the current kernel tier.
    pub fn pack(rows: Vec<i8>, k: usize, n: usize) -> Self {
        assert_eq!(rows.len(), n * k, "PackedWeights shape");
        assert!(k <= 1 << 16, "PackedWeights k={k} would risk i32 overflow");
        let kp = k.next_multiple_of(32);
        let block = match qtier() {
            Tier::Fma512 => 32,
            Tier::Fma256 => 16,
            Tier::Scalar => 0,
        };
        let nfull = if block > 0 { n - n % block } else { 0 };
        let mut packed = vec![0i16; if block > 0 { nfull * kp } else { 0 }];
        for blk in 0..nfull / block.max(1) {
            let base = blk * block * kp;
            for p2 in 0..kp / 2 {
                for lane in 0..block {
                    let col = blk * block + lane;
                    let at = base + p2 * block * 2 + lane * 2;
                    packed[at] = rows[col * k + 2 * p2] as i16;
                    packed[at + 1] = if 2 * p2 + 1 < k {
                        rows[col * k + 2 * p2 + 1] as i16
                    } else {
                        0
                    };
                }
            }
        }
        PackedWeights {
            rows,
            packed,
            block,
            k,
            kp,
            n,
            nfull,
        }
    }

    /// Contraction length (activation row width before padding).
    pub fn k(&self) -> usize {
        self.k
    }

    /// Padded activation row stride required by [`qgemm_nt_packed`].
    pub fn kp(&self) -> usize {
        self.kp
    }

    /// Output channels.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// `c[m,n] = a[m,kp] · bᵀ` against [`PackedWeights`], exact i32. `a` rows
/// are `kp`-padded i16 (from [`quantize_rows_i16`]); `c` is overwritten.
pub fn qgemm_nt_packed(a: &[i16], w: &PackedWeights, c: &mut [i32], m: usize) {
    assert_eq!(a.len(), m * w.kp, "qgemm_nt_packed A shape");
    assert_eq!(c.len(), m * w.n, "qgemm_nt_packed C shape");
    super::stats::record_qgemm(m, w.k, w.n);
    let threads = matmul_threads(2 * m * w.k * w.n);
    let grain = ((1usize << 18) / (2 * w.k.max(1) * w.n.max(1))).max(1);
    let out = SharedI32::new(c);
    super::with_threads(threads, || {
        parallel_for(m, grain, |r0, r1| {
            // SAFETY: row blocks are disjoint across chunks.
            let rows = unsafe { out.range(r0 * w.n, r1 * w.n) };
            qgemm_packed_rows(a, w, rows, r0, r1);
        });
    });
}

fn qgemm_packed_rows(a: &[i16], w: &PackedWeights, c: &mut [i32], r0: usize, r1: usize) {
    match (qtier(), w.block) {
        // SAFETY: tier implies the CPU features; block implies the layout.
        #[cfg(target_arch = "x86_64")]
        (Tier::Fma512, 32) => unsafe { qgemm_packed_rows_512(a, w, c, r0, r1) },
        #[cfg(target_arch = "x86_64")]
        (Tier::Fma256, 16) => unsafe { qgemm_packed_rows_256(a, w, c, r0, r1) },
        _ => qgemm_packed_rows_scalar(a, w, c, r0, r1, 0),
    }
    // Column tail beyond the last full block (e.g. the scalar scoring
    // head's single output) always runs scalar; integer math keeps every
    // combination exact.
    if w.nfull < w.n {
        qgemm_packed_rows_scalar(a, w, c, r0, r1, w.nfull);
    }
}

/// Scalar fallback over the plain i8 rows, for columns `j0..n`.
fn qgemm_packed_rows_scalar(
    a: &[i16],
    w: &PackedWeights,
    c: &mut [i32],
    r0: usize,
    r1: usize,
    j0: usize,
) {
    let (k, kp, n) = (w.k, w.kp, w.n);
    for (ci, i) in (r0..r1).enumerate() {
        let arow = &a[i * kp..i * kp + k];
        let crow = &mut c[ci * n..(ci + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate().skip(j0) {
            let brow = &w.rows[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x as i32 * y as i32;
            }
            *cv = acc;
        }
    }
}

/// AVX2 packed kernel: broadcast one activation pair, `madd` it against
/// 16 interleaved columns (two ymm), accumulate per-column in i32 lanes.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qgemm_packed_rows_256(a: &[i16], w: &PackedWeights, c: &mut [i32], r0: usize, r1: usize) {
    use std::arch::x86_64::*;
    let (kp, n) = (w.kp, w.n);
    for (ci, i) in (r0..r1).enumerate() {
        let arow = a.as_ptr().add(i * kp);
        let crow = c.as_mut_ptr().add(ci * n);
        for blk in 0..w.nfull / 16 {
            let bp = w.packed.as_ptr().add(blk * 16 * kp);
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            for p2 in 0..kp / 2 {
                let va = _mm256_set1_epi32((arow.add(2 * p2) as *const i32).read_unaligned());
                let v0 = _mm256_loadu_si256(bp.add(p2 * 32) as *const __m256i);
                let v1 = _mm256_loadu_si256(bp.add(p2 * 32 + 16) as *const __m256i);
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, v0));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, v1));
            }
            _mm256_storeu_si256(crow.add(blk * 16) as *mut __m256i, acc0);
            _mm256_storeu_si256(crow.add(blk * 16 + 8) as *mut __m256i, acc1);
        }
    }
}

/// AVX-512 packed kernel: 32 columns per block, two zmm accumulators per
/// row, rows processed in pairs so each weight-panel load feeds two
/// `madd` chains (the panel loads, not the `madd`s, were the port
/// bottleneck at one row per pass).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn qgemm_packed_rows_512(a: &[i16], w: &PackedWeights, c: &mut [i32], r0: usize, r1: usize) {
    use std::arch::x86_64::*;
    let (kp, n) = (w.kp, w.n);
    let mut i = r0;
    let mut ci = 0usize;
    while i + 1 < r1 {
        let arow0 = a.as_ptr().add(i * kp);
        let arow1 = a.as_ptr().add((i + 1) * kp);
        let crow0 = c.as_mut_ptr().add(ci * n);
        let crow1 = c.as_mut_ptr().add((ci + 1) * n);
        for blk in 0..w.nfull / 32 {
            let bp = w.packed.as_ptr().add(blk * 32 * kp);
            let mut acc00 = _mm512_setzero_si512();
            let mut acc01 = _mm512_setzero_si512();
            let mut acc10 = _mm512_setzero_si512();
            let mut acc11 = _mm512_setzero_si512();
            // kp is a multiple of 32, so the pair loop (step 4 in k) always
            // divides evenly — unrolled ×2 to amortize loop overhead.
            for p4 in 0..kp / 4 {
                let p2 = 2 * p4;
                let va0 = _mm512_set1_epi32((arow0.add(2 * p2) as *const i32).read_unaligned());
                let va1 = _mm512_set1_epi32((arow1.add(2 * p2) as *const i32).read_unaligned());
                let v0 = _mm512_loadu_si512(bp.add(p2 * 64) as *const __m512i);
                let v1 = _mm512_loadu_si512(bp.add(p2 * 64 + 32) as *const __m512i);
                acc00 = _mm512_add_epi32(acc00, _mm512_madd_epi16(va0, v0));
                acc01 = _mm512_add_epi32(acc01, _mm512_madd_epi16(va0, v1));
                acc10 = _mm512_add_epi32(acc10, _mm512_madd_epi16(va1, v0));
                acc11 = _mm512_add_epi32(acc11, _mm512_madd_epi16(va1, v1));
                let vb0 = _mm512_set1_epi32((arow0.add(2 * p2 + 2) as *const i32).read_unaligned());
                let vb1 = _mm512_set1_epi32((arow1.add(2 * p2 + 2) as *const i32).read_unaligned());
                let w0 = _mm512_loadu_si512(bp.add(p2 * 64 + 64) as *const __m512i);
                let w1 = _mm512_loadu_si512(bp.add(p2 * 64 + 96) as *const __m512i);
                acc00 = _mm512_add_epi32(acc00, _mm512_madd_epi16(vb0, w0));
                acc01 = _mm512_add_epi32(acc01, _mm512_madd_epi16(vb0, w1));
                acc10 = _mm512_add_epi32(acc10, _mm512_madd_epi16(vb1, w0));
                acc11 = _mm512_add_epi32(acc11, _mm512_madd_epi16(vb1, w1));
            }
            _mm512_storeu_si512(crow0.add(blk * 32) as *mut __m512i, acc00);
            _mm512_storeu_si512(crow0.add(blk * 32 + 16) as *mut __m512i, acc01);
            _mm512_storeu_si512(crow1.add(blk * 32) as *mut __m512i, acc10);
            _mm512_storeu_si512(crow1.add(blk * 32 + 16) as *mut __m512i, acc11);
        }
        i += 2;
        ci += 2;
    }
    if i < r1 {
        let arow = a.as_ptr().add(i * kp);
        let crow = c.as_mut_ptr().add(ci * n);
        for blk in 0..w.nfull / 32 {
            let bp = w.packed.as_ptr().add(blk * 32 * kp);
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            for p2 in 0..kp / 2 {
                let va = _mm512_set1_epi32((arow.add(2 * p2) as *const i32).read_unaligned());
                let v0 = _mm512_loadu_si512(bp.add(p2 * 64) as *const __m512i);
                let v1 = _mm512_loadu_si512(bp.add(p2 * 64 + 32) as *const __m512i);
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va, v0));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(va, v1));
            }
            _mm512_storeu_si512(crow.add(blk * 32) as *mut __m512i, acc0);
            _mm512_storeu_si512(crow.add(blk * 32 + 16) as *mut __m512i, acc1);
        }
    }
}

fn qgemm_rows_scalar(a: &[i8], b: &[i8], c: &mut [i32], r0: usize, r1: usize, k: usize, n: usize) {
    for (ci, i) in (r0..r1).enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[ci * n..(ci + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x as i32 * y as i32;
            }
            *cv = acc;
        }
    }
}

/// AVX2 kernel: widen 16 bytes to i16 (`cvtepi8_epi16`), `madd_epi16`
/// into 8 i32 lanes, 4 output columns per A-row load. Exact i32 math.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn qgemm_rows_256(
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    #[inline]
    unsafe fn widen16(p: *const i8) -> __m256i {
        _mm256_cvtepi8_epi16(_mm_loadu_si128(p as *const __m128i))
    }
    #[inline]
    unsafe fn hsum(v: __m256i) -> i32 {
        let lo = _mm256_castsi256_si128(v);
        let hi = _mm256_extracti128_si256(v, 1);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b01_00_11_10));
        let s = _mm_add_epi32(s, _mm_shuffle_epi32(s, 0b00_01_00_01));
        _mm_cvtsi128_si32(s)
    }
    let kv = k - (k % 16);
    let jfull = n - (n % 4);
    for (ci, i) in (r0..r1).enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[ci * n..(ci + 1) * n];
        let mut j = 0;
        while j < jfull {
            let b0 = &b[j * k..];
            let b1 = &b[(j + 1) * k..];
            let b2 = &b[(j + 2) * k..];
            let b3 = &b[(j + 3) * k..];
            let mut acc0 = _mm256_setzero_si256();
            let mut acc1 = _mm256_setzero_si256();
            let mut acc2 = _mm256_setzero_si256();
            let mut acc3 = _mm256_setzero_si256();
            let mut p = 0;
            while p < kv {
                let va = widen16(arow.as_ptr().add(p));
                acc0 = _mm256_add_epi32(acc0, _mm256_madd_epi16(va, widen16(b0.as_ptr().add(p))));
                acc1 = _mm256_add_epi32(acc1, _mm256_madd_epi16(va, widen16(b1.as_ptr().add(p))));
                acc2 = _mm256_add_epi32(acc2, _mm256_madd_epi16(va, widen16(b2.as_ptr().add(p))));
                acc3 = _mm256_add_epi32(acc3, _mm256_madd_epi16(va, widen16(b3.as_ptr().add(p))));
                p += 16;
            }
            let mut s = [hsum(acc0), hsum(acc1), hsum(acc2), hsum(acc3)];
            for p in kv..k {
                let x = arow[p] as i32;
                s[0] += x * b0[p] as i32;
                s[1] += x * b1[p] as i32;
                s[2] += x * b2[p] as i32;
                s[3] += x * b3[p] as i32;
            }
            crow[j..j + 4].copy_from_slice(&s);
            j += 4;
        }
        for j in jfull..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x as i32 * y as i32;
            }
            crow[j] = acc;
        }
    }
}

/// AVX-512 kernel: widen 32 bytes to i16 in one zmm, `madd_epi16` into 16
/// i32 lanes, 4 output columns per A-row load. Exact i32 math.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f,avx512bw,avx512vl")]
unsafe fn qgemm_rows_512(
    a: &[i8],
    b: &[i8],
    c: &mut [i32],
    r0: usize,
    r1: usize,
    k: usize,
    n: usize,
) {
    use std::arch::x86_64::*;
    #[inline]
    unsafe fn widen32(p: *const i8) -> __m512i {
        _mm512_cvtepi8_epi16(_mm256_loadu_si256(p as *const __m256i))
    }
    let kv = k - (k % 32);
    let jfull = n - (n % 4);
    for (ci, i) in (r0..r1).enumerate() {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[ci * n..(ci + 1) * n];
        let mut j = 0;
        while j < jfull {
            let b0 = &b[j * k..];
            let b1 = &b[(j + 1) * k..];
            let b2 = &b[(j + 2) * k..];
            let b3 = &b[(j + 3) * k..];
            let mut acc0 = _mm512_setzero_si512();
            let mut acc1 = _mm512_setzero_si512();
            let mut acc2 = _mm512_setzero_si512();
            let mut acc3 = _mm512_setzero_si512();
            let mut p = 0;
            while p < kv {
                let va = widen32(arow.as_ptr().add(p));
                acc0 = _mm512_add_epi32(acc0, _mm512_madd_epi16(va, widen32(b0.as_ptr().add(p))));
                acc1 = _mm512_add_epi32(acc1, _mm512_madd_epi16(va, widen32(b1.as_ptr().add(p))));
                acc2 = _mm512_add_epi32(acc2, _mm512_madd_epi16(va, widen32(b2.as_ptr().add(p))));
                acc3 = _mm512_add_epi32(acc3, _mm512_madd_epi16(va, widen32(b3.as_ptr().add(p))));
                p += 32;
            }
            let mut s = [
                _mm512_reduce_add_epi32(acc0),
                _mm512_reduce_add_epi32(acc1),
                _mm512_reduce_add_epi32(acc2),
                _mm512_reduce_add_epi32(acc3),
            ];
            for p in kv..k {
                let x = arow[p] as i32;
                s[0] += x * b0[p] as i32;
                s[1] += x * b1[p] as i32;
                s[2] += x * b2[p] as i32;
                s[3] += x * b3[p] as i32;
            }
            crow[j..j + 4].copy_from_slice(&s);
            j += 4;
        }
        for j in jfull..n {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x as i32 * y as i32;
            }
            crow[j] = acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gen_i8(len: usize, seed: i64) -> Vec<i8> {
        // Deterministic pseudo-random bytes spanning the full i8 range.
        let mut s = seed;
        (0..len)
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) & 0xff) as i8
            })
            .collect()
    }

    fn qgemm_ref(a: &[i8], b: &[i8], m: usize, k: usize, n: usize) -> Vec<i32> {
        let mut c = vec![0i64; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += a[i * k + p] as i64 * b[j * k + p] as i64;
                }
            }
        }
        c.into_iter().map(|v| i32::try_from(v).unwrap()).collect()
    }

    #[test]
    fn matches_i64_reference_exactly() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (8, 64, 192),
            (10, 33, 17),
            (5, 128, 64),
        ] {
            let a = gen_i8(m * k, 1 + (m * k * n) as i64);
            let b = gen_i8(n * k, 99 + (m + k + n) as i64);
            let mut c = vec![0i32; m * n];
            qgemm_nt(&a, &b, &mut c, m, k, n);
            assert_eq!(c, qgemm_ref(&a, &b, m, k, n), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn scalar_tier_matches_dispatch_exactly() {
        let (m, k, n) = (9, 70, 13);
        let a = gen_i8(m * k, 5);
        let b = gen_i8(n * k, 6);
        let mut via_dispatch = vec![0i32; m * n];
        qgemm_nt(&a, &b, &mut via_dispatch, m, k, n);
        let mut via_scalar = vec![0i32; m * n];
        qgemm_rows_scalar(&a, &b, &mut via_scalar, 0, m, k, n);
        assert_eq!(via_dispatch, via_scalar);
    }

    #[test]
    fn identical_across_thread_counts() {
        let (m, k, n) = (64, 64, 64);
        let a = gen_i8(m * k, 7);
        let b = gen_i8(n * k, 8);
        let mut one = vec![0i32; m * n];
        let mut four = vec![0i32; m * n];
        super::super::with_threads(1, || qgemm_nt(&a, &b, &mut one, m, k, n));
        super::super::with_threads(4, || qgemm_nt(&a, &b, &mut four, m, k, n));
        assert_eq!(one, four);
    }

    #[test]
    fn packed_matches_i64_reference_exactly() {
        // Shapes cover full blocks, column tails (n % block ≠ 0, incl. the
        // scoring head's n = 1), and odd / padded k.
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 7, 5),
            (8, 64, 192),
            (10, 33, 17),
            (5, 128, 64),
            (32, 64, 1),
            (9, 31, 40),
        ] {
            let a = gen_i8(m * k, 21 + (m * k * n) as i64);
            let b = gen_i8(n * k, 77 + (m + k + n) as i64);
            let w = PackedWeights::pack(b.clone(), k, n);
            let kp = w.kp();
            let mut a16 = vec![0i16; m * kp];
            for i in 0..m {
                for p in 0..k {
                    a16[i * kp + p] = a[i * k + p] as i16;
                }
            }
            let mut c = vec![0i32; m * n];
            qgemm_nt_packed(&a16, &w, &mut c, m);
            assert_eq!(c, qgemm_ref(&a, &b, m, k, n), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn quantize_rows_pad_and_match_i8_quantize() {
        let xs: Vec<f32> = (0..4 * 33).map(|i| (i as f32 - 60.0) * 0.21).collect();
        let s = scale_for(absmax(&xs));
        let mut q8 = vec![0i8; xs.len()];
        quantize(&xs, s, &mut q8);
        let kp = 33usize.next_multiple_of(32);
        let mut q16 = vec![7i16; 4 * kp];
        quantize_rows_i16(&xs, s, &mut q16, 33, kp);
        for r in 0..4 {
            for p in 0..33 {
                assert_eq!(q16[r * kp + p], q8[r * 33 + p] as i16);
            }
            assert!(q16[r * kp + 33..(r + 1) * kp].iter().all(|&v| v == 0));
        }
    }

    #[test]
    fn quantize_round_trip_within_half_scale() {
        let xs: Vec<f32> = (0..1000).map(|i| ((i as f32) - 500.0) * 0.013).collect();
        let s = scale_for(absmax(&xs));
        let mut q = vec![0i8; xs.len()];
        quantize(&xs, s, &mut q);
        for (&x, &qi) in xs.iter().zip(&q) {
            let err = (x - dequantize(qi, s)).abs();
            assert!(err <= 0.5 * s + s * 1e-4, "x={x} q={qi} s={s} err={err}");
        }
    }

    #[test]
    fn zero_scale_quantizes_to_zero() {
        let xs = [0.0f32; 8];
        let s = scale_for(absmax(&xs));
        assert_eq!(s, 0.0);
        let mut q = [1i8; 8];
        quantize(&xs, s, &mut q);
        assert!(q.iter().all(|&v| v == 0));
    }

    #[test]
    fn marker_is_referenced() {
        assert!(QGEMM_MARKER.contains("int8"));
    }
}
