//! Weight initialization schemes.

use rand::Rng;

use crate::tensor::Tensor;

/// Xavier/Glorot uniform init for a `[fan_in, fan_out]` weight.
pub fn xavier_uniform<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let limit = (6.0 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(rng, &[fan_in, fan_out], -limit, limit)
}

/// Kaiming/He normal init (for ReLU-family activations).
pub fn kaiming_normal<R: Rng>(rng: &mut R, fan_in: usize, fan_out: usize) -> Tensor {
    let std = (2.0 / fan_in as f32).sqrt();
    Tensor::randn(rng, &[fan_in, fan_out], std)
}

/// Small-normal init for embedding tables.
pub fn embedding_init<R: Rng>(rng: &mut R, vocab: usize, dim: usize) -> Tensor {
    Tensor::randn(rng, &[vocab, dim], 0.02)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn xavier_within_limit() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = xavier_uniform(&mut rng, 64, 64);
        let limit = (6.0 / 128.0f32).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= limit));
        assert_eq!(w.shape(), &[64, 64]);
    }

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let w = kaiming_normal(&mut rng, 512, 64);
        let var = w.data().iter().map(|x| x * x).sum::<f32>() / w.len() as f32;
        assert!((var - 2.0 / 512.0).abs() < 1.0 / 512.0, "var {var}");
    }
}
