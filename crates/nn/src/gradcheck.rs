//! Finite-difference gradient checking used across the test suite.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Compares the analytic gradient of `f` at `x` against central finite
/// differences. `f` must build a scalar output from the single leaf it is
/// given. Returns the maximum absolute error observed.
pub fn gradcheck(f: impl Fn(&Graph, Var) -> Var, x: &Tensor, eps: f32) -> f32 {
    // Analytic gradient.
    let g = Graph::new();
    let v = g.leaf(x.clone());
    let out = f(&g, v);
    assert_eq!(g.value(out).len(), 1, "gradcheck target must be scalar");
    g.backward(out);
    let analytic = g.grad(v).unwrap_or_else(|| Tensor::zeros(x.shape()));

    // Numeric gradient per coordinate.
    let mut max_err = 0.0f32;
    for i in 0..x.len() {
        let eval = |delta: f32| -> f32 {
            let mut xx = x.clone();
            xx.data_mut()[i] += delta;
            let g = Graph::new();
            let v = g.leaf(xx);
            let out = f(&g, v);
            g.value(out).item()
        };
        let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
        let a = analytic.data()[i];
        let denom = 1.0f32.max(a.abs()).max(numeric.abs());
        let err = (a - numeric).abs() / denom;
        if err > max_err {
            max_err = err;
        }
    }
    max_err
}

/// Asserts that `f`'s analytic gradient matches finite differences to
/// within `tol` (relative).
pub fn assert_gradcheck(f: impl Fn(&Graph, Var) -> Var, x: &Tensor, tol: f32) {
    let err = gradcheck(f, x, 1e-2);
    assert!(
        err < tol,
        "gradcheck failed: max relative error {err} >= {tol}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn gradcheck_accepts_correct_gradient() {
        let x = Tensor::new(vec![0.3, -0.7, 1.2], &[3]);
        assert_gradcheck(
            |g, v| {
                let sq = ops::square(g, v);
                ops::sum_all(g, sq)
            },
            &x,
            1e-2,
        );
    }

    #[test]
    #[should_panic]
    fn gradcheck_rejects_wrong_gradient() {
        // A deliberately wrong op: forward x^2, backward pretends dy/dx = 1.
        let x = Tensor::new(vec![0.5, 2.0], &[2]);
        assert_gradcheck(
            |g, v| {
                let t = g.value(v);
                let out = t.map(|a| a * a);
                let bogus = g.op(out, vec![v], Box::new(move |og| vec![og.clone()]));
                ops::sum_all(g, bogus)
            },
            &x,
            1e-3,
        );
    }
}
