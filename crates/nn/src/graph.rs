//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a single-use tape: every operation appends a node holding
//! the forward value and a backward closure that maps the node's output
//! gradient to gradients for its parents. [`Graph::backward`] walks the tape
//! in reverse (tape order is a topological order by construction) and
//! accumulates gradients.
//!
//! Model parameters live outside the tape in a [`ParamStore`]; a forward
//! pass *binds* them onto the tape with [`Graph::bind`], and after
//! `backward` the accumulated gradients are scattered back with
//! [`Graph::write_grads`]. This keeps modules plain data and lets one store
//! drive many tapes (one per minibatch).

use std::cell::RefCell;

use crate::tensor::Tensor;

/// Handle to a node on a [`Graph`] tape.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

type BackwardFn = Box<dyn Fn(&Tensor) -> Vec<Tensor> + Send>;

struct Node {
    value: Tensor,
    grad: Option<Tensor>,
    parents: Vec<Var>,
    backward: Option<BackwardFn>,
    /// Whether gradients should flow into/through this node.
    needs_grad: bool,
}

/// A single-use autodiff tape.
#[derive(Default)]
pub struct Graph {
    nodes: RefCell<Vec<Node>>,
    bindings: RefCell<Vec<(ParamId, Var)>>,
    /// Training-mode flag consulted by stochastic ops such as dropout.
    train: std::cell::Cell<bool>,
}

impl Graph {
    /// Creates an empty tape in training mode.
    pub fn new() -> Self {
        let g = Graph::default();
        g.train.set(true);
        g
    }

    /// Creates an empty tape in inference mode (dropout disabled).
    pub fn inference() -> Self {
        Graph::default()
    }

    /// Whether the tape is in training mode.
    pub fn is_train(&self) -> bool {
        self.train.get()
    }

    /// Appends a leaf node that does not require gradients (an input).
    pub fn input(&self, value: Tensor) -> Var {
        self.push(Node {
            value,
            grad: None,
            parents: vec![],
            backward: None,
            needs_grad: false,
        })
    }

    /// Appends a leaf node that accumulates gradients (a free parameter).
    pub fn leaf(&self, value: Tensor) -> Var {
        self.push(Node {
            value,
            grad: None,
            parents: vec![],
            backward: None,
            needs_grad: true,
        })
    }

    /// Binds parameter `id` from `store` onto the tape, recording the
    /// binding so [`Graph::write_grads`] can scatter the gradient back.
    pub fn bind(&self, store: &ParamStore, id: ParamId) -> Var {
        let v = self.leaf(store.value(id).clone());
        self.bindings.borrow_mut().push((id, v));
        v
    }

    /// Appends an op node produced by one of the op constructors.
    pub(crate) fn op(&self, value: Tensor, parents: Vec<Var>, backward: BackwardFn) -> Var {
        let needs_grad = {
            let nodes = self.nodes.borrow();
            parents.iter().any(|p| nodes[p.0].needs_grad)
        };
        self.push(Node {
            value,
            grad: None,
            parents,
            backward: Some(backward),
            needs_grad,
        })
    }

    fn push(&self, node: Node) -> Var {
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(node);
        Var(nodes.len() - 1)
    }

    /// Clones the forward value of `v`.
    pub fn value(&self, v: Var) -> Tensor {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Shape of the forward value of `v` (no clone).
    pub fn shape_of(&self, v: Var) -> Vec<usize> {
        self.nodes.borrow()[v.0].value.shape().to_vec()
    }

    /// Runs `f` against the forward value of `v` without cloning it.
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Tensor) -> R) -> R {
        f(&self.nodes.borrow()[v.0].value)
    }

    /// Clones the accumulated gradient of `v`, if any.
    pub fn grad(&self, v: Var) -> Option<Tensor> {
        self.nodes.borrow()[v.0].grad.clone()
    }

    /// Number of nodes currently on the tape.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True when the tape has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    /// Reverse-mode sweep seeding `loss` with gradient 1.
    ///
    /// `loss` must be a scalar. Safe to call once per tape.
    pub fn backward(&self, loss: Var) {
        {
            let mut nodes = self.nodes.borrow_mut();
            let l = &mut nodes[loss.0];
            assert_eq!(
                l.value.len(),
                1,
                "backward() from non-scalar {:?}",
                l.value.shape()
            );
            l.grad = Some(Tensor::ones(l.value.shape()));
        }
        for i in (0..=loss.0).rev() {
            // Take what we need out of the node, then release the borrow so
            // the backward closure can't deadlock on re-entrancy.
            let (grad, backward, parents) = {
                let mut nodes = self.nodes.borrow_mut();
                let node = &mut nodes[i];
                if node.grad.is_none() || !node.needs_grad {
                    continue;
                }
                let grad = node.grad.clone().unwrap();
                let backward = node.backward.take();
                let parents = node.parents.clone();
                (grad, backward, parents)
            };
            let Some(backward) = backward else { continue };
            let parent_grads = backward(&grad);
            assert_eq!(
                parent_grads.len(),
                parents.len(),
                "backward arity mismatch at node {i}"
            );
            let mut nodes = self.nodes.borrow_mut();
            for (p, pg) in parents.iter().zip(parent_grads) {
                let pn = &mut nodes[p.0];
                if !pn.needs_grad {
                    continue;
                }
                debug_assert_eq!(
                    pn.value.shape(),
                    pg.shape(),
                    "gradient shape mismatch for parent {} of node {i}",
                    p.0
                );
                match &mut pn.grad {
                    Some(g) => g.add_assign(&pg),
                    None => pn.grad = Some(pg),
                }
            }
        }
    }

    /// Scatters gradients of bound parameters back into `store`
    /// (accumulating — call [`ParamStore::zero_grads`] between steps).
    pub fn write_grads(&self, store: &mut ParamStore) {
        let nodes = self.nodes.borrow();
        for &(id, v) in self.bindings.borrow().iter() {
            if let Some(g) = &nodes[v.0].grad {
                store.grad_mut(id).add_assign(g);
            }
        }
    }

    /// Clears the tape for reuse, recycling every uniquely-owned buffer
    /// into the kernel arena (same policy as `Drop`). A long-lived
    /// inference graph calls this between forward passes so steady-state
    /// serving re-traces the tape into recycled storage instead of
    /// constructing a graph (and its allocations) per call.
    pub fn reset(&self) {
        let mut nodes = self.nodes.borrow_mut();
        // Backward closures hold copy-on-write aliases of node values; drop
        // them first so the node is the last owner and recycling reclaims
        // the buffer.
        for node in nodes.iter_mut() {
            node.backward = None;
        }
        for node in nodes.drain(..) {
            node.value.recycle();
            if let Some(grad) = node.grad {
                grad.recycle();
            }
        }
        self.bindings.borrow_mut().clear();
    }

    /// Heap bytes held by the tape: every distinct value/gradient buffer,
    /// deduplicated by storage identity.
    ///
    /// Because backward closures capture copy-on-write clones of node
    /// values, their captures alias buffers already counted here; only
    /// fused-op stashes (e.g. kept activations) fall outside this measure.
    pub fn tape_bytes(&self) -> usize {
        let nodes = self.nodes.borrow();
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        for node in nodes.iter() {
            for t in std::iter::once(&node.value).chain(node.grad.as_ref()) {
                if seen.insert(t.storage_id()) {
                    total += t.storage_bytes();
                }
            }
        }
        total
    }
}

impl Drop for Graph {
    fn drop(&mut self) {
        // Recycle uniquely-owned tape buffers into the kernel arena so the
        // next tape (same model, same shapes) reuses them. Backward
        // closures go first: they hold copy-on-write aliases of node
        // values, and the node must be the last owner for recycling to
        // reclaim the buffer.
        let nodes = self.nodes.get_mut();
        for node in nodes.iter_mut() {
            node.backward = None;
        }
        for node in nodes.drain(..) {
            node.value.recycle();
            if let Some(grad) = node.grad {
                grad.recycle();
            }
        }
    }
}

/// Handle to a parameter in a [`ParamStore`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Owns parameter tensors and their gradient accumulators.
#[derive(Default)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter, returning its id.
    pub fn add(&mut self, name: impl Into<String>, value: Tensor) -> ParamId {
        self.grads.push(Tensor::zeros(value.shape()));
        self.values.push(value);
        self.names.push(name.into());
        ParamId(self.values.len() - 1)
    }

    /// Current value of a parameter.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable value (used by optimizers).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Accumulated gradient of a parameter.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Mutable gradient accumulator.
    pub fn grad_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.grads[id.0]
    }

    /// Registered name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Number of parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|t| t.len()).sum()
    }

    /// All parameter ids.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> {
        (0..self.values.len()).map(ParamId)
    }

    /// Zeroes every gradient accumulator.
    pub fn zero_grads(&mut self) {
        for g in self.grads.iter_mut() {
            g.data_mut().iter_mut().for_each(|x| *x = 0.0);
        }
    }

    /// Global L2 norm across all gradients.
    pub fn grad_norm(&self) -> f32 {
        self.grads
            .iter()
            .map(|g| g.data().iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clips gradients to a maximum global L2 norm; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let norm = self.grad_norm();
        if norm > max_norm && norm > 0.0 {
            let s = max_norm / norm;
            for g in self.grads.iter_mut() {
                g.scale_assign(s);
            }
        }
        norm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_is_send() {
        // Serving workers own long-lived inference tapes; the tape must be
        // movable into a worker thread.
        fn assert_send<T: Send>() {}
        assert_send::<Graph>();
    }

    #[test]
    fn reset_clears_tape_for_reuse() {
        let g = Graph::inference();
        let x = g.input(Tensor::new(vec![1.0, 2.0], &[2]));
        let y = crate::ops::scale(&g, x, 3.0);
        assert_eq!(g.value(y).data(), &[3.0, 6.0]);
        g.reset();
        assert!(g.is_empty());
        // The tape is reusable after reset and computes fresh values.
        let x = g.input(Tensor::new(vec![5.0], &[1]));
        let y = crate::ops::scale(&g, x, 2.0);
        assert_eq!(g.value(y).data(), &[10.0]);
    }

    #[test]
    fn leaf_receives_unit_grad() {
        let g = Graph::new();
        let x = g.leaf(Tensor::scalar(2.0));
        g.backward(x);
        assert_eq!(g.grad(x).unwrap().item(), 1.0);
    }

    #[test]
    fn input_gets_no_grad() {
        let g = Graph::new();
        let x = g.input(Tensor::scalar(2.0));
        let y = crate::ops::scale(&g, x, 3.0);
        g.backward(y);
        assert!(g.grad(x).is_none());
    }

    #[test]
    fn grads_accumulate_across_uses() {
        let g = Graph::new();
        let x = g.leaf(Tensor::scalar(3.0));
        let y = crate::ops::add(&g, x, x); // y = 2x
        g.backward(y);
        assert_eq!(g.grad(x).unwrap().item(), 2.0);
    }

    #[test]
    fn param_store_roundtrip() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::new(vec![1.0, 2.0], &[2]));
        assert_eq!(store.num_scalars(), 2);
        assert_eq!(store.name(id), "w");

        let g = Graph::new();
        let w = g.bind(&store, id);
        let s = crate::ops::sum_all(&g, w);
        g.backward(s);
        g.write_grads(&mut store);
        assert_eq!(store.grad(id).data(), &[1.0, 1.0]);

        store.zero_grads();
        assert_eq!(store.grad(id).data(), &[0.0, 0.0]);
    }

    #[test]
    fn clip_grad_norm_scales() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::new(vec![0.0], &[1]));
        *store.grad_mut(id) = Tensor::new(vec![3.0], &[1]);
        let pre = store.clip_grad_norm(1.0);
        assert!((pre - 3.0).abs() < 1e-6);
        assert!((store.grad(id).data()[0] - 1.0).abs() < 1e-6);
    }
}
