//! Special-purpose ops: gradient reversal, dropout, embedding gather,
//! surrogate-gradient spikes, and detach.

use rand::Rng;

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Gradient Reversal Layer (Ganin & Lempitsky, 2015).
///
/// Identity in the forward pass; multiplies the gradient by `-lambda` in the
/// backward pass. This is the adversarial coupling DAAN uses: the domain
/// classifier minimizes its loss while the feature extractor — sitting
/// behind the GRL — maximizes it.
pub fn grl(g: &Graph, a: Var, lambda: f32) -> Var {
    let out = g.value(a);
    g.op(
        out,
        vec![a],
        Box::new(move |og| vec![og.map(|x| -lambda * x)]),
    )
}

/// Stops gradient flow: identity forward, zero gradient backward.
pub fn detach(g: &Graph, a: Var) -> Var {
    // Re-enter the tape as a fresh input; no parent edge, no gradient.
    g.input(g.value(a))
}

/// Inverted dropout. Active only when the tape is in training mode;
/// surviving activations are scaled by `1/(1-p)` so inference needs no
/// rescaling.
pub fn dropout<R: Rng + ?Sized>(g: &Graph, a: Var, p: f32, rng: &mut R) -> Var {
    assert!((0.0..1.0).contains(&p), "dropout p={p} out of [0,1)");
    if !g.is_train() || p == 0.0 {
        // Identity pass-through that still propagates gradients.
        let out = g.value(a);
        return g.op(out, vec![a], Box::new(move |og| vec![og.clone()]));
    }
    let ta = g.value(a);
    let keep = 1.0 - p;
    let mask: Vec<f32> = (0..ta.len())
        .map(|_| {
            if rng.gen::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        })
        .collect();
    let out = Tensor::new(
        ta.data().iter().zip(&mask).map(|(&x, &m)| x * m).collect(),
        ta.shape(),
    );
    let shape = ta.shape().to_vec();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            vec![Tensor::new(
                og.data().iter().zip(&mask).map(|(&o, &m)| o * m).collect(),
                &shape,
            )]
        }),
    )
}

/// Embedding gather: `table[V, D]` indexed by `indices` gives `[N, D]`.
/// Backward scatter-adds into the table.
pub fn embedding(g: &Graph, table: Var, indices: &[usize]) -> Var {
    let tt = g.value(table);
    assert_eq!(tt.shape().len(), 2, "embedding table must be [V, D]");
    let (v, d) = (tt.shape()[0], tt.shape()[1]);
    let mut out = Vec::with_capacity(indices.len() * d);
    for &ix in indices {
        assert!(ix < v, "embedding index {ix} out of vocab {v}");
        out.extend_from_slice(&tt.data()[ix * d..(ix + 1) * d]);
    }
    let out = Tensor::new(out, &[indices.len(), d]);
    let indices = indices.to_vec();
    g.op(
        out,
        vec![table],
        Box::new(move |og| {
            let mut grad = Tensor::zeros(&[v, d]);
            for (row, &ix) in indices.iter().enumerate() {
                let dst = &mut grad.data_mut()[ix * d..(ix + 1) * d];
                for (dv, &o) in dst.iter_mut().zip(&og.data()[row * d..(row + 1) * d]) {
                    *dv += o;
                }
            }
            vec![grad]
        }),
    )
}

/// Heaviside step with a sigmoid surrogate gradient — the firing function of
/// a spiking (LIF) neuron. Forward emits `1` where `x > 0`; backward uses
/// `beta * sigma(beta x) * (1 - sigma(beta x))` (SpikeLog-style surrogate).
pub fn spike(g: &Graph, a: Var, beta: f32) -> Var {
    let ta = g.value(a);
    let out = ta.map(|x| if x > 0.0 { 1.0 } else { 0.0 });
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            vec![Tensor::new(
                og.data()
                    .iter()
                    .zip(ta.data())
                    .map(|(&o, &x)| {
                        let s = 1.0 / (1.0 + (-beta * x).exp());
                        o * beta * s * (1.0 - s)
                    })
                    .collect(),
                ta.shape(),
            )]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{mul, sum_all};
    use rand::SeedableRng;

    #[test]
    fn grl_reverses_and_scales() {
        let g = Graph::new();
        let a = g.leaf(Tensor::scalar(2.0));
        let r = grl(&g, a, 0.5);
        assert_eq!(g.value(r).item(), 2.0);
        g.backward(r);
        assert_eq!(g.grad(a).unwrap().item(), -0.5);
    }

    #[test]
    fn detach_blocks_gradient() {
        let g = Graph::new();
        let a = g.leaf(Tensor::scalar(3.0));
        let d = detach(&g, a);
        let y = mul(&g, d, d);
        g.backward(y);
        assert!(g.grad(a).is_none());
    }

    #[test]
    fn dropout_identity_in_inference() {
        let g = Graph::inference();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let a = g.input(Tensor::ones(&[100]));
        let d = dropout(&g, a, 0.5, &mut rng);
        assert_eq!(g.value(d).data(), &[1.0; 100]);
    }

    #[test]
    fn dropout_preserves_expectation() {
        let g = Graph::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let a = g.input(Tensor::ones(&[20_000]));
        let d = dropout(&g, a, 0.3, &mut rng);
        let mean = g.value(d).mean();
        assert!((mean - 1.0).abs() < 0.05, "dropout mean {mean}");
    }

    #[test]
    fn embedding_gathers_and_scatters() {
        let g = Graph::new();
        let table = g.leaf(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[3, 2]));
        let e = embedding(&g, table, &[2, 0, 2]);
        assert_eq!(g.value(e).data(), &[5., 6., 1., 2., 5., 6.]);
        let s = sum_all(&g, e);
        g.backward(s);
        // row 2 used twice, row 0 once, row 1 never
        assert_eq!(g.grad(table).unwrap().data(), &[1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn spike_fires_above_zero() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![-0.5, 0.5], &[2]));
        let sp = spike(&g, a, 4.0);
        assert_eq!(g.value(sp).data(), &[0.0, 1.0]);
        let s = sum_all(&g, sp);
        g.backward(s);
        let gr = g.grad(a).unwrap();
        assert!(
            gr.data()[0] > 0.0 && gr.data()[1] > 0.0,
            "surrogate grad should be nonzero"
        );
    }
}
