//! Shape manipulation: reshape, slicing, concatenation, time stacking.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Reshapes to `shape` (same element count).
pub fn reshape(g: &Graph, a: Var, shape: &[usize]) -> Var {
    let ta = g.value(a);
    let in_shape = ta.shape().to_vec();
    let out = ta.reshape(shape);
    g.op(
        out,
        vec![a],
        Box::new(move |og| vec![og.reshape(&in_shape)]),
    )
}

/// Slices `len` features starting at `start` along the **last** axis.
pub fn slice_last(g: &Graph, a: Var, start: usize, len: usize) -> Var {
    let ta = g.value(a);
    let shape = ta.shape().to_vec();
    let d = *shape.last().expect("slice_last on scalar");
    assert!(
        start + len <= d,
        "slice_last [{start}..{}] out of last dim {d}",
        start + len
    );
    let rows = ta.len() / d;
    let mut out = Vec::with_capacity(rows * len);
    for r in 0..rows {
        out.extend_from_slice(&ta.data()[r * d + start..r * d + start + len]);
    }
    let mut out_shape = shape.clone();
    *out_shape.last_mut().unwrap() = len;
    let out = Tensor::new(out, &out_shape);
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            let mut grad = Tensor::zeros(&shape);
            for r in 0..rows {
                grad.data_mut()[r * d + start..r * d + start + len]
                    .copy_from_slice(&og.data()[r * len..(r + 1) * len]);
            }
            vec![grad]
        }),
    )
}

/// Concatenates along the **last** axis. All inputs must agree on the
/// leading dimensions.
pub fn concat_last(g: &Graph, parts: &[Var]) -> Var {
    assert!(!parts.is_empty(), "concat_last of nothing");
    let tensors: Vec<Tensor> = parts.iter().map(|&v| g.value(v)).collect();
    let lead = &tensors[0].shape()[..tensors[0].shape().len() - 1];
    let rows: usize = lead.iter().product();
    let widths: Vec<usize> = tensors
        .iter()
        .map(|t| {
            assert_eq!(
                &t.shape()[..t.shape().len() - 1],
                lead,
                "concat_last leading dims differ"
            );
            *t.shape().last().unwrap()
        })
        .collect();
    let total: usize = widths.iter().sum();
    let mut out = Vec::with_capacity(rows * total);
    for r in 0..rows {
        for (t, &w) in tensors.iter().zip(&widths) {
            out.extend_from_slice(&t.data()[r * w..(r + 1) * w]);
        }
    }
    let mut out_shape = lead.to_vec();
    out_shape.push(total);
    let out = Tensor::new(out, &out_shape);
    let shapes: Vec<Vec<usize>> = tensors.iter().map(|t| t.shape().to_vec()).collect();
    g.op(
        out,
        parts.to_vec(),
        Box::new(move |og| {
            let mut grads: Vec<Tensor> = shapes.iter().map(|s| Tensor::zeros(s)).collect();
            for r in 0..rows {
                let mut off = r * total;
                for (gi, &w) in grads.iter_mut().zip(&widths) {
                    gi.data_mut()[r * w..(r + 1) * w].copy_from_slice(&og.data()[off..off + w]);
                    off += w;
                }
            }
            grads
        }),
    )
}

/// Selects timestep `t` from a `[B, T, D]` tensor, producing `[B, D]`.
pub fn time_slice(g: &Graph, a: Var, t: usize) -> Var {
    let ta = g.value(a);
    assert_eq!(ta.shape().len(), 3, "time_slice expects [B,T,D]");
    let (b, tt, d) = (ta.shape()[0], ta.shape()[1], ta.shape()[2]);
    assert!(t < tt, "time_slice t={t} out of T={tt}");
    let mut out = Vec::with_capacity(b * d);
    for i in 0..b {
        out.extend_from_slice(&ta.data()[(i * tt + t) * d..(i * tt + t + 1) * d]);
    }
    let out = Tensor::new(out, &[b, d]);
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            let mut grad = Tensor::zeros(&[b, tt, d]);
            for i in 0..b {
                grad.data_mut()[(i * tt + t) * d..(i * tt + t + 1) * d]
                    .copy_from_slice(&og.data()[i * d..(i + 1) * d]);
            }
            vec![grad]
        }),
    )
}

/// Stacks `T` tensors of shape `[B, D]` into `[B, T, D]`, in the order given.
pub fn stack_time(g: &Graph, steps: &[Var]) -> Var {
    assert!(!steps.is_empty(), "stack_time of nothing");
    let tensors: Vec<Tensor> = steps.iter().map(|&v| g.value(v)).collect();
    let (b, d) = (tensors[0].shape()[0], tensors[0].shape()[1]);
    for t in &tensors {
        assert_eq!(t.shape(), &[b, d], "stack_time step shape mismatch");
    }
    let tt = tensors.len();
    let mut out = vec![0.0; b * tt * d];
    for (t, ten) in tensors.iter().enumerate() {
        for i in 0..b {
            out[(i * tt + t) * d..(i * tt + t + 1) * d]
                .copy_from_slice(&ten.data()[i * d..(i + 1) * d]);
        }
    }
    let out = Tensor::new(out, &[b, tt, d]);
    g.op(
        out,
        steps.to_vec(),
        Box::new(move |og| {
            (0..tt)
                .map(|t| {
                    let mut gr = Tensor::zeros(&[b, d]);
                    for i in 0..b {
                        gr.data_mut()[i * d..(i + 1) * d]
                            .copy_from_slice(&og.data()[(i * tt + t) * d..(i * tt + t + 1) * d]);
                    }
                    gr
                })
                .collect()
        }),
    )
}

/// Concatenates along axis 0 (rows). Inputs must share trailing dims.
pub fn concat_rows(g: &Graph, parts: &[Var]) -> Var {
    assert!(!parts.is_empty(), "concat_rows of nothing");
    let tensors: Vec<Tensor> = parts.iter().map(|&v| g.value(v)).collect();
    let trail = tensors[0].shape()[1..].to_vec();
    let mut rows = 0usize;
    for t in &tensors {
        assert_eq!(
            &t.shape()[1..],
            &trail[..],
            "concat_rows trailing dims differ"
        );
        rows += t.shape()[0];
    }
    let mut out = Vec::with_capacity(rows * trail.iter().product::<usize>());
    for t in &tensors {
        out.extend_from_slice(t.data());
    }
    let mut out_shape = vec![rows];
    out_shape.extend_from_slice(&trail);
    let out = Tensor::new(out, &out_shape);
    let shapes: Vec<Vec<usize>> = tensors.iter().map(|t| t.shape().to_vec()).collect();
    g.op(
        out,
        parts.to_vec(),
        Box::new(move |og| {
            let mut grads = Vec::with_capacity(shapes.len());
            let mut off = 0;
            for s in &shapes {
                let n: usize = s.iter().product();
                grads.push(Tensor::new(og.data()[off..off + n].to_vec(), s));
                off += n;
            }
            grads
        }),
    )
}

/// Gathers arbitrary rows (axis 0) by index; backward scatter-adds.
pub fn select_rows(g: &Graph, a: Var, indices: &[usize]) -> Var {
    let ta = g.value(a);
    let shape = ta.shape().to_vec();
    assert!(!shape.is_empty(), "select_rows on scalar");
    let row: usize = shape[1..].iter().product();
    let mut out = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        assert!(i < shape[0], "row index {i} out of {}", shape[0]);
        out.extend_from_slice(&ta.data()[i * row..(i + 1) * row]);
    }
    let mut out_shape = shape.clone();
    out_shape[0] = indices.len();
    let out = Tensor::new(out, &out_shape);
    let indices = indices.to_vec();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            let mut grad = Tensor::zeros(&shape);
            for (r, &i) in indices.iter().enumerate() {
                let dst = &mut grad.data_mut()[i * row..(i + 1) * row];
                for (d, &o) in dst.iter_mut().zip(&og.data()[r * row..(r + 1) * row]) {
                    *d += o;
                }
            }
            vec![grad]
        }),
    )
}

/// Selects a contiguous row range `[start, start+len)` along axis 0.
pub fn slice_rows(g: &Graph, a: Var, start: usize, len: usize) -> Var {
    let ta = g.value(a);
    let shape = ta.shape().to_vec();
    let row: usize = shape[1..].iter().product();
    assert!(start + len <= shape[0], "slice_rows out of range");
    let out_data = ta.data()[start * row..(start + len) * row].to_vec();
    let mut out_shape = shape.clone();
    out_shape[0] = len;
    let out = Tensor::new(out_data, &out_shape);
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            let mut grad = Tensor::zeros(&shape);
            grad.data_mut()[start * row..(start + len) * row].copy_from_slice(og.data());
            vec![grad]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn slice_concat_roundtrip() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new((0..12).map(|x| x as f32).collect(), &[3, 4]));
        let left = slice_last(&g, a, 0, 2);
        let right = slice_last(&g, a, 2, 2);
        let back = concat_last(&g, &[left, right]);
        assert_eq!(g.value(back).data(), g.value(a).data());
        let s = sum_all(&g, back);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0; 12]);
    }

    #[test]
    fn time_slice_stack_roundtrip() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new((0..24).map(|x| x as f32).collect(), &[2, 3, 4]));
        let steps: Vec<Var> = (0..3).map(|t| time_slice(&g, a, t)).collect();
        let back = stack_time(&g, &steps);
        assert_eq!(g.value(back).data(), g.value(a).data());
        let s = sum_all(&g, back);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0; 24]);
    }

    #[test]
    fn stack_time_reversed_order() {
        let g = Graph::new();
        let x0 = g.input(Tensor::full(&[1, 2], 0.0));
        let x1 = g.input(Tensor::full(&[1, 2], 1.0));
        let s = stack_time(&g, &[x1, x0]);
        assert_eq!(g.value(s).data(), &[1., 1., 0., 0.]);
    }

    #[test]
    fn concat_slice_rows() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2.], &[1, 2]));
        let b = g.leaf(Tensor::new(vec![3., 4., 5., 6.], &[2, 2]));
        let c = concat_rows(&g, &[a, b]);
        assert_eq!(g.shape_of(c), vec![3, 2]);
        let top = slice_rows(&g, c, 0, 1);
        assert_eq!(g.value(top).data(), &[1., 2.]);
        let s = sum_all(&g, top);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1., 1.]);
        assert_eq!(g.grad(b).unwrap().data(), &[0.0; 4]);
    }

    #[test]
    fn select_rows_gathers_and_scatters() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[3, 2]));
        let s = select_rows(&g, a, &[2, 0, 2]);
        assert_eq!(g.value(s).data(), &[5., 6., 1., 2., 5., 6.]);
        let total = sum_all(&g, s);
        g.backward(total);
        assert_eq!(g.grad(a).unwrap().data(), &[1., 1., 0., 0., 2., 2.]);
    }

    #[test]
    fn reshape_grad_flows() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4.], &[2, 2]));
        let r = reshape(&g, a, &[4]);
        let s = sum_all(&g, r);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().shape(), &[2, 2]);
    }
}
