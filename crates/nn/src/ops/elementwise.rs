//! Broadcasting elementwise arithmetic.

use crate::graph::{Graph, Var};
use crate::tensor::{broadcast_zip, reduce_to_shape, Tensor};

/// `a + b` with NumPy broadcasting.
pub fn add(g: &Graph, a: Var, b: Var) -> Var {
    let ta = g.value(a);
    let tb = g.value(b);
    let out = broadcast_zip(&ta, &tb, |x, y| x + y);
    let (sa, sb) = (ta.shape().to_vec(), tb.shape().to_vec());
    g.op(
        out,
        vec![a, b],
        Box::new(move |og| vec![reduce_to_shape(og, &sa), reduce_to_shape(og, &sb)]),
    )
}

/// `a - b` with broadcasting.
pub fn sub(g: &Graph, a: Var, b: Var) -> Var {
    let ta = g.value(a);
    let tb = g.value(b);
    let out = broadcast_zip(&ta, &tb, |x, y| x - y);
    let (sa, sb) = (ta.shape().to_vec(), tb.shape().to_vec());
    g.op(
        out,
        vec![a, b],
        Box::new(move |og| {
            let gb = reduce_to_shape(og, &sb).map(|x| -x);
            vec![reduce_to_shape(og, &sa), gb]
        }),
    )
}

/// Hadamard `a * b` with broadcasting.
pub fn mul(g: &Graph, a: Var, b: Var) -> Var {
    let ta = g.value(a);
    let tb = g.value(b);
    let out = broadcast_zip(&ta, &tb, |x, y| x * y);
    let (sa, sb) = (ta.shape().to_vec(), tb.shape().to_vec());
    g.op(
        out,
        vec![a, b],
        Box::new(move |og| {
            let ga = reduce_to_shape(&broadcast_zip(og, &tb, |o, y| o * y), &sa);
            let gb = reduce_to_shape(&broadcast_zip(og, &ta, |o, x| o * x), &sb);
            vec![ga, gb]
        }),
    )
}

/// `a / b` with broadcasting.
pub fn div(g: &Graph, a: Var, b: Var) -> Var {
    let ta = g.value(a);
    let tb = g.value(b);
    let out = broadcast_zip(&ta, &tb, |x, y| x / y);
    let (sa, sb) = (ta.shape().to_vec(), tb.shape().to_vec());
    g.op(
        out,
        vec![a, b],
        Box::new(move |og| {
            let ga = reduce_to_shape(&broadcast_zip(og, &tb, |o, y| o / y), &sa);
            // d(a/b)/db = -a / b^2
            let t = broadcast_zip(&ta, &tb, |x, y| -x / (y * y));
            let gb = reduce_to_shape(&broadcast_zip(og, &t, |o, v| o * v), &sb);
            vec![ga, gb]
        }),
    )
}

/// `-a`.
pub fn neg(g: &Graph, a: Var) -> Var {
    let out = g.value(a).map(|x| -x);
    g.op(out, vec![a], Box::new(move |og| vec![og.map(|x| -x)]))
}

/// `s * a` for scalar `s`.
pub fn scale(g: &Graph, a: Var, s: f32) -> Var {
    let out = g.value(a).map(|x| s * x);
    g.op(out, vec![a], Box::new(move |og| vec![og.map(|x| s * x)]))
}

/// `a + s` for scalar `s`.
pub fn add_scalar(g: &Graph, a: Var, s: f32) -> Var {
    let out = g.value(a).map(|x| x + s);
    g.op(out, vec![a], Box::new(move |og| vec![og.clone()]))
}

/// Elementwise square.
pub fn square(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let out = ta.map(|x| x * x);
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            vec![Tensor::new(
                og.data()
                    .iter()
                    .zip(ta.data())
                    .map(|(&o, &x)| 2.0 * x * o)
                    .collect(),
                ta.shape(),
            )]
        }),
    )
}

/// Elementwise square root (inputs must be positive for a stable gradient).
pub fn sqrt(g: &Graph, a: Var) -> Var {
    let out = g.value(a).map(|x| x.sqrt());
    let tv = out.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            vec![Tensor::new(
                og.data()
                    .iter()
                    .zip(tv.data())
                    .map(|(&o, &s)| o / (2.0 * s.max(1e-12)))
                    .collect(),
                tv.shape(),
            )]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_broadcast_bias() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]));
        let b = g.leaf(Tensor::new(vec![10., 20., 30.], &[3]));
        let c = add(&g, a, b);
        assert_eq!(g.value(c).data(), &[11., 22., 33., 14., 25., 36.]);
        let s = crate::ops::sum_all(&g, c);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().data(), &[2., 2., 2.]);
        assert_eq!(g.grad(a).unwrap().data(), &[1.; 6]);
    }

    #[test]
    fn mul_grad() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![2., 3.], &[2]));
        let b = g.leaf(Tensor::new(vec![5., 7.], &[2]));
        let c = mul(&g, a, b);
        let s = crate::ops::sum_all(&g, c);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[5., 7.]);
        assert_eq!(g.grad(b).unwrap().data(), &[2., 3.]);
    }

    #[test]
    fn div_grad() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![6.0], &[1]));
        let b = g.leaf(Tensor::new(vec![3.0], &[1]));
        let c = div(&g, a, b);
        let s = crate::ops::sum_all(&g, c);
        g.backward(s);
        assert!((g.grad(a).unwrap().data()[0] - 1.0 / 3.0).abs() < 1e-6);
        assert!((g.grad(b).unwrap().data()[0] + 6.0 / 9.0).abs() < 1e-6);
    }
}
