//! Fused layer kernels: layer norm and per-timestep RNN gate math.
//!
//! The compositional forms of these layers put a dozen small nodes on the
//! tape per call (per timestep, for the RNNs). Fusing them into single ops
//! with analytic backward passes keeps the tape short, runs the row math in
//! one chunk-parallel sweep, and stashes only the activations the backward
//! pass actually needs.
//!
//! Determinism: all row loops follow the [`kernels::parallel_for`] contract
//! (each output row produced by exactly one chunk, fixed per-element order),
//! and the matmuls delegate to the blocked kernels, so results are bitwise
//! identical at every thread count.

use crate::graph::{Graph, Var};
use crate::kernels::{self, arena, SharedMut};
use crate::tensor::Tensor;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Rows-per-chunk grain targeting [`kernels::ELEM_GRAIN`] elements per chunk.
fn row_grain(d: usize) -> usize {
    (kernels::ELEM_GRAIN / d.max(1)).max(1)
}

/// `db[j] += Σ_i m[i,j]` over an `[rows, d]` matrix, ascending `i`.
fn colsum_into(m: &[f32], rows: usize, d: usize, db: &mut [f32]) {
    for r in 0..rows {
        for (o, &x) in db.iter_mut().zip(&m[r * d..(r + 1) * d]) {
            *o += x;
        }
    }
}

/// Layer normalization over the last axis with learned scale and shift:
/// `y = (x - mean) / sqrt(var + eps) * gamma + beta`.
///
/// `x` is `[.., d]`; `gamma` and `beta` are `[d]`.
pub fn layer_norm(g: &Graph, x: Var, gamma: Var, beta: Var, eps: f32) -> Var {
    let tx = g.value(x);
    let tgamma = g.value(gamma);
    let tbeta = g.value(beta);
    let d = *tx.shape().last().expect("layer_norm on scalar");
    assert_eq!(tgamma.len(), d, "layer_norm gamma width");
    assert_eq!(tbeta.len(), d, "layer_norm beta width");
    let rows = tx.len() / d.max(1);

    let mut out = arena::take_zeroed(tx.len());
    let mut xhat = arena::take_zeroed(tx.len());
    let mut rstd = arena::take_zeroed(rows);
    {
        let ov = SharedMut::new(&mut out);
        let xv = SharedMut::new(&mut xhat);
        let rv = SharedMut::new(&mut rstd);
        let (src, gam, bet) = (tx.data(), tgamma.data(), tbeta.data());
        kernels::parallel_for(rows, row_grain(d), |r0, r1| {
            // SAFETY: row ranges are disjoint across chunks.
            let orows = unsafe { ov.range(r0 * d, r1 * d) };
            let xrows = unsafe { xv.range(r0 * d, r1 * d) };
            let rs = unsafe { rv.range(r0, r1) };
            for (i, r) in (r0..r1).enumerate() {
                let row = &src[r * d..(r + 1) * d];
                let mu = row.iter().sum::<f32>() / d as f32;
                let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
                let rst = 1.0 / (var + eps).sqrt();
                rs[i] = rst;
                let orow = &mut orows[i * d..(i + 1) * d];
                let xrow = &mut xrows[i * d..(i + 1) * d];
                for j in 0..d {
                    let xh = (row[j] - mu) * rst;
                    xrow[j] = xh;
                    orow[j] = xh * gam[j] + bet[j];
                }
            }
        });
    }
    let xhat = Tensor::new(xhat, &[rows, d]);
    let rstd = Tensor::new(rstd, &[rows]);
    let out = Tensor::new(out, tx.shape());
    let xshape = tx.shape().to_vec();

    g.op(
        out,
        vec![x, gamma, beta],
        Box::new(move |og| {
            let ogd = og.data();
            let (xh, rs, gam) = (xhat.data(), rstd.data(), tgamma.data());

            // Column reductions run serially over ascending rows.
            let mut dgamma = arena::take_zeroed(d);
            let mut dbeta = arena::take_zeroed(d);
            colsum_into(ogd, rows, d, &mut dbeta);
            for r in 0..rows {
                for j in 0..d {
                    dgamma[j] += ogd[r * d + j] * xh[r * d + j];
                }
            }

            // dx = rstd * (dxhat - mean(dxhat) - xhat * mean(dxhat * xhat))
            let mut dx = arena::take_zeroed(rows * d);
            let dv = SharedMut::new(&mut dx);
            kernels::parallel_for(rows, row_grain(d), |r0, r1| {
                // SAFETY: row ranges are disjoint across chunks.
                let drows = unsafe { dv.range(r0 * d, r1 * d) };
                for (i, r) in (r0..r1).enumerate() {
                    let (mut m1, mut m2) = (0.0f32, 0.0f32);
                    for j in 0..d {
                        let dxh = ogd[r * d + j] * gam[j];
                        m1 += dxh;
                        m2 += dxh * xh[r * d + j];
                    }
                    m1 /= d as f32;
                    m2 /= d as f32;
                    let rst = rs[r];
                    let drow = &mut drows[i * d..(i + 1) * d];
                    for j in 0..d {
                        let dxh = ogd[r * d + j] * gam[j];
                        drow[j] = rst * (dxh - m1 - xh[r * d + j] * m2);
                    }
                }
            });
            vec![
                Tensor::new(dx, &xshape),
                Tensor::new(dgamma, &[d]),
                Tensor::new(dbeta, &[d]),
            ]
        }),
    )
}

/// One LSTM timestep, fused: returns `[B, 2H]` holding `h' ‖ c'`.
///
/// Gate order in `wx`/`wh`/`b` is `i, f, g, o` (matching
/// [`crate::layers::Lstm`]). Inputs: `xt` is `[B, D]`, `h`/`c` are `[B, H]`,
/// `wx` is `[D, 4H]`, `wh` is `[H, 4H]`, `b` is `[4H]`.
pub fn lstm_cell(g: &Graph, xt: Var, h: Var, c: Var, wx: Var, wh: Var, b: Var) -> Var {
    let txt = g.value(xt);
    let th = g.value(h);
    let tc = g.value(c);
    let twx = g.value(wx);
    let twh = g.value(wh);
    let tb = g.value(b);
    let (bsz, din) = (txt.shape()[0], txt.shape()[1]);
    let hsz = th.shape()[1];
    assert_eq!(twx.shape(), &[din, 4 * hsz], "lstm_cell wx shape");
    assert_eq!(twh.shape(), &[hsz, 4 * hsz], "lstm_cell wh shape");
    assert_eq!(tb.len(), 4 * hsz, "lstm_cell bias width");

    // S = xt·wx + h·wh + b  (both matmuls accumulate into one buffer; each
    // element gets one fused dot-product add per matmul, same order as the
    // compositional gx + gh + b).
    let mut s = arena::take_zeroed(bsz * 4 * hsz);
    kernels::mm(txt.data(), twx.data(), &mut s, bsz, din, 4 * hsz);
    kernels::mm(th.data(), twh.data(), &mut s, bsz, hsz, 4 * hsz);

    let mut acts = arena::take_zeroed(bsz * 4 * hsz); // i,f,g,o post-activation
    let mut out = arena::take_zeroed(bsz * 2 * hsz); // h' ‖ c'
    let mut tanh_c = arena::take_zeroed(bsz * hsz);
    {
        let av = SharedMut::new(&mut acts);
        let ov = SharedMut::new(&mut out);
        let tv = SharedMut::new(&mut tanh_c);
        let (sv, bias, cprev) = (&s[..], tb.data(), tc.data());
        kernels::parallel_for(bsz, row_grain(4 * hsz), |r0, r1| {
            // SAFETY: batch-row ranges are disjoint across chunks.
            let arows = unsafe { av.range(r0 * 4 * hsz, r1 * 4 * hsz) };
            let orows = unsafe { ov.range(r0 * 2 * hsz, r1 * 2 * hsz) };
            let trows = unsafe { tv.range(r0 * hsz, r1 * hsz) };
            for (i, r) in (r0..r1).enumerate() {
                let srow = &sv[r * 4 * hsz..(r + 1) * 4 * hsz];
                let arow = &mut arows[i * 4 * hsz..(i + 1) * 4 * hsz];
                let orow = &mut orows[i * 2 * hsz..(i + 1) * 2 * hsz];
                let trow = &mut trows[i * hsz..(i + 1) * hsz];
                for j in 0..hsz {
                    let ig = sigmoid(srow[j] + bias[j]);
                    let fg = sigmoid(srow[hsz + j] + bias[hsz + j]);
                    let gg = (srow[2 * hsz + j] + bias[2 * hsz + j]).tanh();
                    let og = sigmoid(srow[3 * hsz + j] + bias[3 * hsz + j]);
                    arow[j] = ig;
                    arow[hsz + j] = fg;
                    arow[2 * hsz + j] = gg;
                    arow[3 * hsz + j] = og;
                    let cnew = fg * cprev[r * hsz + j] + ig * gg;
                    let tcn = cnew.tanh();
                    trow[j] = tcn;
                    orow[j] = og * tcn; // h'
                    orow[hsz + j] = cnew; // c'
                }
            }
        });
    }
    arena::give(s);
    let acts = Tensor::new(acts, &[bsz, 4 * hsz]);
    let tanh_c = Tensor::new(tanh_c, &[bsz, hsz]);
    let out = Tensor::new(out, &[bsz, 2 * hsz]);

    g.op(
        out,
        vec![xt, h, c, wx, wh, b],
        Box::new(move |og| {
            let ogd = og.data();
            let (a, tcn, cprev) = (acts.data(), tanh_c.data(), tc.data());

            // Pre-activation gate grads dS [B,4H] plus dc_prev [B,H].
            let mut ds = arena::take_zeroed(bsz * 4 * hsz);
            let mut dcprev = arena::take_zeroed(bsz * hsz);
            {
                let dsv = SharedMut::new(&mut ds);
                let dcv = SharedMut::new(&mut dcprev);
                kernels::parallel_for(bsz, row_grain(4 * hsz), |r0, r1| {
                    // SAFETY: batch-row ranges are disjoint across chunks.
                    let dsrows = unsafe { dsv.range(r0 * 4 * hsz, r1 * 4 * hsz) };
                    let dcrows = unsafe { dcv.range(r0 * hsz, r1 * hsz) };
                    for (i, r) in (r0..r1).enumerate() {
                        let arow = &a[r * 4 * hsz..(r + 1) * 4 * hsz];
                        let dsrow = &mut dsrows[i * 4 * hsz..(i + 1) * 4 * hsz];
                        let dcrow = &mut dcrows[i * hsz..(i + 1) * hsz];
                        for j in 0..hsz {
                            let (ig, fg, gg, ogate) =
                                (arow[j], arow[hsz + j], arow[2 * hsz + j], arow[3 * hsz + j]);
                            let tcv = tcn[r * hsz + j];
                            let dh = ogd[r * 2 * hsz + j];
                            let dc_ext = ogd[r * 2 * hsz + hsz + j];
                            let d_o = dh * tcv;
                            let dc_tot = dc_ext + dh * ogate * (1.0 - tcv * tcv);
                            let di = dc_tot * gg;
                            let df = dc_tot * cprev[r * hsz + j];
                            let dg = dc_tot * ig;
                            dsrow[j] = di * ig * (1.0 - ig);
                            dsrow[hsz + j] = df * fg * (1.0 - fg);
                            dsrow[2 * hsz + j] = dg * (1.0 - gg * gg);
                            dsrow[3 * hsz + j] = d_o * ogate * (1.0 - ogate);
                            dcrow[j] = dc_tot * fg;
                        }
                    }
                });
            }

            // Weight/input grads through the transposed-operand kernels.
            let mut dxt = arena::take_zeroed(bsz * din);
            kernels::mm_nt(&ds, twx.data(), &mut dxt, bsz, 4 * hsz, din);
            let mut dh_prev = arena::take_zeroed(bsz * hsz);
            kernels::mm_nt(&ds, twh.data(), &mut dh_prev, bsz, 4 * hsz, hsz);
            let mut dwx = arena::take_zeroed(din * 4 * hsz);
            kernels::mm_tn(txt.data(), &ds, &mut dwx, bsz, din, 4 * hsz);
            let mut dwh = arena::take_zeroed(hsz * 4 * hsz);
            kernels::mm_tn(th.data(), &ds, &mut dwh, bsz, hsz, 4 * hsz);
            let mut db = arena::take_zeroed(4 * hsz);
            colsum_into(&ds, bsz, 4 * hsz, &mut db);
            arena::give(ds);

            vec![
                Tensor::new(dxt, &[bsz, din]),
                Tensor::new(dh_prev, &[bsz, hsz]),
                Tensor::new(dcprev, &[bsz, hsz]),
                Tensor::new(dwx, &[din, 4 * hsz]),
                Tensor::new(dwh, &[hsz, 4 * hsz]),
                Tensor::new(db, &[4 * hsz]),
            ]
        }),
    )
}

/// One GRU timestep, fused: returns the new hidden state `[B, H]`.
///
/// Gate order in `wx`/`wh`/`b` is `z, r, n` (matching [`crate::layers::Gru`]);
/// the bias applies to the input path only, and the candidate gate uses
/// `tanh(gx_n + r ⊙ gh_n)` — the same "reset after projection" form as the
/// compositional layer.
pub fn gru_cell(g: &Graph, xt: Var, h: Var, wx: Var, wh: Var, b: Var) -> Var {
    let txt = g.value(xt);
    let th = g.value(h);
    let twx = g.value(wx);
    let twh = g.value(wh);
    let tb = g.value(b);
    let (bsz, din) = (txt.shape()[0], txt.shape()[1]);
    let hsz = th.shape()[1];
    assert_eq!(twx.shape(), &[din, 3 * hsz], "gru_cell wx shape");
    assert_eq!(twh.shape(), &[hsz, 3 * hsz], "gru_cell wh shape");
    assert_eq!(tb.len(), 3 * hsz, "gru_cell bias width");

    let mut gx = arena::take_zeroed(bsz * 3 * hsz);
    kernels::mm(txt.data(), twx.data(), &mut gx, bsz, din, 3 * hsz);
    let mut gh = arena::take_zeroed(bsz * 3 * hsz);
    kernels::mm(th.data(), twh.data(), &mut gh, bsz, hsz, 3 * hsz);

    let mut acts = arena::take_zeroed(bsz * 3 * hsz); // z,r,n post-activation
    let mut out = arena::take_zeroed(bsz * hsz);
    {
        let av = SharedMut::new(&mut acts);
        let ov = SharedMut::new(&mut out);
        let (gxv, ghv, bias, hprev) = (&gx[..], &gh[..], tb.data(), th.data());
        kernels::parallel_for(bsz, row_grain(3 * hsz), |r0, r1| {
            // SAFETY: batch-row ranges are disjoint across chunks.
            let arows = unsafe { av.range(r0 * 3 * hsz, r1 * 3 * hsz) };
            let orows = unsafe { ov.range(r0 * hsz, r1 * hsz) };
            for (i, r) in (r0..r1).enumerate() {
                let gxrow = &gxv[r * 3 * hsz..(r + 1) * 3 * hsz];
                let ghrow = &ghv[r * 3 * hsz..(r + 1) * 3 * hsz];
                let arow = &mut arows[i * 3 * hsz..(i + 1) * 3 * hsz];
                let orow = &mut orows[i * hsz..(i + 1) * hsz];
                for j in 0..hsz {
                    let z = sigmoid(gxrow[j] + bias[j] + ghrow[j]);
                    let r_ = sigmoid(gxrow[hsz + j] + bias[hsz + j] + ghrow[hsz + j]);
                    let n =
                        (gxrow[2 * hsz + j] + bias[2 * hsz + j] + r_ * ghrow[2 * hsz + j]).tanh();
                    arow[j] = z;
                    arow[hsz + j] = r_;
                    arow[2 * hsz + j] = n;
                    orow[j] = (1.0 - z) * n + z * hprev[r * hsz + j];
                }
            }
        });
    }
    arena::give(gx);
    let gh = Tensor::new(gh, &[bsz, 3 * hsz]);
    let acts = Tensor::new(acts, &[bsz, 3 * hsz]);
    let out = Tensor::new(out, &[bsz, hsz]);

    g.op(
        out,
        vec![xt, h, wx, wh, b],
        Box::new(move |og| {
            let ogd = og.data();
            let (a, ghd, hprev) = (acts.data(), gh.data(), th.data());

            // dGx/dGh pre-activation grads [B,3H] plus the direct dh term.
            let mut dgx = arena::take_zeroed(bsz * 3 * hsz);
            let mut dgh = arena::take_zeroed(bsz * 3 * hsz);
            let mut dh_prev = arena::take_zeroed(bsz * hsz); // starts as direct term
            {
                let dxv = SharedMut::new(&mut dgx);
                let dhv = SharedMut::new(&mut dgh);
                let ddv = SharedMut::new(&mut dh_prev);
                kernels::parallel_for(bsz, row_grain(3 * hsz), |r0, r1| {
                    // SAFETY: batch-row ranges are disjoint across chunks.
                    let dxrows = unsafe { dxv.range(r0 * 3 * hsz, r1 * 3 * hsz) };
                    let dhrows = unsafe { dhv.range(r0 * 3 * hsz, r1 * 3 * hsz) };
                    let ddrows = unsafe { ddv.range(r0 * hsz, r1 * hsz) };
                    for (i, r) in (r0..r1).enumerate() {
                        let arow = &a[r * 3 * hsz..(r + 1) * 3 * hsz];
                        let ghrow = &ghd[r * 3 * hsz..(r + 1) * 3 * hsz];
                        let dxrow = &mut dxrows[i * 3 * hsz..(i + 1) * 3 * hsz];
                        let dhrow = &mut dhrows[i * 3 * hsz..(i + 1) * 3 * hsz];
                        let ddrow = &mut ddrows[i * hsz..(i + 1) * hsz];
                        for j in 0..hsz {
                            let (z, r_, n) = (arow[j], arow[hsz + j], arow[2 * hsz + j]);
                            let dh = ogd[r * hsz + j];
                            let dn = dh * (1.0 - z);
                            let dz = dh * (hprev[r * hsz + j] - n);
                            let ds_n = dn * (1.0 - n * n);
                            let dr = ds_n * ghrow[2 * hsz + j];
                            let ds_z = dz * z * (1.0 - z);
                            let ds_r = dr * r_ * (1.0 - r_);
                            dxrow[j] = ds_z;
                            dxrow[hsz + j] = ds_r;
                            dxrow[2 * hsz + j] = ds_n;
                            dhrow[j] = ds_z;
                            dhrow[hsz + j] = ds_r;
                            dhrow[2 * hsz + j] = ds_n * r_;
                            ddrow[j] = dh * z;
                        }
                    }
                });
            }

            let mut dxt = arena::take_zeroed(bsz * din);
            kernels::mm_nt(&dgx, twx.data(), &mut dxt, bsz, 3 * hsz, din);
            // mm_nt accumulates, so the direct z ⊙ dh term pre-fills dh_prev.
            kernels::mm_nt(&dgh, twh.data(), &mut dh_prev, bsz, 3 * hsz, hsz);
            let mut dwx = arena::take_zeroed(din * 3 * hsz);
            kernels::mm_tn(txt.data(), &dgx, &mut dwx, bsz, din, 3 * hsz);
            let mut dwh = arena::take_zeroed(hsz * 3 * hsz);
            kernels::mm_tn(th.data(), &dgh, &mut dwh, bsz, hsz, 3 * hsz);
            let mut db = arena::take_zeroed(3 * hsz);
            colsum_into(&dgx, bsz, 3 * hsz, &mut db);
            arena::give(dgx);
            arena::give(dgh);

            vec![
                Tensor::new(dxt, &[bsz, din]),
                Tensor::new(dh_prev, &[bsz, hsz]),
                Tensor::new(dwx, &[din, 3 * hsz]),
                Tensor::new(dwh, &[hsz, 3 * hsz]),
                Tensor::new(db, &[3 * hsz]),
            ]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    #[test]
    fn layer_norm_standardizes_rows() {
        let g = Graph::new();
        let x = g.input(Tensor::new(
            vec![1., 2., 3., 4., 10., 20., 30., 40.],
            &[2, 4],
        ));
        let gamma = g.input(Tensor::ones(&[4]));
        let beta = g.input(Tensor::zeros(&[4]));
        let y = layer_norm(&g, x, gamma, beta, 1e-5);
        for row in g.value(y).data().chunks_exact(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&a| (a - mean) * (a - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layer_norm_matches_compositional_grads() {
        // Same function built from primitives; both grads must agree.
        let g = Graph::new();
        let data = vec![0.5, -1.0, 2.0, 0.1, 0.9, -0.3];
        let x1 = g.leaf(Tensor::new(data.clone(), &[2, 3]));
        let gamma1 = g.leaf(Tensor::new(vec![1.1, 0.9, 1.3], &[3]));
        let beta1 = g.leaf(Tensor::new(vec![0.2, -0.1, 0.0], &[3]));
        let y1 = layer_norm(&g, x1, gamma1, beta1, 1e-5);

        let x2 = g.leaf(Tensor::new(data, &[2, 3]));
        let gamma2 = g.leaf(Tensor::new(vec![1.1, 0.9, 1.3], &[3]));
        let beta2 = g.leaf(Tensor::new(vec![0.2, -0.1, 0.0], &[3]));
        let mu = ops::mean_axis(&g, x2, 1, true);
        let centered = ops::sub(&g, x2, mu);
        let var = ops::mean_axis(&g, ops::square(&g, centered), 1, true);
        let std = ops::sqrt(&g, ops::add_scalar(&g, var, 1e-5));
        let normed = ops::div(&g, centered, std);
        let y2 = ops::add(&g, ops::mul(&g, normed, gamma2), beta2);

        for (a, b) in g.value(y1).data().iter().zip(g.value(y2).data()) {
            assert!((a - b).abs() < 1e-5, "forward mismatch {a} vs {b}");
        }
        let s = ops::add(&g, y1, y2);
        let total = ops::sum_all(&g, s);
        g.backward(total);
        for (p1, p2) in [(x1, x2), (gamma1, gamma2), (beta1, beta2)] {
            let g1 = g.grad(p1).unwrap();
            let g2 = g.grad(p2).unwrap();
            for (a, b) in g1.data().iter().zip(g2.data()) {
                assert!((a - b).abs() < 1e-4, "grad mismatch {a} vs {b}");
            }
        }
    }

    #[test]
    fn lstm_cell_output_layout() {
        let g = Graph::new();
        let xt = g.input(Tensor::ones(&[2, 3]));
        let h = g.input(Tensor::zeros(&[2, 4]));
        let c = g.input(Tensor::zeros(&[2, 4]));
        let wx = g.input(Tensor::zeros(&[3, 16]));
        let wh = g.input(Tensor::zeros(&[4, 16]));
        let b = g.input(Tensor::zeros(&[16]));
        let hc = lstm_cell(&g, xt, h, c, wx, wh, b);
        assert_eq!(g.shape_of(hc), vec![2, 8]);
        // All-zero weights: i=f=o=0.5, g=0 → c'=0, h'=0.
        assert!(g.value(hc).data().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn gru_cell_zero_weights_keep_state() {
        let g = Graph::new();
        let xt = g.input(Tensor::ones(&[2, 3]));
        let h = g.input(Tensor::new(vec![0.3; 8], &[2, 4]));
        let wx = g.input(Tensor::zeros(&[3, 12]));
        let wh = g.input(Tensor::zeros(&[4, 12]));
        let b = g.input(Tensor::zeros(&[12]));
        let h2 = gru_cell(&g, xt, h, wx, wh, b);
        // z=0.5, n=0 → h' = 0.5*h
        for &v in g.value(h2).data() {
            assert!((v - 0.15).abs() < 1e-6);
        }
    }
}
