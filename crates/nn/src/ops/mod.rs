//! Differentiable operations on [`crate::graph::Graph`] tapes.
//!
//! Every op is a free function taking the graph plus operand [`Var`]s and
//! returning a new [`Var`]; the backward closure is recorded on the tape.
//!
//! [`Var`]: crate::graph::Var

mod activation;
mod elementwise;
mod fused;
mod matmul;
mod reduce;
mod shape;
mod special;

pub use activation::{exp, gelu, gelu_scalar, log, log_softmax, relu, sigmoid, softmax, tanh};
pub use elementwise::{add, add_scalar, div, mul, neg, scale, sqrt, square, sub};
pub use fused::{gru_cell, layer_norm, lstm_cell};
pub use matmul::{matmul, matmul_nt, transpose_last2};
pub use reduce::{mean_all, mean_axis, sum_all, sum_axis};
pub use shape::{
    concat_last, concat_rows, reshape, select_rows, slice_last, slice_rows, stack_time, time_slice,
};
pub use special::{detach, dropout, embedding, grl, spike};
