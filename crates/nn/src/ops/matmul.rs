//! Matrix multiplication (2-D, batched 3-D, and mixed) plus transpose.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

/// Raw 2-D matmul on buffers: `c[m,n] += a[m,k] * b[k,n]`.
fn mm_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    // ikj loop order: streams through b and c rows, cache-friendly.
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &b[p * n..(p + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Transposes a 2-D buffer.
fn t2(a: &[f32], m: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0; a.len()];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = a[i * n + j];
        }
    }
    out
}

fn mm2(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dim: {:?} x {:?}", a.shape(), b.shape());
    let mut c = vec![0.0; m * n];
    mm_into(a.data(), b.data(), &mut c, m, k, n);
    Tensor::new(c, &[m, n])
}

/// `a @ b`.
///
/// Supported shapes:
/// - `[m,k] x [k,n] -> [m,n]`
/// - `[b,m,k] x [b,k,n] -> [b,m,n]` (batched)
/// - `[b,m,k] x [k,n] -> [b,m,n]` (shared right operand)
pub fn matmul(g: &Graph, a: Var, b: Var) -> Var {
    let ta = g.value(a);
    let tb = g.value(b);
    match (ta.shape().len(), tb.shape().len()) {
        (2, 2) => {
            let out = mm2(&ta, &tb);
            g.op(
                out,
                vec![a, b],
                Box::new(move |og| {
                    let (m, k) = (ta.shape()[0], ta.shape()[1]);
                    let n = tb.shape()[1];
                    // dA = dC @ B^T ; dB = A^T @ dC
                    let bt = Tensor::new(t2(tb.data(), k, n), &[n, k]);
                    let at = Tensor::new(t2(ta.data(), m, k), &[k, m]);
                    vec![mm2(og, &bt), mm2(&at, og)]
                }),
            )
        }
        (3, 3) => {
            let (bs, m, k) = (ta.shape()[0], ta.shape()[1], ta.shape()[2]);
            let (bs2, k2, n) = (tb.shape()[0], tb.shape()[1], tb.shape()[2]);
            assert_eq!(bs, bs2, "batched matmul batch mismatch");
            assert_eq!(k, k2, "batched matmul inner dim");
            let mut out = vec![0.0; bs * m * n];
            for i in 0..bs {
                mm_into(
                    &ta.data()[i * m * k..(i + 1) * m * k],
                    &tb.data()[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            let out = Tensor::new(out, &[bs, m, n]);
            g.op(
                out,
                vec![a, b],
                Box::new(move |og| {
                    let mut ga = vec![0.0; bs * m * k];
                    let mut gb = vec![0.0; bs * k * n];
                    for i in 0..bs {
                        let ogi = &og.data()[i * m * n..(i + 1) * m * n];
                        let ai = &ta.data()[i * m * k..(i + 1) * m * k];
                        let bi = &tb.data()[i * k * n..(i + 1) * k * n];
                        let bt = t2(bi, k, n);
                        let at = t2(ai, m, k);
                        mm_into(ogi, &bt, &mut ga[i * m * k..(i + 1) * m * k], m, n, k);
                        mm_into(&at, ogi, &mut gb[i * k * n..(i + 1) * k * n], k, m, n);
                    }
                    vec![Tensor::new(ga, &[bs, m, k]), Tensor::new(gb, &[bs, k, n])]
                }),
            )
        }
        (3, 2) => {
            // Fold batch into rows: [b*m,k] x [k,n].
            let (bs, m, k) = (ta.shape()[0], ta.shape()[1], ta.shape()[2]);
            let n = tb.shape()[1];
            assert_eq!(k, tb.shape()[0], "matmul inner dim");
            let a2 = ta.reshape(&[bs * m, k]);
            let out = mm2(&a2, &tb).reshape(&[bs, m, n]);
            g.op(
                out,
                vec![a, b],
                Box::new(move |og| {
                    let og2 = og.reshape(&[bs * m, n]);
                    let bt = Tensor::new(t2(tb.data(), k, n), &[n, k]);
                    let a2 = ta.reshape(&[bs * m, k]);
                    let at = Tensor::new(t2(a2.data(), bs * m, k), &[k, bs * m]);
                    vec![mm2(&og2, &bt).reshape(&[bs, m, k]), mm2(&at, &og2)]
                }),
            )
        }
        (la, lb) => panic!("unsupported matmul ranks {la} x {lb}"),
    }
}

/// Transposes the last two axes of a 2-D or 3-D tensor.
pub fn transpose_last2(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let out = transpose_last2_t(&ta);
    g.op(out, vec![a], Box::new(move |og| vec![transpose_last2_t(og)]))
}

fn transpose_last2_t(t: &Tensor) -> Tensor {
    match t.shape().len() {
        2 => {
            let (m, n) = (t.shape()[0], t.shape()[1]);
            Tensor::new(t2(t.data(), m, n), &[n, m])
        }
        3 => {
            let (b, m, n) = (t.shape()[0], t.shape()[1], t.shape()[2]);
            let mut out = vec![0.0; t.len()];
            for i in 0..b {
                let src = &t.data()[i * m * n..(i + 1) * m * n];
                let dst = &mut out[i * m * n..(i + 1) * m * n];
                for r in 0..m {
                    for c in 0..n {
                        dst[c * m + r] = src[r * n + c];
                    }
                }
            }
            Tensor::new(out, &[b, n, m])
        }
        r => panic!("transpose_last2 on rank-{r} tensor"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn matmul_2d_forward() {
        let g = Graph::new();
        let a = g.input(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]));
        let b = g.input(Tensor::new(vec![7., 8., 9., 10., 11., 12.], &[3, 2]));
        let c = matmul(&g, a, b);
        assert_eq!(g.value(c).data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_2d_grad() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4.], &[2, 2]));
        let b = g.leaf(Tensor::new(vec![5., 6., 7., 8.], &[2, 2]));
        let c = matmul(&g, a, b);
        let s = sum_all(&g, c);
        g.backward(s);
        // dA = 1 @ B^T : each row = column sums of B^T rows = [11, 15]
        assert_eq!(g.grad(a).unwrap().data(), &[11., 15., 11., 15.]);
        assert_eq!(g.grad(b).unwrap().data(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn matmul_batched_matches_per_slice() {
        let g = Graph::new();
        let a = g.input(Tensor::new((0..12).map(|x| x as f32).collect(), &[2, 2, 3]));
        let b = g.input(Tensor::new((0..18).map(|x| x as f32).collect(), &[2, 3, 3]));
        let c = matmul(&g, a, b);
        assert_eq!(g.shape_of(c), vec![2, 2, 3]);
        // slice 0: [[0,1,2],[3,4,5]] @ [[0,1,2],[3,4,5],[6,7,8]]
        let v = g.value(c);
        assert_eq!(&v.data()[0..3], &[15., 18., 21.]);
    }

    #[test]
    fn matmul_3d_2d_shared_rhs() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 3, 4]));
        let b = g.leaf(Tensor::ones(&[4, 5]));
        let c = matmul(&g, a, b);
        assert_eq!(g.shape_of(c), vec![2, 3, 5]);
        assert_eq!(g.value(c).data()[0], 4.0);
        let s = sum_all(&g, c);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().data()[0], 6.0); // 2*3 rows each contributing 1
    }

    #[test]
    fn transpose_roundtrip() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new((0..6).map(|x| x as f32).collect(), &[2, 3]));
        let t = transpose_last2(&g, a);
        let tt = transpose_last2(&g, t);
        assert_eq!(g.value(tt).data(), g.value(a).data());
        let s = sum_all(&g, t);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0; 6]);
    }
}
