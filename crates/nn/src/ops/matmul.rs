//! Matrix multiplication (2-D, batched 3-D, and mixed) plus transpose.
//!
//! Forward and backward both route through the blocked kernels in
//! [`crate::kernels`]. The backward passes use the transposed-operand entry
//! points (`dA = dC·Bᵀ` via `mm_nt`, `dB = Aᵀ·dC` via `mm_tn`) so no
//! transposed copy of an operand is ever materialized, and the captured
//! operands are copy-on-write clones — capturing them adds pointers to the
//! tape, not buffers.

use crate::graph::{Graph, Var};
use crate::kernels::{self, arena};
use crate::tensor::Tensor;

fn mm2(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.shape()[0], a.shape()[1]);
    let (k2, n) = (b.shape()[0], b.shape()[1]);
    assert_eq!(k, k2, "matmul inner dim: {:?} x {:?}", a.shape(), b.shape());
    let mut c = arena::take_zeroed(m * n);
    kernels::mm(a.data(), b.data(), &mut c, m, k, n);
    Tensor::new(c, &[m, n])
}

/// `a @ b`.
///
/// Supported shapes:
/// - `[m,k] x [k,n] -> [m,n]`
/// - `[b,m,k] x [b,k,n] -> [b,m,n]` (batched)
/// - `[b,m,k] x [k,n] -> [b,m,n]` (shared right operand)
pub fn matmul(g: &Graph, a: Var, b: Var) -> Var {
    let ta = g.value(a);
    let tb = g.value(b);
    match (ta.shape().len(), tb.shape().len()) {
        (2, 2) => {
            let out = mm2(&ta, &tb);
            g.op(
                out,
                vec![a, b],
                Box::new(move |og| {
                    let (m, k) = (ta.shape()[0], ta.shape()[1]);
                    let n = tb.shape()[1];
                    // dA = dC @ B^T ; dB = A^T @ dC — no transposed copies.
                    let mut ga = arena::take_zeroed(m * k);
                    kernels::mm_nt(og.data(), tb.data(), &mut ga, m, n, k);
                    let mut gb = arena::take_zeroed(k * n);
                    kernels::mm_tn(ta.data(), og.data(), &mut gb, m, k, n);
                    vec![Tensor::new(ga, &[m, k]), Tensor::new(gb, &[k, n])]
                }),
            )
        }
        (3, 3) => {
            let (bs, m, k) = (ta.shape()[0], ta.shape()[1], ta.shape()[2]);
            let (bs2, k2, n) = (tb.shape()[0], tb.shape()[1], tb.shape()[2]);
            assert_eq!(bs, bs2, "batched matmul batch mismatch");
            assert_eq!(k, k2, "batched matmul inner dim");
            let mut out = arena::take_zeroed(bs * m * n);
            for i in 0..bs {
                kernels::mm(
                    &ta.data()[i * m * k..(i + 1) * m * k],
                    &tb.data()[i * k * n..(i + 1) * k * n],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            let out = Tensor::new(out, &[bs, m, n]);
            g.op(
                out,
                vec![a, b],
                Box::new(move |og| {
                    let mut ga = arena::take_zeroed(bs * m * k);
                    let mut gb = arena::take_zeroed(bs * k * n);
                    for i in 0..bs {
                        let ogi = &og.data()[i * m * n..(i + 1) * m * n];
                        let ai = &ta.data()[i * m * k..(i + 1) * m * k];
                        let bi = &tb.data()[i * k * n..(i + 1) * k * n];
                        kernels::mm_nt(ogi, bi, &mut ga[i * m * k..(i + 1) * m * k], m, n, k);
                        kernels::mm_tn(ai, ogi, &mut gb[i * k * n..(i + 1) * k * n], m, k, n);
                    }
                    vec![Tensor::new(ga, &[bs, m, k]), Tensor::new(gb, &[bs, k, n])]
                }),
            )
        }
        (3, 2) => {
            // Fold batch into rows: [b*m,k] x [k,n].
            let (bs, m, k) = (ta.shape()[0], ta.shape()[1], ta.shape()[2]);
            let n = tb.shape()[1];
            assert_eq!(k, tb.shape()[0], "matmul inner dim");
            let a2 = ta.reshape(&[bs * m, k]);
            let out = mm2(&a2, &tb).reshape(&[bs, m, n]);
            g.op(
                out,
                vec![a, b],
                Box::new(move |og| {
                    let rows = bs * m;
                    let mut ga = arena::take_zeroed(rows * k);
                    kernels::mm_nt(og.data(), tb.data(), &mut ga, rows, n, k);
                    let mut gb = arena::take_zeroed(k * n);
                    kernels::mm_tn(ta.data(), og.data(), &mut gb, rows, k, n);
                    vec![Tensor::new(ga, &[bs, m, k]), Tensor::new(gb, &[k, n])]
                }),
            )
        }
        (la, lb) => panic!("unsupported matmul ranks {la} x {lb}"),
    }
}

/// `a @ b^T` over the last two axes, without materializing the transpose.
///
/// Supported shapes:
/// - `[m,k] x [n,k] -> [m,n]`
/// - `[b,m,k] x [b,n,k] -> [b,m,n]` (batched; used for attention scores)
pub fn matmul_nt(g: &Graph, a: Var, b: Var) -> Var {
    let ta = g.value(a);
    let tb = g.value(b);
    match (ta.shape().len(), tb.shape().len()) {
        (2, 2) => {
            let (m, k) = (ta.shape()[0], ta.shape()[1]);
            let (n, k2) = (tb.shape()[0], tb.shape()[1]);
            assert_eq!(
                k,
                k2,
                "matmul_nt inner dim: {:?} x {:?}",
                ta.shape(),
                tb.shape()
            );
            let mut out = arena::take_zeroed(m * n);
            kernels::mm_nt(ta.data(), tb.data(), &mut out, m, k, n);
            let out = Tensor::new(out, &[m, n]);
            g.op(
                out,
                vec![a, b],
                Box::new(move |og| {
                    // dA = dC @ B ; dB = dC^T @ A
                    let mut ga = arena::take_zeroed(m * k);
                    kernels::mm(og.data(), tb.data(), &mut ga, m, n, k);
                    let mut gb = arena::take_zeroed(n * k);
                    kernels::mm_tn(og.data(), ta.data(), &mut gb, m, n, k);
                    vec![Tensor::new(ga, &[m, k]), Tensor::new(gb, &[n, k])]
                }),
            )
        }
        (3, 3) => {
            let (bs, m, k) = (ta.shape()[0], ta.shape()[1], ta.shape()[2]);
            let (bs2, n, k2) = (tb.shape()[0], tb.shape()[1], tb.shape()[2]);
            assert_eq!(bs, bs2, "matmul_nt batch mismatch");
            assert_eq!(k, k2, "matmul_nt inner dim");
            let mut out = arena::take_zeroed(bs * m * n);
            for i in 0..bs {
                kernels::mm_nt(
                    &ta.data()[i * m * k..(i + 1) * m * k],
                    &tb.data()[i * n * k..(i + 1) * n * k],
                    &mut out[i * m * n..(i + 1) * m * n],
                    m,
                    k,
                    n,
                );
            }
            let out = Tensor::new(out, &[bs, m, n]);
            g.op(
                out,
                vec![a, b],
                Box::new(move |og| {
                    let mut ga = arena::take_zeroed(bs * m * k);
                    let mut gb = arena::take_zeroed(bs * n * k);
                    for i in 0..bs {
                        let ogi = &og.data()[i * m * n..(i + 1) * m * n];
                        let ai = &ta.data()[i * m * k..(i + 1) * m * k];
                        let bi = &tb.data()[i * n * k..(i + 1) * n * k];
                        kernels::mm(ogi, bi, &mut ga[i * m * k..(i + 1) * m * k], m, n, k);
                        kernels::mm_tn(ogi, ai, &mut gb[i * n * k..(i + 1) * n * k], m, n, k);
                    }
                    vec![Tensor::new(ga, &[bs, m, k]), Tensor::new(gb, &[bs, n, k])]
                }),
            )
        }
        (la, lb) => panic!("unsupported matmul_nt ranks {la} x {lb}"),
    }
}

/// Transposes the last two axes of a 2-D or 3-D tensor.
pub fn transpose_last2(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let out = transpose_last2_t(&ta);
    g.op(
        out,
        vec![a],
        Box::new(move |og| vec![transpose_last2_t(og)]),
    )
}

fn transpose_last2_t(t: &Tensor) -> Tensor {
    let (b, m, n) = match *t.shape() {
        [m, n] => (1, m, n),
        [b, m, n] => (b, m, n),
        ref s => panic!("transpose_last2 on rank-{} tensor", s.len()),
    };
    let mut out = arena::take_zeroed(t.len());
    for i in 0..b {
        let src = &t.data()[i * m * n..(i + 1) * m * n];
        let dst = &mut out[i * m * n..(i + 1) * m * n];
        for r in 0..m {
            for c in 0..n {
                dst[c * m + r] = src[r * n + c];
            }
        }
    }
    let shape: Vec<usize> = if t.shape().len() == 2 {
        vec![n, m]
    } else {
        vec![b, n, m]
    };
    Tensor::new(out, &shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn matmul_2d_forward() {
        let g = Graph::new();
        let a = g.input(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]));
        let b = g.input(Tensor::new(vec![7., 8., 9., 10., 11., 12.], &[3, 2]));
        let c = matmul(&g, a, b);
        assert_eq!(g.value(c).data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_2d_grad() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4.], &[2, 2]));
        let b = g.leaf(Tensor::new(vec![5., 6., 7., 8.], &[2, 2]));
        let c = matmul(&g, a, b);
        let s = sum_all(&g, c);
        g.backward(s);
        // dA = 1 @ B^T : each row = column sums of B^T rows = [11, 15]
        assert_eq!(g.grad(a).unwrap().data(), &[11., 15., 11., 15.]);
        assert_eq!(g.grad(b).unwrap().data(), &[4., 4., 6., 6.]);
    }

    #[test]
    fn matmul_batched_matches_per_slice() {
        let g = Graph::new();
        let a = g.input(Tensor::new((0..12).map(|x| x as f32).collect(), &[2, 2, 3]));
        let b = g.input(Tensor::new((0..18).map(|x| x as f32).collect(), &[2, 3, 3]));
        let c = matmul(&g, a, b);
        assert_eq!(g.shape_of(c), vec![2, 2, 3]);
        // slice 0: [[0,1,2],[3,4,5]] @ [[0,1,2],[3,4,5],[6,7,8]]
        let v = g.value(c);
        assert_eq!(&v.data()[0..3], &[15., 18., 21.]);
    }

    #[test]
    fn matmul_3d_2d_shared_rhs() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 3, 4]));
        let b = g.leaf(Tensor::ones(&[4, 5]));
        let c = matmul(&g, a, b);
        assert_eq!(g.shape_of(c), vec![2, 3, 5]);
        assert_eq!(g.value(c).data()[0], 4.0);
        let s = sum_all(&g, c);
        g.backward(s);
        assert_eq!(g.grad(b).unwrap().data()[0], 6.0); // 2*3 rows each contributing 1
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]));
        let b = g.leaf(Tensor::new(vec![0.5, -1., 2., 1., 0., -2.], &[2, 3]));
        let direct = matmul_nt(&g, a, b);
        let bt = transpose_last2(&g, b);
        let via_t = matmul(&g, a, bt);
        let (d, v) = (g.value(direct), g.value(via_t));
        for (x, y) in d.data().iter().zip(v.data()) {
            assert!((x - y).abs() < 1e-5);
        }
        let s = sum_all(&g, direct);
        g.backward(s);
        // dA = 1 @ B : row sums of B columns
        assert_eq!(g.grad(a).unwrap().data(), &[1.5, -1., 0., 1.5, -1., 0.]);
        assert_eq!(g.grad(b).unwrap().data(), &[5., 7., 9., 5., 7., 9.]);
    }

    #[test]
    fn matmul_nt_batched_shapes_and_grads() {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[2, 3, 4]));
        let b = g.leaf(Tensor::ones(&[2, 5, 4]));
        let c = matmul_nt(&g, a, b);
        assert_eq!(g.shape_of(c), vec![2, 3, 5]);
        assert_eq!(g.value(c).data()[0], 4.0);
        let s = sum_all(&g, c);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data()[0], 5.0);
        assert_eq!(g.grad(b).unwrap().data()[0], 3.0);
    }

    #[test]
    fn transpose_roundtrip() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new((0..6).map(|x| x as f32).collect(), &[2, 3]));
        let t = transpose_last2(&g, a);
        let tt = transpose_last2(&g, t);
        assert_eq!(g.value(tt).data(), g.value(a).data());
        let s = sum_all(&g, t);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0; 6]);
    }
}
