//! Reductions: sums and means, whole-tensor or per-axis.
//!
//! `sum_all` uses the deterministic chunked sum in [`crate::kernels`];
//! `sum_axis` decomposes the shape into `[pre, d, post]` around the reduced
//! axis and parallelizes over `pre` slabs, accumulating ascending `q` per
//! output element — the same order as a sequential walk, at every thread
//! count.

use crate::graph::{Graph, Var};
use crate::kernels::{self, arena, SharedMut};
use crate::tensor::{numel, Tensor};

/// Sum of every element, producing a scalar.
pub fn sum_all(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let out = Tensor::scalar(ta.sum());
    let shape = ta.shape().to_vec();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            let v = og.item();
            vec![Tensor::full(&shape, v)]
        }),
    )
}

/// Mean of every element, producing a scalar.
pub fn mean_all(g: &Graph, a: Var) -> Var {
    let n = g.with_value(a, |t| t.len());
    let s = sum_all(g, a);
    super::scale(g, s, 1.0 / n as f32)
}

/// Sums along `axis`, optionally keeping the reduced axis as size 1.
pub fn sum_axis(g: &Graph, a: Var, axis: usize, keepdim: bool) -> Var {
    let ta = g.value(a);
    let in_shape = ta.shape().to_vec();
    assert!(
        axis < in_shape.len(),
        "sum_axis axis {axis} out of range for {in_shape:?}"
    );
    // View the input as [pre, d, post] around the reduced axis.
    let pre: usize = in_shape[..axis].iter().product();
    let d = in_shape[axis];
    let post: usize = in_shape[axis + 1..].iter().product();

    let mut out = arena::take_zeroed(pre * post);
    {
        let ov = SharedMut::new(&mut out);
        let src = ta.data();
        let grain = (kernels::ELEM_GRAIN / (d * post).max(1)).max(1);
        kernels::parallel_for(pre, grain, |p0, p1| {
            // SAFETY: `pre` slabs are disjoint across chunks.
            let dst = unsafe { ov.range(p0 * post, p1 * post) };
            for (i, p) in (p0..p1).enumerate() {
                let orow = &mut dst[i * post..(i + 1) * post];
                for q in 0..d {
                    let irow = &src[(p * d + q) * post..(p * d + q + 1) * post];
                    for (o, &v) in orow.iter_mut().zip(irow) {
                        *o += v;
                    }
                }
            }
        });
    }
    let final_shape = if keepdim {
        let mut s = in_shape.clone();
        s[axis] = 1;
        s
    } else {
        let mut s = in_shape.clone();
        s.remove(axis);
        s
    };
    let out = Tensor::new(out, &final_shape);
    let in_shape2 = in_shape.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            // Broadcast og back over the reduced axis.
            let mut grad = arena::take_zeroed(numel(&in_shape2));
            let gv = SharedMut::new(&mut grad);
            let ogd = og.data();
            let grain = (kernels::ELEM_GRAIN / (d * post).max(1)).max(1);
            kernels::parallel_for(pre, grain, |p0, p1| {
                // SAFETY: `pre` slabs are disjoint across chunks.
                let dst = unsafe { gv.range(p0 * d * post, p1 * d * post) };
                for (i, p) in (p0..p1).enumerate() {
                    let orow = &ogd[p * post..(p + 1) * post];
                    for q in 0..d {
                        dst[(i * d + q) * post..(i * d + q + 1) * post].copy_from_slice(orow);
                    }
                }
            });
            vec![Tensor::new(grad, &in_shape2)]
        }),
    )
}

/// Means along `axis`.
pub fn mean_axis(g: &Graph, a: Var, axis: usize, keepdim: bool) -> Var {
    let n = g.with_value(a, |t| t.shape()[axis]);
    let s = sum_axis(g, a, axis, keepdim);
    super::scale(g, s, 1.0 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_axis_rows_cols() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]));
        let rows = sum_axis(&g, a, 1, false);
        assert_eq!(g.value(rows).data(), &[6., 15.]);
        assert_eq!(g.shape_of(rows), vec![2]);
        let cols = sum_axis(&g, a, 0, true);
        assert_eq!(g.value(cols).data(), &[5., 7., 9.]);
        assert_eq!(g.shape_of(cols), vec![1, 3]);
    }

    #[test]
    fn sum_axis_grad_broadcasts() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]));
        let rows = sum_axis(&g, a, 1, false); // [2]
        let s = sum_all(&g, rows);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn mean_axis_3d_time_pool() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new((0..24).map(|x| x as f32).collect(), &[2, 3, 4]));
        let m = mean_axis(&g, a, 1, false);
        assert_eq!(g.shape_of(m), vec![2, 4]);
        // batch 0, feature 0: mean(0, 4, 8) = 4
        assert_eq!(g.value(m).data()[0], 4.0);
        let s = sum_all(&g, m);
        g.backward(s);
        assert!((g.grad(a).unwrap().data()[0] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn mean_all_scalar() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![2., 4., 6.], &[3]));
        let m = mean_all(&g, a);
        assert_eq!(g.value(m).item(), 4.0);
        g.backward(m);
        assert!((g.grad(a).unwrap().data()[0] - 1.0 / 3.0).abs() < 1e-6);
    }
}
