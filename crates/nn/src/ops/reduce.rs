//! Reductions: sums and means, whole-tensor or per-axis.

use crate::graph::{Graph, Var};
use crate::tensor::{numel, strides, Tensor};

/// Sum of every element, producing a scalar.
pub fn sum_all(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let out = Tensor::scalar(ta.sum());
    let shape = ta.shape().to_vec();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            let v = og.item();
            vec![Tensor::full(&shape, v)]
        }),
    )
}

/// Mean of every element, producing a scalar.
pub fn mean_all(g: &Graph, a: Var) -> Var {
    let n = g.with_value(a, |t| t.len());
    let s = sum_all(g, a);
    super::scale(g, s, 1.0 / n as f32)
}

/// Sums along `axis`, optionally keeping the reduced axis as size 1.
pub fn sum_axis(g: &Graph, a: Var, axis: usize, keepdim: bool) -> Var {
    let ta = g.value(a);
    let in_shape = ta.shape().to_vec();
    assert!(axis < in_shape.len(), "sum_axis axis {axis} out of range for {in_shape:?}");
    let mut out_shape = in_shape.clone();
    out_shape[axis] = 1;
    let st = strides(&in_shape);
    let ost = strides(&out_shape);
    let mut out = vec![0.0f32; numel(&out_shape)];
    // Walk every input element, mapping to its output slot.
    let mut idx = vec![0usize; in_shape.len()];
    for &v in ta.data() {
        let mut o = 0;
        for (d, &ix) in idx.iter().enumerate() {
            if d != axis {
                o += ix * ost[d];
            }
        }
        out[o] += v;
        for d in (0..in_shape.len()).rev() {
            idx[d] += 1;
            if idx[d] < in_shape[d] {
                break;
            }
            idx[d] = 0;
        }
    }
    let final_shape = if keepdim {
        out_shape.clone()
    } else {
        let mut s = in_shape.clone();
        s.remove(axis);
        s
    };
    let out = Tensor::new(out, &final_shape);
    let in_shape2 = in_shape.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            // Broadcast og back over the reduced axis.
            let mut grad = Tensor::zeros(&in_shape2);
            let n = numel(&in_shape2);
            let mut idx = vec![0usize; in_shape2.len()];
            let gd = grad.data_mut();
            let ogd = og.data();
            let mut out_shape_k = in_shape2.clone();
            out_shape_k[axis] = 1;
            let ost = strides(&out_shape_k);
            for item in gd.iter_mut().take(n) {
                let mut o = 0;
                for (d, &ix) in idx.iter().enumerate() {
                    if d != axis {
                        o += ix * ost[d];
                    }
                }
                *item = ogd[o];
                for d in (0..in_shape2.len()).rev() {
                    idx[d] += 1;
                    if idx[d] < in_shape2[d] {
                        break;
                    }
                    idx[d] = 0;
                }
            }
            let _ = &st; // silence: kept for symmetry/clarity
            vec![grad]
        }),
    )
}

/// Means along `axis`.
pub fn mean_axis(g: &Graph, a: Var, axis: usize, keepdim: bool) -> Var {
    let n = g.with_value(a, |t| t.shape()[axis]);
    let s = sum_axis(g, a, axis, keepdim);
    super::scale(g, s, 1.0 / n as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_axis_rows_cols() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]));
        let rows = sum_axis(&g, a, 1, false);
        assert_eq!(g.value(rows).data(), &[6., 15.]);
        assert_eq!(g.shape_of(rows), vec![2]);
        let cols = sum_axis(&g, a, 0, true);
        assert_eq!(g.value(cols).data(), &[5., 7., 9.]);
        assert_eq!(g.shape_of(cols), vec![1, 3]);
    }

    #[test]
    fn sum_axis_grad_broadcasts() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![1., 2., 3., 4., 5., 6.], &[2, 3]));
        let rows = sum_axis(&g, a, 1, false); // [2]
        let s = sum_all(&g, rows);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[1.0; 6]);
    }

    #[test]
    fn mean_axis_3d_time_pool() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new((0..24).map(|x| x as f32).collect(), &[2, 3, 4]));
        let m = mean_axis(&g, a, 1, false);
        assert_eq!(g.shape_of(m), vec![2, 4]);
        // batch 0, feature 0: mean(0, 4, 8) = 4
        assert_eq!(g.value(m).data()[0], 4.0);
        let s = sum_all(&g, m);
        g.backward(s);
        assert!((g.grad(a).unwrap().data()[0] - 1.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn mean_all_scalar() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![2., 4., 6.], &[3]));
        let m = mean_all(&g, a);
        assert_eq!(g.value(m).item(), 4.0);
        g.backward(m);
        assert!((g.grad(a).unwrap().data()[0] - 1.0 / 3.0).abs() < 1e-6);
    }
}
