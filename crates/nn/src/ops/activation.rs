//! Pointwise nonlinearities and softmax.

use crate::graph::{Graph, Var};
use crate::tensor::Tensor;

fn unary(
    g: &Graph,
    a: Var,
    f: impl Fn(f32) -> f32,
    df_from_xy: impl Fn(f32, f32) -> f32 + 'static,
) -> Var {
    let ta = g.value(a);
    let out = ta.map(f);
    let tv = out.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            vec![Tensor::new(
                og.data()
                    .iter()
                    .zip(ta.data().iter().zip(tv.data()))
                    .map(|(&o, (&x, &y))| o * df_from_xy(x, y))
                    .collect(),
                ta.shape(),
            )]
        }),
    )
}

/// Rectified linear unit.
pub fn relu(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
}

/// Hyperbolic tangent.
pub fn tanh(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| x.tanh(), |_, y| 1.0 - y * y)
}

/// Logistic sigmoid.
pub fn sigmoid(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| 1.0 / (1.0 + (-x).exp()), |_, y| y * (1.0 - y))
}

/// Gaussian error linear unit (tanh approximation, as used by BERT/GPT).
pub fn gelu(g: &Graph, a: Var) -> Var {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    unary(
        g,
        a,
        |x| 0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh()),
        |x, _| {
            let inner = C * (x + 0.044715 * x * x * x);
            let t = inner.tanh();
            let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * x * x);
            0.5 * (1.0 + t) + 0.5 * x * dt
        },
    )
}

/// Natural exponential.
pub fn exp(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| x.exp(), |_, y| y)
}

/// Natural logarithm with a floor for stability.
pub fn log(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| x.max(1e-12).ln(), |x, _| 1.0 / x.max(1e-12))
}

/// Softmax over the **last** axis.
pub fn softmax(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let d = *ta.shape().last().expect("softmax on scalar");
    let mut out = Vec::with_capacity(ta.len());
    for row in ta.data().chunks_exact(d) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&x| (x - m).exp()).collect();
        let s: f32 = exps.iter().sum();
        out.extend(exps.into_iter().map(|e| e / s));
    }
    let out = Tensor::new(out, ta.shape());
    let y = out.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            // dx = y * (og - sum(og*y))
            let mut grad = Vec::with_capacity(y.len());
            for (yrow, orow) in y.data().chunks_exact(d).zip(og.data().chunks_exact(d)) {
                let dot: f32 = yrow.iter().zip(orow).map(|(&yy, &oo)| yy * oo).sum();
                grad.extend(yrow.iter().zip(orow).map(|(&yy, &oo)| yy * (oo - dot)));
            }
            vec![Tensor::new(grad, y.shape())]
        }),
    )
}

/// Log-softmax over the **last** axis (numerically stable).
pub fn log_softmax(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let d = *ta.shape().last().expect("log_softmax on scalar");
    let mut out = Vec::with_capacity(ta.len());
    for row in ta.data().chunks_exact(d) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
        out.extend(row.iter().map(|&x| x - lse));
    }
    let out = Tensor::new(out, ta.shape());
    let y = out.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            // dx = og - softmax(x) * sum(og)
            let mut grad = Vec::with_capacity(y.len());
            for (yrow, orow) in y.data().chunks_exact(d).zip(og.data().chunks_exact(d)) {
                let s: f32 = orow.iter().sum();
                grad.extend(yrow.iter().zip(orow).map(|(&ly, &oo)| oo - ly.exp() * s));
            }
            vec![Tensor::new(grad, y.shape())]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn softmax_rows_sum_to_one() {
        let g = Graph::new();
        let a = g.input(Tensor::new(vec![1., 2., 3., -1., 0., 1.], &[2, 3]));
        let s = softmax(&g, a);
        let v = g.value(s);
        for row in v.data().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let g = Graph::new();
        let a = g.input(Tensor::new(vec![0.5, -0.2, 1.7], &[1, 3]));
        let ls = log_softmax(&g, a);
        let s = softmax(&g, a);
        for (l, p) in g.value(ls).data().iter().zip(g.value(s).data()) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_shift_invariant() {
        let g = Graph::new();
        let a = g.input(Tensor::new(vec![1., 2., 3.], &[1, 3]));
        let b = g.input(Tensor::new(vec![101., 102., 103.], &[1, 3]));
        let sa = g.value(softmax(&g, a));
        let sb = g.value(softmax(&g, b));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_grad_masks() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![-1.0, 2.0], &[2]));
        let r = relu(&g, a);
        let s = sum_all(&g, r);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let g = Graph::new();
        let a = g.leaf(Tensor::scalar(0.0));
        let y = sigmoid(&g, a);
        assert!((g.value(y).item() - 0.5).abs() < 1e-6);
        g.backward(y);
        assert!((g.grad(a).unwrap().item() - 0.25).abs() < 1e-6);
    }
}
