//! Pointwise nonlinearities and softmax.
//!
//! Unary ops and the (log-)softmax row kernels are chunk-parallel via
//! [`crate::kernels::parallel_for`]; each row (or element) is produced by
//! exactly one chunk with a fixed accumulation order, so results do not
//! depend on the thread count.

use crate::graph::{Graph, Var};
use crate::kernels::{self, arena, SharedMut};
use crate::tensor::Tensor;

fn unary(
    g: &Graph,
    a: Var,
    f: impl Fn(f32) -> f32 + Sync,
    df_from_xy: impl Fn(f32, f32) -> f32 + Send + Sync + 'static,
) -> Var {
    let ta = g.value(a);
    let out = ta.map(f);
    let tv = out.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            let mut grad = arena::take_zeroed(ta.len());
            let out = SharedMut::new(&mut grad);
            let (ogd, xd, yd) = (og.data(), ta.data(), tv.data());
            kernels::parallel_for(ta.len(), kernels::ELEM_GRAIN, |lo, hi| {
                // SAFETY: chunks cover disjoint ranges.
                let d = unsafe { out.range(lo, hi) };
                for (i, o) in (lo..hi).zip(d.iter_mut()) {
                    *o = ogd[i] * df_from_xy(xd[i], yd[i]);
                }
            });
            vec![Tensor::new(grad, ta.shape())]
        }),
    )
}

/// Rectified linear unit.
pub fn relu(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| x.max(0.0), |x, _| if x > 0.0 { 1.0 } else { 0.0 })
}

/// Hyperbolic tangent.
pub fn tanh(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| x.tanh(), |_, y| 1.0 - y * y)
}

/// Logistic sigmoid.
pub fn sigmoid(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| 1.0 / (1.0 + (-x).exp()), |_, y| y * (1.0 - y))
}

/// Branch-free rational `tanh` (13/6-degree odd/even polynomials, the
/// Eigen/XNNPACK form), accurate to a few ulps over all of f32.
///
/// `gelu` is the single hottest pointwise op in the transformer forward
/// (`[B·T, ff]` twice per layer) and libm's `tanhf` is a scalar call the
/// compiler cannot vectorize; this clamp + polynomial form is pure
/// mul/add/div, so the `fill_map` loop auto-vectorizes. Like the SIMD
/// matmul tiers, the values differ from libm in the last ulps — every call
/// site computes the same bits, which is what the serving determinism
/// contract needs.
#[inline(always)]
fn fast_tanh(x: f32) -> f32 {
    // Beyond |x| ≈ 7.998 the f32 tanh is exactly ±1; clamping there keeps
    // the polynomials in their fitted range.
    let x = x.clamp(-7.998_117, 7.998_117);
    let x2 = x * x;
    let mut p = -2.760_768_4e-16f32;
    p = x2 * p + 2.000_188e-13;
    p = x2 * p - 8.604_672e-11;
    p = x2 * p + 5.122_297e-8;
    p = x2 * p + 1.485_722_4e-5;
    p = x2 * p + 6.372_619_3e-4;
    p = x2 * p + 4.893_524_6e-3;
    let mut q = 1.198_258_4e-6f32;
    q = x2 * q + 1.185_347_1e-4;
    q = x2 * q + 2.268_434_6e-3;
    q = x2 * q + 4.893_525e-3;
    x * p / q
}

/// Scalar GELU forward (tanh approximation over [`fast_tanh`]) — the exact
/// function the [`gelu`] tape op applies per element, exposed so graph-free
/// inference sweeps produce bitwise-identical activations.
#[inline(always)]
pub fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + fast_tanh(C * (x + 0.044715 * x * x * x)))
}

/// Gaussian error linear unit (tanh approximation, as used by BERT/GPT).
pub fn gelu(g: &Graph, a: Var) -> Var {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    unary(g, a, gelu_scalar, |x, _| {
        let inner = C * (x + 0.044715 * x * x * x);
        let t = fast_tanh(inner);
        let dt = (1.0 - t * t) * C * (1.0 + 3.0 * 0.044715 * x * x);
        0.5 * (1.0 + t) + 0.5 * x * dt
    })
}

/// Natural exponential.
pub fn exp(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| x.exp(), |_, y| y)
}

/// Natural logarithm with a floor for stability.
pub fn log(g: &Graph, a: Var) -> Var {
    unary(g, a, |x| x.max(1e-12).ln(), |x, _| 1.0 / x.max(1e-12))
}

/// Rows-per-chunk grain for row kernels: aim for [`kernels::ELEM_GRAIN`]
/// elements per chunk.
fn row_grain(d: usize) -> usize {
    (kernels::ELEM_GRAIN / d.max(1)).max(1)
}

/// Softmax over the **last** axis.
pub fn softmax(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let d = *ta.shape().last().expect("softmax on scalar");
    let rows = ta.len() / d.max(1);
    let mut out = arena::take_zeroed(ta.len());
    {
        let ov = SharedMut::new(&mut out);
        let src = ta.data();
        kernels::parallel_for(rows, row_grain(d), |r0, r1| {
            // SAFETY: row ranges are disjoint across chunks.
            let dst = unsafe { ov.range(r0 * d, r1 * d) };
            for (r, orow) in (r0..r1).zip(dst.chunks_exact_mut(d)) {
                let row = &src[r * d..(r + 1) * d];
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let mut s = 0.0;
                for (o, &x) in orow.iter_mut().zip(row) {
                    *o = (x - m).exp();
                    s += *o;
                }
                let inv = 1.0 / s;
                for o in orow.iter_mut() {
                    *o *= inv;
                }
            }
        });
    }
    let out = Tensor::new(out, ta.shape());
    let y = out.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            // dx = y * (og - sum(og*y))
            let mut grad = arena::take_zeroed(y.len());
            let gv = SharedMut::new(&mut grad);
            let (yd, ogd) = (y.data(), og.data());
            kernels::parallel_for(rows, row_grain(d), |r0, r1| {
                // SAFETY: row ranges are disjoint across chunks.
                let dst = unsafe { gv.range(r0 * d, r1 * d) };
                for (r, grow) in (r0..r1).zip(dst.chunks_exact_mut(d)) {
                    let yrow = &yd[r * d..(r + 1) * d];
                    let orow = &ogd[r * d..(r + 1) * d];
                    let dot: f32 = yrow.iter().zip(orow).map(|(&yy, &oo)| yy * oo).sum();
                    for ((o, &yy), &oo) in grow.iter_mut().zip(yrow).zip(orow) {
                        *o = yy * (oo - dot);
                    }
                }
            });
            vec![Tensor::new(grad, y.shape())]
        }),
    )
}

/// Log-softmax over the **last** axis (numerically stable).
pub fn log_softmax(g: &Graph, a: Var) -> Var {
    let ta = g.value(a);
    let d = *ta.shape().last().expect("log_softmax on scalar");
    let rows = ta.len() / d.max(1);
    let mut out = arena::take_zeroed(ta.len());
    {
        let ov = SharedMut::new(&mut out);
        let src = ta.data();
        kernels::parallel_for(rows, row_grain(d), |r0, r1| {
            // SAFETY: row ranges are disjoint across chunks.
            let dst = unsafe { ov.range(r0 * d, r1 * d) };
            for (r, orow) in (r0..r1).zip(dst.chunks_exact_mut(d)) {
                let row = &src[r * d..(r + 1) * d];
                let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let lse = m + row.iter().map(|&x| (x - m).exp()).sum::<f32>().ln();
                for (o, &x) in orow.iter_mut().zip(row) {
                    *o = x - lse;
                }
            }
        });
    }
    let out = Tensor::new(out, ta.shape());
    let y = out.clone();
    g.op(
        out,
        vec![a],
        Box::new(move |og| {
            // dx = og - softmax(x) * sum(og)
            let mut grad = arena::take_zeroed(y.len());
            let gv = SharedMut::new(&mut grad);
            let (yd, ogd) = (y.data(), og.data());
            kernels::parallel_for(rows, row_grain(d), |r0, r1| {
                // SAFETY: row ranges are disjoint across chunks.
                let dst = unsafe { gv.range(r0 * d, r1 * d) };
                for (r, grow) in (r0..r1).zip(dst.chunks_exact_mut(d)) {
                    let yrow = &yd[r * d..(r + 1) * d];
                    let orow = &ogd[r * d..(r + 1) * d];
                    let s: f32 = orow.iter().sum();
                    for ((o, &ly), &oo) in grow.iter_mut().zip(yrow).zip(orow) {
                        *o = oo - ly.exp() * s;
                    }
                }
            });
            vec![Tensor::new(grad, y.shape())]
        }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::sum_all;

    #[test]
    fn softmax_rows_sum_to_one() {
        let g = Graph::new();
        let a = g.input(Tensor::new(vec![1., 2., 3., -1., 0., 1.], &[2, 3]));
        let s = softmax(&g, a);
        let v = g.value(s);
        for row in v.data().chunks_exact(3) {
            let sum: f32 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let g = Graph::new();
        let a = g.input(Tensor::new(vec![0.5, -0.2, 1.7], &[1, 3]));
        let ls = log_softmax(&g, a);
        let s = softmax(&g, a);
        for (l, p) in g.value(ls).data().iter().zip(g.value(s).data()) {
            assert!((l.exp() - p).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_shift_invariant() {
        let g = Graph::new();
        let a = g.input(Tensor::new(vec![1., 2., 3.], &[1, 3]));
        let b = g.input(Tensor::new(vec![101., 102., 103.], &[1, 3]));
        let sa = g.value(softmax(&g, a));
        let sb = g.value(softmax(&g, b));
        for (x, y) in sa.data().iter().zip(sb.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn relu_grad_masks() {
        let g = Graph::new();
        let a = g.leaf(Tensor::new(vec![-1.0, 2.0], &[2]));
        let r = relu(&g, a);
        let s = sum_all(&g, r);
        g.backward(s);
        assert_eq!(g.grad(a).unwrap().data(), &[0.0, 1.0]);
    }

    #[test]
    fn sigmoid_midpoint() {
        let g = Graph::new();
        let a = g.leaf(Tensor::scalar(0.0));
        let y = sigmoid(&g, a);
        assert!((g.value(y).item() - 0.5).abs() < 1e-6);
        g.backward(y);
        assert!((g.grad(a).unwrap().item() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn softmax_identical_across_thread_counts() {
        let g = Graph::new();
        let data: Vec<f32> = (0..64 * 33)
            .map(|i| ((i % 19) as f32 - 9.0) * 0.37)
            .collect();
        let a = g.input(Tensor::new(data, &[64, 33]));
        let one = crate::kernels::with_threads(1, || g.value(softmax(&g, a)));
        let four = crate::kernels::with_threads(4, || g.value(softmax(&g, a)));
        for (x, y) in one.data().iter().zip(four.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}
