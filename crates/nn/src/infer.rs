//! Graph-free f32 inference primitives.
//!
//! The tape ([`crate::graph::Graph`]) exists for training; at serving time
//! the model is frozen and the tape's per-op buffer allocation, node
//! bookkeeping, and backward-closure construction are pure overhead. This
//! module provides the forward math as plain slice-in/slice-out functions
//! so an inference engine can run the whole network over a micro-batch
//! with a handful of reused scratch buffers.
//!
//! **Bitwise contract:** every function here reproduces the corresponding
//! tape op *exactly* — same kernels ([`crate::kernels::mm`] /
//! [`crate::kernels::mm_nt`]), same per-row accumulation order, same
//! scalar functions ([`crate::ops::gelu_scalar`]). A fused sweep produces
//! the same bits as the unfused tape forward at every thread count; the
//! test suite asserts this end-to-end against a trained model.
//!
//! Fusion here means *not materializing tape intermediates*: QKV can be
//! projected as one GEMM (each output element of a GEMM depends only on
//! its A-row and B-column, so horizontally concatenating the three weight
//! matrices is bit-neutral), attention runs per `(batch, head)` against a
//! single `[T, T]` score scratch instead of tape-wide `[B, T, T]` tensors,
//! and the MLP applies the GELU fast path in place between its two GEMMs.

use crate::kernels::{self, mm, mm_nt};
use crate::ops::gelu_scalar;

/// `out[m, n] = x[m, k] · w[k, n] (+ bias)` — the tape's `Linear::forward`
/// on a flattened input (the tape folds `[B, T, k]` to `[B·T, k]` for 2-D
/// weights, so callers pass `m = B·T`). `out` is overwritten (the blocked
/// kernels accumulate, so it is zeroed first — reuse scratch freely).
pub fn linear_into(
    x: &[f32],
    w: &[f32],
    bias: Option<&[f32]>,
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(x.len(), m * k);
    debug_assert_eq!(w.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    out.fill(0.0);
    mm(x, w, out, m, k, n);
    if let Some(b) = bias {
        debug_assert_eq!(b.len(), n);
        for row in out.chunks_exact_mut(n) {
            for (o, &bv) in row.iter_mut().zip(b) {
                *o += bv;
            }
        }
    }
}

/// Elementwise `x[i] += y[i]` — the tape's same-shape `ops::add`.
pub fn add_inplace(x: &mut [f32], y: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (o, &v) in x.iter_mut().zip(y) {
        *o += v;
    }
}

/// `h[b, t, :] += pos[t, :]` — the tape's broadcast `ops::add` of a
/// `[T, D]` positional table over the batch axis.
pub fn add_pos_inplace(h: &mut [f32], pos: &[f32], batch: usize, t: usize, d: usize) {
    debug_assert_eq!(h.len(), batch * t * d);
    debug_assert!(pos.len() >= t * d);
    for bt in h.chunks_exact_mut(t * d) {
        for (o, &p) in bt.iter_mut().zip(&pos[..t * d]) {
            *o += p;
        }
    }
}

/// Row-wise layer norm `dst = (src - mean) / sqrt(var + eps) * gamma + beta`
/// — the exact per-row loop of the fused `ops::layer_norm` kernel.
pub fn layer_norm_into(src: &[f32], gamma: &[f32], beta: &[f32], eps: f32, dst: &mut [f32]) {
    let d = gamma.len();
    debug_assert_eq!(beta.len(), d);
    debug_assert_eq!(src.len(), dst.len());
    debug_assert_eq!(src.len() % d.max(1), 0);
    for (row, orow) in src.chunks_exact(d).zip(dst.chunks_exact_mut(d)) {
        let mu = row.iter().sum::<f32>() / d as f32;
        let var = row.iter().map(|&v| (v - mu) * (v - mu)).sum::<f32>() / d as f32;
        let rst = 1.0 / (var + eps).sqrt();
        for j in 0..d {
            orow[j] = (row[j] - mu) * rst * gamma[j] + beta[j];
        }
    }
}

/// In-place row-wise softmax over the last axis — the exact per-row loop
/// of the tape's `ops::softmax` (max-shift, exp with interleaved sum,
/// multiply by the reciprocal).
pub fn softmax_rows(buf: &mut [f32], d: usize) {
    debug_assert_eq!(buf.len() % d.max(1), 0);
    for row in buf.chunks_exact_mut(d) {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut s = 0.0;
        for o in row.iter_mut() {
            *o = (*o - m).exp();
            s += *o;
        }
        let inv = 1.0 / s;
        for o in row.iter_mut() {
            *o *= inv;
        }
    }
}

/// In-place GELU (tanh fast path) — the tape's `ops::gelu` forward.
pub fn gelu_inplace(buf: &mut [f32]) {
    for o in buf.iter_mut() {
        *o = gelu_scalar(*o);
    }
}

/// In-place ReLU — the tape's `ops::relu` forward.
pub fn relu_inplace(buf: &mut [f32]) {
    for o in buf.iter_mut() {
        *o = o.max(0.0);
    }
}

/// In-place `buf[i] = s * buf[i]` — the tape's `ops::scale`.
pub fn scale_inplace(buf: &mut [f32], s: f32) {
    for o in buf.iter_mut() {
        *o *= s;
    }
}

/// Mean pooling over time: `out[b, :] = mean_t h[b, t, :]` — the tape's
/// `ops::mean_axis(h, 1)`: ascending-`t` accumulation, then one multiply
/// by `1 / T`.
pub fn mean_pool_into(h: &[f32], batch: usize, t: usize, d: usize, out: &mut [f32]) {
    debug_assert_eq!(h.len(), batch * t * d);
    debug_assert_eq!(out.len(), batch * d);
    let s = 1.0 / t as f32;
    for (b, orow) in out.chunks_exact_mut(d).enumerate() {
        for j in 0..d {
            let mut acc = 0.0f32;
            for tt in 0..t {
                acc += h[(b * t + tt) * d + j];
            }
            orow[j] = s * acc;
        }
    }
}

/// Reusable scratch for [`attention_sweep`]: per-`(batch, head)` Q/K/V
/// gathers, the `[T, T]` score matrix, and the head output.
pub struct AttnScratch {
    qh: Vec<f32>,
    kh: Vec<f32>,
    vh: Vec<f32>,
    scores: Vec<f32>,
    outh: Vec<f32>,
}

impl AttnScratch {
    /// Allocates scratch for sequence length `t` and head width `head_dim`.
    pub fn new(t: usize, head_dim: usize) -> Self {
        AttnScratch {
            qh: vec![0.0; t * head_dim],
            kh: vec![0.0; t * head_dim],
            vh: vec![0.0; t * head_dim],
            scores: vec![0.0; t * t],
            outh: vec![0.0; t * head_dim],
        }
    }

    /// Mutable view of the `[T, T]` score buffer, for the quant-only
    /// fast attention in [`crate::infer_fast`] (which reads Q/K/V in
    /// place and needs none of the gather buffers).
    #[cfg(feature = "quant")]
    pub(crate) fn scores_mut(&mut self) -> &mut [f32] {
        &mut self.scores
    }
}

/// Fused multi-head attention core: from projected `q`/`k`/`v` (each
/// `[B·T, D]`, heads interleaved along the feature axis) to the
/// pre-output-projection concat `[B·T, D]`, without materializing any
/// batch-wide intermediate. Per `(batch, head)`: gather the head slices,
/// `scores = scale · (qh · khᵀ)`, row softmax, `outh = scores · vh`,
/// scatter into `concat` — the exact math of `MultiHeadAttention::forward`
/// after its Q/K/V projections.
#[allow(clippy::too_many_arguments)]
pub fn attention_sweep(
    q: &[f32],
    k: &[f32],
    v: &[f32],
    batch: usize,
    t: usize,
    heads: usize,
    head_dim: usize,
    scale: f32,
    concat: &mut [f32],
    scratch: &mut AttnScratch,
) {
    let d = heads * head_dim;
    debug_assert_eq!(q.len(), batch * t * d);
    debug_assert_eq!(concat.len(), batch * t * d);
    kernels::stats::record_fused_attention();
    for b in 0..batch {
        for h in 0..heads {
            let off = h * head_dim;
            for tt in 0..t {
                let row = (b * t + tt) * d + off;
                let dst = tt * head_dim;
                scratch.qh[dst..dst + head_dim].copy_from_slice(&q[row..row + head_dim]);
                scratch.kh[dst..dst + head_dim].copy_from_slice(&k[row..row + head_dim]);
                scratch.vh[dst..dst + head_dim].copy_from_slice(&v[row..row + head_dim]);
            }
            // The blocked kernels accumulate into C; zero the reused scratch.
            scratch.scores.fill(0.0);
            mm_nt(
                &scratch.qh,
                &scratch.kh,
                &mut scratch.scores,
                t,
                head_dim,
                t,
            );
            scale_inplace(&mut scratch.scores, scale);
            softmax_rows(&mut scratch.scores, t);
            scratch.outh.fill(0.0);
            mm(
                &scratch.scores,
                &scratch.vh,
                &mut scratch.outh,
                t,
                t,
                head_dim,
            );
            for tt in 0..t {
                let row = (b * t + tt) * d + off;
                let src = tt * head_dim;
                concat[row..row + head_dim].copy_from_slice(&scratch.outh[src..src + head_dim]);
            }
        }
    }
}

/// Fused transformer feed-forward: `out = W2 · gelu(W1 · x_norm + b1) + b2`
/// with the GELU fast path applied in place between the two GEMMs. `hidden`
/// is `[m, ff]` scratch.
#[allow(clippy::too_many_arguments)]
pub fn mlp_sweep(
    x_norm: &[f32],
    w1: &[f32],
    b1: Option<&[f32]>,
    w2: &[f32],
    b2: Option<&[f32]>,
    out: &mut [f32],
    hidden: &mut [f32],
    m: usize,
    d: usize,
    ff: usize,
) {
    kernels::stats::record_fused_mlp();
    linear_into(x_norm, w1, b1, hidden, m, d, ff);
    gelu_inplace(hidden);
    linear_into(hidden, w2, b2, out, m, ff, d);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Graph, ParamStore};
    use crate::layers::MultiHeadAttention;
    use crate::ops;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn softmax_rows_matches_tape_bitwise() {
        let data: Vec<f32> = (0..24).map(|i| ((i * 7) % 11) as f32 * 0.3 - 1.5).collect();
        let g = Graph::inference();
        let x = g.input(Tensor::new(data.clone(), &[4, 6]));
        let want = g.value(ops::softmax(&g, x));
        let mut got = data;
        softmax_rows(&mut got, 6);
        for (a, b) in got.iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn layer_norm_matches_tape_bitwise() {
        let data: Vec<f32> = (0..32).map(|i| (i as f32 - 16.0) * 0.21).collect();
        let gamma: Vec<f32> = (0..8).map(|i| 0.5 + i as f32 * 0.1).collect();
        let beta: Vec<f32> = (0..8).map(|i| i as f32 * -0.05).collect();
        let g = Graph::inference();
        let x = g.input(Tensor::new(data.clone(), &[4, 8]));
        let gm = g.input(Tensor::new(gamma.clone(), &[8]));
        let bt = g.input(Tensor::new(beta.clone(), &[8]));
        let want = g.value(ops::layer_norm(&g, x, gm, bt, 1e-5));
        let mut got = vec![0.0; 32];
        layer_norm_into(&data, &gamma, &beta, 1e-5, &mut got);
        for (a, b) in got.iter().zip(want.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn fused_qkv_gemm_matches_separate_projections_bitwise() {
        // One [k, 3n] GEMM vs three [k, n] GEMMs: each output element of mm
        // depends only on its A-row and B-column, so the concat is
        // bit-neutral. This is the property the fused QKV projection needs.
        let (m, k, n) = (6, 16, 8);
        let a: Vec<f32> = (0..m * k)
            .map(|i| ((i * 13) % 29) as f32 * 0.07 - 1.0)
            .collect();
        let ws: Vec<Vec<f32>> = (0..3)
            .map(|s| {
                (0..k * n)
                    .map(|i| ((i * 5 + s * 11) % 23) as f32 * 0.09 - 1.0)
                    .collect()
            })
            .collect();
        let mut wcat = vec![0.0f32; k * 3 * n];
        for r in 0..k {
            for (s, w) in ws.iter().enumerate() {
                wcat[r * 3 * n + s * n..r * 3 * n + (s + 1) * n]
                    .copy_from_slice(&w[r * n..(r + 1) * n]);
            }
        }
        let mut fused = vec![0.0f32; m * 3 * n];
        mm(&a, &wcat, &mut fused, m, k, 3 * n);
        for (s, w) in ws.iter().enumerate() {
            let mut sep = vec![0.0f32; m * n];
            mm(&a, w, &mut sep, m, k, n);
            for r in 0..m {
                for c in 0..n {
                    assert_eq!(
                        sep[r * n + c].to_bits(),
                        fused[r * 3 * n + s * n + c].to_bits(),
                        "slot {s} ({r},{c})"
                    );
                }
            }
        }
    }

    #[test]
    fn attention_sweep_matches_tape_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut store = ParamStore::new();
        let (b, t, d, heads) = (3, 5, 8, 2);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "mha", d, heads);
        let x = Tensor::randn(&mut rng, &[b, t, d], 1.0);

        let g = Graph::inference();
        let want = g.value(mha.forward(&g, &store, g.input(x.clone())));

        // Graph-free: project q/k/v, sweep, output-project.
        let m = b * t;
        let dh = d / heads;
        let proj = |lin: &crate::layers::Linear| {
            let w = store.value(lin.w_id());
            let bias = lin.b_id().map(|id| store.value(id));
            let mut out = vec![0.0; m * d];
            linear_into(
                x.data(),
                w.data(),
                bias.map(|bt| bt.data()),
                &mut out,
                m,
                d,
                d,
            );
            out
        };
        let (q, k, v) = (proj(mha.wq()), proj(mha.wk()), proj(mha.wv()));
        let mut concat = vec![0.0; m * d];
        let mut scratch = AttnScratch::new(t, dh);
        let scale = 1.0 / (dh as f32).sqrt();
        attention_sweep(
            &q,
            &k,
            &v,
            b,
            t,
            heads,
            dh,
            scale,
            &mut concat,
            &mut scratch,
        );
        let mut got = vec![0.0; m * d];
        let wo_w = store.value(mha.wo().w_id());
        let wo_b = mha.wo().b_id().map(|id| store.value(id));
        linear_into(
            &concat,
            wo_w.data(),
            wo_b.map(|bt| bt.data()),
            &mut got,
            m,
            d,
            d,
        );

        for (a, w) in got.iter().zip(want.data()) {
            assert_eq!(a.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn mlp_sweep_matches_tape_gelu_chain_bitwise() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let (m, d, ff) = (7, 8, 16);
        let l1 = crate::layers::Linear::new(&mut store, &mut rng, "ff1", d, ff);
        let l2 = crate::layers::Linear::new(&mut store, &mut rng, "ff2", ff, d);
        let x = Tensor::randn(&mut rng, &[m, d], 1.0);

        let g = Graph::inference();
        let xv = g.input(x.clone());
        let h = l1.forward(&g, &store, xv);
        let h = ops::gelu(&g, h);
        let want = g.value(l2.forward(&g, &store, h));

        let mut got = vec![0.0; m * d];
        let mut hidden = vec![0.0; m * ff];
        mlp_sweep(
            x.data(),
            store.value(l1.w_id()).data(),
            l1.b_id().map(|id| store.value(id).data()),
            store.value(l2.w_id()).data(),
            l2.b_id().map(|id| store.value(id).data()),
            &mut got,
            &mut hidden,
            m,
            d,
            ff,
        );
        for (a, w) in got.iter().zip(want.data()) {
            assert_eq!(a.to_bits(), w.to_bits());
        }
    }
}
