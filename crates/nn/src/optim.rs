//! Optimizers over a [`ParamStore`].

use crate::graph::{ParamId, ParamStore};
use crate::tensor::Tensor;

/// Plain SGD with optional momentum.
pub struct Sgd {
    lr: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer covering every parameter in `store`.
    pub fn new(store: &ParamStore, lr: f32, momentum: f32) -> Self {
        let velocity = store
            .ids()
            .map(|id| Tensor::zeros(store.value(id).shape()))
            .collect();
        Sgd {
            lr,
            momentum,
            velocity,
        }
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update from the accumulated gradients and zeroes them.
    pub fn step(&mut self, store: &mut ParamStore) {
        let ids: Vec<ParamId> = store.ids().collect();
        for (i, id) in ids.into_iter().enumerate() {
            let grad = store.grad(id).clone();
            let vel = &mut self.velocity[i];
            for (v, g) in vel.data_mut().iter_mut().zip(grad.data()) {
                *v = self.momentum * *v + g;
            }
            let lr = self.lr;
            let vdata = vel.data().to_vec();
            for (p, v) in store.value_mut(id).data_mut().iter_mut().zip(vdata) {
                *p -= lr * v;
            }
        }
        store.zero_grads();
    }
}

/// AdamW — Adam with decoupled weight decay (Loshchilov & Hutter, 2019),
/// the optimizer the paper trains LogSynergy with.
pub struct AdamW {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    t: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl AdamW {
    /// Creates an AdamW optimizer with the paper's defaults
    /// (`lr = 1e-4` is the paper setting; pass it explicitly).
    pub fn new(store: &ParamStore, lr: f32) -> Self {
        Self::with_config(store, lr, 0.9, 0.999, 1e-8, 0.01)
    }

    /// Fully configurable constructor.
    pub fn with_config(
        store: &ParamStore,
        lr: f32,
        beta1: f32,
        beta2: f32,
        eps: f32,
        weight_decay: f32,
    ) -> Self {
        let m = store
            .ids()
            .map(|id| Tensor::zeros(store.value(id).shape()))
            .collect();
        let v = store
            .ids()
            .map(|id| Tensor::zeros(store.value(id).shape()))
            .collect();
        AdamW {
            lr,
            beta1,
            beta2,
            eps,
            weight_decay,
            t: 0,
            m,
            v,
        }
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Sets the learning rate (for warmup/decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one AdamW update from the accumulated gradients, then zeroes
    /// them.
    pub fn step(&mut self, store: &mut ParamStore) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        let ids: Vec<ParamId> = store.ids().collect();
        for (i, id) in ids.into_iter().enumerate() {
            let grad = store.grad(id).clone();
            let (m, v) = (&mut self.m[i], &mut self.v[i]);
            for ((mi, vi), g) in m
                .data_mut()
                .iter_mut()
                .zip(v.data_mut().iter_mut())
                .zip(grad.data())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * g;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * g * g;
            }
            let lr = self.lr;
            let (eps, wd) = (self.eps, self.weight_decay);
            let md = m.data().to_vec();
            let vd = v.data().to_vec();
            for ((p, mi), vi) in store.value_mut(id).data_mut().iter_mut().zip(md).zip(vd) {
                let mhat = mi / bc1;
                let vhat = vi / bc2;
                // Decoupled weight decay: applied directly to the weight.
                *p -= lr * (mhat / (vhat.sqrt() + eps) + wd * *p);
            }
        }
        store.zero_grads();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;
    use crate::loss::mse;
    use crate::ops;

    /// Fits y = 2x with a single weight; both optimizers must converge.
    fn fit<F: FnMut(&mut ParamStore)>(mut step: F, store: &mut ParamStore, w: ParamId) -> f32 {
        for _ in 0..400 {
            let g = Graph::new();
            let wv = g.bind(store, w);
            let x = g.input(Tensor::new(vec![1.0, 2.0, 3.0], &[3, 1]));
            let pred = ops::matmul(&g, x, wv);
            let target = Tensor::new(vec![2.0, 4.0, 6.0], &[3, 1]);
            let l = mse(&g, pred, &target);
            g.backward(l);
            g.write_grads(store);
            step(store);
        }
        store.value(w).data()[0]
    }

    #[test]
    fn sgd_converges_on_linear_fit() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::new(vec![0.0], &[1, 1]));
        let mut opt = Sgd::new(&store, 0.05, 0.9);
        let learned = fit(|s| opt.step(s), &mut store, w);
        assert!((learned - 2.0).abs() < 1e-3, "learned {learned}");
    }

    #[test]
    fn adamw_converges_on_linear_fit() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::new(vec![0.0], &[1, 1]));
        let mut opt = AdamW::with_config(&store, 0.05, 0.9, 0.999, 1e-8, 0.0);
        let learned = fit(|s| opt.step(s), &mut store, w);
        assert!((learned - 2.0).abs() < 1e-2, "learned {learned}");
    }

    #[test]
    fn adamw_weight_decay_shrinks_weights() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::new(vec![5.0], &[1]));
        let mut opt = AdamW::with_config(&store, 0.1, 0.9, 0.999, 1e-8, 0.5);
        // No gradient at all: only decay acts.
        for _ in 0..10 {
            opt.step(&mut store);
        }
        assert!(store.value(w).data()[0] < 5.0);
    }
}
