//! Multi-head scaled dot-product self-attention.

use rand::Rng;

use crate::graph::{Graph, ParamStore, Var};
use crate::layers::Linear;
use crate::ops;

/// Multi-head self-attention over `[B, T, D]` input.
///
/// Heads are computed by slicing the projected Q/K/V along the feature axis
/// (rather than a 4-D reshape), which keeps the tape in 3-D ops. With the
/// small head counts used here the per-head loop is negligible.
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    heads: usize,
    head_dim: usize,
}

impl MultiHeadAttention {
    /// Creates an attention block with `heads` heads over model width `d`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        d: usize,
        heads: usize,
    ) -> Self {
        assert!(
            heads > 0 && d.is_multiple_of(heads),
            "model dim {d} not divisible by {heads} heads"
        );
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), d, d),
            wk: Linear::new(store, rng, &format!("{name}.wk"), d, d),
            wv: Linear::new(store, rng, &format!("{name}.wv"), d, d),
            wo: Linear::new(store, rng, &format!("{name}.wo"), d, d),
            heads,
            head_dim: d / heads,
        }
    }

    /// Number of attention heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Per-head feature width (`d / heads`).
    pub fn head_dim(&self) -> usize {
        self.head_dim
    }

    /// The query projection.
    pub fn wq(&self) -> &Linear {
        &self.wq
    }

    /// The key projection.
    pub fn wk(&self) -> &Linear {
        &self.wk
    }

    /// The value projection.
    pub fn wv(&self) -> &Linear {
        &self.wv
    }

    /// The output projection.
    pub fn wo(&self) -> &Linear {
        &self.wo
    }

    /// Applies self-attention; input and output are `[B, T, D]`.
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> Var {
        let q = self.wq.forward(g, store, x);
        let k = self.wk.forward(g, store, x);
        let v = self.wv.forward(g, store, x);
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let mut outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let off = h * self.head_dim;
            let qh = ops::slice_last(g, q, off, self.head_dim); // [B,T,dh]
            let kh = ops::slice_last(g, k, off, self.head_dim);
            let vh = ops::slice_last(g, v, off, self.head_dim);
            let scores = ops::matmul_nt(g, qh, kh); // [B,T,T], no K transpose

            let scaled = ops::scale(g, scores, scale);
            let attn = ops::softmax(g, scaled);
            outs.push(ops::matmul(g, attn, vh)); // [B,T,dh]
        }
        let concat = ops::concat_last(g, &outs); // [B,T,D]
        self.wo.forward(g, store, concat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn preserves_shape() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "mha", 8, 2);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[3, 5, 8], 1.0));
        let y = mha.forward(&g, &store, x);
        assert_eq!(g.shape_of(y), vec![3, 5, 8]);
        assert!(g.value(y).all_finite());
    }

    #[test]
    fn all_projections_get_gradients() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "mha", 4, 2);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 3, 4], 1.0));
        let y = mha.forward(&g, &store, x);
        let s = ops::sum_all(&g, y);
        g.backward(s);
        g.write_grads(&mut store);
        for id in store.ids() {
            let gn = store.grad(id).norm();
            assert!(gn.is_finite(), "non-finite grad on {}", store.name(id));
        }
        assert!(store.grad_norm() > 0.0);
    }

    #[test]
    fn permutation_equivariance_without_positions() {
        // Self-attention with no positional signal is permutation
        // equivariant: swapping two timesteps swaps the outputs.
        let mut rng = rand::rngs::StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "mha", 4, 1);
        let a = Tensor::randn(&mut rng, &[1, 2, 4], 1.0);
        let mut swapped = a.clone();
        let (l, r) = swapped.data_mut().split_at_mut(4);
        l.swap_with_slice(r);

        let g = Graph::inference();
        let y1 = g.value(mha.forward(&g, &store, g.input(a)));
        let g2 = Graph::inference();
        let y2 = g2.value(mha.forward(&g2, &store, g2.input(swapped)));
        for i in 0..4 {
            assert!((y1.data()[i] - y2.data()[4 + i]).abs() < 1e-5);
            assert!((y1.data()[4 + i] - y2.data()[i]).abs() < 1e-5);
        }
    }
}
