//! Leaky integrate-and-fire (LIF) spiking layer with surrogate gradients,
//! the building block of the SpikeLog baseline.

use rand::Rng;

use crate::graph::{Graph, ParamStore, Var};
use crate::layers::Linear;
use crate::ops;
use crate::tensor::Tensor;

/// A layer of LIF neurons driven by a linear projection of each timestep.
///
/// Membrane update: `u_t = decay * u_{t-1} * (1 - s_{t-1}) + W x_t`;
/// spike: `s_t = H(u_t - threshold)` with a sigmoid surrogate gradient.
pub struct LifLayer {
    proj: Linear,
    hidden: usize,
    decay: f32,
    threshold: f32,
    surrogate_beta: f32,
}

impl LifLayer {
    /// Creates a LIF layer of `hidden` neurons over inputs of width `input`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        LifLayer {
            proj: Linear::new(store, rng, &format!("{name}.proj"), input, hidden),
            hidden,
            decay: 0.5,
            threshold: 1.0,
            surrogate_beta: 4.0,
        }
    }

    /// Neuron count.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs over `[B, T, D]`; returns (`[B, T, H]` spike trains,
    /// `[B, H]` mean firing rate over time).
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> (Var, Var) {
        let shape = g.shape_of(x);
        assert_eq!(shape.len(), 3, "lif expects [B,T,D]");
        let (bsz, t) = (shape[0], shape[1]);
        let mut u = g.input(Tensor::zeros(&[bsz, self.hidden]));
        let mut prev_spike = g.input(Tensor::zeros(&[bsz, self.hidden]));
        let mut outs = Vec::with_capacity(t);
        for step in 0..t {
            let xt = ops::time_slice(g, x, step);
            let drive = self.proj.forward(g, store, xt);
            // Soft reset: a spike clamps the carried-over membrane charge.
            let not_spiked = ops::add_scalar(g, ops::neg(g, prev_spike), 1.0);
            let carried = ops::mul(g, u, not_spiked);
            u = ops::add(g, ops::scale(g, carried, self.decay), drive);
            let centered = ops::add_scalar(g, u, -self.threshold);
            let s = ops::spike(g, centered, self.surrogate_beta);
            prev_spike = s;
            outs.push(s);
        }
        let train = ops::stack_time(g, &outs);
        let rate = ops::mean_axis(g, train, 1, false);
        (train, rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spikes_are_binary() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(41);
        let mut store = ParamStore::new();
        let lif = LifLayer::new(&mut store, &mut rng, "lif", 4, 8);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[2, 6, 4], 2.0));
        let (train, rate) = lif.forward(&g, &store, x);
        assert_eq!(g.shape_of(train), vec![2, 6, 8]);
        assert_eq!(g.shape_of(rate), vec![2, 8]);
        for &v in g.value(train).data() {
            assert!(v == 0.0 || v == 1.0, "non-binary spike {v}");
        }
        for &r in g.value(rate).data() {
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn surrogate_gradient_trains_firing_rate() {
        // Push the mean firing rate toward 0.5 via the surrogate gradient.
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let mut store = ParamStore::new();
        let lif = LifLayer::new(&mut store, &mut rng, "lif", 3, 6);
        let x = Tensor::randn(&mut rng, &[4, 5, 3], 1.0);
        let target = Tensor::full(&[4, 6], 0.5);
        let mut opt = crate::optim::AdamW::new(&store, 5e-2);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..30 {
            let g = Graph::new();
            let xv = g.input(x.clone());
            let (_, rate) = lif.forward(&g, &store, xv);
            let loss = crate::loss::mse(&g, rate, &target);
            let lv = g.value(loss).item();
            if it == 0 {
                first = lv;
            }
            last = lv;
            g.backward(loss);
            g.write_grads(&mut store);
            opt.step(&mut store);
        }
        assert!(
            last <= first,
            "firing-rate loss should not increase: {first} -> {last}"
        );
    }
}
