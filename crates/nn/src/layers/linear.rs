//! Fully-connected layer.

use rand::Rng;

use crate::graph::{Graph, ParamId, ParamStore, Var};
use crate::init::xavier_uniform;
use crate::ops;
use crate::tensor::Tensor;

/// `y = x W + b`, accepting `[N, in]` or `[B, T, in]` inputs.
pub struct Linear {
    w: ParamId,
    b: Option<ParamId>,
    in_dim: usize,
    out_dim: usize,
}

impl Linear {
    /// Registers a new layer's parameters in `store`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        let b = Some(store.add(format!("{name}.b"), Tensor::zeros(&[out_dim])));
        Linear {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Same, without a bias term.
    pub fn new_no_bias<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        out_dim: usize,
    ) -> Self {
        let w = store.add(format!("{name}.w"), xavier_uniform(rng, in_dim, out_dim));
        Linear {
            w,
            b: None,
            in_dim,
            out_dim,
        }
    }

    /// Input feature dimension.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output feature dimension.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// Parameter id of the `[in, out]` weight matrix (for inference engines
    /// that read weights straight out of the store).
    pub fn w_id(&self) -> ParamId {
        self.w
    }

    /// Parameter id of the `[out]` bias vector, if the layer has one.
    pub fn b_id(&self) -> Option<ParamId> {
        self.b
    }

    /// Applies the layer.
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> Var {
        let w = g.bind(store, self.w);
        let y = ops::matmul(g, x, w);
        match self.b {
            Some(b) => {
                let b = g.bind(store, b);
                ops::add(g, y, b)
            }
            None => y,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn forward_shapes_2d_and_3d() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, "l", 8, 4);
        let g = Graph::new();
        let x2 = g.input(Tensor::ones(&[3, 8]));
        assert_eq!(g.shape_of(lin.forward(&g, &store, x2)), vec![3, 4]);
        let x3 = g.input(Tensor::ones(&[2, 5, 8]));
        assert_eq!(g.shape_of(lin.forward(&g, &store, x3)), vec![2, 5, 4]);
    }

    #[test]
    fn gradients_reach_parameters() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 2);
        let g = Graph::new();
        let x = g.input(Tensor::ones(&[3, 4]));
        let y = lin.forward(&g, &store, x);
        let s = ops::sum_all(&g, y);
        g.backward(s);
        g.write_grads(&mut store);
        assert!(store.grad_norm() > 0.0);
    }
}
