//! Neural-network layers built on the autograd tape.

mod attention;
mod layernorm;
mod linear;
mod mlp;
mod rnn;
mod spiking;
mod transformer;

pub use attention::MultiHeadAttention;
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use mlp::{Activation, Mlp};
pub use rnn::{BiLstm, Gru, Lstm};
pub use spiking::LifLayer;
pub use transformer::{TransformerEncoder, TransformerEncoderLayer};
