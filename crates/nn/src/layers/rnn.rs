//! Recurrent layers: LSTM, GRU, and bidirectional LSTM.
//!
//! These power the DeepLog/LogAnomaly/LogRobust/LogTAD/LogTransfer/MetaLog
//! baselines. Sequences are short (window length 10 in the paper), so
//! unrolling the recurrence onto the tape is cheap.

use rand::Rng;

use crate::graph::{Graph, ParamId, ParamStore, Var};
use crate::init::xavier_uniform;
use crate::ops;
use crate::tensor::Tensor;

/// Long short-term memory layer.
pub struct Lstm {
    wx: ParamId, // [D, 4H] gate order: i, f, g, o
    wh: ParamId, // [H, 4H]
    b: ParamId,  // [4H]
    hidden: usize,
}

impl Lstm {
    /// Creates an LSTM mapping input width `input` to hidden width `hidden`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        let wx = store.add(format!("{name}.wx"), xavier_uniform(rng, input, 4 * hidden));
        let wh = store.add(
            format!("{name}.wh"),
            xavier_uniform(rng, hidden, 4 * hidden),
        );
        // Forget-gate bias starts at 1 (standard trick for gradient flow).
        let mut bias = Tensor::zeros(&[4 * hidden]);
        bias.data_mut()[hidden..2 * hidden]
            .iter_mut()
            .for_each(|x| *x = 1.0);
        let b = store.add(format!("{name}.b"), bias);
        Lstm { wx, wh, b, hidden }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs over `[B, T, D]`; returns (`[B, T, H]` outputs, `[B, H]` final h).
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> (Var, Var) {
        self.run(g, store, x, false)
    }

    /// Same as [`Lstm::forward`] but consumes the sequence right-to-left.
    pub fn forward_reversed(&self, g: &Graph, store: &ParamStore, x: Var) -> (Var, Var) {
        self.run(g, store, x, true)
    }

    fn run(&self, g: &Graph, store: &ParamStore, x: Var, reversed: bool) -> (Var, Var) {
        let shape = g.shape_of(x);
        assert_eq!(shape.len(), 3, "lstm expects [B,T,D]");
        let (bsz, t) = (shape[0], shape[1]);
        let h0 = g.input(Tensor::zeros(&[bsz, self.hidden]));
        let c0 = g.input(Tensor::zeros(&[bsz, self.hidden]));
        let wx = g.bind(store, self.wx);
        let wh = g.bind(store, self.wh);
        let b = g.bind(store, self.b);
        let (mut h, mut c) = (h0, c0);
        let mut outs: Vec<Var> = vec![h0; t];
        let order: Vec<usize> = if reversed {
            (0..t).rev().collect()
        } else {
            (0..t).collect()
        };
        let hsz = self.hidden;
        for &step in &order {
            let xt = ops::time_slice(g, x, step); // [B,D]
            let hc = ops::lstm_cell(g, xt, h, c, wx, wh, b); // [B,2H] = h' ‖ c'
            h = ops::slice_last(g, hc, 0, hsz);
            c = ops::slice_last(g, hc, hsz, hsz);
            outs[step] = h;
        }
        (ops::stack_time(g, &outs), h)
    }
}

/// Gated recurrent unit layer.
pub struct Gru {
    wx: ParamId, // [D, 3H] gate order: z, r, n
    wh: ParamId, // [H, 3H]
    b: ParamId,  // [3H]
    hidden: usize,
}

impl Gru {
    /// Creates a GRU mapping input width `input` to hidden width `hidden`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        let wx = store.add(format!("{name}.wx"), xavier_uniform(rng, input, 3 * hidden));
        let wh = store.add(
            format!("{name}.wh"),
            xavier_uniform(rng, hidden, 3 * hidden),
        );
        let b = store.add(format!("{name}.b"), Tensor::zeros(&[3 * hidden]));
        Gru { wx, wh, b, hidden }
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Runs over `[B, T, D]`; returns (`[B, T, H]` outputs, `[B, H]` final h).
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> (Var, Var) {
        let shape = g.shape_of(x);
        assert_eq!(shape.len(), 3, "gru expects [B,T,D]");
        let (bsz, t) = (shape[0], shape[1]);
        let wx = g.bind(store, self.wx);
        let wh = g.bind(store, self.wh);
        let b = g.bind(store, self.b);
        let mut h = g.input(Tensor::zeros(&[bsz, self.hidden]));
        let mut outs = Vec::with_capacity(t);
        for step in 0..t {
            let xt = ops::time_slice(g, x, step);
            h = ops::gru_cell(g, xt, h, wx, wh, b);
            outs.push(h);
        }
        (ops::stack_time(g, &outs), h)
    }
}

/// Bidirectional LSTM: concatenates forward and backward hidden states.
pub struct BiLstm {
    fwd: Lstm,
    bwd: Lstm,
}

impl BiLstm {
    /// Creates a BiLSTM; the output width is `2 * hidden`.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        input: usize,
        hidden: usize,
    ) -> Self {
        BiLstm {
            fwd: Lstm::new(store, rng, &format!("{name}.fwd"), input, hidden),
            bwd: Lstm::new(store, rng, &format!("{name}.bwd"), input, hidden),
        }
    }

    /// Output feature width (`2 * hidden`).
    pub fn out_dim(&self) -> usize {
        2 * self.fwd.hidden()
    }

    /// Runs over `[B, T, D]`; returns (`[B, T, 2H]`, `[B, 2H]` final state).
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> (Var, Var) {
        let (of, hf) = self.fwd.forward(g, store, x);
        let (ob, hb) = self.bwd.forward_reversed(g, store, x);
        let out = ops::concat_last(g, &[of, ob]);
        let h = ops::concat_last(g, &[hf, hb]);
        (out, h)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn seq_tensor(rng: &mut rand::rngs::StdRng) -> Tensor {
        Tensor::randn(rng, &[3, 5, 4], 1.0)
    }

    #[test]
    fn lstm_shapes() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, &mut rng, "l", 4, 6);
        let g = Graph::new();
        let x = g.input(seq_tensor(&mut rng));
        let (out, h) = lstm.forward(&g, &store, x);
        assert_eq!(g.shape_of(out), vec![3, 5, 6]);
        assert_eq!(g.shape_of(h), vec![3, 6]);
        assert!(g.value(out).all_finite());
    }

    #[test]
    fn gru_shapes_and_grads() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(32);
        let mut store = ParamStore::new();
        let gru = Gru::new(&mut store, &mut rng, "g", 4, 6);
        let g = Graph::new();
        let x = g.input(seq_tensor(&mut rng));
        let (out, _) = gru.forward(&g, &store, x);
        let s = ops::sum_all(&g, out);
        g.backward(s);
        g.write_grads(&mut store);
        assert!(store.grad_norm() > 0.0);
        assert!(store.grad_norm().is_finite());
    }

    #[test]
    fn bilstm_width_doubles() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(33);
        let mut store = ParamStore::new();
        let bi = BiLstm::new(&mut store, &mut rng, "bi", 4, 5);
        let g = Graph::new();
        let x = g.input(seq_tensor(&mut rng));
        let (out, h) = bi.forward(&g, &store, x);
        assert_eq!(g.shape_of(out), vec![3, 5, 10]);
        assert_eq!(g.shape_of(h), vec![3, 10]);
    }

    #[test]
    fn lstm_final_state_matches_last_output() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(34);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, &mut rng, "l", 4, 6);
        let g = Graph::new();
        let x = g.input(seq_tensor(&mut rng));
        let (out, h) = lstm.forward(&g, &store, x);
        let last = ops::time_slice(&g, out, 4);
        assert_eq!(g.value(last).data(), g.value(h).data());
    }

    #[test]
    fn lstm_learns_sign_of_mean() {
        // Classify whether the sequence mean is positive: trainable end-to-end.
        let mut rng = rand::rngs::StdRng::seed_from_u64(35);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, &mut rng, "l", 2, 8);
        let head = crate::layers::Linear::new(&mut store, &mut rng, "h", 8, 1);
        let n = 32;
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
            for _ in 0..6 * 2 {
                data.push(sign * 0.5 + 0.1 * (rng.gen::<f32>() - 0.5));
            }
            labels.push(if sign > 0.0 { 1.0 } else { 0.0 });
        }
        let x = Tensor::new(data, &[n, 6, 2]);
        let mut opt = crate::optim::AdamW::new(&store, 1e-2);
        let mut first = 0.0;
        let mut last = 0.0;
        for it in 0..40 {
            let g = Graph::new();
            let xv = g.input(x.clone());
            let (_, h) = lstm.forward(&g, &store, xv);
            let logits = head.forward(&g, &store, h);
            let flat = ops::reshape(&g, logits, &[n]);
            let loss = crate::loss::bce_with_logits(&g, flat, &labels);
            let lv = g.value(loss).item();
            if it == 0 {
                first = lv;
            }
            last = lv;
            g.backward(loss);
            g.write_grads(&mut store);
            opt.step(&mut store);
        }
        assert!(last < first * 0.5, "loss {first} -> {last}");
    }
}
