//! Small multi-layer perceptrons (classifier heads, CLUB estimator nets).

use rand::Rng;

use crate::graph::{Graph, ParamStore, Var};
use crate::layers::Linear;
use crate::ops;

/// Activation functions an [`Mlp`] can interleave between layers.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// GELU (BERT-style).
    Gelu,
}

impl Activation {
    fn apply(self, g: &Graph, x: Var) -> Var {
        match self {
            Activation::Relu => ops::relu(g, x),
            Activation::Tanh => ops::tanh(g, x),
            Activation::Gelu => ops::gelu(g, x),
        }
    }
}

/// A stack of [`Linear`] layers with a fixed activation between them
/// (none after the last layer — callers add softmax/sigmoid as needed).
pub struct Mlp {
    layers: Vec<Linear>,
    act: Activation,
}

impl Mlp {
    /// Builds an MLP over the widths in `dims` (at least two entries).
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        dims: &[usize],
        act: Activation,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp needs at least [in, out] dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Linear::new(store, rng, &format!("{name}.{i}"), w[0], w[1]))
            .collect();
        Mlp { layers, act }
    }

    /// Output feature width.
    pub fn out_dim(&self) -> usize {
        self.layers.last().unwrap().out_dim()
    }

    /// The stacked [`Linear`] layers, in application order.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// The activation applied between (not after) layers.
    pub fn activation(&self) -> Activation {
        self.act
    }

    /// Applies every layer, with the activation between (not after) layers.
    pub fn forward(&self, g: &Graph, store: &ParamStore, mut x: Var) -> Var {
        let n = self.layers.len();
        for (i, layer) in self.layers.iter().enumerate() {
            x = layer.forward(g, store, x);
            if i + 1 < n {
                x = self.act.apply(g, x);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::SeedableRng;

    #[test]
    fn mlp_learns_xor() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(51);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, "mlp", &[2, 16, 1], Activation::Tanh);
        let x = Tensor::new(vec![0., 0., 0., 1., 1., 0., 1., 1.], &[4, 2]);
        let y = [0.0, 1.0, 1.0, 0.0];
        let mut opt = crate::optim::AdamW::new(&store, 5e-2);
        for _ in 0..300 {
            let g = Graph::new();
            let xv = g.input(x.clone());
            let logits = mlp.forward(&g, &store, xv);
            let flat = ops::reshape(&g, logits, &[4]);
            let loss = crate::loss::bce_with_logits(&g, flat, &y);
            g.backward(loss);
            g.write_grads(&mut store);
            opt.step(&mut store);
        }
        let g = Graph::inference();
        let logits = mlp.forward(&g, &store, g.input(x));
        let v = g.value(logits);
        for (i, &want) in y.iter().enumerate() {
            let p = 1.0 / (1.0 + (-v.data()[i]).exp());
            assert!(
                (p > 0.5) == (want > 0.5),
                "xor case {i}: p={p}, want {want}"
            );
        }
    }

    #[test]
    fn single_hidden_layer_out_dim() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(52);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, &mut rng, "m", &[8, 4, 3], Activation::Relu);
        assert_eq!(mlp.out_dim(), 3);
        let g = Graph::new();
        let x = g.input(Tensor::ones(&[2, 8]));
        assert_eq!(g.shape_of(mlp.forward(&g, &store, x)), vec![2, 3]);
    }
}
