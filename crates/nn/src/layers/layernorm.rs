//! Layer normalization over the last axis.

use crate::graph::{Graph, ParamId, ParamStore, Var};
use crate::ops;
use crate::tensor::Tensor;

/// LayerNorm with learned scale (`gamma`) and shift (`beta`).
///
/// Backed by the fused [`ops::layer_norm`] kernel (one tape node with an
/// analytic backward pass); the gradient checks in the test suite cover it
/// against finite differences.
pub struct LayerNorm {
    gamma: ParamId,
    beta: ParamId,
    dim: usize,
    eps: f32,
}

impl LayerNorm {
    /// Registers `gamma = 1`, `beta = 0` parameters of width `dim`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gamma = store.add(format!("{name}.gamma"), Tensor::ones(&[dim]));
        let beta = store.add(format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm {
            gamma,
            beta,
            dim,
            eps: 1e-5,
        }
    }

    /// Normalized feature width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Parameter id of the `[dim]` scale vector.
    pub fn gamma_id(&self) -> ParamId {
        self.gamma
    }

    /// Parameter id of the `[dim]` shift vector.
    pub fn beta_id(&self) -> ParamId {
        self.beta
    }

    /// The numerical-stability epsilon added to the variance.
    pub fn eps(&self) -> f32 {
        self.eps
    }

    /// Applies the layer to `[.., dim]` input.
    pub fn forward(&self, g: &Graph, store: &ParamStore, x: Var) -> Var {
        let shape = g.shape_of(x);
        let last = shape.len() - 1;
        assert_eq!(shape[last], self.dim, "LayerNorm dim mismatch");
        let gamma = g.bind(store, self.gamma);
        let beta = g.bind(store, self.beta);
        ops::layer_norm(g, x, gamma, beta, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rows_are_standardized() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let g = Graph::new();
        let x = g.input(Tensor::new(
            vec![1., 2., 3., 4., 10., 20., 30., 40.],
            &[2, 4],
        ));
        let y = ln.forward(&g, &store, x);
        let v = g.value(y);
        for row in v.data().chunks_exact(4) {
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|&a| (a - mean) * (a - mean)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_receive_gradients() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 3);
        let g = Graph::new();
        let x = g.input(Tensor::new(vec![0.5, -1.0, 2.0], &[1, 3]));
        let y = ln.forward(&g, &store, x);
        let s = ops::sum_all(&g, y);
        g.backward(s);
        g.write_grads(&mut store);
        // beta's gradient under a sum loss is exactly 1 per feature.
        let beta_grad = store.grad(crate::graph::ParamId(1));
        assert_eq!(beta_grad.data(), &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn works_on_3d_input() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let g = Graph::new();
        let x = g.input(Tensor::new((0..24).map(|i| i as f32).collect(), &[2, 3, 4]));
        let y = ln.forward(&g, &store, x);
        assert_eq!(g.shape_of(y), vec![2, 3, 4]);
    }
}
