//! Transformer encoder (Vaswani et al., 2017) — the feature extractor `F`
//! of LogSynergy and of the NeuralLog baseline.

use rand::Rng;

use crate::graph::{Graph, ParamStore, Var};
use crate::layers::LayerNorm;
use crate::layers::{Linear, MultiHeadAttention};
use crate::ops;
use crate::tensor::Tensor;

/// One pre-norm encoder block: `x + MHA(LN(x))`, then `x + FFN(LN(x))`.
pub struct TransformerEncoderLayer {
    ln1: LayerNorm,
    attn: MultiHeadAttention,
    ln2: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    dropout: f32,
}

impl TransformerEncoderLayer {
    /// `d` model width, `heads` attention heads, `ff` feed-forward width.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        d: usize,
        heads: usize,
        ff: usize,
        dropout: f32,
    ) -> Self {
        TransformerEncoderLayer {
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), d),
            attn: MultiHeadAttention::new(store, rng, &format!("{name}.attn"), d, heads),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), d),
            ff1: Linear::new(store, rng, &format!("{name}.ff1"), d, ff),
            ff2: Linear::new(store, rng, &format!("{name}.ff2"), ff, d),
            dropout,
        }
    }

    /// The first (pre-attention) layer norm.
    pub fn ln1(&self) -> &LayerNorm {
        &self.ln1
    }

    /// The self-attention block.
    pub fn attn(&self) -> &MultiHeadAttention {
        &self.attn
    }

    /// The second (pre-feed-forward) layer norm.
    pub fn ln2(&self) -> &LayerNorm {
        &self.ln2
    }

    /// The feed-forward expansion projection (`d → ff`).
    pub fn ff1(&self) -> &Linear {
        &self.ff1
    }

    /// The feed-forward contraction projection (`ff → d`).
    pub fn ff2(&self) -> &Linear {
        &self.ff2
    }

    /// Applies the block to `[B, T, D]`.
    pub fn forward<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        store: &ParamStore,
        x: Var,
        rng: &mut R,
    ) -> Var {
        let n1 = self.ln1.forward(g, store, x);
        let a = self.attn.forward(g, store, n1);
        let a = ops::dropout(g, a, self.dropout, rng);
        let x = ops::add(g, x, a);
        let n2 = self.ln2.forward(g, store, x);
        let h = self.ff1.forward(g, store, n2);
        let h = ops::gelu(g, h);
        let h = self.ff2.forward(g, store, h);
        let h = ops::dropout(g, h, self.dropout, rng);
        ops::add(g, x, h)
    }
}

/// Stack of encoder layers with learned positional embeddings and a final
/// LayerNorm, plus mean pooling over time.
pub struct TransformerEncoder {
    pos: crate::graph::ParamId,
    layers: Vec<TransformerEncoderLayer>,
    ln_out: LayerNorm,
    d: usize,
    max_len: usize,
}

impl TransformerEncoder {
    /// Builds an encoder: `n_layers` blocks of width `d`.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        d: usize,
        heads: usize,
        ff: usize,
        n_layers: usize,
        max_len: usize,
        dropout: f32,
    ) -> Self {
        let pos = store.add(
            format!("{name}.pos"),
            Tensor::randn(rng, &[max_len, d], 0.02),
        );
        let layers = (0..n_layers)
            .map(|i| {
                TransformerEncoderLayer::new(
                    store,
                    rng,
                    &format!("{name}.layer{i}"),
                    d,
                    heads,
                    ff,
                    dropout,
                )
            })
            .collect();
        TransformerEncoder {
            pos,
            layers,
            ln_out: LayerNorm::new(store, &format!("{name}.ln_out"), d),
            d,
            max_len,
        }
    }

    /// Model width.
    pub fn dim(&self) -> usize {
        self.d
    }

    /// Maximum sequence length (rows of the positional table).
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Parameter id of the `[max_len, d]` positional-embedding table.
    pub fn pos_id(&self) -> crate::graph::ParamId {
        self.pos
    }

    /// The encoder blocks, in application order.
    pub fn layer_stack(&self) -> &[TransformerEncoderLayer] {
        &self.layers
    }

    /// The final layer norm applied after the block stack.
    pub fn ln_out(&self) -> &LayerNorm {
        &self.ln_out
    }

    /// Encodes `[B, T, D]` into contextualized `[B, T, D]`.
    pub fn forward<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        store: &ParamStore,
        x: Var,
        rng: &mut R,
    ) -> Var {
        let shape = g.shape_of(x);
        assert_eq!(shape.len(), 3, "encoder expects [B,T,D]");
        let t = shape[1];
        assert!(
            t <= self.max_len,
            "sequence length {t} exceeds max {}",
            self.max_len
        );
        assert_eq!(shape[2], self.d, "encoder width mismatch");
        // Add positional embeddings (truncated to T, broadcast over batch).
        let pos = g.bind(store, self.pos);
        let pos_t = ops::slice_rows(g, pos, 0, t); // [T, D]
        let mut h = ops::add(g, x, pos_t); // [B,T,D] + [T,D]
        for layer in &self.layers {
            h = layer.forward(g, store, h, rng);
        }
        self.ln_out.forward(g, store, h)
    }

    /// Encodes then mean-pools over time: `[B, T, D] -> [B, D]`.
    pub fn encode_pooled<R: Rng + ?Sized>(
        &self,
        g: &Graph,
        store: &ParamStore,
        x: Var,
        rng: &mut R,
    ) -> Var {
        let h = self.forward(g, store, x, rng);
        ops::mean_axis(g, h, 1, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn encoder_shapes_and_finiteness() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(21);
        let mut store = ParamStore::new();
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 16, 4, 32, 2, 10, 0.0);
        let g = Graph::new();
        let x = g.input(Tensor::randn(&mut rng, &[4, 10, 16], 1.0));
        let y = enc.forward(&g, &store, x, &mut rng);
        assert_eq!(g.shape_of(y), vec![4, 10, 16]);
        let p = enc.encode_pooled(&g, &store, x, &mut rng);
        assert_eq!(g.shape_of(p), vec![4, 16]);
        assert!(g.value(p).all_finite());
    }

    #[test]
    fn positions_break_permutation_symmetry() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(22);
        let mut store = ParamStore::new();
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 8, 2, 16, 1, 4, 0.0);
        let a = Tensor::randn(&mut rng, &[1, 2, 8], 1.0);
        let mut swapped = a.clone();
        let (l, r) = swapped.data_mut().split_at_mut(8);
        l.swap_with_slice(r);
        let g = Graph::inference();
        let p1 = g.value(enc.encode_pooled(&g, &store, g.input(a), &mut rng));
        let g2 = Graph::inference();
        let p2 = g2.value(enc.encode_pooled(&g2, &store, g2.input(swapped), &mut rng));
        let diff: f32 = p1
            .data()
            .iter()
            .zip(p2.data())
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(
            diff > 1e-4,
            "positional embeddings should make order matter, diff={diff}"
        );
    }

    #[test]
    fn whole_encoder_trains() {
        // One gradient step must reduce a simple regression loss.
        let mut rng = rand::rngs::StdRng::seed_from_u64(23);
        let mut store = ParamStore::new();
        let enc = TransformerEncoder::new(&mut store, &mut rng, "enc", 8, 2, 16, 1, 6, 0.0);
        let head = Linear::new(&mut store, &mut rng, "head", 8, 1);
        let x = Tensor::randn(&mut rng, &[8, 6, 8], 1.0);
        let target = Tensor::ones(&[8, 1]);
        let mut opt = crate::optim::AdamW::new(&store, 1e-2);
        let mut losses = vec![];
        for _ in 0..30 {
            let g = Graph::new();
            let xv = g.input(x.clone());
            let pooled = enc.encode_pooled(&g, &store, xv, &mut rng);
            let pred = head.forward(&g, &store, pooled);
            let loss = crate::loss::mse(&g, pred, &target);
            losses.push(g.value(loss).item());
            g.backward(loss);
            g.write_grads(&mut store);
            opt.step(&mut store);
        }
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss should halve: {:?} -> {:?}",
            losses[0],
            losses.last().unwrap()
        );
    }
}
