//! Finite-difference gradient checks for every differentiable op and layer.

use logsynergy_nn::gradcheck::assert_gradcheck;
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{
    Activation, BiLstm, Gru, LayerNorm, LifLayer, Linear, Lstm, Mlp, MultiHeadAttention,
    TransformerEncoder,
};
use logsynergy_nn::{ops, Tensor};
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOL: f32 = 2e-2;

fn rng() -> StdRng {
    StdRng::seed_from_u64(0xC0FFEE)
}

#[test]
fn gradcheck_elementwise_chain() {
    let mut r = rng();
    let x = Tensor::randn(&mut r, &[2, 3], 0.8);
    assert_gradcheck(
        |g, v| {
            let s = ops::square(g, v);
            let t = ops::scale(g, s, 0.5);
            let u = ops::add_scalar(g, t, 1.0);
            let w = ops::mul(g, u, v);
            ops::mean_all(g, w)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_div_and_sqrt() {
    let mut r = rng();
    let x = Tensor::rand_uniform(&mut r, &[5], 0.5, 2.0);
    assert_gradcheck(
        |g, v| {
            let s = ops::sqrt(g, v);
            let d = ops::div(g, v, s); // v / sqrt(v) = sqrt(v)
            ops::sum_all(g, d)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_broadcast_add_bias() {
    let mut r = rng();
    let bias = Tensor::randn(&mut r, &[4], 1.0);
    let big = Tensor::randn(&mut r, &[3, 4], 1.0);
    assert_gradcheck(
        |g, v| {
            let b = g.input(big.clone());
            let y = ops::add(g, b, v);
            let sq = ops::square(g, y);
            ops::sum_all(g, sq)
        },
        &bias,
        TOL,
    );
}

#[test]
fn gradcheck_matmul_2d() {
    let mut r = rng();
    let a = Tensor::randn(&mut r, &[3, 4], 0.7);
    let fixed = Tensor::randn(&mut r, &[4, 2], 0.7);
    assert_gradcheck(
        |g, v| {
            let b = g.input(fixed.clone());
            let c = ops::matmul(g, v, b);
            let sq = ops::square(g, c);
            ops::sum_all(g, sq)
        },
        &a,
        TOL,
    );
}

#[test]
fn gradcheck_matmul_batched() {
    let mut r = rng();
    let a = Tensor::randn(&mut r, &[2, 3, 4], 0.5);
    let fixed = Tensor::randn(&mut r, &[2, 4, 3], 0.5);
    assert_gradcheck(
        |g, v| {
            let b = g.input(fixed.clone());
            let c = ops::matmul(g, v, b);
            ops::sum_all(g, c)
        },
        &a,
        TOL,
    );
}

#[test]
fn gradcheck_matmul_rhs() {
    let mut r = rng();
    let b = Tensor::randn(&mut r, &[4, 2], 0.7);
    let fixed = Tensor::randn(&mut r, &[3, 4], 0.7);
    assert_gradcheck(
        |g, v| {
            let a = g.input(fixed.clone());
            let c = ops::matmul(g, a, v);
            let sq = ops::square(g, c);
            ops::sum_all(g, sq)
        },
        &b,
        TOL,
    );
}

#[test]
fn gradcheck_activations() {
    let mut r = rng();
    let x = Tensor::randn(&mut r, &[6], 0.9);
    for (name, f) in [
        (
            "tanh",
            ops::tanh as fn(&Graph, logsynergy_nn::Var) -> logsynergy_nn::Var,
        ),
        ("sigmoid", ops::sigmoid),
        ("gelu", ops::gelu),
        ("exp", ops::exp),
    ] {
        let err = logsynergy_nn::gradcheck::gradcheck(
            |g, v| {
                let y = f(g, v);
                ops::sum_all(g, y)
            },
            &x,
            1e-2,
        );
        assert!(err < TOL, "{name} gradcheck err {err}");
    }
}

#[test]
fn gradcheck_softmax_and_log_softmax() {
    let mut r = rng();
    let x = Tensor::randn(&mut r, &[2, 5], 1.0);
    assert_gradcheck(
        |g, v| {
            let s = ops::softmax(g, v);
            let sq = ops::square(g, s);
            ops::sum_all(g, sq)
        },
        &x,
        TOL,
    );
    assert_gradcheck(
        |g, v| {
            let s = ops::log_softmax(g, v);
            let w = ops::mul(g, s, s);
            ops::mean_all(g, w)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_reductions_and_shapes() {
    let mut r = rng();
    let x = Tensor::randn(&mut r, &[2, 3, 4], 0.8);
    assert_gradcheck(
        |g, v| {
            let m = ops::mean_axis(g, v, 1, false);
            let s = ops::square(g, m);
            ops::sum_all(g, s)
        },
        &x,
        TOL,
    );
    assert_gradcheck(
        |g, v| {
            let t = ops::time_slice(g, v, 1);
            let sl = ops::slice_last(g, t, 1, 2);
            let sq = ops::square(g, sl);
            ops::sum_all(g, sq)
        },
        &x,
        TOL,
    );
    assert_gradcheck(
        |g, v| {
            let t = ops::transpose_last2(g, v);
            let r = ops::reshape(g, t, &[6, 4]);
            let sq = ops::square(g, r);
            ops::mean_all(g, sq)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_losses() {
    let mut r = rng();
    let logits = Tensor::randn(&mut r, &[4], 1.0);
    assert_gradcheck(
        |g, v| logsynergy_nn::loss::bce_with_logits(g, v, &[1.0, 0.0, 1.0, 0.0]),
        &logits,
        TOL,
    );
    let logits2 = Tensor::randn(&mut r, &[3, 4], 1.0);
    assert_gradcheck(
        |g, v| logsynergy_nn::loss::cross_entropy(g, v, &[0, 3, 2]),
        &logits2,
        TOL,
    );
    let pred = Tensor::randn(&mut r, &[5], 1.0);
    let target = Tensor::randn(&mut r, &[5], 1.0);
    assert_gradcheck(|g, v| logsynergy_nn::loss::mse(g, v, &target), &pred, TOL);
}

#[test]
fn gradcheck_linear_layer_input() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let lin = Linear::new(&mut store, &mut r, "l", 4, 3);
    let x = Tensor::randn(&mut r, &[2, 4], 0.8);
    assert_gradcheck(
        |g, v| {
            let y = lin.forward(g, &store, v);
            let sq = ops::square(g, y);
            ops::sum_all(g, sq)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_layernorm_input() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let ln = LayerNorm::new(&mut store, "ln", 4);
    let x = Tensor::randn(&mut r, &[3, 4], 1.0);
    assert_gradcheck(
        |g, v| {
            let y = ln.forward(g, &store, v);
            let t = ops::tanh(g, y);
            ops::sum_all(g, t)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_attention_input() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let mha = MultiHeadAttention::new(&mut store, &mut r, "mha", 4, 2);
    let x = Tensor::randn(&mut r, &[1, 3, 4], 0.6);
    assert_gradcheck(
        |g, v| {
            let y = mha.forward(g, &store, v);
            let sq = ops::square(g, y);
            ops::mean_all(g, sq)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_transformer_encoder_input() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let enc = TransformerEncoder::new(&mut store, &mut r, "enc", 4, 2, 8, 1, 5, 0.0);
    let x = Tensor::randn(&mut r, &[1, 4, 4], 0.5);
    assert_gradcheck(
        |g, v| {
            let mut tmp = StdRng::seed_from_u64(9);
            let y = enc.encode_pooled(g, &store, v, &mut tmp);
            let sq = ops::square(g, y);
            ops::sum_all(g, sq)
        },
        &x,
        3e-2,
    );
}

#[test]
fn gradcheck_lstm_and_gru_input() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let lstm = Lstm::new(&mut store, &mut r, "l", 3, 4);
    let x = Tensor::randn(&mut r, &[2, 4, 3], 0.6);
    assert_gradcheck(
        |g, v| {
            let (_, h) = lstm.forward(g, &store, v);
            let sq = ops::square(g, h);
            ops::sum_all(g, sq)
        },
        &x,
        TOL,
    );
    let mut store2 = ParamStore::new();
    let gru = Gru::new(&mut store2, &mut r, "g", 3, 4);
    assert_gradcheck(
        |g, v| {
            let (out, _) = gru.forward(g, &store2, v);
            let sq = ops::square(g, out);
            ops::mean_all(g, sq)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_bilstm_input() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let bi = BiLstm::new(&mut store, &mut r, "bi", 3, 3);
    let x = Tensor::randn(&mut r, &[1, 3, 3], 0.6);
    assert_gradcheck(
        |g, v| {
            let (_, h) = bi.forward(g, &store, v);
            let sq = ops::square(g, h);
            ops::sum_all(g, sq)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_mlp_input() {
    let mut r = rng();
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, &mut r, "m", &[4, 6, 2], Activation::Tanh);
    let x = Tensor::randn(&mut r, &[3, 4], 0.7);
    assert_gradcheck(
        |g, v| {
            let y = mlp.forward(g, &store, v);
            let sq = ops::square(g, y);
            ops::sum_all(g, sq)
        },
        &x,
        TOL,
    );
}

#[test]
fn lif_rate_gradient_is_finite_and_nonzero() {
    // The LIF spike is a surrogate gradient, so finite differences will not
    // match (forward is a step function); instead verify the surrogate path
    // produces finite, nonzero gradients.
    let mut r = rng();
    let mut store = ParamStore::new();
    let lif = LifLayer::new(&mut store, &mut r, "lif", 3, 4);
    let g = Graph::new();
    let x = g.input(Tensor::randn(&mut r, &[2, 5, 3], 1.0));
    let (_, rate) = lif.forward(&g, &store, x);
    let s = ops::sum_all(&g, rate);
    g.backward(s);
    g.write_grads(&mut store);
    let n = store.grad_norm();
    assert!(n.is_finite() && n > 0.0, "lif grad norm {n}");
}

#[test]
fn gradcheck_grl_is_negated_identity() {
    let mut r = rng();
    let x = Tensor::randn(&mut r, &[4], 1.0);
    // loss = sum(grl(x, 2.0)) has gradient -2 everywhere.
    let g = Graph::new();
    let v = g.leaf(x);
    let y = ops::grl(&g, v, 2.0);
    let s = ops::sum_all(&g, y);
    g.backward(s);
    for &gv in g.grad(v).unwrap().data() {
        assert!((gv + 2.0).abs() < 1e-6);
    }
}

#[test]
fn gradcheck_concat_and_stack() {
    let mut r = rng();
    let x = Tensor::randn(&mut r, &[2, 3], 0.8);
    assert_gradcheck(
        |g, v| {
            let a = ops::slice_last(g, v, 0, 1);
            let b = ops::slice_last(g, v, 1, 2);
            let c = ops::concat_last(g, &[b, a]);
            let sq = ops::square(g, c);
            ops::sum_all(g, sq)
        },
        &x,
        TOL,
    );
    assert_gradcheck(
        |g, v| {
            let rows = ops::concat_rows(g, &[v, v]);
            let top = ops::slice_rows(g, rows, 1, 2);
            let sq = ops::square(g, top);
            ops::sum_all(g, sq)
        },
        &x,
        TOL,
    );
}

#[test]
fn gradcheck_embedding_table() {
    let mut r = rng();
    let table = Tensor::randn(&mut r, &[5, 3], 0.8);
    assert_gradcheck(
        |g, v| {
            let e = ops::embedding(g, v, &[0, 4, 0, 2]);
            let sq = ops::square(g, e);
            ops::sum_all(g, sq)
        },
        &table,
        TOL,
    );
}
