//! Peak-tape-memory regression tests.
//!
//! Backward closures capture copy-on-write clones of node values, so the
//! tape holds each buffer once no matter how many closures reference it.
//! These tests pin that down with [`Tensor::shares_storage`] and
//! [`Graph::tape_bytes`].

use logsynergy_nn::{ops, Graph, Tensor};

const N: usize = 64;
const BUF: usize = N * N * std::mem::size_of::<f32>();

#[test]
fn value_clones_share_storage() {
    let g = Graph::new();
    let x = g.input(Tensor::zeros(&[N, N]));
    let t1 = g.value(x);
    let t2 = g.value(x);
    // Cloning a node value (what backward closures capture) is an alias,
    // not a copy.
    assert!(t1.shares_storage(&t2));
}

#[test]
fn reshape_shares_the_parent_buffer_on_the_tape() {
    let g = Graph::new();
    let x = g.input(Tensor::zeros(&[N, N]));
    let y = ops::reshape(&g, x, &[N * N]);
    assert!(g.value(x).shares_storage(&g.value(y)));
    // Two nodes, one buffer: tape accounting dedups by storage identity.
    assert!(
        g.tape_bytes() < 2 * BUF,
        "tape holds {} bytes",
        g.tape_bytes()
    );
}

#[test]
fn matmul_backward_does_not_clone_inputs_into_the_tape() {
    let g = Graph::new();
    let a = g.leaf(Tensor::ones(&[N, N]));
    let b = g.leaf(Tensor::ones(&[N, N]));
    let c = ops::matmul(&g, a, b);
    let forward_bytes = g.tape_bytes();
    // a, b, c — and nothing stashed beyond them (small pow-2 slack only).
    assert!(
        forward_bytes >= 3 * BUF,
        "forward tape {} bytes",
        forward_bytes
    );
    assert!(
        forward_bytes < 4 * BUF,
        "forward tape ballooned to {} bytes",
        forward_bytes
    );

    let s = ops::sum_all(&g, c);
    g.backward(s);
    // Backward adds one gradient per needs-grad node (a, b, c, s) plus the
    // scalar node values; it must not add input copies on top.
    let peak = g.tape_bytes();
    assert!(peak >= 6 * BUF, "peak tape {} bytes", peak);
    assert!(peak < 8 * BUF, "peak tape ballooned to {} bytes", peak);
}

#[test]
fn dropped_graphs_recycle_buffers_into_the_arena() {
    use logsynergy_nn::kernels::arena;
    // Warm up: the first graph allocates, later identical graphs reuse.
    for _ in 0..2 {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[N, N]));
        let b = g.leaf(Tensor::ones(&[N, N]));
        let s = ops::sum_all(&g, ops::matmul(&g, a, b));
        g.backward(s);
    }
    let (_, reused_before) = arena::stats();
    {
        let g = Graph::new();
        let a = g.leaf(Tensor::ones(&[N, N]));
        let b = g.leaf(Tensor::ones(&[N, N]));
        let s = ops::sum_all(&g, ops::matmul(&g, a, b));
        g.backward(s);
    }
    let (_, reused_after) = arena::stats();
    assert!(
        reused_after > reused_before,
        "third identical graph reused no buffers ({reused_before} -> {reused_after})"
    );
}
