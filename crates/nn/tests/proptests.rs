//! Property-based tests for tensor/op invariants.

use logsynergy_nn::graph::Graph;
use logsynergy_nn::tensor::{broadcast_shape, broadcast_zip, reduce_to_shape, Tensor};
use logsynergy_nn::{ops, Tensor as T};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-5.0f32..5.0, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_rows_are_distributions(data in small_vec(12)) {
        let g = Graph::new();
        let x = g.input(Tensor::new(data, &[3, 4]));
        let s = g.value(ops::softmax(&g, x));
        for row in s.data().chunks_exact(4) {
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn log_softmax_exp_matches_softmax(data in small_vec(8)) {
        let g = Graph::new();
        let x = g.input(Tensor::new(data, &[2, 4]));
        let s = g.value(ops::softmax(&g, x));
        let ls = g.value(ops::log_softmax(&g, x));
        for (p, lp) in s.data().iter().zip(ls.data()) {
            prop_assert!((p - lp.exp()).abs() < 1e-4);
        }
    }

    #[test]
    fn add_commutes_under_broadcast(a in small_vec(6), b in small_vec(3)) {
        let ta = Tensor::new(a, &[2, 3]);
        let tb = Tensor::new(b, &[3]);
        let x = broadcast_zip(&ta, &tb, |p, q| p + q);
        let y = broadcast_zip(&tb, &ta, |p, q| p + q);
        prop_assert_eq!(x.data(), y.data());
    }

    #[test]
    fn reduce_to_shape_preserves_total(data in small_vec(24)) {
        let grad = Tensor::new(data, &[2, 3, 4]);
        for target in [vec![4usize], vec![3, 1], vec![1, 3, 4], vec![]] {
            let r = reduce_to_shape(&grad, &target);
            prop_assert!((r.sum() - grad.sum()).abs() < 1e-3);
        }
    }

    #[test]
    fn broadcast_shape_is_commutative(
        a in proptest::collection::vec(1usize..4, 0..3),
        b in proptest::collection::vec(1usize..4, 0..3),
    ) {
        prop_assert_eq!(broadcast_shape(&a, &b), broadcast_shape(&b, &a));
    }

    #[test]
    fn sum_axis_totals_match(data in small_vec(24)) {
        let g = Graph::new();
        let x = g.input(Tensor::new(data, &[2, 3, 4]));
        for axis in 0..3 {
            let s = ops::sum_axis(&g, x, axis, false);
            prop_assert!((g.value(s).sum() - g.value(x).sum()).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_involution(data in small_vec(12)) {
        let g = Graph::new();
        let x = g.input(Tensor::new(data, &[3, 4]));
        let t = ops::transpose_last2(&g, x);
        let tt = ops::transpose_last2(&g, t);
        let (vtt, vx) = (g.value(tt), g.value(x));
        prop_assert_eq!(vtt.data(), vx.data());
    }

    #[test]
    fn relu_is_idempotent(data in small_vec(10)) {
        let g = Graph::new();
        let x = g.input(Tensor::new(data, &[10]));
        let r1 = ops::relu(&g, x);
        let r2 = ops::relu(&g, r1);
        let (v1, v2) = (g.value(r1), g.value(r2));
        prop_assert_eq!(v1.data(), v2.data());
    }

    #[test]
    fn sigmoid_bounded_and_monotone(a in -10.0f32..10.0, b in -10.0f32..10.0) {
        let g = Graph::new();
        let x = g.input(Tensor::new(vec![a, b], &[2]));
        let s = g.value(ops::sigmoid(&g, x));
        prop_assert!(s.data().iter().all(|&v| (0.0..=1.0).contains(&v)));
        if a < b {
            prop_assert!(s.data()[0] <= s.data()[1]);
        }
    }

    #[test]
    fn bce_loss_nonnegative(logits in small_vec(6), bits in proptest::collection::vec(0u8..2, 6)) {
        let g = Graph::new();
        let x = g.input(T::new(logits, &[6]));
        let targets: Vec<f32> = bits.iter().map(|&b| b as f32).collect();
        let l = logsynergy_nn::loss::bce_with_logits(&g, x, &targets);
        prop_assert!(g.value(l).item() >= 0.0);
    }

    #[test]
    fn cross_entropy_nonnegative(logits in small_vec(12), t in 0usize..4) {
        let g = Graph::new();
        let x = g.input(T::new(logits, &[3, 4]));
        let l = logsynergy_nn::loss::cross_entropy(&g, x, &[t, t, t]);
        prop_assert!(g.value(l).item() >= 0.0);
    }

    #[test]
    fn matmul_distributes_over_add(a in small_vec(6), b in small_vec(6), w in small_vec(6)) {
        let g = Graph::new();
        let ta = g.input(Tensor::new(a, &[2, 3]));
        let tb = g.input(Tensor::new(b, &[2, 3]));
        let tw = g.input(Tensor::new(w, &[3, 2]));
        let lhs = ops::matmul(&g, ops::add(&g, ta, tb), tw);
        let rhs = ops::add(&g, ops::matmul(&g, ta, tw), ops::matmul(&g, tb, tw));
        for (x, y) in g.value(lhs).data().iter().zip(g.value(rhs).data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    // ---- blocked/parallel kernels vs. naive references ------------------
    //
    // Shapes are drawn from 1..40, which crosses the generic MR=4 / NR=16
    // tile boundaries (and the 8-row AVX-512 microkernel tiles) in both
    // directions, non-multiple edge shapes included.
    // Tolerance: 1e-5 floor, scaled up with the contracted length because
    // the FMA tiers fuse the multiply rounding the naive reference keeps
    // (≈1 ulp divergence per accumulation step).

    #[test]
    fn blocked_mm_matches_reference(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1u64 << 32) {
        let a = hashed_vec(m * k, seed);
        let b = hashed_vec(k * n, seed ^ 0x9E37_79B9);
        let mut c = vec![0.0f32; m * n];
        let mut r = vec![0.0f32; m * n];
        kernels::with_threads(4, || kernels::mm(&a, &b, &mut c, m, k, n));
        kernels::mm_ref(&a, &b, &mut r, m, k, n);
        for (x, y) in c.iter().zip(&r) {
            prop_assert!((x - y).abs() <= fma_tol(k, *y), "{} vs {}", x, y);
        }
    }

    #[test]
    fn blocked_mm_nt_matches_reference(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1u64 << 32) {
        let a = hashed_vec(m * k, seed);
        let bt = hashed_vec(n * k, seed ^ 0xDEAD_BEEF);
        let mut c = vec![0.0f32; m * n];
        let mut r = vec![0.0f32; m * n];
        kernels::with_threads(4, || kernels::mm_nt(&a, &bt, &mut c, m, k, n));
        kernels::mm_nt_ref(&a, &bt, &mut r, m, k, n);
        for (x, y) in c.iter().zip(&r) {
            prop_assert!((x - y).abs() <= fma_tol(k, *y), "{} vs {}", x, y);
        }
    }

    #[test]
    fn blocked_mm_tn_matches_reference(m in 1usize..40, k in 1usize..40, n in 1usize..40, seed in 0u64..1u64 << 32) {
        let a = hashed_vec(m * k, seed);
        let b = hashed_vec(m * n, seed ^ 0x0BAD_F00D);
        let mut c = vec![0.0f32; k * n];
        let mut r = vec![0.0f32; k * n];
        kernels::with_threads(4, || kernels::mm_tn(&a, &b, &mut c, m, k, n));
        kernels::mm_tn_ref(&a, &b, &mut r, m, k, n);
        for (x, y) in c.iter().zip(&r) {
            prop_assert!((x - y).abs() <= fma_tol(m, *y), "{} vs {}", x, y);
        }
    }

    #[test]
    fn thread_counts_produce_identical_bytes(m in 1usize..48, k in 1usize..48, n in 1usize..48, seed in 0u64..1u64 << 32) {
        let a = hashed_vec(m * k, seed);
        let b = hashed_vec(k * n, seed ^ 0x5EED_CAFE);
        let run = |threads: usize| {
            let mut c = vec![0.0f32; m * n];
            kernels::with_threads(threads, || kernels::mm(&a, &b, &mut c, m, k, n));
            c
        };
        let (one, four) = (run(1), run(4));
        for (x, y) in one.iter().zip(&four) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn parallel_elementwise_identical_bytes(len in 1usize..60_000, seed in 0u64..1u64 << 32) {
        let data = hashed_vec(len, seed);
        let t = Tensor::new(data, &[len]);
        let one = kernels::with_threads(1, || t.map(|x| x * 1.7 - 0.3));
        let four = kernels::with_threads(4, || t.map(|x| x * 1.7 - 0.3));
        for (x, y) in one.data().iter().zip(four.data()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        let s1 = kernels::with_threads(1, || t.sum());
        let s4 = kernels::with_threads(4, || t.sum());
        prop_assert_eq!(s1.to_bits(), s4.to_bits());
    }
}

use logsynergy_nn::kernels;

/// Mixed absolute/relative tolerance for blocked-vs-naive comparisons over a
/// `red`-long reduction: never tighter than 1e-5, loosened by reduction
/// length and result magnitude to absorb FMA-vs-separate-rounding drift.
fn fma_tol(red: usize, y: f32) -> f32 {
    (1e-6 * red as f32 * y.abs().max(1.0)).max(1e-5)
}

/// Deterministic pseudo-random fill so shape and content shrink together.
fn hashed_vec(len: usize, seed: u64) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u64 ^ seed).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            ((h >> 40) as f32 / (1u64 << 24) as f32) * 4.0 - 2.0
        })
        .collect()
}
