//! End-to-end determinism: training the same model with 1 thread and with 4
//! threads must produce bitwise-identical parameters.
//!
//! This is the contract documented in `docs/kernels.md`: chunk boundaries
//! and per-element accumulation order never depend on the thread count, so
//! parallelism cannot perturb training.

use logsynergy_nn::kernels::with_threads;
use logsynergy_nn::layers::{Linear, Lstm};
use logsynergy_nn::optim::AdamW;
use logsynergy_nn::{loss, ops, Graph, ParamStore, Tensor};
use rand::SeedableRng;

/// Trains a tiny LSTM classifier for a few steps and returns every
/// parameter's raw bits.
fn train_and_fingerprint() -> Vec<u32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xD15EA5E);
    let mut store = ParamStore::new();
    let lstm = Lstm::new(&mut store, &mut rng, "l", 3, 8);
    let head = Linear::new(&mut store, &mut rng, "h", 8, 1);

    let n = 8;
    let mut data = Vec::new();
    let mut labels = Vec::new();
    for i in 0..n {
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        for j in 0..5 * 3 {
            data.push(sign * 0.5 + 0.05 * ((i * 31 + j) % 7) as f32);
        }
        labels.push(if sign > 0.0 { 1.0 } else { 0.0 });
    }
    let x = Tensor::new(data, &[n, 5, 3]);

    let mut opt = AdamW::new(&store, 1e-2);
    for _ in 0..6 {
        let g = Graph::new();
        let xv = g.input(x.clone());
        let (_, h) = lstm.forward(&g, &store, xv);
        let logits = head.forward(&g, &store, h);
        let flat = ops::reshape(&g, logits, &[n]);
        let l = loss::bce_with_logits(&g, flat, &labels);
        g.backward(l);
        g.write_grads(&mut store);
        opt.step(&mut store);
        store.zero_grads();
    }

    let mut bits = Vec::new();
    for id in store.ids() {
        bits.extend(store.value(id).data().iter().map(|v| v.to_bits()));
    }
    bits
}

#[test]
fn training_is_bitwise_identical_across_thread_counts() {
    let serial = with_threads(1, train_and_fingerprint);
    let parallel = with_threads(4, train_and_fingerprint);
    assert_eq!(serial.len(), parallel.len());
    let diffs = serial.iter().zip(&parallel).filter(|(a, b)| a != b).count();
    assert_eq!(
        diffs,
        0,
        "{diffs}/{} parameter scalars differ between 1 and 4 threads",
        serial.len()
    );
}
