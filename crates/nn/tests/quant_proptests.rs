//! Property-based tests for the int8 quantization primitives
//! (`quant` feature): round-trip error bounds and exactness of the
//! integer GEMM against a widened reference.

#![cfg(feature = "quant")]

use logsynergy_nn::kernels::qgemm;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Symmetric int8 round-trip error is bounded by half a scale step
    /// for every representable input.
    #[test]
    fn quantize_round_trip_is_within_half_step(
        xs in proptest::collection::vec(-100.0f32..100.0, 1..64)
    ) {
        let scale = qgemm::scale_for(qgemm::absmax(&xs));
        let mut q = vec![0i8; xs.len()];
        qgemm::quantize(&xs, scale, &mut q);
        for (&x, &qi) in xs.iter().zip(&q) {
            let back = qgemm::dequantize(qi, scale);
            // Half a quantization step, plus a whisker for the f32
            // division/rounding in `quantize` itself.
            prop_assert!(
                (x - back).abs() <= 0.5 * scale + scale * 1e-4,
                "x={x} back={back} scale={scale}"
            );
        }
    }

    /// Quantized values never exceed the symmetric int8 range, whatever
    /// the input (including values above the calibrated absmax).
    #[test]
    fn quantize_saturates_to_symmetric_range(
        xs in proptest::collection::vec(-1000.0f32..1000.0, 1..64),
        calib in 0.1f32..10.0
    ) {
        let scale = qgemm::scale_for(calib);
        let mut q = vec![0i8; xs.len()];
        qgemm::quantize(&xs, scale, &mut q);
        for &qi in &q {
            prop_assert!((-127..=127).contains(&(qi as i32)));
        }
    }

    /// The int8 GEMM is exact: it must match an i64 reference bit for
    /// bit on every shape and operand pattern (i32 accumulation cannot
    /// overflow for k ≤ 2^16).
    #[test]
    fn qgemm_matches_i64_reference(
        m in 1usize..6,
        k in 1usize..48,
        n in 1usize..10,
        seed in any::<u64>()
    ) {
        // Deterministic operands from the seed (full i8 range).
        let mut state = seed | 1;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as i64 % 255 - 127) as i8
        };
        let a: Vec<i8> = (0..m * k).map(|_| next()).collect();
        let b: Vec<i8> = (0..n * k).map(|_| next()).collect();
        let mut c = vec![0i32; m * n];
        qgemm::qgemm_nt(&a, &b, &mut c, m, k, n);
        for i in 0..m {
            for j in 0..n {
                let want: i64 = (0..k)
                    .map(|x| a[i * k + x] as i64 * b[j * k + x] as i64)
                    .sum();
                prop_assert_eq!(c[i * n + j] as i64, want, "({}, {})", i, j);
            }
        }
    }
}
