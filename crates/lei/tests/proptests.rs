//! Property tests for the LEI simulator and review workflow.

use logsynergy_lei::{
    interpret_with_review, passes_review, LeiConfig, LlmInterpreter, ReviewPolicy,
};
use logsynergy_loggen::{ontology, SyntaxProfile, SystemId};
use proptest::prelude::*;

fn system_strategy() -> impl Strategy<Value = SystemId> {
    prop_oneof![
        Just(SystemId::Bgl),
        Just(SystemId::Spirit),
        Just(SystemId::Thunderbird),
        Just(SystemId::SystemA),
        Just(SystemId::SystemB),
        Just(SystemId::SystemC),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the LLM's failure rates, reviewed interpretations always
    /// pass the format policy.
    #[test]
    fn review_always_yields_wellformed_output(
        sys in system_strategy(),
        hallucination in 0.0f64..1.0,
        format_err in 0.0f64..1.0,
        coverage in 0.3f64..1.0,
        seed in 0u64..500,
    ) {
        let lei = LlmInterpreter::new(LeiConfig {
            coverage,
            hallucination_rate: hallucination,
            format_error_rate: format_err,
            use_system_context: true,
            seed,
        });
        let concepts = ontology();
        let profile = SyntaxProfile::new(sys, &concepts);
        let templates: Vec<String> =
            concepts.iter().take(8).map(|c| profile.template_text(c)).collect();
        let policy = ReviewPolicy::default();
        let (outs, stats) = interpret_with_review(&lei, sys, &templates, &policy);
        prop_assert_eq!(outs.len(), templates.len());
        prop_assert_eq!(stats.reviewed, templates.len());
        for i in &outs {
            prop_assert!(passes_review(i, &policy), "bad output: {:?}", i.text);
        }
    }

    /// A perfect LLM's interpretation of a template never depends on the
    /// seed — the function is deterministic given full knowledge.
    #[test]
    fn perfect_llm_is_seed_independent(sys in system_strategy(), seed_a in 0u64..100, seed_b in 100u64..200) {
        let mk = |seed| LlmInterpreter::new(LeiConfig {
            coverage: 1.0,
            hallucination_rate: 0.0,
            format_error_rate: 0.0,
            use_system_context: true,
            seed,
        });
        let concepts = ontology();
        let profile = SyntaxProfile::new(sys, &concepts);
        let t = profile.template_text(&concepts[20]);
        prop_assert_eq!(mk(seed_a).interpret(sys, &t).text, mk(seed_b).interpret(sys, &t).text);
    }

    /// Self-consistency review with 2 samples drives the effective wrong
    /// rate well below the raw hallucination rate (at modest rates).
    #[test]
    fn consistency_review_reduces_hallucination(seed in 0u64..50) {
        let sys = SystemId::Spirit;
        let lei = LlmInterpreter::new(LeiConfig {
            coverage: 1.0,
            hallucination_rate: 0.25,
            format_error_rate: 0.0,
            use_system_context: true,
            seed,
        });
        let concepts = ontology();
        let profile = SyntaxProfile::new(sys, &concepts);
        let templates: Vec<String> = concepts.iter().map(|c| profile.template_text(c)).collect();
        let wrong = |samples: usize| {
            let policy = ReviewPolicy { consistency_samples: samples, ..Default::default() };
            let (outs, _) = interpret_with_review(&lei, sys, &templates, &policy);
            outs.iter().zip(&concepts).filter(|(o, c)| o.matched_concept != Some(c.name)).count()
        };
        let raw = wrong(1);
        let reviewed = wrong(2);
        // Stochastic: allow a small per-seed swing; the expectation is a
        // large reduction (~h -> ~h^2), asserted as a soft dominance.
        prop_assert!(
            reviewed <= raw + 1,
            "review must not meaningfully increase errors: {reviewed} vs {raw}"
        );
    }

    /// Interpretation output is always single-token-stream text without
    /// template wildcards.
    #[test]
    fn interpretations_never_leak_wildcards(sys in system_strategy(), idx in 0usize..34) {
        let lei = LlmInterpreter::new(LeiConfig {
            format_error_rate: 0.0,
            ..LeiConfig::default()
        });
        let concepts = ontology();
        let profile = SyntaxProfile::new(sys, &concepts);
        let out = lei.interpret(sys, &profile.template_text(&concepts[idx]));
        prop_assert!(!out.text.contains("<*>"));
        prop_assert!(!out.text.is_empty());
    }
}
