//! The simulated LLM's language knowledge.
//!
//! A real LLM brings two things to LEI: (a) knowledge of each system's
//! jargon ("Los" means "loss of signal") and (b) knowledge of what events
//! mean in general. The [`KnowledgeBase`] models exactly those: a
//! per-system surface→canonical dictionary (derived from the syntax
//! profiles — i.e. from *language*, never from labels) and the shared
//! concept ontology with canonical interpretations.

use std::collections::HashMap;

use logsynergy_loggen::ontology::{ontology, Concept};
use logsynergy_loggen::profile::{SyntaxProfile, SystemId};

/// The simulated LLM's knowledge: per-system vocabulary plus the shared
/// event ontology.
#[derive(Clone)]
pub struct KnowledgeBase {
    /// system -> (lowercased surface token -> canonical token)
    dictionaries: HashMap<SystemId, HashMap<String, &'static str>>,
    concepts: Vec<Concept>,
}

impl KnowledgeBase {
    /// Builds the knowledge base covering all six systems.
    pub fn new() -> Self {
        let concepts = ontology();
        let mut dictionaries = HashMap::new();
        for sys in SystemId::ALL {
            let profile = SyntaxProfile::new(sys, &concepts);
            let dict = profile
                .reverse_lexicon()
                .iter()
                .map(|(surface, &canon)| (surface.to_ascii_lowercase(), canon))
                .collect();
            dictionaries.insert(sys, dict);
        }
        KnowledgeBase {
            dictionaries,
            concepts,
        }
    }

    /// The shared ontology the knowledge base reasons over.
    pub fn concepts(&self) -> &[Concept] {
        &self.concepts
    }

    /// Translates a surface token into its canonical token for `system`,
    /// if the knowledge base recognizes it. Case-insensitive.
    pub fn canonicalize(&self, system: SystemId, surface: &str) -> Option<&'static str> {
        self.dictionaries
            .get(&system)?
            .get(&surface.to_ascii_lowercase())
            .copied()
    }

    /// Without system context ("which system did this come from?") the LLM
    /// must guess across dialects: the first match in any dictionary wins.
    /// This models the degradation the paper's Fig. 2 prompt avoids by
    /// stating the log source up front.
    pub fn canonicalize_without_context(&self, surface: &str) -> Option<&'static str> {
        let key = surface.to_ascii_lowercase();
        for sys in SystemId::ALL {
            if let Some(&c) = self.dictionaries.get(&sys).and_then(|d| d.get(&key)) {
                return Some(c);
            }
        }
        None
    }

    /// Scores each concept by canonical-token overlap and returns the best
    /// match together with its overlap fraction (matched / concept tokens).
    pub fn best_concept(&self, canonical_tokens: &[&str]) -> Option<(&Concept, f64)> {
        let set: std::collections::HashSet<&str> = canonical_tokens.iter().copied().collect();
        self.concepts
            .iter()
            .map(|c| {
                let hit = c.tokens.iter().filter(|t| set.contains(**t)).count();
                (c, hit as f64 / c.tokens.len() as f64)
            })
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .filter(|(_, s)| *s > 0.0)
    }
}

impl Default for KnowledgeBase {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_each_systems_vocabulary() {
        let kb = KnowledgeBase::new();
        let concepts = ontology();
        for sys in SystemId::ALL {
            let profile = SyntaxProfile::new(sys, &concepts);
            for c in &concepts {
                for &t in c.tokens {
                    let surface = profile.surface(t);
                    assert_eq!(
                        kb.canonicalize(sys, surface),
                        Some(t),
                        "{sys:?}: {surface} should canonicalize to {t}"
                    );
                }
            }
        }
    }

    #[test]
    fn best_concept_identifies_from_full_token_set() {
        let kb = KnowledgeBase::new();
        let (c, score) = kb
            .best_concept(&["network", "connection", "interrupted", "loss", "signal"])
            .unwrap();
        assert_eq!(c.name, "network_interruption");
        assert!((score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn best_concept_handles_partial_evidence() {
        let kb = KnowledgeBase::new();
        let (c, score) = kb.best_concept(&["parity", "error", "read"]).unwrap();
        assert_eq!(c.name, "parity_error");
        assert!(score >= 0.5);
    }

    #[test]
    fn unknown_tokens_have_no_canonical_form() {
        let kb = KnowledgeBase::new();
        assert_eq!(kb.canonicalize(SystemId::Bgl, "zzzznonsense"), None);
        assert!(kb.best_concept(&["zzzznonsense"]).is_none());
    }
}
