//! # logsynergy-lei
//!
//! LLM-based Event Interpretation (LEI, paper §III-C) with a *simulated*
//! LLM. The real deployment calls ChatGPT-4o; here the LLM's two relevant
//! capabilities — per-system jargon knowledge and event understanding —
//! are modeled by a deterministic [`knowledge::KnowledgeBase`], while the
//! documented failure modes (coverage gaps, hallucination, format errors)
//! are injected stochastically and handled by the §VI-B2 operator review
//! workflow in [`review`].
//!
//! ```
//! use logsynergy_lei::{LeiConfig, LlmInterpreter};
//! use logsynergy_loggen::{ontology, SyntaxProfile, SystemId};
//!
//! let lei = LlmInterpreter::new(LeiConfig {
//!     coverage: 1.0,
//!     hallucination_rate: 0.0,
//!     format_error_rate: 0.0,
//!     ..LeiConfig::default()
//! });
//! // Render the "network interruption" event in two systems' dialects:
//! // the interpreter maps both to the same standardized sentence.
//! let concepts = ontology();
//! let event = &concepts[20];
//! let spirit = SyntaxProfile::new(SystemId::Spirit, &concepts).template_text(event);
//! let bgl = SyntaxProfile::new(SystemId::Bgl, &concepts).template_text(event);
//! assert_ne!(spirit, bgl, "dialects differ (Table I)");
//! assert_eq!(
//!     lei.interpret(SystemId::Spirit, &spirit).text,
//!     lei.interpret(SystemId::Bgl, &bgl).text,
//! );
//! ```

#![warn(missing_docs)]

pub mod interpreter;
pub mod knowledge;
pub mod review;

pub use interpreter::{Interpretation, LeiConfig, LlmInterpreter};
pub use knowledge::KnowledgeBase;
pub use review::{interpret_with_review, passes_review, ReviewPolicy, ReviewStats};
