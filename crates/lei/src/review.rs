//! Operator review workflow for LLM-generated interpretations (§VI-B2).
//!
//! The paper: "all LLM-generated interpretations must be reviewed ... the
//! focus of the review being on detecting errors in format and length
//! rather than semantic correctness. The interpretations can be regenerated
//! when format errors are found." Review is cheap because a dataset has
//! only a few hundred templates.

use logsynergy_loggen::profile::SystemId;

use crate::interpreter::{Interpretation, LlmInterpreter};

/// Limits a well-formed interpretation must respect.
#[derive(Clone, Debug)]
pub struct ReviewPolicy {
    /// Maximum characters per interpretation.
    pub max_len: usize,
    /// Maximum regeneration attempts per template before giving up and
    /// truncating/cleaning mechanically.
    pub max_retries: usize,
    /// Number of independent generations per template for the
    /// self-consistency check (§III-C: "interpretations can be regenerated
    /// to ensure accuracy and reliability"; §IV-E2: the manual check
    /// "can mitigate the impact of potential hallucinations"). Disagreeing
    /// samples trigger a tie-break generation and a majority vote.
    /// `1` disables the check (used by the internal-threat experiments).
    pub consistency_samples: usize,
}

impl Default for ReviewPolicy {
    fn default() -> Self {
        ReviewPolicy {
            max_len: 200,
            max_retries: 5,
            consistency_samples: 2,
        }
    }
}

/// Outcome statistics of a review pass (the operator-effort numbers the
/// paper reports: review completes "within ten minutes").
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReviewStats {
    /// Templates reviewed.
    pub reviewed: usize,
    /// Regenerations triggered by format errors.
    pub regenerated: usize,
    /// Interpretations mechanically repaired after retry exhaustion.
    pub repaired: usize,
    /// Tie-break generations triggered by self-consistency disagreement.
    pub consistency_regens: usize,
}

/// Checks whether an interpretation passes format review. Operators can see
/// format/length issues (multi-line, chatty preamble, overlong), but NOT
/// semantic errors — hallucinations pass review, as the paper warns.
pub fn passes_review(i: &Interpretation, policy: &ReviewPolicy) -> bool {
    !i.text.contains('\n') && i.text.len() <= policy.max_len && !i.text.is_empty()
}

/// Mechanical cleanup used when regeneration keeps failing: take the first
/// non-empty content line and truncate.
fn repair(text: &str, policy: &ReviewPolicy) -> String {
    let line = text
        .lines()
        .map(|l| l.trim_start_matches(['-', ' ', '*']))
        .find(|l| !l.is_empty() && !l.starts_with("Sure"))
        .unwrap_or("unrecognized log event");
    let mut s = line.to_string();
    s.truncate(policy.max_len);
    s
}

/// Interprets every template with review + regeneration, returning clean
/// interpretations and the operator-effort statistics.
pub fn interpret_with_review(
    lei: &LlmInterpreter,
    system: SystemId,
    templates: &[String],
    policy: &ReviewPolicy,
) -> (Vec<Interpretation>, ReviewStats) {
    let mut stats = ReviewStats::default();
    let mut out = Vec::with_capacity(templates.len());
    let clean = |lei: &LlmInterpreter, t: &str, stats: &mut ReviewStats| {
        let mut i = lei.interpret(system, t);
        let mut tries = 0;
        while !passes_review(&i, policy) && tries < policy.max_retries {
            stats.regenerated += 1;
            tries += 1;
            i = lei.interpret(system, t);
        }
        if !passes_review(&i, policy) {
            stats.repaired += 1;
            i.text = repair(&i.text, policy);
            i.format_ok = true;
        }
        i
    };
    for t in templates {
        stats.reviewed += 1;
        let mut i = clean(lei, t, &mut stats);
        if policy.consistency_samples >= 2 {
            // Self-consistency: independent generations must agree; a
            // disagreement means one of them hallucinated, so a tie-break
            // generation votes it out.
            let second = clean(lei, t, &mut stats);
            if second.text != i.text {
                stats.consistency_regens += 1;
                let third = clean(lei, t, &mut stats);
                if third.text == second.text {
                    i = second;
                } else if third.text != i.text {
                    // All three differ (pathological LLM): keep the last.
                    i = third;
                }
            }
        }
        out.push(i);
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interpreter::LeiConfig;
    use logsynergy_loggen::ontology::ontology;
    use logsynergy_loggen::profile::SyntaxProfile;

    fn templates(system: SystemId) -> Vec<String> {
        let concepts = ontology();
        let p = SyntaxProfile::new(system, &concepts);
        concepts.iter().map(|c| p.template_text(c)).collect()
    }

    #[test]
    fn review_fixes_all_format_errors() {
        let lei = LlmInterpreter::new(LeiConfig {
            format_error_rate: 0.5,
            hallucination_rate: 0.0,
            coverage: 1.0,
            ..LeiConfig::default()
        });
        let policy = ReviewPolicy::default();
        let (outs, stats) =
            interpret_with_review(&lei, SystemId::Bgl, &templates(SystemId::Bgl), &policy);
        assert!(outs.iter().all(|i| passes_review(i, &policy)));
        assert!(
            stats.regenerated > 0,
            "50% format errors must trigger regeneration"
        );
        assert_eq!(stats.reviewed, outs.len());
    }

    #[test]
    fn review_cannot_catch_hallucinations() {
        let lei = LlmInterpreter::new(LeiConfig {
            format_error_rate: 0.0,
            hallucination_rate: 1.0,
            coverage: 1.0,
            ..LeiConfig::default()
        });
        let policy = ReviewPolicy::default();
        let (outs, stats) = interpret_with_review(
            &lei,
            SystemId::Spirit,
            &templates(SystemId::Spirit),
            &policy,
        );
        // All hallucinated, none regenerated: format review is blind to them.
        assert!(outs.iter().all(|i| i.hallucinated));
        assert_eq!(stats.regenerated, 0);
    }

    #[test]
    fn pathological_generator_is_repaired() {
        let lei = LlmInterpreter::new(LeiConfig {
            format_error_rate: 1.0,
            hallucination_rate: 0.0,
            coverage: 1.0,
            ..LeiConfig::default()
        });
        let policy = ReviewPolicy {
            max_retries: 2,
            ..ReviewPolicy::default()
        };
        let (outs, stats) = interpret_with_review(
            &lei,
            SystemId::SystemA,
            &templates(SystemId::SystemA),
            &policy,
        );
        assert!(outs.iter().all(|i| passes_review(i, &policy)));
        assert!(stats.repaired >= outs.len(), "every clean() pass repairs");
    }

    #[test]
    fn clean_generator_needs_no_work() {
        let lei = LlmInterpreter::new(LeiConfig {
            format_error_rate: 0.0,
            hallucination_rate: 0.0,
            coverage: 1.0,
            ..LeiConfig::default()
        });
        let policy = ReviewPolicy::default();
        let (_, stats) = interpret_with_review(
            &lei,
            SystemId::SystemB,
            &templates(SystemId::SystemB),
            &policy,
        );
        assert_eq!(stats.regenerated, 0);
        assert_eq!(stats.repaired, 0);
    }
}
