//! Property tests for Drain and windowing invariants.

use logsynergy_logparse::{windows, Drain, EventId, WindowConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Template count never exceeds the number of distinct messages parsed
    /// and is monotone in the stream.
    #[test]
    fn template_count_monotone_and_bounded(
        msgs in proptest::collection::vec(
            proptest::collection::vec("[a-d]{1,3}", 1..5), 1..40)
    ) {
        let mut d = Drain::with_defaults();
        let mut prev = 0;
        let mut distinct = std::collections::HashSet::new();
        for tokens in &msgs {
            let line = tokens.join(" ");
            distinct.insert(line.clone());
            d.parse(&line);
            prop_assert!(d.num_templates() >= prev);
            prev = d.num_templates();
        }
        prop_assert!(d.num_templates() <= distinct.len());
    }

    /// Parsing is stable: re-parsing the same stream maps each message to
    /// the same event id as the first pass learned.
    #[test]
    fn reparse_is_stable(
        msgs in proptest::collection::vec(
            proptest::collection::vec("[a-c]{1,2}", 2..4), 1..20)
    ) {
        let mut d = Drain::with_defaults();
        let lines: Vec<String> = msgs.iter().map(|t| t.join(" ")).collect();
        let first: Vec<_> = lines.iter().map(|l| d.parse(l).event).collect();
        let second: Vec<_> = lines.iter().map(|l| d.parse(l).event).collect();
        prop_assert_eq!(first, second);
    }

    /// Every log index is covered by at least one window when step <= length.
    #[test]
    fn windows_cover_stream(n in 1usize..200, length in 1usize..20, step_frac in 1usize..20) {
        let step = step_frac.min(length);
        let cfg = WindowConfig { length, step };
        let events: Vec<EventId> = (0..n as u32).map(EventId).collect();
        let labels = vec![false; n];
        let w = windows(&events, &labels, cfg);
        let mut covered = vec![false; n];
        for s in &w {
            for (i, _) in s.events.iter().enumerate() {
                covered[s.start + i] = true;
            }
        }
        // Full coverage holds up to the last full window; the tail shorter
        // than `length` may be uncovered (matching the paper's setup).
        let covered_prefix = if n < length { n } else { ((n - length) / step) * step + length };
        prop_assert!(covered[..covered_prefix].iter().all(|&c| c),
            "uncovered index below {covered_prefix} (n={n}, len={length}, step={step})");
    }

    /// A window is anomalous iff it contains an anomalous log.
    #[test]
    fn window_label_matches_contents(
        labels in proptest::collection::vec(any::<bool>(), 1..100),
        length in 1usize..12,
        step in 1usize..12,
    ) {
        let events: Vec<EventId> = (0..labels.len() as u32).map(EventId).collect();
        let w = windows(&events, &labels, WindowConfig { length, step });
        for s in &w {
            let want = s.events.iter().enumerate()
                .any(|(i, _)| labels[s.start + i]);
            prop_assert_eq!(s.anomalous, want);
        }
    }
}
