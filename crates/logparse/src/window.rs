//! Sliding-window sequencing of parsed log streams.
//!
//! The paper segments continuous logs into sequences with a window length
//! of 10 and a step of 5 (§IV-A1, §VI-A); a sequence is anomalous when any
//! log inside it is anomalous.

use crate::drain::EventId;

/// Sliding-window parameters.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct WindowConfig {
    /// Window length in log lines.
    pub length: usize,
    /// Step (shift) between consecutive windows.
    pub step: usize,
}

impl Default for WindowConfig {
    /// The paper's setting: length 10, step 5.
    fn default() -> Self {
        WindowConfig {
            length: 10,
            step: 5,
        }
    }
}

/// A windowed sequence of log events with a sequence-level label.
#[derive(Clone, Debug, PartialEq)]
pub struct LogSequence {
    /// Event ids inside the window, in log order.
    pub events: Vec<EventId>,
    /// Index (into the source stream) of the window's first log.
    pub start: usize,
    /// True when any log in the window is anomalous.
    pub anomalous: bool,
}

/// Splits an event stream (with per-log labels) into overlapping windows.
///
/// Windows are emitted while a full window fits; a trailing partial window
/// is emitted only if the stream is shorter than one window (so tiny
/// streams still produce a sequence).
pub fn windows(events: &[EventId], labels: &[bool], config: WindowConfig) -> Vec<LogSequence> {
    assert_eq!(events.len(), labels.len(), "events/labels length mismatch");
    assert!(
        config.length > 0 && config.step > 0,
        "degenerate window config"
    );
    let n = events.len();
    if n == 0 {
        return vec![];
    }
    if n < config.length {
        return vec![LogSequence {
            events: events.to_vec(),
            start: 0,
            anomalous: labels.iter().any(|&l| l),
        }];
    }
    let mut out = Vec::with_capacity(n / config.step + 1);
    let mut start = 0;
    while start + config.length <= n {
        let end = start + config.length;
        out.push(LogSequence {
            events: events[start..end].to_vec(),
            start,
            anomalous: labels[start..end].iter().any(|&l| l),
        });
        start += config.step;
    }
    out
}

/// Number of windows `windows` will produce for a stream of length `n`.
pub fn window_count(n: usize, config: WindowConfig) -> usize {
    if n == 0 {
        0
    } else if n < config.length {
        1
    } else {
        (n - config.length) / config.step + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(n: usize) -> Vec<EventId> {
        (0..n as u32).map(EventId).collect()
    }

    #[test]
    fn paper_default_is_10_by_5() {
        let c = WindowConfig::default();
        assert_eq!((c.length, c.step), (10, 5));
    }

    #[test]
    fn produces_expected_count_and_overlap() {
        let ev = ids(20);
        let labels = vec![false; 20];
        let w = windows(&ev, &labels, WindowConfig::default());
        assert_eq!(w.len(), 3); // starts at 0, 5, 10
        assert_eq!(w[0].start, 0);
        assert_eq!(w[1].start, 5);
        assert_eq!(w[1].events[0], EventId(5));
        assert_eq!(w.len(), window_count(20, WindowConfig::default()));
    }

    #[test]
    fn label_is_any_anomalous() {
        let ev = ids(10);
        let mut labels = vec![false; 10];
        labels[7] = true;
        let w = windows(&ev, &labels, WindowConfig::default());
        assert_eq!(w.len(), 1);
        assert!(w[0].anomalous);
    }

    #[test]
    fn short_stream_yields_single_partial_window() {
        let ev = ids(4);
        let labels = vec![false, true, false, false];
        let w = windows(&ev, &labels, WindowConfig::default());
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].events.len(), 4);
        assert!(w[0].anomalous);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        assert!(windows(&[], &[], WindowConfig::default()).is_empty());
        assert_eq!(window_count(0, WindowConfig::default()), 0);
    }

    #[test]
    fn nonoverlapping_windows() {
        let ev = ids(9);
        let labels = vec![false; 9];
        let c = WindowConfig { length: 3, step: 3 };
        let w = windows(&ev, &labels, c);
        assert_eq!(w.len(), 3);
        assert!(w.iter().enumerate().all(|(i, s)| s.start == i * 3));
    }
}
