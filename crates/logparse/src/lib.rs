//! # logsynergy-logparse
//!
//! Log pre-processing for LogSynergy-RS (paper §III-B): the Drain online
//! log parser, which converts unstructured log messages into structured
//! *log events* (templates) plus parameters, and the sliding-window
//! sequencer that splits continuous event streams into labelled sequences.
//!
//! ```
//! use logsynergy_logparse::{windows, Drain, WindowConfig};
//!
//! let mut drain = Drain::with_defaults();
//! let events = drain.parse_all([
//!     "connection opened to server alpha port 80",
//!     "connection opened to server beta port 8080",
//!     "disk write failed on volume 3",
//! ]);
//! assert_eq!(events[0], events[1], "parameters are masked into one template");
//! assert_ne!(events[0], events[2]);
//!
//! let labels = vec![false, false, true];
//! let seqs = windows(&events, &labels, WindowConfig { length: 2, step: 1 });
//! assert_eq!(seqs.len(), 2);
//! assert!(seqs[1].anomalous, "a window is anomalous if any log in it is");
//! ```

#![warn(missing_docs)]

pub mod drain;
pub mod window;

pub use drain::{Drain, DrainConfig, EventId, ParsedLog, Template, WILDCARD};
pub use window::{window_count, windows, LogSequence, WindowConfig};
