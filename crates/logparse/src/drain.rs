//! Drain: online log parsing with a fixed-depth prefix tree
//! (He et al., ICWS 2017) — the parser LogSynergy's pre-processing uses.
//!
//! Drain maps each raw log message to a *log event* (template): messages are
//! first grouped by token count, then routed through a fixed number of
//! leading tokens (digit-bearing tokens route through a wildcard), and
//! finally matched against the leaf's template groups by token similarity.
//! A match above the threshold merges the message into the group (diverging
//! tokens become `<*>`); otherwise a new group is born.

use std::collections::HashMap;

/// The wildcard token Drain substitutes for parameters.
pub const WILDCARD: &str = "<*>";

/// Identifier of a parsed log event (template).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(pub u32);

/// Result of parsing one log message.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedLog {
    /// Template the message mapped to.
    pub event: EventId,
    /// Extracted parameter tokens (those matching `<*>` positions).
    pub params: Vec<String>,
}

/// A log template tracked by the parser.
#[derive(Clone, Debug)]
pub struct Template {
    /// Identifier.
    pub id: EventId,
    /// Template tokens, with `<*>` in parameter positions.
    pub tokens: Vec<String>,
    /// How many messages matched this template so far.
    pub count: u64,
}

impl Template {
    /// The template rendered as a single string.
    pub fn text(&self) -> String {
        self.tokens.join(" ")
    }
}

/// Drain configuration.
#[derive(Clone, Debug)]
pub struct DrainConfig {
    /// Tree depth: number of leading tokens used for routing (paper uses 4,
    /// meaning `depth - 2 = 2` routing tokens; we store the routing count).
    pub depth: usize,
    /// Similarity threshold in `[0, 1]` for joining an existing group.
    pub sim_threshold: f64,
    /// Maximum children per internal node before falling back to `<*>`.
    pub max_children: usize,
    /// Mask digit-bearing tokens to `<*>` during preprocessing.
    pub mask_numbers: bool,
}

impl Default for DrainConfig {
    fn default() -> Self {
        DrainConfig {
            depth: 2,
            sim_threshold: 0.5,
            max_children: 100,
            mask_numbers: true,
        }
    }
}

#[derive(Clone, Default)]
struct Node {
    children: HashMap<String, Node>,
    /// Group indices (into `Drain::templates`) stored at leaves.
    groups: Vec<usize>,
}

/// The Drain parser.
#[derive(Clone)]
pub struct Drain {
    config: DrainConfig,
    /// First level keyed by token count, then by routing tokens.
    root: HashMap<usize, Node>,
    templates: Vec<Template>,
}

impl Drain {
    /// Creates a parser with the given configuration.
    pub fn new(config: DrainConfig) -> Self {
        assert!(config.depth >= 1, "depth must be >= 1");
        assert!(
            (0.0..=1.0).contains(&config.sim_threshold),
            "similarity threshold out of [0,1]"
        );
        Drain {
            config,
            root: HashMap::new(),
            templates: Vec::new(),
        }
    }

    /// Parser with default configuration.
    pub fn with_defaults() -> Self {
        Self::new(DrainConfig::default())
    }

    /// Number of distinct templates learned so far.
    pub fn num_templates(&self) -> usize {
        self.templates.len()
    }

    /// All learned templates.
    pub fn templates(&self) -> &[Template] {
        &self.templates
    }

    /// Looks up a template by id.
    pub fn template(&self, id: EventId) -> &Template {
        &self.templates[id.0 as usize]
    }

    fn tokenize(&self, message: &str) -> Vec<String> {
        message
            .split_whitespace()
            .map(|t| {
                if self.config.mask_numbers && t.chars().any(|c| c.is_ascii_digit()) {
                    WILDCARD.to_string()
                } else {
                    t.to_string()
                }
            })
            .collect()
    }

    fn route_key(token: &str, node: &Node, max_children: usize) -> String {
        if token == WILDCARD {
            return WILDCARD.to_string();
        }
        if node.children.contains_key(token) || node.children.len() < max_children {
            token.to_string()
        } else {
            WILDCARD.to_string()
        }
    }

    /// Token-overlap similarity between a template and a tokenized message
    /// of the same length; wildcard positions are ignored in the numerator
    /// but counted in the denominator (Drain's `simSeq`).
    fn similarity(template: &[String], tokens: &[String]) -> (f64, usize) {
        let mut same = 0usize;
        let mut wildcards = 0usize;
        for (a, b) in template.iter().zip(tokens) {
            if a == WILDCARD {
                wildcards += 1;
            } else if a == b {
                same += 1;
            }
        }
        (same as f64 / template.len() as f64, wildcards)
    }

    /// Parses one message, learning templates online.
    pub fn parse(&mut self, message: &str) -> ParsedLog {
        let tokens = self.tokenize(message);
        let len = tokens.len();
        let depth = self.config.depth;
        let max_children = self.config.max_children;

        // Descend the fixed-depth tree, creating nodes as needed.
        let mut node = self.root.entry(len).or_default();
        for token in tokens.iter().take(depth.min(len)) {
            let key = Self::route_key(token, node, max_children);
            node = node.children.entry(key).or_default();
        }

        // Find the best-matching group at the leaf.
        let mut best: Option<(usize, f64, usize)> = None;
        for &gi in &node.groups {
            let t = &self.templates[gi];
            let (sim, wc) = Self::similarity(&t.tokens, &tokens);
            let better = match best {
                None => true,
                Some((_, bs, bw)) => sim > bs || (sim == bs && wc < bw),
            };
            if better {
                best = Some((gi, sim, wc));
            }
        }

        let group_idx = match best {
            Some((gi, sim, _)) if sim >= self.config.sim_threshold => {
                // Merge: diverging tokens become wildcards.
                let t = &mut self.templates[gi];
                for (tt, mt) in t.tokens.iter_mut().zip(&tokens) {
                    if tt != mt && tt != WILDCARD {
                        *tt = WILDCARD.to_string();
                    }
                }
                t.count += 1;
                gi
            }
            _ => {
                let id = EventId(self.templates.len() as u32);
                self.templates.push(Template {
                    id,
                    tokens: tokens.clone(),
                    count: 1,
                });
                node.groups.push(self.templates.len() - 1);
                self.templates.len() - 1
            }
        };

        let template = &self.templates[group_idx];
        let raw: Vec<&str> = message.split_whitespace().collect();
        let params = template
            .tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| *t == WILDCARD)
            .map(|(i, _)| raw.get(i).copied().unwrap_or("").to_string())
            .collect();
        ParsedLog {
            event: template.id,
            params,
        }
    }

    /// Parses a batch of messages, returning their event ids.
    pub fn parse_all<'a>(&mut self, messages: impl IntoIterator<Item = &'a str>) -> Vec<EventId> {
        messages.into_iter().map(|m| self.parse(m).event).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_messages_share_template() {
        let mut d = Drain::with_defaults();
        let a = d.parse("connection opened to server alpha");
        let b = d.parse("connection opened to server alpha");
        assert_eq!(a.event, b.event);
        assert_eq!(d.num_templates(), 1);
        assert_eq!(d.template(a.event).count, 2);
    }

    #[test]
    fn parameters_become_wildcards() {
        let mut d = Drain::with_defaults();
        let a = d.parse("connection opened to server alpha port 80");
        let b = d.parse("connection opened to server beta port 8080");
        assert_eq!(a.event, b.event);
        let t = d.template(a.event);
        assert!(t.tokens.contains(&WILDCARD.to_string()));
        assert_eq!(
            t.tokens[4], WILDCARD,
            "diverging token should be masked: {:?}",
            t.tokens
        );
    }

    #[test]
    fn numeric_tokens_masked_in_preprocessing() {
        let mut d = Drain::with_defaults();
        let a = d.parse("request took 154 ms");
        let b = d.parse("request took 7 ms");
        assert_eq!(a.event, b.event);
        assert_eq!(d.num_templates(), 1);
        assert_eq!(a.params, vec!["154"]);
        assert_eq!(b.params, vec!["7"]);
    }

    #[test]
    fn different_lengths_never_merge() {
        let mut d = Drain::with_defaults();
        let a = d.parse("disk full");
        let b = d.parse("disk full on volume root");
        assert_ne!(a.event, b.event);
    }

    #[test]
    fn dissimilar_messages_get_new_templates() {
        let mut d = Drain::with_defaults();
        let a = d.parse("kernel panic detected now");
        let b = d.parse("kernel heartbeat signal ok");
        // shares only the routing token "kernel": similarity 1/4 < 0.5
        assert_ne!(a.event, b.event);
        assert_eq!(d.num_templates(), 2);
    }

    #[test]
    fn wildcard_routing_for_leading_numbers() {
        let mut d = Drain::with_defaults();
        let a = d.parse("1024 bytes written to cache");
        let b = d.parse("2048 bytes written to cache");
        assert_eq!(a.event, b.event);
    }

    #[test]
    fn template_text_roundtrip() {
        let mut d = Drain::with_defaults();
        let p = d.parse("service restarted cleanly");
        assert_eq!(d.template(p.event).text(), "service restarted cleanly");
    }

    #[test]
    fn max_children_overflow_routes_to_wildcard() {
        let mut d = Drain::new(DrainConfig {
            max_children: 2,
            ..DrainConfig::default()
        });
        // Three distinct leading tokens with only 2 child slots.
        d.parse("aaa common tail token");
        d.parse("bbb common tail token");
        let c = d.parse("ccc common tail token");
        // ccc routed through <*>; new group there (no similar group yet).
        assert_eq!(d.num_templates(), 3);
        let again = d.parse("ccc common tail token");
        assert_eq!(c.event, again.event);
    }

    #[test]
    fn counts_accumulate() {
        let mut d = Drain::with_defaults();
        for i in 0..10 {
            d.parse(&format!("job {i} finished"));
        }
        assert_eq!(d.num_templates(), 1);
        assert_eq!(d.templates()[0].count, 10);
    }
}
