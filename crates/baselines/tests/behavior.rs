//! Behavioral tests for the baselines on *generated* corpora (not toy
//! fixtures): each method must exhibit its §IV-B profile on a real
//! target, independent of the full evaluation harness.

use logsynergy::data::{prepare_system, EventTextMode, PreparedSystem};
use logsynergy_baselines::{DeepLog, FitContext, LogRobust, LogTAD, Method, PLELog};
use logsynergy_embed::HashedEmbedder;
use logsynergy_loggen::datasets;
use logsynergy_logparse::WindowConfig;

const DIM: usize = 32;
const N_TARGET: usize = 200;

fn prepare(spec: logsynergy_loggen::DatasetSpec, scale: f64) -> PreparedSystem {
    let ds = spec.generate_with(scale, 4.0);
    let embedder = HashedEmbedder::new(DIM, 0xE1B);
    prepare_system(
        &ds,
        &EventTextMode::RawTemplate,
        &embedder,
        WindowConfig::default(),
    )
}

fn target_and_sources() -> (PreparedSystem, Vec<PreparedSystem>) {
    let target = prepare(datasets::thunderbird(), 0.012);
    let sources = vec![
        prepare(datasets::bgl(), 0.006),
        prepare(datasets::spirit(), 0.002),
    ];
    (target, sources)
}

fn prf(method: &dyn Method, target: &PreparedSystem) -> (f64, f64) {
    let (_, test) = target.split(N_TARGET, 1000);
    let pred = method.detect(&test, target);
    let (mut tp, mut fp, mut fn_) = (0.0, 0.0, 0.0);
    for (p, s) in pred.iter().zip(&test) {
        match (*p, s.label) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fn_ += 1.0,
            _ => {}
        }
    }
    let precision = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let recall = if tp + fn_ > 0.0 { tp / (tp + fn_) } else { 0.0 };
    (precision, recall)
}

fn ctx<'a>(sources: &'a [&'a PreparedSystem], target: &'a PreparedSystem) -> FitContext<'a> {
    FitContext {
        sources,
        target,
        n_source: 700,
        n_target: N_TARGET,
        max_len: 10,
        embed_dim: DIM,
        seed: 11,
    }
}

#[test]
fn deeplog_floods_with_false_positives_on_a_new_system() {
    let (target, _) = target_and_sources();
    let mut m = DeepLog::new();
    let binding: [&PreparedSystem; 0] = [];
    m.fit(&ctx(&binding, &target));
    let (precision, recall) = prf(&m, &target);
    assert!(recall > 0.8, "DeepLog recall should be high: {recall}");
    assert!(
        precision < 0.5,
        "DeepLog precision should collapse: {precision}"
    );
}

#[test]
fn plelog_flags_unfamiliar_patterns() {
    let (target, _) = target_and_sources();
    let mut m = PLELog::new();
    let binding: [&PreparedSystem; 0] = [];
    m.fit(&ctx(&binding, &target));
    let (precision, recall) = prf(&m, &target);
    assert!(recall > 0.4, "PLELog recall: {recall}");
    assert!(
        precision < 0.9,
        "PLELog precision should suffer on new systems: {precision}"
    );
}

#[test]
fn logrobust_is_limited_by_the_target_slice() {
    let (target, _) = target_and_sources();
    let mut m = LogRobust::new();
    let binding: [&PreparedSystem; 0] = [];
    m.fit(&ctx(&binding, &target));
    let (_, recall) = prf(&m, &target);
    // Most anomaly kinds never appear in the target's training slice, so a
    // supervised single-system method cannot reach full recall.
    assert!(
        recall < 0.95,
        "LogRobust should miss unseen anomaly kinds: {recall}"
    );
}

#[test]
fn logtad_scores_are_monotone_in_center_distance() {
    let (target, sources) = target_and_sources();
    let src_refs: Vec<&PreparedSystem> = sources.iter().collect();
    let mut m = LogTAD::new();
    m.fit(&ctx(&src_refs, &target));
    let (_, test) = target.split(N_TARGET, 500);
    let scores = m.score(&test, &target);
    assert_eq!(scores.len(), test.len());
    assert!(scores.iter().all(|s| (0.0..=1.0).contains(s)));
}
