//! Shared infrastructure for baseline methods: the method trait, the fit
//! context, and a generic AdamW training loop.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore, Var};
use logsynergy_nn::optim::AdamW;
use logsynergy_nn::Tensor;

/// Everything a method may train on. Which slice each method actually uses
/// follows §IV-A2 (unsupervised: target normal; semi/weak: partial labels;
/// supervised single-system: target train; cross-system: sources + target).
pub struct FitContext<'a> {
    /// Prepared source systems (raw-template embeddings — the baselines do
    /// not get LEI, mirroring the paper where LEI is LogSynergy's own
    /// contribution).
    pub sources: &'a [&'a PreparedSystem],
    /// Prepared target system.
    pub target: &'a PreparedSystem,
    /// Sequences taken per source system (spread over the stream).
    pub n_source: usize,
    /// Target training slice size (continuous head).
    pub n_target: usize,
    /// Window length.
    pub max_len: usize,
    /// Embedding dimension.
    pub embed_dim: usize,
    /// Seed for method-internal randomness.
    pub seed: u64,
}

impl<'a> FitContext<'a> {
    /// The target's continuous training slice.
    pub fn target_train(&self) -> Vec<SeqSample> {
        self.target.head(self.n_target)
    }

    /// Each source's spread training slice.
    pub fn source_train(&self) -> Vec<(usize, Vec<SeqSample>)> {
        self.sources
            .iter()
            .enumerate()
            .map(|(k, s)| (k, s.spread(self.n_source)))
            .collect()
    }
}

/// A log anomaly detection method under the shared evaluation harness.
pub trait Method {
    /// Display name as used in the paper's tables.
    fn name(&self) -> &'static str;
    /// Trains the method on its §IV-A2 data slice.
    fn fit(&mut self, ctx: &FitContext<'_>);
    /// Anomaly scores in `[0, 1]` for target sequences (threshold 0.5).
    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32>;

    /// Binary decisions at 0.5 (the paper's shared threshold, §IV-A3).
    fn detect(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<bool> {
        self.score(samples, target)
            .into_iter()
            .map(|s| s > 0.5)
            .collect()
    }
}

/// Flattens samples into per-sample `[T * D]` rows using `embeddings`.
pub fn rows(samples: &[SeqSample], embeddings: &[Vec<f32>], t: usize, d: usize) -> Vec<Vec<f32>> {
    samples
        .iter()
        .map(|s| {
            let mut row = vec![0.0f32; t * d];
            for (step, &e) in s.events.iter().take(t).enumerate() {
                row[step * d..(step + 1) * d].copy_from_slice(&embeddings[e as usize]);
            }
            row
        })
        .collect()
}

/// Builds a `[B, T, D]` input tensor from row-major flattened samples.
pub fn batch_tensor(rows: &[Vec<f32>], idx: &[usize], t: usize, d: usize) -> Tensor {
    let b = idx.len();
    let mut x = vec![0.0f32; b * t * d];
    for (r, &i) in idx.iter().enumerate() {
        x[r * t * d..(r + 1) * t * d].copy_from_slice(&rows[i]);
    }
    Tensor::new(x, &[b, t, d])
}

/// Generic AdamW mini-batch loop. `step` builds the scalar loss for a batch
/// of indices; the loop backprops, clips, and steps. Returns the mean loss
/// of the final epoch.
pub fn adamw_epochs(
    store: &mut ParamStore,
    n: usize,
    epochs: usize,
    batch: usize,
    lr: f32,
    seed: u64,
    mut step: impl FnMut(&Graph, &ParamStore, &[usize], &mut StdRng) -> Var,
) -> f32 {
    assert!(n > 0, "empty training data");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut opt = AdamW::new(store, lr);
    let mut order: Vec<usize> = (0..n).collect();
    let mut last = 0.0;
    for _ in 0..epochs {
        order.shuffle(&mut rng);
        let mut sum = 0.0;
        let mut count = 0;
        for chunk in order.chunks(batch) {
            if chunk.len() < 2 {
                continue;
            }
            let g = Graph::new();
            let loss = step(&g, store, chunk, &mut rng);
            sum += g.value(loss).item();
            count += 1;
            g.backward(loss);
            g.write_grads(store);
            store.clip_grad_norm(5.0);
            opt.step(store);
        }
        last = sum / count.max(1) as f32;
    }
    last
}

/// Mean event-embedding of a sequence (used by clustering-style methods).
pub fn mean_embedding(s: &SeqSample, embeddings: &[Vec<f32>], d: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; d];
    if s.events.is_empty() {
        return acc;
    }
    for &e in &s.events {
        for (a, v) in acc.iter_mut().zip(&embeddings[e as usize]) {
            *a += v;
        }
    }
    let n = s.events.len() as f32;
    acc.iter_mut().for_each(|a| *a /= n);
    acc
}

/// Euclidean distance.
pub fn dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// Logistic squashing of a margin to a `[0,1]` score; `margin > 0` means
/// anomalous, and `sharpness` controls how hard the decision is.
pub fn margin_to_score(margin: f32, sharpness: f32) -> f32 {
    1.0 / (1.0 + (-sharpness * margin).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use logsynergy_nn::{loss, ops};

    #[test]
    fn rows_flatten_and_pad() {
        let emb = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let s = SeqSample {
            events: vec![1],
            label: false,
        };
        let r = rows(&[s], &emb, 3, 2);
        assert_eq!(r[0], vec![3.0, 4.0, 0.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn adamw_epochs_fits_linear_probe() {
        let mut store = ParamStore::new();
        let w = store.add("w", Tensor::zeros(&[2, 1]));
        // y = x0 (first feature), 32 samples
        let data: Vec<Vec<f32>> = (0..32)
            .map(|i| vec![if i % 2 == 0 { 1.0 } else { -1.0 }, 0.5])
            .collect();
        let labels: Vec<f32> = (0..32)
            .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
            .collect();
        let last = adamw_epochs(&mut store, 32, 40, 8, 0.05, 1, |g, store, idx, _| {
            let b = idx.len();
            let mut x = vec![0.0; b * 2];
            let mut y = Vec::with_capacity(b);
            for (r, &i) in idx.iter().enumerate() {
                x[r * 2..(r + 1) * 2].copy_from_slice(&data[i]);
                y.push(labels[i]);
            }
            let xv = g.input(Tensor::new(x, &[b, 2]));
            let wv = g.bind(store, w);
            let logits = ops::reshape(g, ops::matmul(g, xv, wv), &[b]);
            loss::bce_with_logits(g, logits, &y)
        });
        assert!(last < 0.3, "final loss {last}");
    }

    #[test]
    fn margin_scores_bracket_half() {
        assert!(margin_to_score(1.0, 4.0) > 0.5);
        assert!(margin_to_score(-1.0, 4.0) < 0.5);
        assert_eq!(margin_to_score(0.0, 4.0), 0.5);
    }

    #[test]
    fn mean_embedding_averages() {
        let emb = vec![vec![1.0, 0.0], vec![3.0, 2.0]];
        let s = SeqSample {
            events: vec![0, 1],
            label: false,
        };
        assert_eq!(mean_embedding(&s, &emb, 2), vec![2.0, 1.0]);
    }
}
