//! LogRobust (Zhang et al., ESEC/FSE 2019): supervised detection with an
//! attention-based Bi-LSTM over semantic vectors, designed to be robust to
//! unstable log data.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{BiLstm, Linear};
use logsynergy_nn::{loss, ops};
use rand::SeedableRng;

use crate::common::{adamw_epochs, batch_tensor, rows, FitContext, Method};

/// LogRobust baseline.
pub struct LogRobust {
    store: ParamStore,
    bilstm: Option<BiLstm>,
    attn: Option<Linear>,
    head: Option<Linear>,
    max_len: usize,
    embed_dim: usize,
    hidden: usize,
    epochs: usize,
}

impl Default for LogRobust {
    fn default() -> Self {
        Self::new()
    }
}

impl LogRobust {
    /// LogRobust with a single Bi-LSTM layer (paper: two layers of 128).
    pub fn new() -> Self {
        LogRobust {
            store: ParamStore::new(),
            bilstm: None,
            attn: None,
            head: None,
            max_len: 10,
            embed_dim: 0,
            hidden: 48,
            epochs: 15,
        }
    }

    fn logits(&self, g: &Graph, store: &ParamStore, x: logsynergy_nn::Var) -> logsynergy_nn::Var {
        let (bi, attn, head) = (
            self.bilstm.as_ref().unwrap(),
            self.attn.as_ref().unwrap(),
            self.head.as_ref().unwrap(),
        );
        let (outs, _) = bi.forward(g, store, x); // [B,T,2H]
                                                 // Additive attention: score_t = w^T tanh(out_t); softmax over T.
        let scores = attn.forward(g, store, ops::tanh(g, outs)); // [B,T,1]
        let shape = g.shape_of(scores);
        let (b, t) = (shape[0], shape[1]);
        let w = ops::softmax(g, ops::reshape(g, scores, &[b, t])); // [B,T]
        let wexp = ops::reshape(g, w, &[b, t, 1]);
        let weighted = ops::mul(g, outs, wexp); // broadcast over features
        let pooled = ops::sum_axis(g, weighted, 1, false); // [B,2H]
        let l = head.forward(g, store, pooled);
        ops::reshape(g, l, &[b])
    }
}

impl Method for LogRobust {
    fn name(&self) -> &'static str {
        "LogRobust"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.embed_dim = ctx.embed_dim;
        self.max_len = ctx.max_len;
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        self.bilstm = Some(BiLstm::new(
            &mut store,
            &mut rng,
            "lr.bilstm",
            self.embed_dim,
            self.hidden,
        ));
        self.attn = Some(Linear::new(
            &mut store,
            &mut rng,
            "lr.attn",
            2 * self.hidden,
            1,
        ));
        self.head = Some(Linear::new(
            &mut store,
            &mut rng,
            "lr.head",
            2 * self.hidden,
            1,
        ));

        let train = ctx.target_train();
        if train.is_empty() {
            self.store = store;
            return;
        }
        let labels: Vec<f32> = train
            .iter()
            .map(|s| if s.label { 1.0 } else { 0.0 })
            .collect();
        let xrows = rows(
            &train,
            &ctx.target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        let this = &*self;
        adamw_epochs(
            &mut store,
            train.len(),
            this.epochs,
            64,
            1e-2,
            ctx.seed,
            |g, st, idx, _| {
                let x = g.input(batch_tensor(&xrows, idx, this.max_len, this.embed_dim));
                let targets: Vec<f32> = idx.iter().map(|&i| labels[i]).collect();
                let logits = this.logits(g, st, x);
                loss::bce_with_logits(g, logits, &targets)
            },
        );
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32> {
        if self.bilstm.is_none() {
            return vec![0.0; samples.len()];
        }
        let xrows = rows(
            samples,
            &target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut out = Vec::with_capacity(samples.len());
        for chunk in idx.chunks(256) {
            let g = Graph::inference();
            let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
            let logits = self.logits(&g, &self.store, x);
            out.extend(
                g.value(logits)
                    .data()
                    .iter()
                    .map(|&l| 1.0 / (1.0 + (-l).exp())),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_bilstm_separates_classes() {
        let emb = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]];
        // Anomaly: a single template-1 event hidden in a normal sequence —
        // exactly what attention should pick out.
        let sequences: Vec<SeqSample> = (0..100)
            .map(|i| {
                let anom = i % 5 == 0;
                let mut ev = vec![0u32; 6];
                if anom {
                    ev[i % 6] = 1;
                }
                SeqSample {
                    events: ev,
                    label: anom,
                }
            })
            .collect();
        let prep = PreparedSystem {
            system: logsynergy_loggen::SystemId::SystemA,
            sequences,
            event_embeddings: emb,
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        };
        let mut m = LogRobust::new();
        let binding = [];
        let ctx = FitContext {
            sources: &binding,
            target: &prep,
            n_source: 0,
            n_target: 100,
            max_len: 6,
            embed_dim: 4,
            seed: 6,
        };
        m.fit(&ctx);
        let ok = SeqSample {
            events: vec![0; 6],
            label: false,
        };
        let bad = SeqSample {
            events: vec![0, 0, 1, 0, 0, 0],
            label: true,
        };
        let s = m.score(&[ok, bad], &prep);
        assert!(s[1] > 0.5 && s[0] < 0.5, "{s:?}");
    }
}
