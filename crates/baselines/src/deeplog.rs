//! DeepLog (Du et al., CCS 2017): unsupervised next-event prediction with
//! an LSTM over event-id sequences; a log is anomalous when the observed
//! next event is outside the model's top-k predictions.
//!
//! Per §IV-A2 it trains on **all normal sequences of the target's training
//! slice** — which, for a new system, is far too little to cover the
//! normal behavior space, producing the paper's characteristic
//! low-precision / high-recall profile.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamId, ParamStore};
use logsynergy_nn::layers::{Linear, Lstm};
use logsynergy_nn::{loss, ops};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{adamw_epochs, FitContext, Method};

/// DeepLog baseline.
pub struct DeepLog {
    store: ParamStore,
    table: Option<ParamId>,
    lstm: Option<Lstm>,
    head: Option<Linear>,
    vocab: usize,
    /// History length fed to the LSTM.
    history: usize,
    /// Top-k tolerance (paper configuration: 9).
    pub top_k: usize,
    emb_dim: usize,
    hidden: usize,
    epochs: usize,
}

impl Default for DeepLog {
    fn default() -> Self {
        Self::new()
    }
}

impl DeepLog {
    /// DeepLog with the paper's configuration scaled for CPU (two LSTM
    /// layers in the paper; one here, 64 hidden units, top-k 9).
    pub fn new() -> Self {
        DeepLog {
            store: ParamStore::new(),
            table: None,
            lstm: None,
            head: None,
            vocab: 0,
            history: 6,
            top_k: 9,
            emb_dim: 16,
            hidden: 64,
            epochs: 8,
        }
    }

    /// (history ids padded with `vocab` sentinel, next id) pairs.
    fn pairs(&self, seqs: &[SeqSample]) -> (Vec<Vec<usize>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in seqs {
            for i in 2..s.events.len() {
                let lo = i.saturating_sub(self.history);
                let mut h: Vec<usize> = s.events[lo..i].iter().map(|&e| e as usize).collect();
                while h.len() < self.history {
                    h.insert(0, self.vocab); // pad sentinel
                }
                xs.push(h);
                ys.push(s.events[i] as usize);
            }
        }
        (xs, ys)
    }

    fn forward_logits(
        &self,
        g: &Graph,
        store: &ParamStore,
        histories: &[Vec<usize>],
    ) -> logsynergy_nn::Var {
        let (table, lstm, head) = (
            self.table.unwrap(),
            self.lstm.as_ref().unwrap(),
            self.head.as_ref().unwrap(),
        );
        let b = histories.len();
        let flat: Vec<usize> = histories.iter().flatten().copied().collect();
        let tb = g.bind(store, table);
        let emb = ops::embedding(g, tb, &flat); // [b*h, emb]
        let x = ops::reshape(g, emb, &[b, self.history, self.emb_dim]);
        let (_, h) = lstm.forward(g, store, x);
        head.forward(g, store, h) // [b, vocab]
    }
}

impl Method for DeepLog {
    fn name(&self) -> &'static str {
        "DeepLog"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.vocab = ctx.target.event_embeddings.len();
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        let table = store.add(
            "deeplog.table",
            logsynergy_nn::init::embedding_init(&mut rng, self.vocab + 1, self.emb_dim),
        );
        let lstm = Lstm::new(
            &mut store,
            &mut rng,
            "deeplog.lstm",
            self.emb_dim,
            self.hidden,
        );
        let head = Linear::new(
            &mut store,
            &mut rng,
            "deeplog.head",
            self.hidden,
            self.vocab,
        );
        self.table = Some(table);
        self.lstm = Some(lstm);
        self.head = Some(head);
        self.store = store;

        let normal: Vec<SeqSample> = ctx
            .target_train()
            .into_iter()
            .filter(|s| !s.label)
            .collect();
        let (xs, ys) = self.pairs(&normal);
        if xs.is_empty() {
            return;
        }
        // Split borrows: move store out during training.
        let mut store = std::mem::take(&mut self.store);
        let this = &*self;
        adamw_epochs(
            &mut store,
            xs.len(),
            this.epochs,
            64,
            1e-2,
            ctx.seed,
            |g, st, idx, _| {
                let hs: Vec<Vec<usize>> = idx.iter().map(|&i| xs[i].clone()).collect();
                let targets: Vec<usize> = idx.iter().map(|&i| ys[i]).collect();
                let logits = this.forward_logits(g, st, &hs);
                loss::cross_entropy(g, logits, &targets)
            },
        );
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], _target: &PreparedSystem) -> Vec<f32> {
        if self.table.is_none() || self.vocab == 0 {
            return vec![0.0; samples.len()];
        }
        let mut out = Vec::with_capacity(samples.len());
        for s in samples {
            let (xs, ys) = self.pairs(std::slice::from_ref(s));
            if xs.is_empty() {
                out.push(0.0);
                continue;
            }
            let g = Graph::inference();
            let logits = self.forward_logits(&g, &self.store, &xs);
            let v = g.value(logits);
            let mut misses = 0usize;
            for (row, &want) in v.data().chunks_exact(self.vocab).zip(&ys) {
                let mut idx: Vec<usize> = (0..self.vocab).collect();
                idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
                if !idx[..self.top_k.min(self.vocab)].contains(&want) {
                    misses += 1;
                }
            }
            out.push(crate::common::margin_to_score(misses as f32 - 0.5, 4.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prepared(vocab: usize) -> PreparedSystem {
        PreparedSystem {
            system: logsynergy_loggen::SystemId::SystemB,
            sequences: vec![],
            event_embeddings: vec![vec![0.0; 8]; vocab],
            event_texts: vec![String::new(); vocab],
            templates: vec![String::new(); vocab],
            review_stats: Default::default(),
        }
    }

    #[test]
    fn learns_deterministic_cycle_and_flags_deviations() {
        // Normal behavior: strict cycle 0,1,2,0,1,2,...  Anomaly: a 3.
        let normal: Vec<SeqSample> = (0..40)
            .map(|i| SeqSample {
                events: (0..8).map(|j| ((i + j) % 3) as u32).collect(),
                label: false,
            })
            .collect();
        let mut prep = prepared(4);
        prep.sequences = normal;
        let mut dl = DeepLog::new();
        dl.top_k = 1;
        let binding = [];
        let ctx = FitContext {
            sources: &binding,
            target: &prep,
            n_source: 0,
            n_target: 40,
            max_len: 8,
            embed_dim: 8,
            seed: 1,
        };
        dl.fit(&ctx);

        let ok = SeqSample {
            events: vec![0, 1, 2, 0, 1, 2, 0, 1],
            label: false,
        };
        let bad = SeqSample {
            events: vec![0, 1, 2, 3, 1, 2, 0, 1],
            label: true,
        };
        let scores = dl.score(&[ok, bad], &prep);
        assert!(scores[0] < 0.5, "cycle should be predicted: {scores:?}");
        assert!(scores[1] > 0.5, "deviation should be flagged: {scores:?}");
    }

    #[test]
    fn unfitted_scores_zero() {
        let dl = DeepLog::new();
        let prep = prepared(2);
        let s = SeqSample {
            events: vec![0, 1, 0],
            label: false,
        };
        assert_eq!(dl.score(&[s], &prep), vec![0.0]);
    }
}
