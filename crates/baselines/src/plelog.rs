//! PLELog (Yang et al., ICSE 2021): semi-supervised detection via
//! probabilistic label estimation. It knows 50% of the *normal* training
//! sequences (labeled normal) and treats the rest as unlabeled; clustering
//! over sequence embeddings assigns probabilistic pseudo-labels, and an
//! attention-GRU classifier trains on them.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{Gru, Linear};
use logsynergy_nn::{loss, ops};
use rand::SeedableRng;

use crate::common::{
    adamw_epochs, batch_tensor, dist, margin_to_score, mean_embedding, rows, FitContext, Method,
};

/// PLELog baseline.
pub struct PLELog {
    store: ParamStore,
    gru: Option<Gru>,
    head: Option<Linear>,
    max_len: usize,
    embed_dim: usize,
    hidden: usize,
    epochs: usize,
    /// Normal-cluster centroid from the label-estimation stage.
    centroid: Vec<f32>,
    /// Distance scale from the labeled-normal spread.
    dist_scale: f32,
}

impl Default for PLELog {
    fn default() -> Self {
        Self::new()
    }
}

impl PLELog {
    /// PLELog with the paper's single-GRU-layer configuration (100 hidden
    /// units there; 64 here).
    pub fn new() -> Self {
        PLELog {
            store: ParamStore::new(),
            gru: None,
            head: None,
            max_len: 10,
            embed_dim: 0,
            hidden: 64,
            epochs: 8,
            centroid: vec![],
            dist_scale: 1.0,
        }
    }

    fn logits(&self, g: &Graph, store: &ParamStore, x: logsynergy_nn::Var) -> logsynergy_nn::Var {
        let (gru, head) = (self.gru.as_ref().unwrap(), self.head.as_ref().unwrap());
        let (_, h) = gru.forward(g, store, x);
        let l = head.forward(g, store, h);
        let b = g.shape_of(l)[0];
        ops::reshape(g, l, &[b])
    }
}

impl Method for PLELog {
    fn name(&self) -> &'static str {
        "PLELog"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.embed_dim = ctx.embed_dim;
        self.max_len = ctx.max_len;
        let train = ctx.target_train();
        let emb = &ctx.target.event_embeddings;

        // Label knowledge: 50% of the normal samples are known-normal,
        // everything else is unlabeled (paper §IV-A2).
        let normal_idx: Vec<usize> = train
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.label)
            .map(|(i, _)| i)
            .collect();
        let labeled: Vec<usize> = normal_idx.iter().step_by(2).copied().collect();
        if labeled.is_empty() {
            return;
        }

        // Probabilistic label estimation: distance to the known-normal
        // centroid, calibrated against the labeled-normal distance spread.
        let means: Vec<Vec<f32>> = train
            .iter()
            .map(|s| mean_embedding(s, emb, self.embed_dim))
            .collect();
        let mut centroid = vec![0.0f32; self.embed_dim];
        for &i in &labeled {
            for (c, v) in centroid.iter_mut().zip(&means[i]) {
                *c += v;
            }
        }
        centroid.iter_mut().for_each(|c| *c /= labeled.len() as f32);
        let mut ref_d: Vec<f32> = labeled
            .iter()
            .map(|&i| dist(&means[i], &centroid))
            .collect();
        ref_d.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let q80 = ref_d[((ref_d.len() as f32 * 0.80) as usize).min(ref_d.len() - 1)].max(1e-6);

        // Soft pseudo-labels: known normals 0; unlabeled get a probability
        // from how far outside the normal cluster they sit. With so little
        // labeled data the cluster is tight, so *any* unfamiliar pattern —
        // anomalous or merely unseen-normal — gets a high pseudo-label.
        // That is exactly the paper's PLELog failure mode on new systems:
        // high recall, low precision.
        let labeled_set: std::collections::HashSet<usize> = labeled.iter().copied().collect();
        let pseudo: Vec<f32> = (0..train.len())
            .map(|i| {
                if labeled_set.contains(&i) {
                    0.0
                } else {
                    let d = dist(&means[i], &centroid);
                    margin_to_score(d / q80 - 1.0, 8.0)
                }
            })
            .collect();

        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        self.gru = Some(Gru::new(
            &mut store,
            &mut rng,
            "ple.gru",
            self.embed_dim,
            self.hidden,
        ));
        self.head = Some(Linear::new(
            &mut store,
            &mut rng,
            "ple.head",
            self.hidden,
            1,
        ));

        self.centroid = centroid;
        self.dist_scale = q80;

        let xrows = rows(&train, emb, self.max_len, self.embed_dim);
        let this = &*self;
        adamw_epochs(
            &mut store,
            train.len(),
            this.epochs,
            64,
            1e-2,
            ctx.seed,
            |g, st, idx, _| {
                let x = g.input(batch_tensor(&xrows, idx, this.max_len, this.embed_dim));
                let targets: Vec<f32> = idx.iter().map(|&i| pseudo[i]).collect();
                let logits = this.logits(g, st, x);
                loss::bce_with_logits(g, logits, &targets)
            },
        );
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32> {
        if self.gru.is_none() {
            return vec![0.0; samples.len()];
        }
        let xrows = rows(
            samples,
            &target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut out = Vec::with_capacity(samples.len());
        for chunk in idx.chunks(256) {
            let g = Graph::inference();
            let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
            let logits = self.logits(&g, &self.store, x);
            out.extend(
                g.value(logits)
                    .data()
                    .iter()
                    .map(|&l| 1.0 / (1.0 + (-l).exp())),
            );
        }
        // Probabilistic label estimation applied online as well: a sequence
        // far from the known-normal cluster scores high even if the
        // classifier never saw anything like it during training. This is
        // what floods PLELog with false positives on a new system (the
        // paper's low-precision / high-recall profile).
        for (o, s) in out.iter_mut().zip(samples) {
            let d = dist(
                &mean_embedding(s, &target.event_embeddings, self.embed_dim),
                &self.centroid,
            );
            let est = margin_to_score(d / self.dist_scale - 1.0, 8.0);
            if est > *o {
                *o = est;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_sequences_far_from_normal_cluster() {
        // Normal sequences use template 0; anomalies template 1 with an
        // orthogonal embedding.
        let emb = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]];
        let mut sequences: Vec<SeqSample> = (0..60)
            .map(|_| SeqSample {
                events: vec![0; 6],
                label: false,
            })
            .collect();
        for i in [10usize, 30, 50] {
            sequences[i] = SeqSample {
                events: vec![1; 6],
                label: true,
            };
        }
        let prep = PreparedSystem {
            system: logsynergy_loggen::SystemId::SystemB,
            sequences,
            event_embeddings: emb,
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        };
        let mut m = PLELog::new();
        let binding = [];
        let ctx = FitContext {
            sources: &binding,
            target: &prep,
            n_source: 0,
            n_target: 60,
            max_len: 6,
            embed_dim: 4,
            seed: 3,
        };
        m.fit(&ctx);
        let ok = SeqSample {
            events: vec![0; 6],
            label: false,
        };
        let bad = SeqSample {
            events: vec![1; 6],
            label: true,
        };
        let s = m.score(&[ok, bad], &prep);
        assert!(s[1] > s[0], "anomalous farther from cluster: {s:?}");
        assert!(s[1] > 0.5, "{s:?}");
    }
}
