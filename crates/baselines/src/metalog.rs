//! MetaLog (Zhang et al., ICSE 2024): generalizable cross-system anomaly
//! detection via meta-learning. A Reptile-style outer loop treats each
//! source system as a task — clone parameters, adapt with a few inner
//! gradient steps on that task, then move the meta-parameters toward the
//! adapted ones — followed by a short adaptation on the target's slice.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{Gru, Linear};
use logsynergy_nn::optim::Sgd;
use logsynergy_nn::{loss, ops, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::common::{batch_tensor, rows, FitContext, Method};

/// MetaLog baseline.
pub struct MetaLog {
    store: ParamStore,
    gru: Option<Gru>,
    head: Option<Linear>,
    max_len: usize,
    embed_dim: usize,
    hidden: usize,
    /// Outer meta-rounds.
    meta_rounds: usize,
    /// Inner adaptation steps per task.
    inner_steps: usize,
    /// Reptile interpolation rate.
    meta_lr: f32,
    /// Final adaptation epochs on the target.
    adapt_epochs: usize,
}

impl Default for MetaLog {
    fn default() -> Self {
        Self::new()
    }
}

impl MetaLog {
    /// MetaLog with CPU-scale configuration (paper: two GRU layers of 100).
    pub fn new() -> Self {
        MetaLog {
            store: ParamStore::new(),
            gru: None,
            head: None,
            max_len: 10,
            embed_dim: 0,
            hidden: 64,
            meta_rounds: 6,
            inner_steps: 8,
            meta_lr: 0.5,
            adapt_epochs: 6,
        }
    }

    fn logits(&self, g: &Graph, store: &ParamStore, x: logsynergy_nn::Var) -> logsynergy_nn::Var {
        let (gru, head) = (self.gru.as_ref().unwrap(), self.head.as_ref().unwrap());
        let (_, h) = gru.forward(g, store, x);
        let l = head.forward(g, store, h);
        let b = g.shape_of(l)[0];
        ops::reshape(g, l, &[b])
    }

    fn snapshot(store: &ParamStore) -> Vec<Tensor> {
        store.ids().map(|id| store.value(id).clone()).collect()
    }

    /// θ ← θ₀ + β (θ' − θ₀) — the Reptile meta-update.
    fn reptile_update(store: &mut ParamStore, origin: &[Tensor], beta: f32) {
        for (id, o) in store.ids().collect::<Vec<_>>().into_iter().zip(origin) {
            let cur = store.value_mut(id);
            for (c, base) in cur.data_mut().iter_mut().zip(o.data()) {
                *c = base + beta * (*c - base);
            }
        }
    }

    fn inner_adapt(
        &self,
        store: &mut ParamStore,
        xrows: &[Vec<f32>],
        labels: &[f32],
        steps: usize,
        rng: &mut StdRng,
    ) {
        if xrows.len() < 2 {
            return;
        }
        let mut opt = Sgd::new(store, 0.05, 0.0);
        let mut order: Vec<usize> = (0..xrows.len()).collect();
        for _ in 0..steps {
            order.shuffle(rng);
            let chunk: Vec<usize> = order.iter().take(64.min(order.len())).copied().collect();
            if chunk.len() < 2 {
                break;
            }
            let g = Graph::new();
            let x = g.input(batch_tensor(xrows, &chunk, self.max_len, self.embed_dim));
            let logits = self.logits(&g, store, x);
            let targets: Vec<f32> = chunk.iter().map(|&i| labels[i]).collect();
            let l = loss::bce_with_logits(&g, logits, &targets);
            g.backward(l);
            g.write_grads(store);
            store.clip_grad_norm(5.0);
            opt.step(store);
        }
    }
}

impl Method for MetaLog {
    fn name(&self) -> &'static str {
        "MetaLog"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.embed_dim = ctx.embed_dim;
        self.max_len = ctx.max_len;
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        self.gru = Some(Gru::new(
            &mut store,
            &mut rng,
            "ml.gru",
            self.embed_dim,
            self.hidden,
        ));
        self.head = Some(Linear::new(&mut store, &mut rng, "ml.head", self.hidden, 1));

        // Per-task (per-source) training data.
        let tasks: Vec<(Vec<Vec<f32>>, Vec<f32>)> = ctx
            .source_train()
            .into_iter()
            .map(|(k, samples)| {
                let labels = samples
                    .iter()
                    .map(|s| if s.label { 1.0 } else { 0.0 })
                    .collect();
                let xr = rows(
                    &samples,
                    &ctx.sources[k].event_embeddings,
                    self.max_len,
                    self.embed_dim,
                );
                (xr, labels)
            })
            .collect();

        let this_max_len = self.max_len;
        let _ = this_max_len;
        for _ in 0..self.meta_rounds {
            for (xr, lb) in &tasks {
                let origin = Self::snapshot(&store);
                // Borrow dance: take fields we need before &mut store use.
                let inner = |store: &mut ParamStore, rng: &mut StdRng| {
                    self.inner_adapt(store, xr, lb, self.inner_steps, rng)
                };
                inner(&mut store, &mut rng);
                Self::reptile_update(&mut store, &origin, self.meta_lr);
            }
        }

        // Final adaptation on the target's labeled slice.
        let train = ctx.target_train();
        let labels: Vec<f32> = train
            .iter()
            .map(|s| if s.label { 1.0 } else { 0.0 })
            .collect();
        let xr = rows(
            &train,
            &ctx.target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        for _ in 0..self.adapt_epochs {
            self.inner_adapt(&mut store, &xr, &labels, 2, &mut rng);
        }
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32> {
        if self.gru.is_none() {
            return vec![0.0; samples.len()];
        }
        let xrows = rows(
            samples,
            &target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut out = Vec::with_capacity(samples.len());
        for chunk in idx.chunks(256) {
            let g = Graph::inference();
            let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
            let logits = self.logits(&g, &self.store, x);
            out.extend(
                g.value(logits)
                    .data()
                    .iter()
                    .map(|&l| 1.0 / (1.0 + (-l).exp())),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(system: logsynergy_loggen::SystemId, n: usize, rate: usize) -> PreparedSystem {
        let emb = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]];
        let sequences: Vec<SeqSample> = (0..n)
            .map(|i| {
                let anom = rate > 0 && i % rate == 0;
                SeqSample {
                    events: vec![if anom { 1 } else { 0 }; 6],
                    label: anom,
                }
            })
            .collect();
        PreparedSystem {
            system,
            sequences,
            event_embeddings: emb,
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        }
    }

    #[test]
    fn meta_learning_adapts_to_target() {
        use logsynergy_loggen::SystemId;
        let s1 = prep(SystemId::Bgl, 80, 4);
        let s2 = prep(SystemId::Spirit, 80, 5);
        let tgt = prep(SystemId::SystemC, 60, 6);
        let mut m = MetaLog::new();
        let sources = [&s1, &s2];
        let ctx = FitContext {
            sources: &sources,
            target: &tgt,
            n_source: 80,
            n_target: 60,
            max_len: 6,
            embed_dim: 4,
            seed: 10,
        };
        m.fit(&ctx);
        let ok = SeqSample {
            events: vec![0; 6],
            label: false,
        };
        let bad = SeqSample {
            events: vec![1; 6],
            label: true,
        };
        let s = m.score(&[ok, bad], &tgt);
        assert!(s[1] > s[0], "{s:?}");
    }

    #[test]
    fn reptile_update_interpolates() {
        let mut store = ParamStore::new();
        let id = store.add("w", Tensor::new(vec![0.0], &[1]));
        let origin = vec![Tensor::new(vec![0.0], &[1])];
        *store.value_mut(id) = Tensor::new(vec![2.0], &[1]);
        MetaLog::reptile_update(&mut store, &origin, 0.5);
        assert_eq!(store.value(id).data(), &[1.0]);
    }
}
