//! # logsynergy-baselines
//!
//! The nine baseline methods of the paper's evaluation (Tables IV/V),
//! implemented from scratch on the [`logsynergy_nn`] substrate behind the
//! shared [`common::Method`] trait:
//!
//! | Category | Methods |
//! |---|---|
//! | Unsupervised single-system | [`DeepLog`], [`LogAnomaly`] |
//! | Semi-supervised | [`PLELog`] |
//! | Weakly-supervised | [`SpikeLog`] |
//! | Supervised single-system | [`NeuralLog`], [`LogRobust`] |
//! | Pre-trained | [`PreLog`] |
//! | Unsupervised cross-system | [`LogTAD`] |
//! | Supervised cross-system | [`LogTransfer`], [`MetaLog`] |
//!
//! Baselines consume raw-template embeddings — LEI is LogSynergy's own
//! contribution and is not granted to competitors, mirroring the paper.

#![warn(missing_docs)]

pub mod common;
pub mod deeplog;
pub mod loganomaly;
pub mod logrobust;
pub mod logtad;
pub mod logtransfer;
pub mod metalog;
pub mod neurallog;
pub mod plelog;
pub mod prelog;
pub mod spikelog;

pub use common::{FitContext, Method};
pub use deeplog::DeepLog;
pub use loganomaly::LogAnomaly;
pub use logrobust::LogRobust;
pub use logtad::LogTAD;
pub use logtransfer::LogTransfer;
pub use metalog::MetaLog;
pub use neurallog::NeuralLog;
pub use plelog::PLELog;
pub use prelog::PreLog;
pub use spikelog::SpikeLog;
