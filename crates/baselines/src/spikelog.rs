//! SpikeLog (Qi et al., TKDE 2023): weakly-supervised detection with a
//! potential-assisted spiking neural network. Per §IV-A2 it knows 98% of
//! the anomalous training sequences; the remaining unlabeled data is
//! treated as normal during training.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{LifLayer, Linear};
use logsynergy_nn::{loss, ops};
use rand::SeedableRng;

use crate::common::{adamw_epochs, batch_tensor, rows, FitContext, Method};

/// SpikeLog baseline.
pub struct SpikeLog {
    store: ParamStore,
    lif: Option<LifLayer>,
    head: Option<Linear>,
    max_len: usize,
    embed_dim: usize,
    hidden: usize,
    epochs: usize,
}

impl Default for SpikeLog {
    fn default() -> Self {
        Self::new()
    }
}

impl SpikeLog {
    /// SpikeLog with a single 64-neuron LIF layer (paper: 128).
    pub fn new() -> Self {
        SpikeLog {
            store: ParamStore::new(),
            lif: None,
            head: None,
            max_len: 10,
            embed_dim: 0,
            hidden: 64,
            epochs: 10,
        }
    }

    fn logits(&self, g: &Graph, store: &ParamStore, x: logsynergy_nn::Var) -> logsynergy_nn::Var {
        let (lif, head) = (self.lif.as_ref().unwrap(), self.head.as_ref().unwrap());
        let (_, rate) = lif.forward(g, store, x);
        let l = head.forward(g, store, rate);
        let b = g.shape_of(l)[0];
        ops::reshape(g, l, &[b])
    }
}

impl Method for SpikeLog {
    fn name(&self) -> &'static str {
        "SpikeLog"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.embed_dim = ctx.embed_dim;
        self.max_len = ctx.max_len;
        let train = ctx.target_train();
        let emb = &ctx.target.event_embeddings;

        // Weak supervision: 98% of anomalies keep their labels; everything
        // else (including the hidden 2%) trains as normal.
        let mut labels: Vec<f32> = Vec::with_capacity(train.len());
        let mut seen_anomalies = 0usize;
        let total_anomalies = train.iter().filter(|s| s.label).count();
        let keep = ((total_anomalies as f32) * 0.98).floor() as usize;
        for s in &train {
            if s.label && seen_anomalies < keep {
                seen_anomalies += 1;
                labels.push(1.0);
            } else {
                labels.push(0.0);
            }
        }

        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        self.lif = Some(LifLayer::new(
            &mut store,
            &mut rng,
            "spike.lif",
            self.embed_dim,
            self.hidden,
        ));
        self.head = Some(Linear::new(
            &mut store,
            &mut rng,
            "spike.head",
            self.hidden,
            1,
        ));

        if train.is_empty() {
            self.store = store;
            return;
        }
        let xrows = rows(&train, emb, self.max_len, self.embed_dim);
        // Potential-assisted weak supervision copes with extreme class
        // imbalance; model that by oversampling the labeled anomalies so
        // they make up roughly a quarter of the training stream.
        let mut sample_idx: Vec<usize> = (0..train.len()).collect();
        let pos: Vec<usize> = labels
            .iter()
            .enumerate()
            .filter(|(_, &l)| l > 0.5)
            .map(|(i, _)| i)
            .collect();
        if !pos.is_empty() {
            let want = train.len() / 3;
            while sample_idx.len() - train.len() < want {
                sample_idx.extend_from_slice(&pos);
            }
        }
        let this = &*self;
        adamw_epochs(
            &mut store,
            sample_idx.len(),
            this.epochs,
            64,
            5e-3,
            ctx.seed,
            |g, st, idx, _| {
                let real: Vec<usize> = idx.iter().map(|&i| sample_idx[i]).collect();
                let x = g.input(batch_tensor(&xrows, &real, this.max_len, this.embed_dim));
                let targets: Vec<f32> = real.iter().map(|&i| labels[i]).collect();
                let logits = this.logits(g, st, x);
                loss::bce_with_logits(g, logits, &targets)
            },
        );
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32> {
        if self.lif.is_none() {
            return vec![0.0; samples.len()];
        }
        let xrows = rows(
            samples,
            &target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut out = Vec::with_capacity(samples.len());
        for chunk in idx.chunks(256) {
            let g = Graph::inference();
            let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
            let logits = self.logits(&g, &self.store, x);
            out.extend(
                g.value(logits)
                    .data()
                    .iter()
                    .map(|&l| 1.0 / (1.0 + (-l).exp())),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_classes_with_spiking_features() {
        let emb = vec![vec![2.0, 0.0, 0.0, 0.0], vec![0.0, 2.0, 0.0, 0.0]];
        let sequences: Vec<SeqSample> = (0..80)
            .map(|i| {
                let anom = i % 4 == 0;
                SeqSample {
                    events: vec![if anom { 1 } else { 0 }; 6],
                    label: anom,
                }
            })
            .collect();
        let prep = PreparedSystem {
            system: logsynergy_loggen::SystemId::SystemC,
            sequences,
            event_embeddings: emb,
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        };
        let mut m = SpikeLog::new();
        let binding = [];
        let ctx = FitContext {
            sources: &binding,
            target: &prep,
            n_source: 0,
            n_target: 80,
            max_len: 6,
            embed_dim: 4,
            seed: 4,
        };
        m.fit(&ctx);
        let ok = SeqSample {
            events: vec![0; 6],
            label: false,
        };
        let bad = SeqSample {
            events: vec![1; 6],
            label: true,
        };
        let s = m.score(&[ok, bad], &prep);
        assert!(s[1] > s[0], "{s:?}");
    }
}
