//! LogAnomaly (Meng et al., IJCAI 2019): unsupervised next-event
//! prediction like DeepLog, augmented with semantic (template2vec-style)
//! inputs and a quantitative count-vector branch.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{Linear, Lstm};
use logsynergy_nn::{loss, ops, Tensor};

use rand::SeedableRng;

use crate::common::{adamw_epochs, FitContext, Method};

/// LogAnomaly baseline.
pub struct LogAnomaly {
    store: ParamStore,
    lstm: Option<Lstm>,
    head: Option<Linear>,
    count_proj: Option<Linear>,
    vocab: usize,
    history: usize,
    /// Top-k tolerance (paper configuration: 9).
    pub top_k: usize,
    embed_dim: usize,
    hidden: usize,
    epochs: usize,
    /// Semantic embeddings of the target's templates, captured at fit time.
    embeddings: Vec<Vec<f32>>,
}

impl Default for LogAnomaly {
    fn default() -> Self {
        Self::new()
    }
}

impl LogAnomaly {
    /// LogAnomaly with CPU-scale configuration.
    pub fn new() -> Self {
        LogAnomaly {
            store: ParamStore::new(),
            lstm: None,
            head: None,
            count_proj: None,
            vocab: 0,
            history: 6,
            top_k: 9,
            embed_dim: 0,
            hidden: 64,
            epochs: 8,
            embeddings: vec![],
        }
    }

    fn pairs(&self, seqs: &[SeqSample]) -> (Vec<Vec<u32>>, Vec<usize>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for s in seqs {
            for i in 2..s.events.len() {
                let lo = i.saturating_sub(self.history);
                xs.push(s.events[lo..i].to_vec());
                ys.push(s.events[i] as usize);
            }
        }
        (xs, ys)
    }

    /// Builds the semantic input `[b, history, d]` (zero-padded in front)
    /// and the count vector `[b, vocab]`.
    fn inputs(&self, histories: &[Vec<u32>]) -> (Tensor, Tensor) {
        let b = histories.len();
        let d = self.embed_dim;
        let mut x = vec![0.0f32; b * self.history * d];
        let mut counts = vec![0.0f32; b * self.vocab];
        for (r, h) in histories.iter().enumerate() {
            let pad = self.history - h.len();
            for (j, &e) in h.iter().enumerate() {
                x[(r * self.history + pad + j) * d..(r * self.history + pad + j + 1) * d]
                    .copy_from_slice(&self.embeddings[e as usize]);
                counts[r * self.vocab + e as usize] += 1.0;
            }
        }
        (
            Tensor::new(x, &[b, self.history, d]),
            Tensor::new(counts, &[b, self.vocab]),
        )
    }

    fn forward_logits(
        &self,
        g: &Graph,
        store: &ParamStore,
        histories: &[Vec<u32>],
    ) -> logsynergy_nn::Var {
        let (lstm, head, cproj) = (
            self.lstm.as_ref().unwrap(),
            self.head.as_ref().unwrap(),
            self.count_proj.as_ref().unwrap(),
        );
        let (x, c) = self.inputs(histories);
        let xv = g.input(x);
        let cv = g.input(c);
        let (_, h) = lstm.forward(g, store, xv);
        let cfeat = ops::tanh(g, cproj.forward(g, store, cv));
        let joint = ops::concat_last(g, &[h, cfeat]);
        head.forward(g, store, joint)
    }
}

impl Method for LogAnomaly {
    fn name(&self) -> &'static str {
        "LogAnomaly"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.vocab = ctx.target.event_embeddings.len();
        self.embed_dim = ctx.embed_dim;
        self.embeddings = ctx.target.event_embeddings.clone();
        let mut rng = rand::rngs::StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(&mut store, &mut rng, "la.lstm", self.embed_dim, self.hidden);
        let count_proj = Linear::new(&mut store, &mut rng, "la.count", self.vocab, 32);
        let head = Linear::new(
            &mut store,
            &mut rng,
            "la.head",
            self.hidden + 32,
            self.vocab,
        );
        self.lstm = Some(lstm);
        self.count_proj = Some(count_proj);
        self.head = Some(head);

        let normal: Vec<SeqSample> = ctx
            .target_train()
            .into_iter()
            .filter(|s| !s.label)
            .collect();
        let (xs, ys) = self.pairs(&normal);
        if xs.is_empty() {
            self.store = store;
            return;
        }
        let this = &*self;
        adamw_epochs(
            &mut store,
            xs.len(),
            this.epochs,
            64,
            1e-2,
            ctx.seed,
            |g, st, idx, _| {
                let hs: Vec<Vec<u32>> = idx.iter().map(|&i| xs[i].clone()).collect();
                let targets: Vec<usize> = idx.iter().map(|&i| ys[i]).collect();
                let logits = this.forward_logits(g, st, &hs);
                loss::cross_entropy(g, logits, &targets)
            },
        );
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], _target: &PreparedSystem) -> Vec<f32> {
        if self.lstm.is_none() || self.vocab == 0 {
            return vec![0.0; samples.len()];
        }
        let mut out = Vec::with_capacity(samples.len());
        for s in samples {
            let (xs, ys) = self.pairs(std::slice::from_ref(s));
            if xs.is_empty() {
                out.push(0.0);
                continue;
            }
            let g = Graph::inference();
            let logits = self.forward_logits(&g, &self.store, &xs);
            let v = g.value(logits);
            let mut misses = 0usize;
            for (row, &want) in v.data().chunks_exact(self.vocab).zip(&ys) {
                let mut idx: Vec<usize> = (0..self.vocab).collect();
                idx.sort_by(|&a, &b| row[b].partial_cmp(&row[a]).unwrap());
                if !idx[..self.top_k.min(self.vocab)].contains(&want) {
                    misses += 1;
                }
            }
            out.push(crate::common::margin_to_score(misses as f32 - 0.5, 4.0));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_cycle_with_semantic_inputs() {
        let emb: Vec<Vec<f32>> = (0..4)
            .map(|i| {
                let mut v = vec![0.0; 8];
                v[i] = 1.0;
                v
            })
            .collect();
        let normal: Vec<SeqSample> = (0..40)
            .map(|i| SeqSample {
                events: (0..8).map(|j| ((i + j) % 3) as u32).collect(),
                label: false,
            })
            .collect();
        let prep = PreparedSystem {
            system: logsynergy_loggen::SystemId::SystemB,
            sequences: normal,
            event_embeddings: emb,
            event_texts: vec![String::new(); 4],
            templates: vec![String::new(); 4],
            review_stats: Default::default(),
        };
        let mut la = LogAnomaly::new();
        la.top_k = 1;
        let binding = [];
        let ctx = FitContext {
            sources: &binding,
            target: &prep,
            n_source: 0,
            n_target: 40,
            max_len: 8,
            embed_dim: 8,
            seed: 2,
        };
        la.fit(&ctx);
        let ok = SeqSample {
            events: vec![0, 1, 2, 0, 1, 2, 0, 1],
            label: false,
        };
        let bad = SeqSample {
            events: vec![0, 1, 2, 3, 1, 2, 0, 1],
            label: true,
        };
        let s = la.score(&[ok, bad], &prep);
        assert!(s[0] < 0.5 && s[1] > 0.5, "{s:?}");
    }
}
