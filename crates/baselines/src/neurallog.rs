//! NeuralLog (Le & Zhang, ASE 2021): supervised single-system detection
//! with a Transformer encoder over semantic embeddings of raw log
//! messages (no log parsing in the original; here, raw-template
//! embeddings).
//!
//! The `direct` variant trains on the *source* systems only and is applied
//! to the target unchanged — the paper's "direct application of NeuralLog"
//! ablation for transfer learning (Fig. 5).

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{Linear, TransformerEncoder};
use logsynergy_nn::{loss, ops};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::common::{adamw_epochs, batch_tensor, rows, FitContext, Method};

/// NeuralLog baseline.
pub struct NeuralLog {
    store: ParamStore,
    encoder: Option<TransformerEncoder>,
    head: Option<Linear>,
    max_len: usize,
    embed_dim: usize,
    epochs: usize,
    /// Train on source systems instead of the target (Fig. 5 ablation).
    source_only: bool,
}

impl Default for NeuralLog {
    fn default() -> Self {
        Self::new()
    }
}

impl NeuralLog {
    /// Standard NeuralLog: supervised on the target's training slice.
    pub fn new() -> Self {
        NeuralLog {
            store: ParamStore::new(),
            encoder: None,
            head: None,
            max_len: 10,
            embed_dim: 0,
            epochs: 15,
            source_only: false,
        }
    }

    /// The "direct application" ablation: trained purely on source data.
    pub fn direct_source_only() -> Self {
        NeuralLog {
            source_only: true,
            ..Self::new()
        }
    }

    fn logits(
        &self,
        g: &Graph,
        store: &ParamStore,
        x: logsynergy_nn::Var,
        rng: &mut StdRng,
    ) -> logsynergy_nn::Var {
        let (enc, head) = (self.encoder.as_ref().unwrap(), self.head.as_ref().unwrap());
        let pooled = enc.encode_pooled(g, store, x, rng);
        let l = head.forward(g, store, pooled);
        let b = g.shape_of(l)[0];
        ops::reshape(g, l, &[b])
    }
}

impl Method for NeuralLog {
    fn name(&self) -> &'static str {
        if self.source_only {
            "NeuralLog (direct)"
        } else {
            "NeuralLog"
        }
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.embed_dim = ctx.embed_dim;
        self.max_len = ctx.max_len;
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        // Paper NeuralLog: 1 encoder layer; scaled dims here.
        self.encoder = Some(TransformerEncoder::new(
            &mut store,
            &mut rng,
            "nl.enc",
            self.embed_dim,
            4,
            2 * self.embed_dim,
            1,
            self.max_len,
            0.1,
        ));
        self.head = Some(Linear::new(
            &mut store,
            &mut rng,
            "nl.head",
            self.embed_dim,
            1,
        ));

        let (xrows, labels): (Vec<Vec<f32>>, Vec<f32>) = if self.source_only {
            let mut xr = Vec::new();
            let mut lb = Vec::new();
            for (k, samples) in ctx.source_train() {
                lb.extend(samples.iter().map(|s| if s.label { 1.0 } else { 0.0 }));
                // Each source contributes rows built from its own
                // embedding table.
                xr.extend(rows(
                    &samples,
                    &ctx.sources[k].event_embeddings,
                    self.max_len,
                    self.embed_dim,
                ));
            }
            (xr, lb)
        } else {
            let train = ctx.target_train();
            let labels = train
                .iter()
                .map(|s| if s.label { 1.0 } else { 0.0 })
                .collect();
            (
                rows(
                    &train,
                    &ctx.target.event_embeddings,
                    self.max_len,
                    self.embed_dim,
                ),
                labels,
            )
        };
        if xrows.is_empty() {
            self.store = store;
            return;
        }
        let this = &*self;
        adamw_epochs(
            &mut store,
            xrows.len(),
            this.epochs,
            64,
            5e-3,
            ctx.seed,
            |g, st, idx, r| {
                let x = g.input(batch_tensor(&xrows, idx, this.max_len, this.embed_dim));
                let targets: Vec<f32> = idx.iter().map(|&i| labels[i]).collect();
                let logits = this.logits(g, st, x, r);
                loss::bce_with_logits(g, logits, &targets)
            },
        );
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32> {
        if self.encoder.is_none() {
            return vec![0.0; samples.len()];
        }
        let xrows = rows(
            samples,
            &target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::with_capacity(samples.len());
        for chunk in idx.chunks(256) {
            let g = Graph::inference();
            let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
            let logits = self.logits(&g, &self.store, x, &mut rng);
            out.extend(
                g.value(logits)
                    .data()
                    .iter()
                    .map(|&l| 1.0 / (1.0 + (-l).exp())),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_prepared(n: usize) -> PreparedSystem {
        let mut e0 = vec![0.0; 8];
        e0[0] = 1.0;
        let mut e1 = vec![0.0; 8];
        e1[1] = 1.0;
        let emb = vec![e0, e1];
        let sequences: Vec<SeqSample> = (0..n)
            .map(|i| {
                let anom = i % 5 == 0;
                SeqSample {
                    events: vec![if anom { 1 } else { 0 }; 6],
                    label: anom,
                }
            })
            .collect();
        PreparedSystem {
            system: logsynergy_loggen::SystemId::SystemA,
            sequences,
            event_embeddings: emb,
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        }
    }

    #[test]
    fn supervised_fit_separates_classes() {
        let prep = toy_prepared(100);
        let mut m = NeuralLog::new();
        let binding = [];
        let ctx = FitContext {
            sources: &binding,
            target: &prep,
            n_source: 0,
            n_target: 100,
            max_len: 6,
            embed_dim: 8,
            seed: 5,
        };
        m.fit(&ctx);
        let ok = SeqSample {
            events: vec![0; 6],
            label: false,
        };
        let bad = SeqSample {
            events: vec![1; 6],
            label: true,
        };
        let s = m.score(&[ok, bad], &prep);
        assert!(s[1] > 0.5 && s[0] < 0.5, "{s:?}");
    }

    #[test]
    fn direct_variant_reports_its_name() {
        assert_eq!(NeuralLog::direct_source_only().name(), "NeuralLog (direct)");
        assert_eq!(NeuralLog::new().name(), "NeuralLog");
    }
}
