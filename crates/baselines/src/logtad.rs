//! LogTAD (Han & Yuan, CIKM 2021): unsupervised cross-system anomaly
//! detection via domain adaptation. An LSTM maps normal sequences from
//! source and target systems toward a shared center (Deep SVDD-style)
//! while an adversarial domain classifier (through a GRL) aligns the two
//! domains; anomalies are sequences far from the center.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{Linear, Lstm};
use logsynergy_nn::optim::AdamW;
use logsynergy_nn::{loss, ops, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::common::{batch_tensor, margin_to_score, rows, FitContext, Method};

/// LogTAD baseline.
pub struct LogTAD {
    store: ParamStore,
    lstm: Option<Lstm>,
    proj: Option<Linear>,
    domain: Option<Linear>,
    center: Vec<f32>,
    threshold: f32,
    max_len: usize,
    embed_dim: usize,
    hidden: usize,
    z_dim: usize,
    epochs: usize,
}

impl Default for LogTAD {
    fn default() -> Self {
        Self::new()
    }
}

impl LogTAD {
    /// LogTAD with CPU-scale configuration (paper: two LSTM layers of 128).
    pub fn new() -> Self {
        LogTAD {
            store: ParamStore::new(),
            lstm: None,
            proj: None,
            domain: None,
            center: vec![],
            threshold: 1.0,
            max_len: 10,
            embed_dim: 0,
            hidden: 64,
            z_dim: 32,
            // Deliberately short: with more epochs the SVDD objective
            // collapses unseen inputs onto the center too, destroying the
            // distance signal entirely. One epoch leaves the network close
            // to a random projection, which is what the small-data regime
            // of a new system gives the original method as well.
            epochs: 1,
        }
    }

    fn embed_z(&self, g: &Graph, store: &ParamStore, x: logsynergy_nn::Var) -> logsynergy_nn::Var {
        let (lstm, proj) = (self.lstm.as_ref().unwrap(), self.proj.as_ref().unwrap());
        let (_, h) = lstm.forward(g, store, x);
        proj.forward(g, store, h)
    }

    fn distances(&self, samples: &[SeqSample], embeddings: &[Vec<f32>]) -> Vec<f32> {
        let xrows = rows(samples, embeddings, self.max_len, self.embed_dim);
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut out = Vec::with_capacity(samples.len());
        for chunk in idx.chunks(256) {
            let g = Graph::inference();
            let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
            let z = self.embed_z(&g, &self.store, x);
            let zv = g.value(z);
            for row in zv.data().chunks_exact(self.z_dim) {
                out.push(crate::common::dist(row, &self.center));
            }
        }
        out
    }
}

impl Method for LogTAD {
    fn name(&self) -> &'static str {
        "LogTAD"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.embed_dim = ctx.embed_dim;
        self.max_len = ctx.max_len;
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        self.lstm = Some(Lstm::new(
            &mut store,
            &mut rng,
            "tad.lstm",
            self.embed_dim,
            self.hidden,
        ));
        self.proj = Some(Linear::new(
            &mut store,
            &mut rng,
            "tad.proj",
            self.hidden,
            self.z_dim,
        ));
        self.domain = Some(Linear::new(&mut store, &mut rng, "tad.dom", self.z_dim, 1));

        // Normal data from all systems (unsupervised cross-system).
        let mut xrows: Vec<Vec<f32>> = Vec::new();
        let mut dom: Vec<f32> = Vec::new();
        for (k, samples) in ctx.source_train() {
            let normal: Vec<SeqSample> = samples.into_iter().filter(|s| !s.label).collect();
            xrows.extend(rows(
                &normal,
                &ctx.sources[k].event_embeddings,
                self.max_len,
                self.embed_dim,
            ));
            dom.extend(std::iter::repeat_n(0.0, normal.len()));
        }
        let tgt_normal: Vec<SeqSample> = ctx
            .target_train()
            .into_iter()
            .filter(|s| !s.label)
            .collect();
        xrows.extend(rows(
            &tgt_normal,
            &ctx.target.event_embeddings,
            self.max_len,
            self.embed_dim,
        ));
        dom.extend(std::iter::repeat_n(1.0, tgt_normal.len()));
        if xrows.is_empty() {
            self.store = store;
            return;
        }

        // Initialize the center from a first forward pass (Deep SVDD).
        {
            let g = Graph::inference();
            let idx: Vec<usize> = (0..xrows.len().min(256)).collect();
            let x = g.input(batch_tensor(&xrows, &idx, self.max_len, self.embed_dim));
            let lstm = self.lstm.as_ref().unwrap();
            let proj = self.proj.as_ref().unwrap();
            let (_, h) = lstm.forward(&g, &store, x);
            let z = proj.forward(&g, &store, h);
            let zv = g.value(z);
            let mut c = vec![0.0f32; self.z_dim];
            for row in zv.data().chunks_exact(self.z_dim) {
                for (a, v) in c.iter_mut().zip(row) {
                    *a += v;
                }
            }
            c.iter_mut().for_each(|a| *a /= idx.len() as f32);
            self.center = c;
        }

        let center = Tensor::new(self.center.clone(), &[self.z_dim]);
        let mut opt = AdamW::new(&store, 2e-3);
        let mut order: Vec<usize> = (0..xrows.len()).collect();
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(64) {
                if chunk.len() < 2 {
                    continue;
                }
                let g = Graph::new();
                let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
                let lstm = self.lstm.as_ref().unwrap();
                let proj = self.proj.as_ref().unwrap();
                let domain = self.domain.as_ref().unwrap();
                let (_, h) = lstm.forward(&g, &store, x);
                let z = proj.forward(&g, &store, h);
                // Pull toward the shared center...
                let c = g.input(center.clone());
                let diff = ops::sub(&g, z, c);
                let svdd = ops::mean_all(&g, ops::square(&g, diff));
                // ...while a GRL-coupled domain classifier aligns domains.
                let rev = ops::grl(&g, z, 1.0);
                let dl = domain.forward(&g, &store, rev);
                let b = chunk.len();
                let dflat = ops::reshape(&g, dl, &[b]);
                let dlabels: Vec<f32> = chunk.iter().map(|&i| dom[i]).collect();
                let dloss = loss::bce_with_logits(&g, dflat, &dlabels);
                let total = ops::add(&g, svdd, ops::scale(&g, dloss, 0.1));
                g.backward(total);
                g.write_grads(&mut store);
                store.clip_grad_norm(5.0);
                opt.step(&mut store);
            }
        }
        self.store = store;

        // Threshold: 80th percentile of target-normal train distances.
        // With so little target data the learned "normal ball" is tight and
        // poorly placed, so a large share of unseen-but-normal patterns
        // fall outside it — the paper's LogTAD profile of high recall and
        // very low precision on new systems.
        let mut d = self.distances(&tgt_normal, &ctx.target.event_embeddings);
        if d.is_empty() {
            self.threshold = 1.0;
        } else {
            d.sort_by(|a, b| a.partial_cmp(b).unwrap());
            self.threshold = d[((d.len() as f32 * 0.80) as usize).min(d.len() - 1)].max(1e-6);
        }
    }

    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32> {
        if self.lstm.is_none() || self.center.is_empty() {
            return vec![0.0; samples.len()];
        }
        self.distances(samples, &target.event_embeddings)
            .into_iter()
            .map(|d| margin_to_score(d / self.threshold - 1.0, 6.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_from_center_flags_unseen_patterns() {
        let emb = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]];
        let normal: Vec<SeqSample> = (0..80)
            .map(|_| SeqSample {
                events: vec![0; 6],
                label: false,
            })
            .collect();
        let prep = PreparedSystem {
            system: logsynergy_loggen::SystemId::SystemB,
            sequences: normal.clone(),
            event_embeddings: emb.clone(),
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        };
        let src = PreparedSystem {
            system: logsynergy_loggen::SystemId::Bgl,
            sequences: normal,
            event_embeddings: emb,
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        };
        let mut m = LogTAD::new();
        let sources = [&src];
        let ctx = FitContext {
            sources: &sources,
            target: &prep,
            n_source: 80,
            n_target: 80,
            max_len: 6,
            embed_dim: 4,
            seed: 8,
        };
        m.fit(&ctx);
        let ok = SeqSample {
            events: vec![0; 6],
            label: false,
        };
        let bad = SeqSample {
            events: vec![1; 6],
            label: true,
        };
        let s = m.score(&[ok, bad], &prep);
        assert!(
            s[1] > s[0],
            "unseen pattern should sit farther from center: {s:?}"
        );
        assert!(s[0] < 0.6);
    }
}
