//! PreLog (Le & Zhang, SIGMOD 2024): a pre-trained model for log
//! analytics. Here: self-supervised masked-event pre-training of a
//! Transformer encoder on the *source* systems, followed by prompt-tuning
//! (a small head; the encoder stays frozen) on the target's labeled slice.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{Linear, TransformerEncoder};
use logsynergy_nn::optim::AdamW;
use logsynergy_nn::{loss, ops, Tensor};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::common::{batch_tensor, rows, FitContext, Method};

/// PreLog baseline.
pub struct PreLog {
    store: ParamStore,
    encoder: Option<TransformerEncoder>,
    recon: Option<Linear>,
    head: Option<Linear>,
    max_len: usize,
    embed_dim: usize,
    pretrain_epochs: usize,
    tune_epochs: usize,
}

impl Default for PreLog {
    fn default() -> Self {
        Self::new()
    }
}

impl PreLog {
    /// PreLog with CPU-scale configuration.
    pub fn new() -> Self {
        PreLog {
            store: ParamStore::new(),
            encoder: None,
            recon: None,
            head: None,
            max_len: 10,
            embed_dim: 0,
            pretrain_epochs: 4,
            tune_epochs: 20,
        }
    }
}

impl Method for PreLog {
    fn name(&self) -> &'static str {
        "PreLog"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.embed_dim = ctx.embed_dim;
        self.max_len = ctx.max_len;
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        let encoder = TransformerEncoder::new(
            &mut store,
            &mut rng,
            "pre.enc",
            self.embed_dim,
            4,
            2 * self.embed_dim,
            1,
            self.max_len,
            0.1,
        );
        let recon = Linear::new(
            &mut store,
            &mut rng,
            "pre.recon",
            self.embed_dim,
            self.embed_dim,
        );
        let head = Linear::new(&mut store, &mut rng, "pre.head", self.embed_dim, 1);

        // ------------ pre-training on source systems (self-supervised) ----
        let mut pre_rows: Vec<Vec<f32>> = Vec::new();
        for (k, samples) in ctx.source_train() {
            pre_rows.extend(rows(
                &samples,
                &ctx.sources[k].event_embeddings,
                self.max_len,
                self.embed_dim,
            ));
        }
        if !pre_rows.is_empty() {
            let mut opt = AdamW::new(&store, 2e-3);
            let mut order: Vec<usize> = (0..pre_rows.len()).collect();
            for _ in 0..self.pretrain_epochs {
                order.shuffle(&mut rng);
                for chunk in order.chunks(64) {
                    if chunk.len() < 2 {
                        continue;
                    }
                    let d = self.embed_dim;
                    let t = self.max_len;
                    let mask_pos = rng.gen_range(0..t);
                    // Input with the masked position zeroed; target is the
                    // original embedding at that position.
                    let b = chunk.len();
                    let mut x = vec![0.0f32; b * t * d];
                    let mut target = vec![0.0f32; b * d];
                    for (r, &i) in chunk.iter().enumerate() {
                        x[r * t * d..(r + 1) * t * d].copy_from_slice(&pre_rows[i]);
                        target[r * d..(r + 1) * d]
                            .copy_from_slice(&pre_rows[i][mask_pos * d..(mask_pos + 1) * d]);
                        x[(r * t + mask_pos) * d..(r * t + mask_pos + 1) * d].fill(0.0);
                    }
                    let g = Graph::new();
                    let xv = g.input(Tensor::new(x, &[b, t, d]));
                    let enc = encoder.forward(&g, &store, xv, &mut rng);
                    let at = ops::time_slice(&g, enc, mask_pos);
                    let pred = recon.forward(&g, &store, at);
                    let l = loss::mse(&g, pred, &Tensor::new(target, &[b, d]));
                    g.backward(l);
                    g.write_grads(&mut store);
                    store.clip_grad_norm(5.0);
                    opt.step(&mut store);
                }
            }
        }

        // ------------- prompt tuning on the target (encoder frozen) -------
        let train = ctx.target_train();
        if !train.is_empty() {
            let labels: Vec<f32> = train
                .iter()
                .map(|s| if s.label { 1.0 } else { 0.0 })
                .collect();
            let xrows = rows(
                &train,
                &ctx.target.event_embeddings,
                self.max_len,
                self.embed_dim,
            );
            let mut opt = AdamW::new(&store, 2e-2);
            let mut order: Vec<usize> = (0..train.len()).collect();
            for _ in 0..self.tune_epochs {
                order.shuffle(&mut rng);
                for chunk in order.chunks(64) {
                    if chunk.len() < 2 {
                        continue;
                    }
                    let g = Graph::new();
                    let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
                    let pooled = encoder.encode_pooled(&g, &store, x, &mut rng);
                    let logits = head.forward(&g, &store, pooled);
                    let b = chunk.len();
                    let flat = ops::reshape(&g, logits, &[b]);
                    let targets: Vec<f32> = chunk.iter().map(|&i| labels[i]).collect();
                    let l = loss::bce_with_logits(&g, flat, &targets);
                    g.backward(l);
                    g.write_grads(&mut store);
                    // Prompt tuning: only the head moves; the pre-trained
                    // encoder (and recon head) stay frozen.
                    let ids: Vec<_> = store.ids().collect();
                    for id in ids {
                        if !store.name(id).starts_with("pre.head") {
                            store.grad_mut(id).scale_assign(0.0);
                        }
                    }
                    opt.step(&mut store);
                }
            }
        }

        self.encoder = Some(encoder);
        self.recon = Some(recon);
        self.head = Some(head);
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32> {
        let (Some(encoder), Some(head)) = (self.encoder.as_ref(), self.head.as_ref()) else {
            return vec![0.0; samples.len()];
        };
        let xrows = rows(
            samples,
            &target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut rng = StdRng::seed_from_u64(0);
        let mut out = Vec::with_capacity(samples.len());
        for chunk in idx.chunks(256) {
            let g = Graph::inference();
            let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
            let pooled = encoder.encode_pooled(&g, &self.store, x, &mut rng);
            let logits = head.forward(&g, &self.store, pooled);
            out.extend(
                g.value(logits)
                    .data()
                    .iter()
                    .map(|&l| 1.0 / (1.0 + (-l).exp())),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(system: logsynergy_loggen::SystemId, n: usize, rate: usize) -> PreparedSystem {
        let emb = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]];
        let sequences: Vec<SeqSample> = (0..n)
            .map(|i| {
                let anom = rate > 0 && i % rate == 0;
                SeqSample {
                    events: vec![if anom { 1 } else { 0 }; 6],
                    label: anom,
                }
            })
            .collect();
        PreparedSystem {
            system,
            sequences,
            event_embeddings: emb,
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        }
    }

    #[test]
    fn pretrain_then_tune_detects_target_anomalies() {
        use logsynergy_loggen::SystemId;
        let s1 = prep(SystemId::Bgl, 60, 4);
        let tgt = prep(SystemId::SystemB, 80, 5);
        let mut m = PreLog::new();
        let sources = [&s1];
        let ctx = FitContext {
            sources: &sources,
            target: &tgt,
            n_source: 60,
            n_target: 80,
            max_len: 6,
            embed_dim: 4,
            seed: 7,
        };
        m.fit(&ctx);
        let ok = SeqSample {
            events: vec![0; 6],
            label: false,
        };
        let bad = SeqSample {
            events: vec![1; 6],
            label: true,
        };
        let s = m.score(&[ok, bad], &tgt);
        assert!(s[1] > s[0], "{s:?}");
    }
}
