//! LogTransfer (Chen et al., ISSRE 2020): supervised cross-system transfer
//! learning. A shared LSTM is trained on the labeled *source* systems;
//! for the target, the shared network is frozen and only fully-connected
//! layers are fine-tuned on the target's small labeled slice.

use logsynergy::data::{PreparedSystem, SeqSample};
use logsynergy_nn::graph::{Graph, ParamStore};
use logsynergy_nn::layers::{Linear, Lstm};
use logsynergy_nn::optim::AdamW;
use logsynergy_nn::{loss, ops};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::common::{batch_tensor, rows, FitContext, Method};

/// LogTransfer baseline.
pub struct LogTransfer {
    store: ParamStore,
    lstm: Option<Lstm>,
    src_head: Option<Linear>,
    tgt_head: Option<Linear>,
    max_len: usize,
    embed_dim: usize,
    hidden: usize,
    src_epochs: usize,
    tgt_epochs: usize,
}

impl Default for LogTransfer {
    fn default() -> Self {
        Self::new()
    }
}

impl LogTransfer {
    /// LogTransfer with CPU-scale configuration (paper: two LSTM layers).
    pub fn new() -> Self {
        LogTransfer {
            store: ParamStore::new(),
            lstm: None,
            src_head: None,
            tgt_head: None,
            max_len: 10,
            embed_dim: 0,
            hidden: 64,
            src_epochs: 6,
            tgt_epochs: 10,
        }
    }
}

impl Method for LogTransfer {
    fn name(&self) -> &'static str {
        "LogTransfer"
    }

    fn fit(&mut self, ctx: &FitContext<'_>) {
        self.embed_dim = ctx.embed_dim;
        self.max_len = ctx.max_len;
        let mut rng = StdRng::seed_from_u64(ctx.seed);
        let mut store = ParamStore::new();
        let lstm = Lstm::new(
            &mut store,
            &mut rng,
            "lt.shared",
            self.embed_dim,
            self.hidden,
        );
        let src_head = Linear::new(&mut store, &mut rng, "lt.src_head", self.hidden, 1);
        let tgt_head = Linear::new(&mut store, &mut rng, "lt.tgt_head", self.hidden, 1);

        // Stage 1: shared network + source head on labeled source data.
        let mut xrows: Vec<Vec<f32>> = Vec::new();
        let mut labels: Vec<f32> = Vec::new();
        for (k, samples) in ctx.source_train() {
            labels.extend(samples.iter().map(|s| if s.label { 1.0 } else { 0.0 }));
            xrows.extend(rows(
                &samples,
                &ctx.sources[k].event_embeddings,
                self.max_len,
                self.embed_dim,
            ));
        }
        let run_stage = |xr: &[Vec<f32>],
                         lb: &[f32],
                         epochs: usize,
                         freeze_shared: bool,
                         use_tgt_head: bool,
                         store: &mut ParamStore,
                         rng: &mut StdRng| {
            if xr.is_empty() {
                return;
            }
            let mut opt = AdamW::new(store, 2e-3);
            let mut order: Vec<usize> = (0..xr.len()).collect();
            for _ in 0..epochs {
                order.shuffle(rng);
                for chunk in order.chunks(64) {
                    if chunk.len() < 2 {
                        continue;
                    }
                    let g = Graph::new();
                    let x = g.input(batch_tensor(xr, chunk, self.max_len, self.embed_dim));
                    let (_, h) = lstm.forward(&g, store, x);
                    let head = if use_tgt_head { &tgt_head } else { &src_head };
                    let logits = head.forward(&g, store, h);
                    let b = chunk.len();
                    let flat = ops::reshape(&g, logits, &[b]);
                    let targets: Vec<f32> = chunk.iter().map(|&i| lb[i]).collect();
                    let l = loss::bce_with_logits(&g, flat, &targets);
                    g.backward(l);
                    g.write_grads(store);
                    if freeze_shared {
                        let ids: Vec<_> = store.ids().collect();
                        for id in ids {
                            if store.name(id).starts_with("lt.shared") {
                                store.grad_mut(id).scale_assign(0.0);
                            }
                        }
                    }
                    store.clip_grad_norm(5.0);
                    opt.step(store);
                }
            }
        };
        run_stage(
            &xrows,
            &labels,
            self.src_epochs,
            false,
            false,
            &mut store,
            &mut rng,
        );

        // Transfer: the target head starts from the source-trained head's
        // weights (this is the knowledge LogTransfer carries over), then
        // fine-tunes on the target slice with the shared LSTM frozen.
        let ids: Vec<_> = store.ids().collect();
        let src_w: Vec<_> = ids
            .iter()
            .filter(|&&id| store.name(id).starts_with("lt.src_head"))
            .map(|&id| store.value(id).clone())
            .collect();
        let tgt_ids: Vec<_> = ids
            .iter()
            .filter(|&&id| store.name(id).starts_with("lt.tgt_head"))
            .copied()
            .collect();
        for (id, w) in tgt_ids.into_iter().zip(src_w) {
            *store.value_mut(id) = w;
        }

        // Stage 2: freeze the shared LSTM; fine-tune the target head only.
        let train = ctx.target_train();
        let tgt_labels: Vec<f32> = train
            .iter()
            .map(|s| if s.label { 1.0 } else { 0.0 })
            .collect();
        let tgt_rows = rows(
            &train,
            &ctx.target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        run_stage(
            &tgt_rows,
            &tgt_labels,
            self.tgt_epochs,
            true,
            true,
            &mut store,
            &mut rng,
        );

        self.lstm = Some(lstm);
        self.src_head = Some(src_head);
        self.tgt_head = Some(tgt_head);
        self.store = store;
    }

    fn score(&self, samples: &[SeqSample], target: &PreparedSystem) -> Vec<f32> {
        let (Some(lstm), Some(head)) = (self.lstm.as_ref(), self.tgt_head.as_ref()) else {
            return vec![0.0; samples.len()];
        };
        let xrows = rows(
            samples,
            &target.event_embeddings,
            self.max_len,
            self.embed_dim,
        );
        let idx: Vec<usize> = (0..samples.len()).collect();
        let mut out = Vec::with_capacity(samples.len());
        for chunk in idx.chunks(256) {
            let g = Graph::inference();
            let x = g.input(batch_tensor(&xrows, chunk, self.max_len, self.embed_dim));
            let (_, h) = lstm.forward(&g, &self.store, x);
            let logits = head.forward(&g, &self.store, h);
            out.extend(
                g.value(logits)
                    .data()
                    .iter()
                    .map(|&l| 1.0 / (1.0 + (-l).exp())),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn prep(system: logsynergy_loggen::SystemId, n: usize, rate: usize) -> PreparedSystem {
        let emb = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]];
        let sequences: Vec<SeqSample> = (0..n)
            .map(|i| {
                let anom = rate > 0 && i % rate == 0;
                SeqSample {
                    events: vec![if anom { 1 } else { 0 }; 6],
                    label: anom,
                }
            })
            .collect();
        PreparedSystem {
            system,
            sequences,
            event_embeddings: emb,
            event_texts: vec![String::new(); 2],
            templates: vec![String::new(); 2],
            review_stats: Default::default(),
        }
    }

    #[test]
    fn transfer_with_shared_vocabulary_succeeds() {
        // Source and target share embeddings here, so the shared LSTM's
        // knowledge applies directly — LogTransfer's favourable case.
        use logsynergy_loggen::SystemId;
        let src = prep(SystemId::Bgl, 100, 4);
        let tgt = prep(SystemId::Thunderbird, 60, 6);
        let mut m = LogTransfer::new();
        let sources = [&src];
        let ctx = FitContext {
            sources: &sources,
            target: &tgt,
            n_source: 100,
            n_target: 60,
            max_len: 6,
            embed_dim: 4,
            seed: 9,
        };
        m.fit(&ctx);
        let ok = SeqSample {
            events: vec![0; 6],
            label: false,
        };
        let bad = SeqSample {
            events: vec![1; 6],
            label: true,
        };
        let s = m.score(&[ok, bad], &tgt);
        assert!(s[1] > 0.5 && s[0] < 0.5, "{s:?}");
    }
}
