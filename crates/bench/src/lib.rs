//! # logsynergy-bench
//!
//! Host crate for the workspace's runnable examples, cross-crate
//! integration tests, and the benchmark harness that regenerates every
//! table and figure of the paper (see `benches/`). Results are printed in
//! the paper's layouts and persisted as JSON under `results/`.

#![warn(missing_docs)]

use std::path::PathBuf;

/// Directory experiment benches write their JSON results into.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir).expect("cannot create results dir");
    dir
}

/// Writes a serializable result next to the printed table.
pub fn write_result<T: serde::Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    std::fs::write(&path, serde_json::to_string_pretty(value).unwrap())
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", path.display()));
    println!("[saved {}]", path.display());
}

/// True when the harness should run in quick mode (smoke runs of the
/// experiment benches): set `LOGSYNERGY_BENCH_QUICK=1`.
pub fn quick_mode() -> bool {
    std::env::var("LOGSYNERGY_BENCH_QUICK")
        .map(|v| v == "1")
        .unwrap_or(false)
}
