//! Fig. 5 regenerator: ablation of LEI, SUFE, and transfer learning on
//! all six targets.

use logsynergy_bench::{quick_mode, write_result};
use logsynergy_eval::experiments::fig5;
use logsynergy_eval::report::render_ablation;
use logsynergy_eval::ExperimentConfig;
use logsynergy_loggen::SystemId;
use std::time::Instant;

fn main() {
    let cfg = ExperimentConfig::quick();
    let targets: Vec<SystemId> = if quick_mode() {
        vec![SystemId::Thunderbird, SystemId::SystemB]
    } else {
        SystemId::ALL.to_vec()
    };
    let t0 = Instant::now();
    let results = fig5(&targets, &cfg);
    println!("{}", render_ablation(&results));
    println!("[elapsed {:.1}s]", t0.elapsed().as_secs_f64());
    write_result("fig5_ablation", &results);
}
