//! Telemetry overhead contract: the instrumented serving pipeline with the
//! runtime kill-switch ON must stay within a small single-digit percent of
//! the same run with telemetry OFF.
//!
//! Both arms run the same Fig. 7 dataflow (train once, stream the target's
//! live feed through the default serving configuration). Each repetition
//! measures both arms back to back and contributes one *paired* on/off
//! throughput ratio; the contract is judged on the median of those ratios.
//! Two layers of noise control, because a single serving run is short
//! (hundreds of ms) and shared-machine interference is several times the
//! true overhead:
//!
//! - an arm's measurement is the **best of three** consecutive runs —
//!   interference is one-sided (a neighbour can only slow a run down), so
//!   the fastest of a few tries is the least-contaminated estimate;
//! - pairing + per-repetition order alternation subtracts the slow drift
//!   (thermal, page cache, scheduler mood) both arms share, and keeps
//!   either arm from always drawing the warmer slot.
//!
//! The result is persisted to `results/telemetry_overhead.json` for CI.

use logsynergy::api::Pipeline;
use logsynergy_bench::{quick_mode, write_result};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, SystemId};
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MemorySink, ModelScorer, PipelineConfig, RawLog,
};
use serde::Serialize;

/// Throughput reference from the batched-serving PR (results/
/// fig7_pipeline_throughput.json at the time this bench was added), kept in
/// the artifact so regressions are visible against a fixed anchor.
const PR2_REFERENCE_LOGS_PER_SEC: f64 = 51_672.0;

/// The contract ceiling checked by CI (fraction, not percent).
const MAX_OVERHEAD: f64 = 0.02;

#[derive(Serialize)]
struct Overhead {
    repetitions: usize,
    logs_per_run: u64,
    off_logs_per_sec: Vec<f64>,
    on_logs_per_sec: Vec<f64>,
    paired_on_over_off: Vec<f64>,
    median_off_logs_per_sec: f64,
    median_on_logs_per_sec: f64,
    overhead_fraction: f64,
    max_overhead_fraction: f64,
    pr2_reference_logs_per_sec: f64,
    within_contract: bool,
}

fn median(xs: &[f64]) -> f64 {
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.total_cmp(b));
    let n = v.len();
    if n % 2 == 1 {
        v[n / 2]
    } else {
        0.5 * (v[n / 2 - 1] + v[n / 2])
    }
}

fn main() {
    let scale = if quick_mode() { 0.006 } else { 0.02 };
    let reps = if quick_mode() { 3 } else { 9 };
    println!("training a model for System B, then timing its live stream…");
    let mut p = Pipeline::scaled();
    p.train_config.epochs = 4;
    p.train_config.n_source = 800;
    p.train_config.n_target = 200;
    let src_a = p.prepare(&datasets::system_a().generate_with(scale / 2.5, 4.0));
    let src_c = p.prepare(&datasets::system_c().generate_with(scale, 4.0));
    let history = datasets::system_b().generate_with(scale, 4.0);
    let target = p.prepare(&history);
    let (model, _) = p.fit(&[&src_a, &src_c], &target);

    let split_at = p.train_config.n_target * 5 + 10;
    let (warm, live) = history.records.split_at(split_at);
    let mut vectorizer = EventVectorizer::new(
        SystemId::SystemB,
        p.model_config.embed_dim,
        LeiConfig::default(),
    );
    vectorizer.warm_start(warm.iter().map(|r| r.message.as_str()));
    let source: Vec<RawLog> = live
        .iter()
        .map(|r| RawLog {
            system: "b".into(),
            timestamp: r.timestamp,
            message: r.message.clone(),
        })
        .collect();
    let scorer = ModelScorer::new(model);
    let run = || {
        let sink = MemorySink::new();
        run_pipeline_with(
            source.clone(),
            vectorizer.clone(),
            scorer.clone(),
            sink,
            PipelineConfig::default(),
        )
    };

    // Warm the worker pool, pattern library paths, and page cache before
    // any timed repetition (identically for both arms).
    logsynergy_telemetry::set_enabled(false);
    let warmup = run();
    println!(
        "warm-up: {} logs, {} windows, {:.0} logs/s",
        warmup.logs, warmup.windows, warmup.throughput
    );

    let mut off = Vec::with_capacity(reps);
    let mut on = Vec::with_capacity(reps);
    let mut ratios = Vec::with_capacity(reps);
    // Best-of-three: interference only ever slows a run, so the fastest
    // try is the cleanest estimate of the arm's true throughput.
    let timed = |enable: bool| {
        logsynergy_telemetry::set_enabled(enable);
        (0..3).map(|_| run().throughput).fold(f64::MIN, f64::max)
    };
    for rep in 0..reps {
        // Both arms back to back, order flipped every repetition: within a
        // pair the machine state is as similar as it gets, and alternation
        // keeps either arm from always drawing the warmer slot.
        let (t_off, t_on) = if rep % 2 == 0 {
            let t_off = timed(false);
            (t_off, timed(true))
        } else {
            let t_on = timed(true);
            (timed(false), t_on)
        };
        println!(
            "  rep {rep}: off {:>8.0} logs/s   on {:>8.0} logs/s   on/off {:.3}",
            t_off,
            t_on,
            t_on / t_off
        );
        off.push(t_off);
        on.push(t_on);
        ratios.push(t_on / t_off);
    }
    logsynergy_telemetry::set_enabled(true);

    let m_off = median(&off);
    let m_on = median(&on);
    // Judged on paired ratios: the median pair is immune to the between-
    // repetition throughput drift both arms share.
    let overhead = 1.0 - median(&ratios);
    let out = Overhead {
        repetitions: reps,
        logs_per_run: warmup.logs,
        off_logs_per_sec: off,
        on_logs_per_sec: on,
        paired_on_over_off: ratios,
        median_off_logs_per_sec: m_off,
        median_on_logs_per_sec: m_on,
        overhead_fraction: overhead,
        max_overhead_fraction: MAX_OVERHEAD,
        pr2_reference_logs_per_sec: PR2_REFERENCE_LOGS_PER_SEC,
        within_contract: overhead <= MAX_OVERHEAD,
    };
    println!(
        "median: off {:.0} logs/s, on {:.0} logs/s → overhead {:+.2}% (contract ≤ {:.0}%)",
        m_off,
        m_on,
        100.0 * overhead,
        100.0 * MAX_OVERHEAD
    );
    write_result("telemetry_overhead", &out);
    assert!(
        out.within_contract,
        "telemetry overhead {:.2}% exceeds the {:.0}% contract",
        100.0 * overhead,
        100.0 * MAX_OVERHEAD
    );
}
