//! Fig. 6 regenerator: the four cross-group transfers of §V (Lesson
//! Learned) — rich→simple succeeds, simple→rich does not.

use logsynergy_bench::write_result;
use logsynergy_eval::experiments::fig6;
use logsynergy_eval::report::render_transfers;
use logsynergy_eval::ExperimentConfig;
use std::time::Instant;

fn main() {
    let cfg = ExperimentConfig::quick();
    let t0 = Instant::now();
    let results = fig6(&cfg);
    println!("{}", render_transfers(&results));
    println!("[elapsed {:.1}s]", t0.elapsed().as_secs_f64());
    write_result("fig6_lessons", &results);
}
