//! Quantized-scoring benchmark (`quant` feature): measures the model
//! tier of the Fig. 7 serving stack across its three implementations —
//! the tape-backed f32 session (the Fig. 7 baseline), the fused
//! graph-free f32 plan, and the calibrated int8 path — then sweeps the
//! full pipeline quant-on/off across worker counts. Emits
//! `results/quant.json`.
//!
//! Gates asserted here:
//! - int8 model-tier throughput ≥ 5× the Fig. 7 run's recorded model
//!   tier (`results/fig7_pipeline_throughput.json`);
//! - verdict agreement with the f32 detector ≥ 99.5% and |ΔF1| ≤ 0.005
//!   on a Table IV/V-shaped held-out corpus.
//!
//! Run with `cargo bench -p logsynergy-bench --features quant --bench
//! quant_scoring`. Honors `LOGSYNERGY_BENCH_QUICK=1`.

use std::sync::Arc;
use std::time::Instant;

use logsynergy::api::Pipeline;
use logsynergy::detector::{InferenceSession, THRESHOLD};
use logsynergy::infer::InferencePlan;
use logsynergy::quant::QuantizedModel;
use logsynergy_bench::{quick_mode, write_result};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, SystemId};
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MemorySink, ModelScorer, PipelineConfig, QuantScorer,
    RawLog,
};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    workers: usize,
    quant: bool,
    logs: u64,
    logs_per_sec: f64,
}

#[derive(Serialize)]
struct QuantReport {
    qgemm_tier: String,
    eval_windows: usize,
    verdict_agreement: f64,
    f1_f32: f64,
    f1_int8: f64,
    f1_delta: f64,
    tape_windows_per_sec: f64,
    fused_f32_windows_per_sec: f64,
    int8_windows_per_sec: f64,
    speedup_fused_vs_tape: f64,
    speedup_int8_vs_tape: f64,
    fig7_model_tier_windows_per_sec: f64,
    speedup_int8_vs_fig7_model_tier: f64,
    /// Full-pipeline quant-on/off × workers sweep (logs/s).
    pipeline_sweep: Vec<SweepPoint>,
}

fn f1(pred: &[bool], truth: &[bool]) -> f64 {
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fnd = 0.0;
    for (&p, &t) in pred.iter().zip(truth) {
        match (p, t) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fnd += 1.0,
            _ => {}
        }
    }
    let prec = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let rec = if tp + fnd > 0.0 { tp / (tp + fnd) } else { 0.0 };
    if prec + rec > 0.0 {
        2.0 * prec * rec / (prec + rec)
    } else {
        0.0
    }
}

/// The Fig. 7 run's model-tier rate: windows the model scored per second
/// of end-to-end wall clock, from the recorded results.
fn fig7_model_tier_rate() -> Option<f64> {
    let path = logsynergy_bench::results_dir().join("fig7_pipeline_throughput.json");
    let json = serde_json::parse_value(&std::fs::read_to_string(path).ok()?).ok()?;
    let fields = json.as_object()?;
    let logs = serde::field(fields, "logs")?.as_f64()?;
    let model_calls = serde::field(fields, "model_calls")?.as_f64()?;
    let tput = serde::field(fields, "throughput_logs_per_sec")?.as_f64()?;
    Some(tput * model_calls / logs.max(1.0))
}

/// Best-of-`reps` throughput in windows/s for `f`, which scores
/// `windows` windows per call.
fn best_wps(reps: usize, windows: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    windows as f64 / best
}

fn main() {
    let quick = quick_mode();
    let scale = if quick { 0.006 } else { 0.02 };
    let reps = if quick { 3 } else { 7 };

    // Fig. 7 recipe: train for System B on its group.
    println!("training a model for System B…");
    let mut p = Pipeline::scaled();
    p.train_config.epochs = 4;
    p.train_config.n_source = 800;
    p.train_config.n_target = 200;
    let src_a = p.prepare(&datasets::system_a().generate_with(scale / 2.5, 4.0));
    let src_c = p.prepare(&datasets::system_c().generate_with(scale, 4.0));
    let history = datasets::system_b().generate_with(scale, 4.0);
    let target = p.prepare(&history);
    let (model, _) = p.fit(&[&src_a, &src_c], &target);
    let model = Arc::new(model);

    // Table IV/V-shaped eval corpus: calibrate on the training sliver,
    // evaluate on held-out windows.
    let (calib, test) = target.split(p.train_config.n_target, 1500);
    let truth: Vec<bool> = test.iter().map(|s| s.label).collect();
    let calib_windows: Vec<&[u32]> = calib.iter().map(|s| s.events.as_slice()).collect();
    let windows: Vec<&[u32]> = test.iter().map(|s| s.events.as_slice()).collect();
    let table = &target.event_embeddings;

    let plan = InferencePlan::from_model(&model);
    let calibration = plan.calibrate(&calib_windows, table);
    let q = QuantizedModel::from_plan(&plan, &calibration);
    let mut session = InferenceSession::new(model.clone());

    // ---- model-tier throughput: tape vs fused f32 vs int8 --------------
    println!("model tier ({} windows per call):", windows.len());
    let tape_wps = best_wps(reps, windows.len(), || {
        std::hint::black_box(session.score_windows(&windows, table));
    });
    println!("  tape f32 session       {tape_wps:>9.0} windows/s");
    let fused_wps = best_wps(reps, windows.len(), || {
        std::hint::black_box(plan.score_windows(&windows, table));
    });
    println!("  fused f32 plan         {fused_wps:>9.0} windows/s");
    let int8_wps = best_wps(reps, windows.len(), || {
        std::hint::black_box(q.score_windows(&windows, table));
    });
    println!(
        "  int8 ({:<12})     {int8_wps:>9.0} windows/s",
        logsynergy_nn::kernels::qgemm::qgemm_tier_name()
    );

    // ---- accuracy gate --------------------------------------------------
    let f32_scores = session.score_windows(&windows, table);
    let q_scores = q.score_windows(&windows, table);
    let f32_pred: Vec<bool> = f32_scores.iter().map(|&s| s > THRESHOLD).collect();
    let q_pred: Vec<bool> = q_scores.iter().map(|&s| s > THRESHOLD).collect();
    let agree = f32_pred.iter().zip(&q_pred).filter(|(a, b)| a == b).count();
    let agreement = agree as f64 / f32_pred.len().max(1) as f64;
    let f1_f32 = f1(&f32_pred, &truth);
    let f1_int8 = f1(&q_pred, &truth);
    println!(
        "accuracy: agreement {:.2}%  F1 f32 {:.4}  int8 {:.4}",
        100.0 * agreement,
        f1_f32,
        f1_int8
    );
    assert!(
        agreement >= 0.995,
        "verdict agreement {agreement:.4} below the 99.5% gate"
    );
    assert!(
        (f1_f32 - f1_int8).abs() <= 0.005,
        "|ΔF1| {:.4} above the 0.005 gate",
        (f1_f32 - f1_int8).abs()
    );

    // ---- throughput gate vs the recorded Fig. 7 model tier --------------
    let fig7_rate = fig7_model_tier_rate().unwrap_or(tape_wps);
    let speedup_vs_fig7 = int8_wps / fig7_rate.max(1e-9);
    println!("int8 vs Fig. 7 model tier ({fig7_rate:.0} windows/s): {speedup_vs_fig7:.1}x");
    assert!(
        speedup_vs_fig7 >= 5.0,
        "int8 model tier {int8_wps:.0} w/s is below 5x the Fig. 7 model \
         tier ({fig7_rate:.0} w/s)"
    );

    // ---- full pipeline: quant on/off × workers ---------------------------
    let split_at = p.train_config.n_target * 5 + 10;
    let (warm, live) = history
        .records
        .split_at(split_at.min(history.records.len()));
    let mut vectorizer = EventVectorizer::new(
        SystemId::SystemB,
        p.model_config.embed_dim,
        LeiConfig::default(),
    );
    vectorizer.warm_start(warm.iter().map(|r| r.message.as_str()));
    let source: Vec<RawLog> = live
        .iter()
        .map(|r| RawLog {
            system: "b".into(),
            timestamp: r.timestamp,
            message: r.message.clone(),
        })
        .collect();
    // Calibrate the serving scorer against the serving embedding table.
    let mut cal = vectorizer.clone();
    let warm_ids: Vec<u32> = warm.iter().map(|r| cal.ingest(&r.message)).collect();
    let serve_calib: Vec<&[u32]> = warm_ids
        .chunks(10)
        .filter(|c| c.len() == 10)
        .take(256)
        .collect();
    let quant_scorer = QuantScorer::calibrated(&model, &serve_calib, cal.table());
    let f32_scorer = ModelScorer::shared(model.clone());

    println!("pipeline sweep ({} live logs per run):", source.len());
    let worker_axis: &[usize] = if quick { &[4] } else { &[1, 2, 4] };
    let mut pipeline_sweep = Vec::new();
    for &workers in worker_axis {
        for quant in [false, true] {
            let config = PipelineConfig {
                partitions: workers,
                ..PipelineConfig::default()
            };
            let sink = MemorySink::new();
            let s = if quant {
                run_pipeline_with(
                    source.clone(),
                    vectorizer.clone(),
                    quant_scorer.clone(),
                    sink,
                    config,
                )
            } else {
                run_pipeline_with(
                    source.clone(),
                    vectorizer.clone(),
                    f32_scorer.clone(),
                    sink,
                    config,
                )
            };
            println!(
                "  {} worker(s), {:<4}  {:>9.0} logs/s",
                workers,
                if quant { "int8" } else { "f32" },
                s.throughput
            );
            pipeline_sweep.push(SweepPoint {
                workers,
                quant,
                logs: s.logs,
                logs_per_sec: s.throughput,
            });
        }
    }

    let report = QuantReport {
        qgemm_tier: logsynergy_nn::kernels::qgemm::qgemm_tier_name().to_string(),
        eval_windows: windows.len(),
        verdict_agreement: agreement,
        f1_f32,
        f1_int8,
        f1_delta: (f1_f32 - f1_int8).abs(),
        tape_windows_per_sec: tape_wps,
        fused_f32_windows_per_sec: fused_wps,
        int8_windows_per_sec: int8_wps,
        speedup_fused_vs_tape: fused_wps / tape_wps.max(1e-9),
        speedup_int8_vs_tape: int8_wps / tape_wps.max(1e-9),
        fig7_model_tier_windows_per_sec: fig7_rate,
        speedup_int8_vs_fig7_model_tier: speedup_vs_fig7,
        pipeline_sweep,
    };
    write_result("quant", &report);
}
