//! Table III regenerator: dataset statistics at the experiment scale,
//! printed next to the paper's full-scale numbers.

use logsynergy_bench::{quick_mode, write_result};
use logsynergy_eval::experiments::table3;
use logsynergy_eval::report::render_table3;
use logsynergy_eval::ExperimentConfig;
use std::time::Instant;

fn main() {
    let cfg = if quick_mode() {
        ExperimentConfig {
            logs_per_dataset: 4_000,
            ..ExperimentConfig::quick()
        }
    } else {
        ExperimentConfig::default()
    };
    let t0 = Instant::now();
    let rows = table3(&cfg);
    println!("{}", render_table3(&rows));
    println!("[elapsed {:.1}s]", t0.elapsed().as_secs_f64());
    write_result("table3_datasets", &rows);
}
