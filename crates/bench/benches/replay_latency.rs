//! Replay-latency harness for the durable (`--wal-dir`) ingest path:
//! replays a recorded stream through the write-ahead-logged pipeline on
//! a deterministic schedule (`logsynergy_loggen::replay`) at several
//! speed multipliers, and publishes the producer-side ingest latency
//! (append + flush + enqueue, i.e. the cost of the durability
//! acknowledgement) as p50/p95/p99 against the offered load.
//!
//! Results land in `results/replay_latency.json`.

use std::time::{Duration, Instant};

use logsynergy_bench::{quick_mode, write_result};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{ReplaySchedule, ReplayShape, SystemId};
use logsynergy_pipeline::{
    start_durable, DurablePipeline, EventVectorizer, MemorySink, PipelineConfig, RawLog,
    SequenceScorer, WalOptions,
};
use serde::Serialize;

const VOCAB: [&str; 8] = [
    "session opened for user root",
    "connection from remote peer closed abruptly after handshake timeout",
    "disk write latency elevated beyond configured threshold on volume data1",
    "packet responder terminating early",
    "cache eviction pass completed",
    "replica placement policy satisfied for block",
    "authentication failure reported by gateway node",
    "heartbeat missed twice across consecutive intervals",
];

/// Cheap deterministic scorer — the measurement is the ingest path, not
/// the model tier; the workers only need to keep the queue draining.
#[derive(Clone)]
struct TableScorer;
impl SequenceScorer for TableScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut acc = 0.0f32;
        for &e in events {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        (acc - acc.floor()).clamp(0.0, 1.0)
    }
}

fn vectorizer() -> EventVectorizer {
    let mut v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
    v.warm_start(VOCAB.iter().copied());
    v
}

fn stream(n: usize) -> Vec<RawLog> {
    (0..n)
        .map(|i| RawLog {
            system: "replay".into(),
            timestamp: i as u64,
            message: VOCAB[(i * 7 + i / 4) % VOCAB.len()].to_string(),
        })
        .collect()
}

#[derive(Serialize)]
struct ReplayPoint {
    shape: String,
    speed: u32,
    offered_logs_per_sec: f64,
    logs: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
    drain_ms: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn run(source: &[RawLog], schedule: ReplaySchedule, speed: u32) -> ReplayPoint {
    let dir = std::env::temp_dir().join(format!(
        "lswal-replay-{}-{}-{speed}",
        schedule.shape.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = PipelineConfig {
        partitions: 1,
        wal: Some(WalOptions {
            // Small segments so every replay run crosses roll boundaries.
            segment_max_bytes: 256 * 1024,
            ..WalOptions::at(dir.clone())
        }),
        ..PipelineConfig::default()
    };
    let durable = start_durable(vectorizer(), TableScorer, MemorySink::new(), &config)
        .expect("fresh log directory must open");

    let mut latencies_us: Vec<u64> = Vec::with_capacity(source.len());
    let started = Instant::now();
    for (i, log) in source.iter().enumerate() {
        let due = schedule.offset(i, speed);
        loop {
            let elapsed = started.elapsed();
            if elapsed >= due {
                break;
            }
            // Sleep the bulk, spin the last stretch for offset fidelity.
            let left = due - elapsed;
            if left > Duration::from_micros(200) {
                std::thread::sleep(left - Duration::from_micros(100));
            } else {
                std::hint::spin_loop();
            }
        }
        let t0 = Instant::now();
        durable
            .producer
            .send(log.clone())
            .expect("unfaulted send must land");
        latencies_us.push(t0.elapsed().as_micros() as u64);
    }
    let fed = started.elapsed();
    let DurablePipeline { pool, producer, .. } = durable;
    drop(producer);
    let summary = pool.join();
    let drained = started.elapsed() - fed;
    assert_eq!(summary.logs, source.len() as u64, "replay lost records");

    latencies_us.sort_unstable();
    let point = ReplayPoint {
        shape: schedule.shape.name().into(),
        speed,
        offered_logs_per_sec: schedule.offered_per_sec(speed),
        logs: summary.logs,
        p50_us: percentile(&latencies_us, 0.50),
        p95_us: percentile(&latencies_us, 0.95),
        p99_us: percentile(&latencies_us, 0.99),
        max_us: *latencies_us.last().unwrap_or(&0),
        drain_ms: drained.as_millis() as u64,
    };
    let _ = std::fs::remove_dir_all(&dir);
    point
}

fn main() {
    let n = if quick_mode() { 2_000 } else { 8_000 };
    let mean = Duration::from_micros(150);
    let source = stream(n);

    let shapes = [
        ReplayShape::Steady,
        ReplayShape::Bursty { burst: 32 },
        ReplayShape::Diurnal { period: 400 },
    ];
    let speeds = [1u32, 4, 16];

    println!("== durable ingest latency vs offered replay load ==");
    println!(
        "{:<8} {:>6} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "shape", "speed", "offered/s", "p50 µs", "p95 µs", "p99 µs", "max µs"
    );
    let mut points = Vec::new();
    for shape in shapes {
        let schedule = ReplaySchedule {
            shape,
            mean_interarrival: mean,
        };
        for speed in speeds {
            let p = run(&source, schedule, speed);
            println!(
                "{:<8} {:>5}x {:>12.0} {:>9} {:>9} {:>9} {:>9}",
                p.shape, p.speed, p.offered_logs_per_sec, p.p50_us, p.p95_us, p.p99_us, p.max_us
            );
            points.push(p);
        }
    }
    write_result("replay_latency", &points);
}
