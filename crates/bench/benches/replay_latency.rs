//! Replay-latency harness for the ingest path: replays a recorded
//! stream through the pipeline on a deterministic schedule
//! (`logsynergy_loggen::replay`) at several speed multipliers, and
//! publishes the producer-side ingest latency as p50/p95/p99 against
//! the offered load.
//!
//! Three modes per (shape, speed) point:
//!
//! - `in_memory` — plain buffer sends, no durability ack to pay.
//! - `durable` batch 1 — the write-ahead-logged path with one
//!   `write(2)`+flush per record (append + flush + enqueue: the cost of
//!   the per-record durability acknowledgement).
//! - `durable` batch 64 — the group-commit path: records accumulate
//!   into micro-batches and the whole batch is acknowledged by one
//!   flush, so a record's ack latency is its batch's flush time.
//!
//! Results land in `results/replay_latency.json`.

use std::time::{Duration, Instant};

use logsynergy_bench::{quick_mode, write_result};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{ReplaySchedule, ReplayShape, SystemId};
use logsynergy_pipeline::buffer::LogBuffer;
use logsynergy_pipeline::service::DetectionPool;
use logsynergy_pipeline::{
    start_durable, DurablePipeline, EventVectorizer, MemorySink, PipelineConfig, RawLog,
    SequenceScorer, WalOptions,
};
use serde::Serialize;

const VOCAB: [&str; 8] = [
    "session opened for user root",
    "connection from remote peer closed abruptly after handshake timeout",
    "disk write latency elevated beyond configured threshold on volume data1",
    "packet responder terminating early",
    "cache eviction pass completed",
    "replica placement policy satisfied for block",
    "authentication failure reported by gateway node",
    "heartbeat missed twice across consecutive intervals",
];

/// Cheap deterministic scorer — the measurement is the ingest path, not
/// the model tier; the workers only need to keep the queue draining.
#[derive(Clone)]
struct TableScorer;
impl SequenceScorer for TableScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut acc = 0.0f32;
        for &e in events {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        (acc - acc.floor()).clamp(0.0, 1.0)
    }
}

fn vectorizer() -> EventVectorizer {
    let mut v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
    v.warm_start(VOCAB.iter().copied());
    v
}

fn stream(n: usize) -> Vec<RawLog> {
    (0..n)
        .map(|i| RawLog {
            system: "replay".into(),
            timestamp: i as u64,
            message: VOCAB[(i * 7 + i / 4) % VOCAB.len()].to_string(),
        })
        .collect()
}

#[derive(Serialize)]
struct ReplayPoint {
    shape: String,
    mode: String,
    batch: usize,
    speed: u32,
    offered_logs_per_sec: f64,
    logs: u64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    max_us: u64,
    drain_ms: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Spin-sleeps until `due` past `started`: sleep the bulk, spin the
/// last stretch for offset fidelity.
fn pace(started: Instant, due: Duration) {
    loop {
        let elapsed = started.elapsed();
        if elapsed >= due {
            return;
        }
        let left = due - elapsed;
        if left > Duration::from_micros(200) {
            std::thread::sleep(left - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

fn point(
    schedule: ReplaySchedule,
    speed: u32,
    mode: &str,
    batch: usize,
    logs: u64,
    mut lat: Vec<u64>,
    drained: Duration,
) -> ReplayPoint {
    lat.sort_unstable();
    ReplayPoint {
        shape: schedule.shape.name().into(),
        mode: mode.into(),
        batch,
        speed,
        offered_logs_per_sec: schedule.offered_per_sec(speed),
        logs,
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
        max_us: *lat.last().unwrap_or(&0),
        drain_ms: drained.as_millis() as u64,
    }
}

/// The in-memory comparison run: the same schedule through a plain
/// buffer, measuring the enqueue-only ack.
fn run_in_memory(source: &[RawLog], schedule: ReplaySchedule, speed: u32) -> ReplayPoint {
    let config = PipelineConfig {
        partitions: 1,
        ..PipelineConfig::default()
    };
    let buffer = LogBuffer::new(config.partitions, config.partition_capacity);
    let pool = DetectionPool::spawn(
        &buffer,
        vectorizer(),
        TableScorer,
        MemorySink::new(),
        &config,
    );
    let producer = buffer.producer();
    drop(buffer);

    let feed: Vec<RawLog> = source.to_vec();
    let mut lat: Vec<u64> = Vec::with_capacity(source.len());
    let started = Instant::now();
    for (i, log) in feed.into_iter().enumerate() {
        pace(started, schedule.offset(i, speed));
        let t0 = Instant::now();
        producer.send_to(0, log).expect("in-memory send must land");
        lat.push(t0.elapsed().as_micros() as u64);
    }
    let fed = started.elapsed();
    drop(producer);
    let summary = pool.join();
    let drained = started.elapsed() - fed;
    assert_eq!(summary.logs, source.len() as u64, "replay lost records");
    point(schedule, speed, "in_memory", 1, summary.logs, lat, drained)
}

/// The durable (`--wal-dir`) run at a given group-commit size. Batch 1
/// is the per-record-flush path; larger batches accumulate chunks and
/// acknowledge each record at its batch's flush (a batch can flush once
/// its last record has arrived, so pacing targets the chunk tail).
fn run_durable(
    source: &[RawLog],
    schedule: ReplaySchedule,
    speed: u32,
    batch: usize,
) -> ReplayPoint {
    let dir = std::env::temp_dir().join(format!(
        "lswal-replay-{}-{speed}-{batch}-{}",
        schedule.shape.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let config = PipelineConfig {
        partitions: 1,
        wal: Some(WalOptions {
            // Small segments so every replay run crosses roll boundaries.
            segment_max_bytes: 256 * 1024,
            ..WalOptions::at(dir.clone())
        }),
        ..PipelineConfig::default()
    };
    let durable = start_durable(vectorizer(), TableScorer, MemorySink::new(), &config)
        .expect("fresh log directory must open");

    // The feed (and its chunking) is built before the clock starts —
    // the measurement is the ack path, not the allocator.
    let chunks: Vec<Vec<RawLog>> = source.chunks(batch).map(|c| c.to_vec()).collect();
    let mut lat: Vec<u64> = Vec::with_capacity(source.len());
    let mut arrived = 0usize;
    let started = Instant::now();
    for chunk in chunks {
        arrived += chunk.len();
        // A batch can flush once its last record has arrived.
        pace(started, schedule.offset(arrived - 1, speed));
        let n = chunk.len();
        let t0 = Instant::now();
        if batch == 1 {
            let log = chunk.into_iter().next().expect("non-empty chunk");
            durable
                .producer
                .send(log)
                .expect("unfaulted send must land");
        } else {
            let sent = durable
                .producer
                .send_batch(0, chunk)
                .expect("unfaulted batch must land");
            assert_eq!(sent, n);
        }
        let us = t0.elapsed().as_micros() as u64;
        for _ in 0..n {
            lat.push(us);
        }
    }
    let fed = started.elapsed();
    let DurablePipeline { pool, producer, .. } = durable;
    drop(producer);
    let summary = pool.join();
    let drained = started.elapsed() - fed;
    assert_eq!(summary.logs, source.len() as u64, "replay lost records");
    let _ = std::fs::remove_dir_all(&dir);
    point(
        schedule,
        speed,
        "durable",
        batch,
        summary.logs,
        lat,
        drained,
    )
}

fn main() {
    let n = if quick_mode() { 2_000 } else { 8_000 };
    let mean = Duration::from_micros(150);
    let source = stream(n);

    let shapes = [
        ReplayShape::Steady,
        ReplayShape::Bursty { burst: 32 },
        ReplayShape::Diurnal { period: 400 },
    ];
    let speeds = [1u32, 4, 16];

    println!("== ingest latency vs offered replay load ==");
    println!(
        "{:<8} {:<10} {:>5} {:>6} {:>12} {:>9} {:>9} {:>9} {:>9}",
        "shape", "mode", "batch", "speed", "offered/s", "p50 µs", "p95 µs", "p99 µs", "max µs"
    );
    let mut points = Vec::new();
    for shape in shapes {
        let schedule = ReplaySchedule {
            shape,
            mean_interarrival: mean,
        };
        for speed in speeds {
            for (mode, batch) in [("in_memory", 1usize), ("durable", 1), ("durable", 64)] {
                let p = match mode {
                    "in_memory" => run_in_memory(&source, schedule, speed),
                    _ => run_durable(&source, schedule, speed, batch),
                };
                println!(
                    "{:<8} {:<10} {:>5} {:>5}x {:>12.0} {:>9} {:>9} {:>9} {:>9}",
                    p.shape,
                    p.mode,
                    p.batch,
                    p.speed,
                    p.offered_logs_per_sec,
                    p.p50_us,
                    p.p95_us,
                    p.p99_us,
                    p.max_us
                );
                points.push(p);
            }
        }
    }
    write_result("replay_latency", &points);
}
