//! Design-choice ablations beyond the paper's Fig. 5, covering the knobs
//! DESIGN.md calls out: λ_DA (GRL strength), window geometry, embedding
//! dimensionality, Drain similarity threshold, and the LEI failure-mode
//! sensitivity (hallucination rate with/without self-consistency review).

use logsynergy::data::{prepare_system, EventTextMode};
use logsynergy_bench::{quick_mode, write_result};
use logsynergy_embed::HashedEmbedder;
use logsynergy_eval::experiments::sources_of;
use logsynergy_eval::{prepare_group, run_method, ExperimentConfig, MethodKind, SystemData};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_logparse::WindowConfig;
use serde::Serialize;

#[derive(Serialize)]
struct Point {
    knob: String,
    value: String,
    f1: f64,
}

fn f1_for(cfg: &ExperimentConfig, target: SystemId) -> f64 {
    let mut systems = sources_of(target);
    systems.push(target);
    let data = prepare_group(&systems, cfg);
    let n = data.len();
    let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
    run_method(MethodKind::LogSynergy, &sources, &data[n - 1], cfg)
        .prf
        .f1
}

fn main() {
    let target = SystemId::Thunderbird;
    let base = ExperimentConfig::quick();
    let mut points = Vec::new();

    // Domain-adaptation variant: DAAN (the paper) vs linear MMD vs none.
    {
        use logsynergy::trainer::{DaMode, TrainOptions};
        use logsynergy_eval::methods::run_logsynergy_custom;
        let mut systems = sources_of(target);
        systems.push(target);
        let data = prepare_group(&systems, &base);
        let n = data.len();
        let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
        let modes: &[DaMode] = if quick_mode() {
            &[DaMode::Daan]
        } else {
            &[DaMode::Daan, DaMode::Mmd, DaMode::Off]
        };
        for &mode in modes {
            let opts = TrainOptions {
                use_sufe: true,
                da: mode,
            };
            let r = run_logsynergy_custom(&sources, &data[n - 1], &base, opts, true);
            println!("da_mode {mode:?} -> F1 {:.2}", r.prf.f1);
            points.push(Point {
                knob: "da_mode".into(),
                value: format!("{mode:?}"),
                f1: r.prf.f1,
            });
        }
    }

    // λ_DA sweep (the DA analogue of Fig. 4a).
    let da_grid: &[f32] = if quick_mode() {
        &[0.01, 0.5]
    } else {
        &[0.0, 0.01, 0.1, 0.5]
    };
    for &lda in da_grid {
        let cfg = ExperimentConfig {
            lambda_da: lda,
            ..base.clone()
        };
        let f1 = f1_for(&cfg, target);
        println!("lambda_DA {lda:<5} -> F1 {f1:.2}");
        points.push(Point {
            knob: "lambda_da".into(),
            value: lda.to_string(),
            f1,
        });
    }

    // Embedding dimensionality.
    let dims: &[usize] = if quick_mode() {
        &[32, 64]
    } else {
        &[16, 32, 64, 128]
    };
    for &d in dims {
        let cfg = ExperimentConfig {
            embed_dim: d,
            ..base.clone()
        };
        let f1 = f1_for(&cfg, target);
        println!("embed_dim {d:<4} -> F1 {f1:.2}");
        points.push(Point {
            knob: "embed_dim".into(),
            value: d.to_string(),
            f1,
        });
    }

    // Window geometry effect on sequence construction (via Drain windows).
    for (len, step) in [(10usize, 5usize), (20, 10)] {
        let ds = base.generate(target);
        let emb = HashedEmbedder::new(base.embed_dim, 0xE1B);
        let prep = prepare_system(
            &ds,
            &EventTextMode::Interpreted(LeiConfig::default()),
            &emb,
            WindowConfig { length: len, step },
        );
        let rate = prep.num_anomalous() as f64 / prep.sequences.len() as f64;
        println!(
            "window {len}/{step}: {} sequences, anomaly rate {:.2}%",
            prep.sequences.len(),
            rate * 100.0
        );
        points.push(Point {
            knob: "window".into(),
            value: format!("{len}/{step}"),
            f1: rate * 100.0,
        });
    }

    // LEI failure sensitivity: hallucination rate × self-consistency review.
    // (The §IV-E2 internal threat: unreviewed hallucinations poison
    // training; the review workflow mitigates.)
    let hall_grid: &[f64] = if quick_mode() {
        &[0.05]
    } else {
        &[0.02, 0.05, 0.1]
    };
    for &h in hall_grid {
        // The ExperimentConfig pipeline always reviews; quantify the raw
        // interpretation error rate at this hallucination level instead.
        let lei = logsynergy_lei::LlmInterpreter::new(LeiConfig {
            hallucination_rate: h,
            ..LeiConfig::default()
        });
        let concepts = logsynergy_loggen::ontology();
        let profile = logsynergy_loggen::SyntaxProfile::new(target, &concepts);
        let templates: Vec<String> = concepts.iter().map(|c| profile.template_text(c)).collect();
        let policy_reviewed = logsynergy_lei::ReviewPolicy::default();
        let policy_raw = logsynergy_lei::ReviewPolicy {
            consistency_samples: 1,
            ..Default::default()
        };
        let wrong = |policy: &logsynergy_lei::ReviewPolicy| {
            let (outs, _) = logsynergy_lei::interpret_with_review(&lei, target, &templates, policy);
            outs.iter()
                .zip(&concepts)
                .filter(|(o, c)| o.matched_concept != Some(c.name))
                .count() as f64
                / concepts.len() as f64
        };
        let raw_err = wrong(&policy_raw);
        let reviewed_err = wrong(&policy_reviewed);
        println!(
            "hallucination {h}: wrong interpretations {:.1}% raw -> {:.1}% with consistency review",
            raw_err * 100.0,
            reviewed_err * 100.0
        );
        points.push(Point {
            knob: "hallucination_raw".into(),
            value: h.to_string(),
            f1: raw_err * 100.0,
        });
        points.push(Point {
            knob: "hallucination_reviewed".into(),
            value: h.to_string(),
            f1: reviewed_err * 100.0,
        });
    }

    write_result("design_ablations", &points);
}
