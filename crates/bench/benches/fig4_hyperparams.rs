//! Fig. 4 regenerator: F1 sweeps over λ_MI (4a), n_s (4b), and n_t (4c).
//!
//! The paper sweeps λ_MI ∈ {0.001, 0.01, 0.05, 0.1, 0.5}, n_s ∈ 10k..80k,
//! n_t ∈ 1k..8k. The scaled harness keeps the grid shapes with sample
//! counts proportional to the CPU-scale n_s/n_t defaults.

use logsynergy_bench::{quick_mode, write_result};
use logsynergy_eval::experiments::{fig4a, fig4b, fig4c};
use logsynergy_eval::report::render_sweep;
use logsynergy_eval::ExperimentConfig;
use logsynergy_loggen::SystemId;
use std::time::Instant;

fn main() {
    let cfg = ExperimentConfig::quick();
    // All six targets for the λ sweep (the paper's Fig. 4a plots all six);
    // quick mode trims to two targets per sweep.
    let all: Vec<SystemId> = SystemId::ALL.to_vec();
    let trimmed = vec![SystemId::Thunderbird, SystemId::SystemB];
    let (targets_a, targets_bc) = if quick_mode() {
        (trimmed.clone(), trimmed)
    } else {
        (
            all.clone(),
            vec![SystemId::Bgl, SystemId::Thunderbird, SystemId::SystemB],
        )
    };

    let t0 = Instant::now();
    let a = fig4a(&targets_a, &cfg);
    println!("{}", render_sweep("Fig. 4a: F1 vs lambda_MI", &a));

    // n_s sweep: 8 points like the paper's 10k..80k grid, scaled.
    let ns: Vec<usize> = (1..=8).map(|i| i * cfg.n_source / 5).collect();
    let b = fig4b(&targets_bc, &ns, &cfg);
    println!("{}", render_sweep("Fig. 4b: F1 vs n_s", &b));

    // n_t sweep: 8 points like the paper's 1k..8k grid, scaled.
    let nt: Vec<usize> = (1..=8).map(|i| i * cfg.n_target / 5).collect();
    let c = fig4c(&targets_bc, &nt, &cfg);
    println!("{}", render_sweep("Fig. 4c: F1 vs n_t", &c));

    println!("[elapsed {:.1}s]", t0.elapsed().as_secs_f64());
    write_result("fig4_hyperparams", &(a, b, c));
}
