//! Table I regenerator: renders the same anomalous events through every
//! system's syntax profile and quantifies the cross-system syntax gap
//! (token Jaccard) before and after LEI.

use logsynergy_bench::write_result;
use logsynergy_embed::{cosine, HashedEmbedder};
use logsynergy_lei::{LeiConfig, LlmInterpreter};
use logsynergy_loggen::{by_name, ontology, SyntaxProfile, SystemId};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    event: String,
    system: String,
    message: String,
    interpretation: String,
}

#[derive(Serialize)]
struct GapStats {
    event: String,
    mean_raw_cosine: f32,
    mean_lei_cosine: f32,
}

fn main() {
    let concepts = ontology();
    let lei = LlmInterpreter::new(LeiConfig {
        hallucination_rate: 0.0,
        ..Default::default()
    });
    let embedder = HashedEmbedder::new(64, 0xE1B);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);

    let mut rows = Vec::new();
    let mut gaps = Vec::new();
    for name in ["network_interruption", "parity_error"] {
        let c = &concepts[by_name(&concepts, name).0 as usize];
        println!("== {name} ==");
        let mut raws = Vec::new();
        let mut leis = Vec::new();
        for sys in SystemId::ALL {
            let p = SyntaxProfile::new(sys, &concepts);
            let msg = p.render(c, &mut rng);
            let template = p.template_text(c);
            let interp = lei.interpret(sys, &template).text;
            println!("  {:<12} {msg}", sys.name());
            println!("  {:<12} -> {interp}", "");
            raws.push(embedder.embed(&template));
            leis.push(embedder.embed(&interp));
            rows.push(Row {
                event: name.into(),
                system: sys.name().into(),
                message: msg,
                interpretation: interp,
            });
        }
        let mean = |vs: &[Vec<f32>]| {
            let mut s = 0.0;
            let mut n = 0;
            for i in 0..vs.len() {
                for j in (i + 1)..vs.len() {
                    s += cosine(&vs[i], &vs[j]);
                    n += 1;
                }
            }
            s / n as f32
        };
        let g = GapStats {
            event: name.into(),
            mean_raw_cosine: mean(&raws),
            mean_lei_cosine: mean(&leis),
        };
        println!(
            "  mean pairwise cosine: raw {:.3} -> LEI {:.3}\n",
            g.mean_raw_cosine, g.mean_lei_cosine
        );
        assert!(
            g.mean_lei_cosine > g.mean_raw_cosine,
            "LEI must close the gap"
        );
        gaps.push(g);
    }
    write_result("table1_syntax_gap", &(rows, gaps));
}
