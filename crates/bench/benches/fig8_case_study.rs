//! Fig. 8 regenerator: the System A / System C false-positive case study.

use logsynergy_bench::write_result;
use logsynergy_eval::experiments::fig8_case_study;
use logsynergy_eval::report::render_case_study;
use logsynergy_eval::ExperimentConfig;
use std::time::Instant;

fn main() {
    let cfg = ExperimentConfig {
        logs_per_dataset: 8_000,
        ..ExperimentConfig::quick()
    };
    let t0 = Instant::now();
    let cs = fig8_case_study(&cfg);
    println!("{}", render_case_study(&cs));
    println!("[elapsed {:.1}s]", t0.elapsed().as_secs_f64());
    write_result("fig8_case_study", &cs);
}
