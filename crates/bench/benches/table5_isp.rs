//! Table V regenerator: all eleven methods on the ISP group
//! (Systems A / B / C as targets).

use logsynergy_bench::{quick_mode, write_result};
use logsynergy_eval::experiments::table5;
use logsynergy_eval::report::render_group_table;
use logsynergy_eval::ExperimentConfig;
use std::time::Instant;

fn main() {
    let cfg = if quick_mode() {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let t0 = Instant::now();
    let results = table5(&cfg);
    println!("{}", render_group_table("Table V: ISP datasets", &results));
    println!("[elapsed {:.1}s]", t0.elapsed().as_secs_f64());
    write_result("table5_isp", &results);
}
