//! Table IV regenerator: all eleven methods on the public group
//! (BGL / Spirit / Thunderbird as targets).

use logsynergy_bench::{quick_mode, write_result};
use logsynergy_eval::experiments::table4;
use logsynergy_eval::report::render_group_table;
use logsynergy_eval::ExperimentConfig;
use std::time::Instant;

fn main() {
    let cfg = if quick_mode() {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let t0 = Instant::now();
    let results = table4(&cfg);
    println!(
        "{}",
        render_group_table("Table IV: public datasets", &results)
    );
    println!("[elapsed {:.1}s]", t0.elapsed().as_secs_f64());
    write_result("table4_public", &results);
}
