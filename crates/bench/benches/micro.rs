//! Criterion microbenchmarks for the performance-critical substrate:
//! Drain parsing, sentence embedding, a LogSynergy training step, and
//! online detector scoring.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::SeedableRng;

use logsynergy::config::{ModelConfig, TrainConfig};
use logsynergy::model::LogSynergyModel;
use logsynergy::trainer::{build_training_set, train, TrainOptions};
use logsynergy::Detector;
use logsynergy_embed::HashedEmbedder;
use logsynergy_eval::{prepare, ExperimentConfig};
use logsynergy_loggen::{datasets, SystemId};
use logsynergy_logparse::Drain;

fn bench_drain(c: &mut Criterion) {
    let ds = datasets::system_b().generate(0.005);
    let messages: Vec<String> = ds.messages().map(|m| m.to_string()).collect();
    let mut g = c.benchmark_group("drain");
    g.throughput(Throughput::Elements(messages.len() as u64));
    g.bench_function(BenchmarkId::new("parse_stream", messages.len()), |b| {
        b.iter(|| {
            let mut d = Drain::with_defaults();
            for m in &messages {
                std::hint::black_box(d.parse(m));
            }
            d.num_templates()
        })
    });
    g.finish();
}

fn bench_embedding(c: &mut Criterion) {
    let embedder = HashedEmbedder::new(64, 1);
    let text = "network connection interrupted due to loss of signal";
    c.bench_function("embed_sentence_64d", |b| {
        b.iter(|| std::hint::black_box(embedder.embed(std::hint::black_box(text))))
    });
}

fn toy_sets() -> (logsynergy::PreparedSystem, logsynergy::PreparedSystem) {
    let cfg = ExperimentConfig {
        logs_per_dataset: 4_000,
        ..ExperimentConfig::quick()
    };
    let src = prepare(SystemId::SystemC, &cfg);
    let tgt = prepare(SystemId::SystemB, &cfg);
    (src.lei, tgt.lei)
}

fn bench_train_epoch(c: &mut Criterion) {
    let (src, tgt) = toy_sets();
    let mut mcfg = ModelConfig::scaled(2);
    mcfg.embed_dim = 64;
    let mut tcfg = TrainConfig::scaled();
    tcfg.epochs = 1;
    tcfg.n_source = 256;
    tcfg.n_target = 64;
    tcfg.batch_size = 64;
    let set = build_training_set(&[&src], &tgt, tcfg.n_source, tcfg.n_target, 10, 64);
    c.bench_function("logsynergy_train_epoch_320x10x64", |b| {
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            let mut model = LogSynergyModel::new(mcfg.clone(), &mut rng);
            train(&mut model, &set, &tcfg, TrainOptions::default());
            model.num_parameters()
        })
    });
}

fn bench_detector(c: &mut Criterion) {
    let (src, tgt) = toy_sets();
    let mut mcfg = ModelConfig::scaled(2);
    mcfg.embed_dim = 64;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let model = LogSynergyModel::new(mcfg, &mut rng);
    let _ = src;
    let samples = tgt.head(256);
    let mut g = c.benchmark_group("detector");
    g.throughput(Throughput::Elements(samples.len() as u64));
    g.bench_function("score_256_windows", |b| {
        b.iter(|| {
            std::hint::black_box(Detector::new(&model).scores(&samples, &tgt.event_embeddings))
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_drain, bench_embedding, bench_train_epoch, bench_detector
}
criterion_main!(benches);
