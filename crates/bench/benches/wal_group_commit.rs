//! Group-commit benchmark for the durable ingest path: durable vs
//! in-memory throughput and p50/p95/p99 ingest-ack latency across a
//! batch-size sweep {1, 16, 64, 256}.
//!
//! Two sections:
//!
//! - **max_rate** — feed as fast as the producer accepts. Batch 1 is
//!   the per-record-flush baseline (one `write(2)`+flush and one
//!   partition-lock acquisition per record); larger batches amortize
//!   both through `DurableProducer::send_batch`. The acceptance gate is
//!   durable@64 ≥ 3× durable@1.
//! - **fig7_operating_point** — the replay harness's steady schedule at
//!   speed 16 (the Fig. 7 offered load, ~100k logs/s): both paths must
//!   sustain it, putting durable-mode throughput within 1.5× of
//!   in-memory.
//!
//! Results land in `results/wal_group_commit.json`.

use std::time::{Duration, Instant};

use logsynergy::wal::{PartitionWal, WalConfig};
use logsynergy_bench::{quick_mode, write_result};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{ReplaySchedule, ReplayShape, SystemId};
use logsynergy_pipeline::buffer::LogBuffer;
use logsynergy_pipeline::service::DetectionPool;
use logsynergy_pipeline::{
    start_durable, DurablePipeline, EventVectorizer, MemorySink, PipelineConfig, RawLog,
    SequenceScorer, WalOptions,
};
use serde::Serialize;

const VOCAB: [&str; 8] = [
    "session opened for user root",
    "connection from remote peer closed abruptly after handshake timeout",
    "disk write latency elevated beyond configured threshold on volume data1",
    "packet responder terminating early",
    "cache eviction pass completed",
    "replica placement policy satisfied for block",
    "authentication failure reported by gateway node",
    "heartbeat missed twice across consecutive intervals",
];

/// Cheap deterministic scorer — the measurement is the ingest path, not
/// the model tier; the workers only need to keep the queue draining.
#[derive(Clone)]
struct TableScorer;
impl SequenceScorer for TableScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut acc = 0.0f32;
        for &e in events {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        (acc - acc.floor()).clamp(0.0, 1.0)
    }
}

fn vectorizer() -> EventVectorizer {
    let mut v = EventVectorizer::new(SystemId::SystemB, 8, LeiConfig::default());
    v.warm_start(VOCAB.iter().copied());
    v
}

fn stream(n: usize) -> Vec<RawLog> {
    (0..n)
        .map(|i| RawLog {
            system: "bench".into(),
            timestamp: i as u64,
            message: VOCAB[(i * 7 + i / 4) % VOCAB.len()].to_string(),
        })
        .collect()
}

/// One partition and a queue deep enough to hold the whole stream: the
/// measurement is the producer-side ack path (lock + encode + flush +
/// enqueue), never worker-drain backpressure.
fn config(n: usize, dir: Option<std::path::PathBuf>) -> PipelineConfig {
    PipelineConfig {
        partitions: 1,
        partition_capacity: n,
        wal: dir.map(WalOptions::at),
        ..PipelineConfig::default()
    }
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lswal-gc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[derive(Serialize)]
struct Row {
    section: String,
    mode: String,
    batch: usize,
    logs: u64,
    throughput_logs_per_sec: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

/// Spin-sleeps until `due` past `started` — the replay harness's pacing.
fn pace(started: Instant, due: Duration) {
    loop {
        let elapsed = started.elapsed();
        if elapsed >= due {
            return;
        }
        let left = due - elapsed;
        if left > Duration::from_micros(200) {
            std::thread::sleep(left - Duration::from_micros(100));
        } else {
            std::hint::spin_loop();
        }
    }
}

/// The in-memory path: plain buffer sends, no durability ack to pay.
/// The feed is cloned *before* the clock starts — the measurement is
/// the ack path, not the allocator.
fn run_in_memory(source: &[RawLog], section: &str, schedule: Option<(ReplaySchedule, u32)>) -> Row {
    let cfg = config(source.len(), None);
    let buffer = LogBuffer::new(cfg.partitions, cfg.partition_capacity);
    let pool = DetectionPool::spawn(&buffer, vectorizer(), TableScorer, MemorySink::new(), &cfg);
    let producer = buffer.producer();
    drop(buffer);

    let feed: Vec<RawLog> = source.to_vec();
    let mut lat: Vec<u64> = Vec::with_capacity(source.len());
    let started = Instant::now();
    for (i, log) in feed.into_iter().enumerate() {
        if let Some((schedule, speed)) = schedule {
            pace(started, schedule.offset(i, speed));
        }
        let t0 = Instant::now();
        producer.send_to(0, log).expect("in-memory send must land");
        lat.push(t0.elapsed().as_micros() as u64);
    }
    let fed = started.elapsed();
    drop(producer);
    let summary = pool.join();
    assert_eq!(summary.logs, source.len() as u64, "in-memory lost records");
    lat.sort_unstable();
    Row {
        section: section.into(),
        mode: "in_memory".into(),
        batch: 1,
        logs: summary.logs,
        throughput_logs_per_sec: source.len() as f64 / fed.as_secs_f64(),
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
    }
}

/// The durable path at a given group-commit size. Batch 1 is the
/// seed's per-record-flush path ([`logsynergy_pipeline::DurableProducer::send`]:
/// one lock + one `write(2)`+flush + per-record accounting per line);
/// larger batches go through `send_batch`. A record's ack latency is
/// its batch's flush time — the client is acknowledged only after the
/// whole batch is on disk. As above, the feed (and its chunking) is
/// built before the clock starts.
fn run_durable(
    source: &[RawLog],
    batch: usize,
    section: &str,
    schedule: Option<(ReplaySchedule, u32)>,
) -> Row {
    let dir = scratch(&format!("{section}-{batch}"));
    let durable = start_durable(
        vectorizer(),
        TableScorer,
        MemorySink::new(),
        &config(source.len(), Some(dir.clone())),
    )
    .expect("fresh log directory must open");

    let chunks: Vec<Vec<RawLog>> = source.chunks(batch).map(|c| c.to_vec()).collect();
    let mut lat: Vec<u64> = Vec::with_capacity(source.len());
    let mut arrived = 0usize;
    let started = Instant::now();
    for chunk in chunks {
        arrived += chunk.len();
        if let Some((schedule, speed)) = schedule {
            // The batch can flush once its last record has arrived.
            pace(started, schedule.offset(arrived - 1, speed));
        }
        let n = chunk.len();
        let t0 = Instant::now();
        if batch == 1 {
            let log = chunk.into_iter().next().expect("non-empty chunk");
            durable
                .producer
                .send(log)
                .expect("unfaulted send must land");
        } else {
            let sent = durable
                .producer
                .send_batch(0, chunk)
                .expect("unfaulted batch must land");
            assert_eq!(sent, n);
        }
        let us = t0.elapsed().as_micros() as u64;
        for _ in 0..n {
            lat.push(us);
        }
    }
    let fed = started.elapsed();
    let DurablePipeline { pool, producer, .. } = durable;
    drop(producer);
    let summary = pool.join();
    assert_eq!(summary.logs, source.len() as u64, "durable lost records");
    let _ = std::fs::remove_dir_all(&dir);
    lat.sort_unstable();
    Row {
        section: section.into(),
        mode: "durable".into(),
        batch,
        logs: summary.logs,
        throughput_logs_per_sec: source.len() as f64 / fed.as_secs_f64(),
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
    }
}

/// The durability ack path in isolation: a bare partition WAL, no
/// detection workers competing for the CPU (this box may be a single
/// core, where the pipeline runs above time-share the feed with the
/// drain). Batch 1 is one `write(2)`+flush per record — the seed's
/// per-record-flush ack; larger batches encode the chunk into one
/// contiguous buffer and pay one write+flush for all of it. This is the
/// measurement behind the "group commit buys ≥ 3× over per-record
/// flush" gate.
fn run_wal_ack(source: &[RawLog], batch: usize, n: usize) -> Row {
    let dir = scratch(&format!("ack-{batch}"));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let (mut wal, _) = PartitionWal::open(&dir, WalConfig::default()).expect("fresh WAL opens");
    let entries: Vec<(&str, u64, &str)> = source
        .iter()
        .map(|l| (l.system.as_str(), l.timestamp, l.message.as_str()))
        .collect();
    let mut lat: Vec<u64> = Vec::with_capacity(n);
    let started = Instant::now();
    if batch == 1 {
        for &(system, ts, msg) in &entries {
            let t0 = Instant::now();
            wal.append(system, ts, msg).expect("append lands");
            lat.push(t0.elapsed().as_micros() as u64);
        }
    } else {
        for chunk in entries.chunks(batch) {
            let t0 = Instant::now();
            let range = wal.append_batch(chunk).expect("batch lands");
            assert_eq!((range.end - range.start) as usize, chunk.len());
            let us = t0.elapsed().as_micros() as u64;
            for _ in 0..chunk.len() {
                lat.push(us);
            }
        }
    }
    let fed = started.elapsed();
    drop(wal);
    let _ = std::fs::remove_dir_all(&dir);
    lat.sort_unstable();
    Row {
        section: "wal_ack_path".into(),
        mode: "durable_wal".into(),
        batch,
        logs: n as u64,
        throughput_logs_per_sec: n as f64 / fed.as_secs_f64(),
        p50_us: percentile(&lat, 0.50),
        p95_us: percentile(&lat, 0.95),
        p99_us: percentile(&lat, 0.99),
    }
}

fn print_row(r: &Row) {
    println!(
        "{:<22} {:<10} {:>5} {:>14.0} {:>8} {:>8} {:>8}",
        r.section, r.mode, r.batch, r.throughput_logs_per_sec, r.p50_us, r.p95_us, r.p99_us
    );
}

fn main() {
    let n = if quick_mode() { 20_000 } else { 120_000 };
    let source = stream(n);
    let mut rows: Vec<Row> = Vec::new();

    println!("== group-commit WAL: durable vs in-memory ingest ==");
    println!(
        "{:<22} {:<10} {:>5} {:>14} {:>8} {:>8} {:>8}",
        "section", "mode", "batch", "logs/s", "p50 µs", "p95 µs", "p99 µs"
    );

    // The ack path in isolation: how much does group commit shave off
    // the per-record durability flush?
    for batch in [1usize, 16, 64, 256] {
        let r = run_wal_ack(&source, batch, n);
        print_row(&r);
        rows.push(r);
    }

    // Max-rate pipeline sweep: end-to-end ingest with detection workers
    // live. (On a single-core host the workers time-share the feed, so
    // these rows under-state the producer-side gain the wal_ack_path
    // section isolates.)
    let mem = run_in_memory(&source, "max_rate", None);
    print_row(&mem);
    rows.push(mem);
    for batch in [1usize, 16, 64, 256] {
        let r = run_durable(&source, batch, "max_rate", None);
        print_row(&r);
        rows.push(r);
    }

    // The Fig. 7 operating point: the replay harness's steady schedule
    // at 16× (the highest offered load replay_latency publishes).
    let schedule = ReplaySchedule {
        shape: ReplayShape::Steady,
        mean_interarrival: Duration::from_micros(150),
    };
    let mem_paced = run_in_memory(&source, "fig7_operating_point", Some((schedule, 16)));
    print_row(&mem_paced);
    rows.push(mem_paced);
    let dur_paced = run_durable(&source, 64, "fig7_operating_point", Some((schedule, 16)));
    print_row(&dur_paced);
    rows.push(dur_paced);

    // The gates. Indexing: rows[0..4] = wal_ack batches {1,16,64,256},
    // rows[4] = in-memory max-rate, rows[5..9] = durable pipeline
    // batches, rows[9] = in-memory paced, rows[10] = durable@64 paced.
    let speedup = rows[2].throughput_logs_per_sec / rows[0].throughput_logs_per_sec;
    println!("durable ack path, batch 64 over per-record flush: {speedup:.1}x");
    assert!(
        speedup >= 3.0,
        "group commit must buy >= 3x over per-record flush at batch 64, got {speedup:.2}x"
    );
    let paced_ratio = rows[9].throughput_logs_per_sec / rows[10].throughput_logs_per_sec;
    println!("in-memory / durable throughput at the Fig. 7 operating point: {paced_ratio:.2}x");
    assert!(
        paced_ratio <= 1.5,
        "durable mode must hold within 1.5x of in-memory at the Fig. 7 operating point, \
         got {paced_ratio:.2}x"
    );
    let vs_mem = rows[10].throughput_logs_per_sec / rows[9].throughput_logs_per_sec;
    if quick_mode() {
        // The CI smoke gate: at the operating point, durable-mode
        // throughput holds at least half of in-memory.
        println!("quick smoke: durable/in-memory at the operating point: {vs_mem:.2}x");
        assert!(
            vs_mem >= 0.5,
            "quick smoke: durable must reach >= 0.5x in-memory throughput, got {vs_mem:.2}x"
        );
    }

    write_result("wal_group_commit", &rows);
}
