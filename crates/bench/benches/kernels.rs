//! Matmul kernel micro-benchmark: seed kernel vs. blocked kernels across
//! thread counts. Emits `results/kernels.json`.
//!
//! Run with `cargo bench -p logsynergy-bench --bench kernels`. Honors
//! `LOGSYNERGY_BENCH_QUICK=1` (fewer reps).

use std::time::Instant;

use logsynergy_nn::kernels::{self, with_threads};
use serde::Serialize;

#[derive(Serialize)]
struct ShapeResult {
    shape: String,
    m: usize,
    k: usize,
    n: usize,
    gflops_seed_skip_zero: f64,
    gflops_naive_ikj: f64,
    gflops_blocked_1t: f64,
    gflops_blocked_2t: f64,
    gflops_blocked_4t: f64,
    /// `A·Bᵀ` kernel (backward dA / attention scores), single thread.
    gflops_nt_1t: f64,
    /// `Aᵀ·B` kernel (weight gradients), single thread.
    gflops_tn_1t: f64,
    /// Single-thread blocked kernel vs. the seed `ikj` + skip-zero kernel.
    speedup_blocked_1t_vs_seed: f64,
    /// 4-thread blocked vs. 1-thread blocked.
    scaling_4t_vs_1t: f64,
}

#[derive(Serialize)]
struct KernelsReport {
    reps: usize,
    /// Active SIMD dispatch tier (see `kernels::simd_tier_name`).
    simd_tier: String,
    /// `std::thread::available_parallelism()` on the benchmarking machine.
    /// Thread-scaling numbers are only meaningful when this exceeds the
    /// thread count; on a single-core box the >1-thread columns measure
    /// time-slicing overhead, not scaling.
    available_parallelism: usize,
    shapes: Vec<ShapeResult>,
}

fn filled(len: usize, seed: u32) -> Vec<f32> {
    (0..len)
        .map(|i| {
            let h = (i as u32 ^ seed).wrapping_mul(2_654_435_761);
            (h >> 8) as f32 / (1u32 << 24) as f32 * 4.0 - 2.0
        })
        .collect()
}

/// Best-of-`reps` wall time for `f`, in seconds.
fn best_of(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_shape(label: &str, m: usize, k: usize, n: usize, reps: usize) -> ShapeResult {
    let a = filled(m * k, 1);
    let b = filled(k * n, 2);
    let mut c = vec![0.0f32; m * n];
    let flops = (2 * m * k * n) as f64;
    let gflops = |secs: f64| flops / secs / 1e9;

    let mut run = |f: &dyn Fn(&mut [f32])| {
        let t = best_of(reps, || {
            c.iter_mut().for_each(|x| *x = 0.0);
            f(&mut c);
        });
        std::hint::black_box(&c);
        gflops(t)
    };

    let seed = run(&|c| kernels::mm_ref_skip_zero(&a, &b, c, m, k, n));
    let naive = run(&|c| kernels::mm_ref(&a, &b, c, m, k, n));
    let b1 = run(&|c| with_threads(1, || kernels::mm(&a, &b, c, m, k, n)));
    let b2 = run(&|c| with_threads(2, || kernels::mm(&a, &b, c, m, k, n)));
    let b4 = run(&|c| with_threads(4, || kernels::mm(&a, &b, c, m, k, n)));
    // Transposed-operand kernels on the same shape: bt is B stored [n,k]
    // for A·Bᵀ, bm is a [m,n] right operand for Aᵀ·B.
    let bt = filled(n * k, 3);
    let nt1 = run(&|c| with_threads(1, || kernels::mm_nt(&a, &bt, c, m, k, n)));
    let bm = filled(m * n, 4);
    let mut ctn = vec![0.0f32; k * n];
    let ttn = best_of(reps, || {
        ctn.iter_mut().for_each(|x| *x = 0.0);
        with_threads(1, || kernels::mm_tn(&a, &bm, &mut ctn, m, k, n));
    });
    std::hint::black_box(&ctn);
    let tn1 = gflops(ttn);

    let r = ShapeResult {
        shape: label.to_string(),
        m,
        k,
        n,
        gflops_seed_skip_zero: seed,
        gflops_naive_ikj: naive,
        gflops_blocked_1t: b1,
        gflops_blocked_2t: b2,
        gflops_blocked_4t: b4,
        gflops_nt_1t: nt1,
        gflops_tn_1t: tn1,
        speedup_blocked_1t_vs_seed: b1 / seed,
        scaling_4t_vs_1t: b4 / b1,
    };
    println!(
        "{label:>24}  seed {seed:6.2}  naive {naive:6.2}  blocked 1t {b1:6.2}  2t {b2:6.2}  4t {b4:6.2}  nt {nt1:6.2}  tn {tn1:6.2} GFLOP/s  ({:.2}x vs seed, {:.2}x @4t)",
        r.speedup_blocked_1t_vs_seed, r.scaling_4t_vs_1t
    );
    r
}

fn main() {
    let reps = if logsynergy_bench::quick_mode() { 3 } else { 7 };
    let shapes = vec![
        bench_shape("64x64x64", 64, 64, 64, reps * 4),
        bench_shape("256x256x256", 256, 256, 256, reps),
        // Batched attention/classifier shape: [32,10,768] @ [768,768],
        // batch folded into rows.
        bench_shape("(32x10)x768x768", 320, 768, 768, reps),
    ];
    // Thread-scaling gate: adding threads must never cost more than 10%
    // on any shape. Small GEMMs stay serial under the per-shape work
    // threshold (`matmul` caps threads at flops / 2^20, and at the
    // hardware thread count), so the historical 64³ regression — where
    // fork/join overhead halved throughput — cannot recur.
    for s in &shapes {
        assert!(
            s.scaling_4t_vs_1t >= 0.9,
            "{}: 4t/1t scaling {:.3} regressed below 0.9 — the per-shape \
             work threshold must keep threading from hurting small GEMMs",
            s.shape,
            s.scaling_4t_vs_1t
        );
    }
    let report = KernelsReport {
        reps,
        simd_tier: kernels::simd_tier_name().to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        shapes,
    };
    logsynergy_bench::write_result("kernels", &report);
    println!("wrote results/kernels.json");
}
