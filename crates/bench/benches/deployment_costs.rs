//! §VI-B regenerator: deployment cost numbers — LEI generation + review
//! effort per dataset (§VI-B2: "less than a minute", "a few hundred
//! templates", review "within ten minutes") and offline training time
//! (§VI-B3: "approximately 10 minutes" on a V100 at paper scale).

use logsynergy::api::Pipeline;
use logsynergy_bench::write_result;
use logsynergy_eval::{prepare, ExperimentConfig};
use logsynergy_loggen::{datasets, SystemId};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct LeiCost {
    dataset: String,
    templates: usize,
    interpret_secs: f64,
    review_regenerated: usize,
    review_repaired: usize,
    consistency_regens: usize,
}

#[derive(Serialize)]
struct TrainCost {
    target: String,
    train_sequences: usize,
    parameters: usize,
    train_secs: f64,
}

fn main() {
    let cfg = ExperimentConfig::quick();

    println!("== LEI generation + review cost per dataset ==");
    let mut lei_costs = Vec::new();
    for sys in SystemId::ALL {
        let t0 = Instant::now();
        let d = prepare(sys, &cfg);
        let secs = t0.elapsed().as_secs_f64();
        let c = LeiCost {
            dataset: sys.name().into(),
            templates: d.lei.templates.len(),
            interpret_secs: secs,
            review_regenerated: d.lei.review_stats.regenerated,
            review_repaired: d.lei.review_stats.repaired,
            consistency_regens: d.lei.review_stats.consistency_regens,
        };
        println!(
            "{:<12} {:>4} templates  prep {:>5.1}s  format-regens {}  repairs {}  consistency {}",
            c.dataset,
            c.templates,
            c.interpret_secs,
            c.review_regenerated,
            c.review_repaired,
            c.consistency_regens
        );
        assert!(
            c.templates < 500,
            "a few hundred templates at most (paper §VI-B2)"
        );
        lei_costs.push(c);
    }

    println!("\n== offline training time (scaled; paper: ~10 min at full scale) ==");
    let mut p = Pipeline::scaled();
    p.train_config.epochs = cfg.epochs;
    p.train_config.n_source = cfg.n_source;
    p.train_config.n_target = cfg.n_target;
    let src1 =
        p.prepare(&datasets::system_a().generate_with(cfg.scale_for(SystemId::SystemA), 4.0));
    let src2 =
        p.prepare(&datasets::system_c().generate_with(cfg.scale_for(SystemId::SystemC), 4.0));
    let tgt = p.prepare(&datasets::system_b().generate_with(cfg.scale_for(SystemId::SystemB), 4.0));
    let t0 = Instant::now();
    let (model, _) = p.fit(&[&src1, &src2], &tgt);
    let train = TrainCost {
        target: "System B".into(),
        train_sequences: cfg.n_source * 2 + cfg.n_target,
        parameters: model.num_parameters(),
        train_secs: t0.elapsed().as_secs_f64(),
    };
    println!(
        "{}: {} sequences, {} parameters, {:.1}s",
        train.target, train.train_sequences, train.parameters, train.train_secs
    );
    write_result("deployment_costs", &(lei_costs, train));
}
