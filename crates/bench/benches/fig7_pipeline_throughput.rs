//! Fig. 7 regenerator: streams a live target log feed through the full
//! deployment pipeline (collect → buffer → window → pattern-library →
//! score-cache → batched model → report) and reports end-to-end
//! throughput.
//!
//! Beyond the headline number, this bench sweeps the serving knobs —
//! micro-batch size on a single worker, then worker count over a
//! multi-tenant feed — against the unbatched single-worker baseline (the
//! pre-batching serving path), and asserts the batched default
//! configuration reproduces the baseline's reports bit for bit.

use logsynergy::api::Pipeline;
use logsynergy_bench::{quick_mode, write_result};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, SystemId};
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, LogBuffer, MemorySink, ModelScorer, PipelineConfig, RawLog,
};
use serde::Serialize;

#[derive(Serialize)]
struct SweepPoint {
    label: String,
    partitions: usize,
    batch_windows: usize,
    score_cache: usize,
    tenants: usize,
    logs: u64,
    logs_per_sec: f64,
}

#[derive(Serialize)]
struct Summary {
    logs: u64,
    windows: u64,
    pattern_hits: u64,
    cache_hits: u64,
    model_calls: u64,
    reports: u64,
    new_templates: usize,
    throughput_logs_per_sec: f64,
    baseline_logs_per_sec: f64,
    speedup_vs_unbatched: f64,
    sweep: Vec<SweepPoint>,
}

/// Tenant names that the buffer's FNV router spreads across `partitions`
/// distinct partitions, so the worker-count sweep actually exercises
/// parallel workers.
fn spread_tenants(partitions: usize) -> Vec<String> {
    let probe = LogBuffer::new(partitions, 1);
    let mut names = Vec::new();
    let mut used = vec![false; partitions];
    let mut i = 0u32;
    while names.len() < partitions {
        let candidate = format!("tenant-{i}");
        let p = probe.partition_for(&candidate);
        if !used[p] {
            used[p] = true;
            names.push(candidate);
        }
        i += 1;
    }
    names
}

fn retenant(source: &[RawLog], tenants: &[String]) -> Vec<RawLog> {
    source
        .iter()
        .enumerate()
        .map(|(i, log)| RawLog {
            system: tenants[i % tenants.len()].clone(),
            timestamp: log.timestamp,
            message: log.message.clone(),
        })
        .collect()
}

fn main() {
    let scale = if quick_mode() { 0.006 } else { 0.02 };
    println!("training a model for System B, then streaming its live logs…");
    let mut p = Pipeline::scaled();
    p.train_config.epochs = 4;
    p.train_config.n_source = 800;
    p.train_config.n_target = 200;
    let src_a = p.prepare(&datasets::system_a().generate_with(scale / 2.5, 4.0));
    let src_c = p.prepare(&datasets::system_c().generate_with(scale, 4.0));
    let history = datasets::system_b().generate_with(scale, 4.0);
    let target = p.prepare(&history);
    let (model, _) = p.fit(&[&src_a, &src_c], &target);

    let split_at = p.train_config.n_target * 5 + 10;
    let (warm, live) = history.records.split_at(split_at);
    let mut vectorizer = EventVectorizer::new(
        SystemId::SystemB,
        p.model_config.embed_dim,
        LeiConfig::default(),
    );
    vectorizer.warm_start(warm.iter().map(|r| r.message.as_str()));
    let source: Vec<RawLog> = live
        .iter()
        .map(|r| RawLog {
            system: "b".into(),
            timestamp: r.timestamp,
            message: r.message.clone(),
        })
        .collect();
    let scorer = ModelScorer::new(model);
    let run = |source: Vec<RawLog>, config: PipelineConfig| {
        let sink = MemorySink::new();
        let summary = run_pipeline_with(
            source,
            vectorizer.clone(),
            scorer.clone(),
            sink.clone(),
            config,
        );
        (summary, sink)
    };
    let mut sweep = Vec::new();
    let mut record =
        |label: &str, tenants: usize, config: &PipelineConfig, logs: u64, tput: f64| {
            println!("  {label:<34} {tput:>9.0} logs/s");
            sweep.push(SweepPoint {
                label: label.to_string(),
                partitions: config.partitions,
                batch_windows: config.batch_windows,
                score_cache: config.score_cache,
                tenants,
                logs,
                logs_per_sec: tput,
            });
        };

    // ---- baseline: the pre-batching serving path -----------------------
    println!("sweep ({} live logs per run):", source.len());
    let baseline_cfg = PipelineConfig::unbatched();
    let (baseline, baseline_sink) = run(source.clone(), baseline_cfg.clone());
    record(
        "unbatched 1 worker (baseline)",
        1,
        &baseline_cfg,
        baseline.logs,
        baseline.throughput,
    );

    // ---- batching axis: one worker, growing micro-batches --------------
    let batch_axis: &[usize] = if quick_mode() { &[4, 64] } else { &[4, 16, 64] };
    for &batch_windows in batch_axis {
        let config = PipelineConfig {
            partitions: 1,
            batch_windows,
            ..PipelineConfig::default()
        };
        let (s, _) = run(source.clone(), config.clone());
        record(
            &format!("batch {batch_windows} + cache, 1 worker"),
            1,
            &config,
            s.logs,
            s.throughput,
        );
    }

    // ---- worker axis: four tenant streams over growing shard counts ----
    let tenants = spread_tenants(4);
    let multi = retenant(&source, &tenants);
    let worker_axis: &[usize] = if quick_mode() { &[4] } else { &[1, 2, 4] };
    for &partitions in worker_axis {
        let config = PipelineConfig {
            partitions,
            ..PipelineConfig::default()
        };
        let (s, _) = run(multi.clone(), config.clone());
        record(
            &format!("batch 64 + cache, {partitions} worker(s), 4 tenants"),
            4,
            &config,
            s.logs,
            s.throughput,
        );
    }

    // ---- headline: the default serving configuration -------------------
    let (s, default_sink) = run(source.clone(), PipelineConfig::default());
    record(
        "defaults (batch 64, 4 workers)",
        1,
        &PipelineConfig::default(),
        s.logs,
        s.throughput,
    );

    // Determinism smoke: batching, caching, and sharding must not change
    // a single report bit relative to the unbatched baseline.
    let base_reports = baseline_sink.reports();
    let default_reports = default_sink.reports();
    assert_eq!(
        base_reports.len(),
        default_reports.len(),
        "batched serving changed the report count"
    );
    for (a, b) in base_reports.iter().zip(&default_reports) {
        assert_eq!(
            a.probability.to_bits(),
            b.probability.to_bits(),
            "batched serving changed a score"
        );
        assert_eq!(a, b, "batched serving changed a report");
    }
    println!("determinism: default config reproduces the baseline bit for bit");

    let out = Summary {
        logs: s.logs,
        windows: s.windows,
        pattern_hits: s.pattern_hits,
        cache_hits: s.cache_hits,
        model_calls: s.model_calls,
        reports: s.reports,
        new_templates: s.new_templates,
        throughput_logs_per_sec: s.throughput,
        baseline_logs_per_sec: baseline.throughput,
        speedup_vs_unbatched: s.throughput / baseline.throughput.max(1e-9),
        sweep,
    };
    println!(
        "logs {}  windows {}  fast {} ({:.1}%)  cache {}  model {}  reports {}  new-templates {}",
        out.logs,
        out.windows,
        out.pattern_hits,
        100.0 * out.pattern_hits as f64 / out.windows.max(1) as f64,
        out.cache_hits,
        out.model_calls,
        out.reports,
        out.new_templates
    );
    println!(
        "throughput: {:.0} logs/s ({:.1}x over the unbatched path)",
        out.throughput_logs_per_sec, out.speedup_vs_unbatched
    );
    write_result("fig7_pipeline_throughput", &out);
}
