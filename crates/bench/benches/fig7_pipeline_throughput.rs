//! Fig. 7 regenerator: streams a live target log feed through the full
//! deployment pipeline (collect → buffer → window → pattern-library →
//! model → report) and reports throughput and fast-path effectiveness.

use logsynergy::api::Pipeline;
use logsynergy_bench::{quick_mode, write_result};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, SystemId};
use logsynergy_pipeline::{run_pipeline, EventVectorizer, MemorySink, ModelScorer, RawLog};
use serde::Serialize;

#[derive(Serialize)]
struct Summary {
    logs: u64,
    windows: u64,
    fast_hits: u64,
    model_calls: u64,
    reports: u64,
    new_templates: usize,
    throughput_logs_per_sec: f64,
}

fn main() {
    let scale = if quick_mode() { 0.006 } else { 0.02 };
    println!("training a model for System B, then streaming its live logs…");
    let mut p = Pipeline::scaled();
    p.train_config.epochs = 4;
    p.train_config.n_source = 800;
    p.train_config.n_target = 200;
    let src_a = p.prepare(&datasets::system_a().generate_with(scale / 2.5, 4.0));
    let src_c = p.prepare(&datasets::system_c().generate_with(scale, 4.0));
    let history = datasets::system_b().generate_with(scale, 4.0);
    let target = p.prepare(&history);
    let (model, _) = p.fit(&[&src_a, &src_c], &target);

    let split_at = p.train_config.n_target * 5 + 10;
    let (warm, live) = history.records.split_at(split_at);
    let mut vectorizer = EventVectorizer::new(
        SystemId::SystemB,
        p.model_config.embed_dim,
        LeiConfig::default(),
    );
    vectorizer.warm_start(warm.iter().map(|r| r.message.as_str()));
    let source: Vec<RawLog> = live
        .iter()
        .map(|r| RawLog {
            system: "b".into(),
            timestamp: r.timestamp,
            message: r.message.clone(),
        })
        .collect();

    let sink = MemorySink::new();
    let s = run_pipeline(source, vectorizer, ModelScorer::new(model), sink);
    let out = Summary {
        logs: s.logs,
        windows: s.windows,
        fast_hits: s.fast_hits,
        model_calls: s.model_calls,
        reports: s.reports,
        new_templates: s.new_templates,
        throughput_logs_per_sec: s.throughput,
    };
    println!(
        "logs {}  windows {}  fast {} ({:.1}%)  model {}  reports {}  new-templates {}",
        out.logs,
        out.windows,
        out.fast_hits,
        100.0 * out.fast_hits as f64 / out.windows.max(1) as f64,
        out.model_calls,
        out.reports,
        out.new_templates
    );
    println!("throughput: {:.0} logs/s", out.throughput_logs_per_sec);
    write_result("fig7_pipeline_throughput", &out);
}
