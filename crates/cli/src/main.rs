//! `logsynergy` — the LogSynergy-RS command line.
//!
//! ```text
//! logsynergy generate   --system bgl --logs 20000 --out bgl.log
//! logsynergy train      --target thunderbird --out model.json
//! logsynergy detect     --model model.json --target thunderbird
//! logsynergy experiment table4 [--quick]
//! logsynergy pipeline   --target system-b
//! ```

mod args;

use std::process::ExitCode;

use args::Args;
use logsynergy::api::Pipeline;
use logsynergy::detector::Detector;
use logsynergy::persist;
use logsynergy_eval::experiments::{self, sources_of};
use logsynergy_eval::{
    prepare_group, report, run_method, ExperimentConfig, MethodKind, Prf, SystemData,
};
use logsynergy_lei::LeiConfig;
use logsynergy_loggen::{datasets, SystemId};
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MessagingSink, ModelScorer, PipelineConfig, RawLog,
};

const USAGE: &str = "\
logsynergy <command> [options]

commands:
  generate    synthesize a system's log stream
                --system <bgl|spirit|thunderbird|system-a|system-b|system-c>
                --logs <n>          target log-line count (default 20000)
                --boost <f>         anomaly density boost (default 3)
                --out <path>        write messages (default stdout)
                --labels <path>     also write per-line 0/1 labels
  train       train LogSynergy for a target system (sources = its group)
                --target <system>   required
                --logs <n>          logs per dataset (default 30000)
                --epochs <n>        training epochs (default 5)
                --out <path>        save the trained model (default model.json)
                --metrics-out <p>   write a JSON telemetry snapshot when done
                --metrics-listen <a> serve /metrics over HTTP while running
  detect      score a target's held-out stream with a saved model
                --model <path>      required
                --target <system>   required (must match training)
                --logs <n>          must match training (default 30000)
  experiment  regenerate a paper artifact
                <table3|table4|table5|fig4a|fig5|fig6|fig8>  [--quick]
  pipeline    run the Fig. 7 deployment demo for a target system
                --target <system>   (default system-b)
                --workers <n>       buffer partitions / detection workers (default 4)
                --batch <n>         micro-batch window cap per model call (default 64)
                --cache <n>         window-score LRU capacity, 0 disables (default 4096)
                --max-retries <n>   per-batch retry budget for transient model
                                    failures and panicking attempts (default 2)
                --shed-watermark <n> queue depth above which batches are served
                                    from the cheap tiers only, 0 disables (default 0)
                --library-capacity <n> per-worker pattern-library LRU capacity,
                                    0 = unbounded (default 0)
                --core-budget <n>   kernel-thread budget split across workers,
                                    0 = auto (default 0); composes with
                                    LOGSYNERGY_NN_THREADS and --workers
                --quant             serve with the calibrated int8 scorer
                                    (requires a build with --features quant)
                --wal-dir <p>       durable mode: write-ahead-log every record
                                    before detection and resume from the
                                    per-partition cursors (see docs/wal.md)
                --metrics-out <p>   write a JSON telemetry snapshot when done
                --metrics-listen <a> serve /metrics over HTTP while running
  serve       run the multi-tenant TCP ingest daemon (see docs/ingest.md);
              SIGTERM/SIGINT triggers a graceful drain and prints a final
              accounting summary as JSON on stdout
                --tenants-file <p>  required; tenant/token/quota config,
                                    hot-reloaded while running
                --listen <addr>     bind address (default 127.0.0.1:4517;
                                    port 0 picks an ephemeral port)
                --target <system>   system the quick-trained model serves
                                    (default system-b)
                --drain-timeout <s> in-flight flush budget on shutdown
                                    (default 5)
                --workers <n>       buffer partitions / detection workers
                                    (default 4)
                --batch <n>         micro-batch window cap (default 64)
                --cache <n>         window-score LRU capacity (default 4096)
                --shed-watermark <n> queue depth above which ingest answers
                                    503 shed frames, 0 disables (default 0)
                --wal-dir <p>       durable mode: log every accepted record
                                    before acknowledging it and replay
                                    unacked records on restart (docs/wal.md)
                --ingest-batch <n>  records a handler group-commits per
                                    partition flush; 1 = per-record
                                    (default 64)
                --ingest-batch-deadline-ms <n> longest a record waits in a
                                    handler micro-batch before a forced
                                    flush (default 2)
                --addr-file <p>     write the bound addresses as JSON once
                                    the daemon is ready
                --metrics-out <p>   write a JSON telemetry snapshot when done
                --metrics-listen <a> serve /metrics over HTTP while running
";

/// Optional observability for a command: an HTTP exporter held open for the
/// command's lifetime (`--metrics-listen`) and a JSON snapshot written once
/// the work is done (`--metrics-out`).
struct Metrics {
    out: Option<String>,
    server: Option<logsynergy_telemetry::MetricsServer>,
}

impl Metrics {
    fn start(a: &Args) -> Result<Self, String> {
        let server = match a.get("metrics-listen") {
            Some(addr) => {
                let s = logsynergy_telemetry::serve(addr)
                    .map_err(|e| format!("--metrics-listen {addr}: {e}"))?;
                eprintln!("serving metrics on http://{}/metrics", s.addr());
                Some(s)
            }
            None => None,
        };
        Ok(Metrics {
            out: a.get("metrics-out").map(str::to_string),
            server,
        })
    }

    fn finish(self) -> Result<(), String> {
        if let Some(path) = &self.out {
            let json = logsynergy_telemetry::json_snapshot(logsynergy_telemetry::global());
            std::fs::write(path, json).map_err(|e| format!("--metrics-out {path}: {e}"))?;
            eprintln!("wrote metrics snapshot to {path}");
        }
        drop(self.server);
        Ok(())
    }
}

fn system_of(name: &str) -> Result<SystemId, String> {
    match name.to_ascii_lowercase().as_str() {
        "bgl" => Ok(SystemId::Bgl),
        "spirit" => Ok(SystemId::Spirit),
        "thunderbird" | "tbird" => Ok(SystemId::Thunderbird),
        "system-a" | "a" => Ok(SystemId::SystemA),
        "system-b" | "b" => Ok(SystemId::SystemB),
        "system-c" | "c" => Ok(SystemId::SystemC),
        other => Err(format!("unknown system: {other}")),
    }
}

fn cfg_from(a: &Args) -> Result<ExperimentConfig, String> {
    let mut cfg = if a.flag("quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    cfg.logs_per_dataset = a.num("logs", cfg.logs_per_dataset)?;
    cfg.epochs = a.num("epochs", cfg.epochs)?;
    cfg.n_source = a.num("n-source", cfg.n_source)?;
    cfg.n_target = a.num("n-target", cfg.n_target)?;
    Ok(cfg)
}

fn cmd_generate(a: &Args) -> Result<(), String> {
    let system = system_of(a.get("system").ok_or("--system is required")?)?;
    let logs: usize = a.num("logs", 20_000usize)?;
    let boost: f64 = a.num("boost", 3.0f64)?;
    let spec = datasets::spec_for(system);
    let scale = (logs as f64 / spec.n_logs as f64).min(1.0);
    let ds = spec.generate_with(scale, boost);
    let mut out = String::with_capacity(ds.records.len() * 64);
    let mut labels = String::with_capacity(ds.records.len() * 2);
    for r in &ds.records {
        out.push_str(&r.message);
        out.push('\n');
        labels.push(if r.anomalous { '1' } else { '0' });
        labels.push('\n');
    }
    match a.get("out") {
        Some(path) => std::fs::write(path, out).map_err(|e| e.to_string())?,
        None => print!("{out}"),
    }
    if let Some(path) = a.get("labels") {
        std::fs::write(path, labels).map_err(|e| e.to_string())?;
    }
    eprintln!(
        "generated {} logs ({} anomalous) for {}",
        ds.records.len(),
        ds.num_anomalous_logs(),
        system.name()
    );
    Ok(())
}

fn build_pipeline(cfg: &ExperimentConfig) -> Pipeline {
    let mut p = Pipeline::scaled();
    p.model_config = cfg.model_config(2);
    p.train_config = cfg.train_config();
    p
}

fn cmd_train(a: &Args) -> Result<(), String> {
    let target = system_of(a.get("target").ok_or("--target is required")?)?;
    let cfg = cfg_from(a)?;
    let out = a.get_or("out", "model.json");
    let metrics = Metrics::start(a)?;
    let sources = sources_of(target);
    eprintln!(
        "training LogSynergy for {} with sources {:?}…",
        target.name(),
        sources.iter().map(|s| s.name()).collect::<Vec<_>>()
    );
    let p = build_pipeline(&cfg);
    let src_data: Vec<_> = sources
        .iter()
        .map(|&s| p.prepare(&cfg.generate(s)))
        .collect();
    let tgt_data = p.prepare(&cfg.generate(target));
    let src_refs: Vec<_> = src_data.iter().collect();
    let (model, history) = p.fit(&src_refs, &tgt_data);
    persist::save(&model, out).map_err(|e| e.to_string())?;
    eprintln!(
        "saved {} ({} parameters, final loss {:.4})",
        out,
        model.num_parameters(),
        history.last().map(|h| h.total).unwrap_or(f32::NAN)
    );
    metrics.finish()
}

fn cmd_detect(a: &Args) -> Result<(), String> {
    let target = system_of(a.get("target").ok_or("--target is required")?)?;
    let model_path = a.get("model").ok_or("--model is required")?;
    let cfg = cfg_from(a)?;
    let model = persist::load(model_path).map_err(|e| e.to_string())?;
    let p = build_pipeline(&cfg);
    let tgt = p.prepare(&cfg.generate(target));
    let (_, test) = tgt.split(cfg.n_target, cfg.max_test);
    let truth: Vec<bool> = test.iter().map(|s| s.label).collect();
    let pred = Detector::new(&model).detect(&test, &tgt.event_embeddings);
    let prf = Prf::evaluate(&pred, &truth);
    println!(
        "{}: {} sequences, {} anomalous | P {:.2}%  R {:.2}%  F1 {:.2}%",
        target.name(),
        test.len(),
        truth.iter().filter(|&&t| t).count(),
        prf.precision,
        prf.recall,
        prf.f1
    );
    Ok(())
}

fn cmd_experiment(a: &Args) -> Result<(), String> {
    let which = a
        .positionals
        .first()
        .ok_or("experiment name required")?
        .as_str();
    let cfg = cfg_from(a)?;
    match which {
        "table3" => println!("{}", report::render_table3(&experiments::table3(&cfg))),
        "table4" => println!(
            "{}",
            report::render_group_table("Table IV: public datasets", &experiments::table4(&cfg))
        ),
        "table5" => println!(
            "{}",
            report::render_group_table("Table V: ISP datasets", &experiments::table5(&cfg))
        ),
        "fig4a" => {
            let targets = [SystemId::Thunderbird, SystemId::SystemB];
            println!(
                "{}",
                report::render_sweep(
                    "Fig. 4a: F1 vs lambda_MI",
                    &experiments::fig4a(&targets, &cfg)
                )
            );
        }
        "fig5" => {
            let targets = [SystemId::Thunderbird, SystemId::SystemB];
            println!(
                "{}",
                report::render_ablation(&experiments::fig5(&targets, &cfg))
            );
        }
        "fig6" => println!("{}", report::render_transfers(&experiments::fig6(&cfg))),
        "fig8" => println!(
            "{}",
            report::render_case_study(&experiments::fig8_case_study(&cfg))
        ),
        other => return Err(format!("unknown experiment: {other}")),
    }
    Ok(())
}

fn cmd_single(a: &Args) -> Result<(), String> {
    // Hidden utility: run one method on one target (used for debugging).
    let target = system_of(a.get("target").ok_or("--target is required")?)?;
    let cfg = cfg_from(a)?;
    let mut systems = sources_of(target);
    systems.push(target);
    let data = prepare_group(&systems, &cfg);
    let n = data.len();
    let sources: Vec<&SystemData> = data[..n - 1].iter().collect();
    for kind in MethodKind::TABLE_METHODS {
        let r = run_method(kind, &sources, &data[n - 1], &cfg);
        println!(
            "{:<22} P {:>6.2}  R {:>6.2}  F1 {:>6.2}",
            r.method, r.prf.precision, r.prf.recall, r.prf.f1
        );
    }
    Ok(())
}

fn cmd_pipeline(a: &Args) -> Result<(), String> {
    let target = system_of(a.get_or("target", "system-b"))?;
    let metrics = Metrics::start(a)?;
    let cfg = ExperimentConfig::quick();
    let p = build_pipeline(&cfg);
    let sources = sources_of(target);
    eprintln!("training a model for {}…", target.name());
    let src_data: Vec<_> = sources
        .iter()
        .map(|&s| p.prepare(&cfg.generate(s)))
        .collect();
    let history = cfg.generate(target);
    let tgt_data = p.prepare(&history);
    let src_refs: Vec<_> = src_data.iter().collect();
    let (model, _) = p.fit(&src_refs, &tgt_data);

    let split_at = cfg.n_target * 5 + 10;
    let (warm, live) = history
        .records
        .split_at(split_at.min(history.records.len()));
    let mut vectorizer =
        EventVectorizer::new(target, p.model_config.embed_dim, LeiConfig::default());
    vectorizer.warm_start(warm.iter().map(|r| r.message.as_str()));
    let source: Vec<RawLog> = live
        .iter()
        .map(|r| RawLog {
            system: target.name().to_string(),
            timestamp: r.timestamp,
            message: r.message.clone(),
        })
        .collect();
    let serving = PipelineConfig {
        partitions: a.num("workers", PipelineConfig::default().partitions)?,
        batch_windows: a.num("batch", PipelineConfig::default().batch_windows)?,
        score_cache: a.num("cache", PipelineConfig::default().score_cache)?,
        max_retries: a.num("max-retries", PipelineConfig::default().max_retries)?,
        shed_watermark: a.num("shed-watermark", PipelineConfig::default().shed_watermark)?,
        library_capacity: a.num(
            "library-capacity",
            PipelineConfig::default().library_capacity,
        )?,
        core_budget: a.num("core-budget", PipelineConfig::default().core_budget)?,
        wal: a
            .get("wal-dir")
            .map(|d| logsynergy_pipeline::WalOptions::at(std::path::PathBuf::from(d))),
        ..PipelineConfig::default()
    };
    let sink = MessagingSink::new();
    let s = if a.flag("quant") {
        #[cfg(feature = "quant")]
        {
            // Calibrate the int8 scorer on the warm-start segment, replayed
            // through a clone of the serving vectorizer so activation ranges
            // are measured against the embeddings the pipeline will actually
            // score with.
            let mut cal = vectorizer.clone();
            let ids: Vec<u32> = warm.iter().map(|r| cal.ingest(&r.message)).collect();
            let windows: Vec<&[u32]> = ids.chunks(10).filter(|c| c.len() == 10).take(256).collect();
            let scorer =
                logsynergy_pipeline::QuantScorer::calibrated(&model, &windows, cal.table());
            eprintln!(
                "serving tier: int8 (calibrated on {} windows)",
                windows.len()
            );
            run_pipeline_with(source, vectorizer, scorer, sink.clone(), serving)
        }
        #[cfg(not(feature = "quant"))]
        {
            return Err("--quant requires a binary built with --features quant \
                 (cargo build -p logsynergy-cli --features quant)"
                .into());
        }
    } else {
        run_pipeline_with(
            source,
            vectorizer,
            ModelScorer::new(model),
            sink.clone(),
            serving,
        )
    };
    println!(
        "logs {}  windows {}  fast-path {:.1}%  cache hits {}  model calls {}  reports {}  {:.0} logs/s",
        s.logs,
        s.windows,
        100.0 * s.pattern_hits as f64 / s.windows.max(1) as f64,
        s.cache_hits,
        s.model_calls,
        s.reports,
        s.throughput
    );
    if s.degraded + s.shed + s.quarantined + s.worker_restarts > 0 {
        println!(
            "robustness: degraded {}  shed {}  quarantined {}  retries {}  worker restarts {}",
            s.degraded, s.shed, s.quarantined, s.retries, s.worker_restarts
        );
    }
    if let Some((sms, _)) = sink.outbox().first() {
        println!("first alert: {sms}");
    }
    metrics.finish()
}

fn cmd_serve(a: &Args) -> Result<(), String> {
    let target = system_of(a.get_or("target", "system-b"))?;
    let tenants_path = a.get("tenants-file").ok_or("--tenants-file is required")?;
    let specs = logsynergy_serve::load_tenants(std::path::Path::new(tenants_path))?;
    let metrics = Metrics::start(a)?;

    // Same quick-trained model and warm-started vectorizer as the Fig. 7
    // pipeline demo: the daemon serves real verdicts, just for a model
    // trained on synthesized history rather than a persisted artifact.
    let cfg = ExperimentConfig::quick();
    let p = build_pipeline(&cfg);
    let sources = sources_of(target);
    eprintln!("training a model for {}…", target.name());
    let src_data: Vec<_> = sources
        .iter()
        .map(|&s| p.prepare(&cfg.generate(s)))
        .collect();
    let history = cfg.generate(target);
    let tgt_data = p.prepare(&history);
    let src_refs: Vec<_> = src_data.iter().collect();
    let (model, _) = p.fit(&src_refs, &tgt_data);
    let mut vectorizer =
        EventVectorizer::new(target, p.model_config.embed_dim, LeiConfig::default());
    vectorizer.warm_start(history.records.iter().map(|r| r.message.as_str()));

    let defaults = logsynergy_serve::ServeConfig::default();
    let serve_config = logsynergy_serve::ServeConfig {
        listen: a.get_or("listen", "127.0.0.1:4517").to_string(),
        drain_timeout: std::time::Duration::from_secs(a.num("drain-timeout", 5u64)?),
        ingest_batch: a.num("ingest-batch", defaults.ingest_batch)?,
        ingest_batch_deadline: std::time::Duration::from_millis(a.num(
            "ingest-batch-deadline-ms",
            defaults.ingest_batch_deadline.as_millis() as u64,
        )?),
        pipeline: PipelineConfig {
            partitions: a.num("workers", PipelineConfig::default().partitions)?,
            batch_windows: a.num("batch", PipelineConfig::default().batch_windows)?,
            score_cache: a.num("cache", PipelineConfig::default().score_cache)?,
            shed_watermark: a.num("shed-watermark", PipelineConfig::default().shed_watermark)?,
            wal: a
                .get("wal-dir")
                .map(|d| logsynergy_pipeline::WalOptions::at(std::path::PathBuf::from(d))),
            ..PipelineConfig::default()
        },
        ..logsynergy_serve::ServeConfig::default()
    };
    let sink = MessagingSink::new();
    let daemon = logsynergy_serve::start(
        serve_config,
        specs,
        Some(std::path::PathBuf::from(tenants_path)),
        vectorizer,
        ModelScorer::new(model),
        sink,
    )
    .map_err(|e| format!("cannot start ingest daemon: {e}"))?;
    eprintln!(
        "ingest daemon listening on {} ({} tenants); SIGTERM to drain",
        daemon.addr(),
        daemon.tenant_count()
    );
    if let Some(path) = a.get("addr-file") {
        let metrics_addr = match &metrics.server {
            Some(s) => format!("\"{}\"", s.addr()),
            None => "null".to_string(),
        };
        let json = format!(
            "{{\"listen\":\"{}\",\"metrics\":{metrics_addr}}}\n",
            daemon.addr()
        );
        std::fs::write(path, json).map_err(|e| format!("--addr-file {path}: {e}"))?;
    }

    let term = logsynergy_serve::signals::termination_flag();
    while !term.load(std::sync::atomic::Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("termination signal received; draining…");
    // Ingest totals are snapshotted after the drain flushes in-flight
    // connections, so `ingest.accepted` covers every record the
    // pipeline summary counts.
    let (stats, s) = daemon.drain_with_stats();
    println!(
        "{{\"ingest\":{{\"accepted\":{},\"rejected\":{},\"shed\":{},\"parse_errors\":{},\
         \"abusive_disconnects\":{},\"connections\":{}}},\
         \"pipeline\":{{\"logs\":{},\"windows\":{},\"pattern_hits\":{},\"cache_hits\":{},\
         \"model_calls\":{},\"degraded\":{},\"shed\":{},\"quarantined\":{},\"reports\":{}}}}}",
        stats.accepted,
        stats.rejected,
        stats.shed,
        stats.parse_errors,
        stats.abusive_disconnects,
        stats.connections,
        s.logs,
        s.windows,
        s.pattern_hits,
        s.cache_hits,
        s.model_calls,
        s.degraded,
        s.shed,
        s.quarantined,
        s.reports
    );
    metrics.finish()
}

fn run() -> Result<(), String> {
    let a = Args::parse(std::env::args().skip(1)).map_err(|e| format!("{e}\n\n{USAGE}"))?;
    match a.command.as_str() {
        "generate" => cmd_generate(&a),
        "train" => cmd_train(&a),
        "detect" => cmd_detect(&a),
        "experiment" => cmd_experiment(&a),
        "pipeline" => cmd_pipeline(&a),
        "serve" => cmd_serve(&a),
        "battery" => cmd_single(&a),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command: {other}\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
