//! Minimal `--flag value` argument parsing (no external dependency).

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    /// Remaining positionals.
    pub positionals: Vec<String>,
    flags: HashMap<String, String>,
}

impl Args {
    /// Parses `std::env::args` (skipping the binary name).
    pub fn parse(mut argv: impl Iterator<Item = String>) -> Result<Args, String> {
        let command = argv.next().ok_or("missing subcommand")?;
        let mut flags = HashMap::new();
        let mut positionals = Vec::new();
        let rest: Vec<String> = argv.collect();
        let mut i = 0;
        while i < rest.len() {
            let a = &rest[i];
            if let Some(key) = a.strip_prefix("--") {
                if i + 1 >= rest.len() || rest[i + 1].starts_with("--") {
                    // Boolean flag.
                    flags.insert(key.to_string(), "true".to_string());
                    i += 1;
                } else {
                    flags.insert(key.to_string(), rest[i + 1].clone());
                    i += 2;
                }
            } else {
                positionals.push(a.clone());
                i += 1;
            }
        }
        Ok(Args {
            command,
            positionals,
            flags,
        })
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(|s| s.as_str())
    }

    /// String option with default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parsed numeric option with default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| format!("invalid --{key} value: {v}")),
        }
    }

    /// Boolean flag.
    pub fn flag(&self, key: &str) -> bool {
        self.get(key).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(|x| x.to_string())).unwrap()
    }

    #[test]
    fn parses_flags_and_positionals() {
        let a = parse("train table4 --epochs 7 --quick --out m.json");
        assert_eq!(a.command, "train");
        assert_eq!(a.positionals, vec!["table4"]);
        assert_eq!(a.num("epochs", 0usize).unwrap(), 7);
        assert!(a.flag("quick"));
        assert_eq!(a.get("out"), Some("m.json"));
        assert_eq!(a.get_or("missing", "d"), "d");
    }

    #[test]
    fn rejects_empty() {
        assert!(Args::parse(std::iter::empty()).is_err());
    }

    #[test]
    fn bad_number_is_an_error() {
        let a = parse("x --epochs nope");
        assert!(a.num("epochs", 1usize).is_err());
    }
}
