//! The ingest daemon: a TCP front door feeding the partitioned log
//! buffer and its detection workers.
//!
//! ```text
//!             ┌───────────────┐   bounded    ┌────────────────────┐
//!  clients ──▶│ accept thread │──────────────▶ handler thread pool │
//!             └───────────────┘  conn queue  └─────────┬──────────┘
//!                                   auth · quota · shed │ offer_to
//!                                             ┌─────────▼─────────┐
//!                                             │ LogBuffer (shards)│
//!                                             └─────────┬─────────┘
//!                                             ┌─────────▼─────────┐
//!                                             │  DetectionPool    │
//!                                             └───────────────────┘
//! ```
//!
//! One accept thread hands sockets to a small fixed pool of connection
//! handlers (a handler owns a connection for its lifetime, so the pool
//! size bounds concurrent streaming clients; further connections queue).
//! Handlers parse NDJSON / syslog lines (see [`crate::proto`]), enforce
//! per-tenant token-bucket quotas and fair-share shard routing (see
//! [`crate::tenants`]), apply the shed watermark, and push accepted
//! records through [`Producer::offer_to`]. On drain the daemon stops
//! accepting, lets in-flight connections flush (bounded by the drain
//! timeout), drops every producer handle, and joins the detection pool
//! into a final [`PipelineSummary`] whose six-bucket accounting is
//! exact.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender};
use logsynergy::faults::{self, points, Fault, PANIC_MARKER};
use logsynergy_pipeline::buffer::{LogBuffer, Producer};
use logsynergy_pipeline::detect::SequenceScorer;
use logsynergy_pipeline::report::ReportSink;
use logsynergy_pipeline::service::{DetectionPool, PipelineConfig, PipelineSummary};
use logsynergy_pipeline::{start_durable, DurableProducer, EventVectorizer, PipelineError, RawLog};
use logsynergy_telemetry as telemetry;
use parking_lot::Mutex;

use crate::proto::{self, ClientLine};
use crate::tenants::{TenantHandle, TenantSpec, TenantTable};

/// Write an over-quota / shed / malformed frame on the first rejection
/// and then once per this many — a flooding client must not buy a
/// response per offending line.
const ERROR_FRAME_EVERY: u64 = 1024;

/// Longest client line the daemon will buffer while waiting for the
/// terminating newline. A newline-free byte stream would otherwise grow
/// the line buffer without bound; past this the connection is answered
/// with a 400 frame and closed.
const MAX_LINE_BYTES: usize = 64 * 1024;

/// Tuning knobs for the ingest daemon.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks an ephemeral port).
    pub listen: String,
    /// Connection-handler pool size — the bound on concurrently
    /// *streaming* clients; excess accepted connections wait queued.
    pub handler_threads: usize,
    /// Accepted-but-unhandled connection queue depth; the accept thread
    /// blocks (TCP backlog backpressure) when it is full.
    pub pending_connections: usize,
    /// Budget for in-flight connections to flush after drain starts;
    /// past it handlers close connections mid-stream.
    pub drain_timeout: Duration,
    /// How often the tenants file is polled for changes (mtime-based
    /// hot reload); also the shutdown-latency bound of that thread.
    pub reload_poll: Duration,
    /// Per-read socket timeout: the granularity at which an idle
    /// connection's handler notices the stop flag.
    pub idle_poll: Duration,
    /// A connection must authenticate within this budget or be closed —
    /// an unauthenticated socket may not camp on a handler slot.
    pub auth_deadline: Duration,
    /// Consecutive over-quota lines before the handler starts penalty
    /// sleeps (slow-read: the client's TCP window fills and its flood
    /// slows to the daemon's chosen pace).
    pub quota_slow_after: u64,
    /// The per-line penalty sleep once slow-read engages.
    pub quota_penalty: Duration,
    /// Consecutive over-quota lines before the connection is dropped
    /// outright as abusive.
    pub quota_disconnect_after: u64,
    /// Records a handler accumulates per partition before flushing them
    /// through the producer as one group commit (one partition-lock
    /// acquisition and, in durable mode, one WAL write+flush for the
    /// whole batch). `1` flushes every record immediately — the
    /// pre-batching behavior.
    pub ingest_batch: usize,
    /// Oldest a buffered record may grow before its connection's
    /// pending batches are force-flushed, so a trickling client is
    /// never more than roughly this far (plus one `idle_poll`) from
    /// its durability ack.
    pub ingest_batch_deadline: Duration,
    /// Detection-side configuration (partitions, capacity, shedding,
    /// retries — see the pipeline crate).
    pub pipeline: PipelineConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            listen: "127.0.0.1:0".into(),
            handler_threads: 4,
            pending_connections: 64,
            drain_timeout: Duration::from_secs(5),
            reload_poll: Duration::from_millis(500),
            idle_poll: Duration::from_millis(50),
            auth_deadline: Duration::from_secs(5),
            quota_slow_after: 64,
            quota_penalty: Duration::from_millis(2),
            quota_disconnect_after: 100_000,
            ingest_batch: 64,
            ingest_batch_deadline: Duration::from_millis(2),
            pipeline: PipelineConfig::default(),
        }
    }
}

/// Monotone ingest-side totals, across all tenants and connections.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Records enqueued into the buffer.
    pub accepted: u64,
    /// Records refused over quota (429).
    pub rejected: u64,
    /// Records shed at the watermark or a full shard (503).
    pub shed: u64,
    /// Lines that failed to parse (400).
    pub parse_errors: u64,
    /// Connections force-closed for sustained quota abuse.
    pub abusive_disconnects: u64,
    /// Connections accepted over the daemon's lifetime.
    pub connections: u64,
}

#[derive(Default)]
struct Totals {
    accepted: AtomicU64,
    rejected: AtomicU64,
    shed: AtomicU64,
    parse_errors: AtomicU64,
    abusive_disconnects: AtomicU64,
    connections: AtomicU64,
}

/// The daemon's front-door producer: plain in-memory, or routed
/// through the per-partition write-ahead log when the pipeline config
/// carries a WAL directory (`--wal-dir`). In durable mode a record is
/// appended and flushed to the log *before* it is enqueued, so an
/// accept acknowledgement means the record survives a daemon crash.
enum IngestProducer {
    Plain(Producer),
    Durable(DurableProducer),
}

impl IngestProducer {
    fn depth(&self, partition: usize) -> u64 {
        match self {
            IngestProducer::Plain(p) => p.depth(partition),
            IngestProducer::Durable(p) => p.depth(partition),
        }
    }

    /// Group commit of a handler micro-batch. The durable producer
    /// appends and flushes the whole batch under one partition-lock
    /// acquisition ([`DurableProducer::offer_batch`]); the plain
    /// producer has no batch primitive, so it degrades to per-record
    /// offers with the same return shape. `Err` hands back the records
    /// that did not land — the accepted prefix is `batch_len -
    /// suffix_len`.
    fn offer_batch(
        &self,
        partition: usize,
        logs: Vec<RawLog>,
    ) -> Result<usize, (Vec<RawLog>, PipelineError)> {
        match self {
            IngestProducer::Plain(p) => {
                let mut it = logs.into_iter();
                let mut sent = 0usize;
                for log in it.by_ref() {
                    match p.offer_to(partition, log) {
                        Ok(()) => sent += 1,
                        Err((log, e)) => {
                            let mut rest = vec![log];
                            rest.extend(it);
                            return Err((rest, e));
                        }
                    }
                }
                Ok(sent)
            }
            IngestProducer::Durable(p) => p.offer_batch(partition, logs),
        }
    }

    /// Blocking [`IngestProducer::offer_batch`]: exerts backpressure
    /// instead of refusing on a full shard.
    fn send_batch(
        &self,
        partition: usize,
        logs: Vec<RawLog>,
    ) -> Result<usize, (Vec<RawLog>, PipelineError)> {
        match self {
            IngestProducer::Plain(p) => {
                let mut it = logs.into_iter();
                let mut sent = 0usize;
                for log in it.by_ref() {
                    match p.send_to(partition, log) {
                        Ok(()) => sent += 1,
                        Err((log, e)) => {
                            let mut rest = vec![log];
                            rest.extend(it);
                            return Err((rest, e));
                        }
                    }
                }
                Ok(sent)
            }
            IngestProducer::Durable(p) => p.send_batch(partition, logs),
        }
    }
}

/// Everything a connection handler needs, shared across threads. The
/// single [`IngestProducer`] lives here: when the last `Arc<Shared>`
/// drops (after every daemon thread is joined), the buffer disconnects
/// and the detection workers run to end-of-stream.
struct Shared {
    stop: AtomicBool,
    drain_deadline: Mutex<Option<Instant>>,
    drain_timeout: Duration,
    started: Instant,
    producer: IngestProducer,
    tenants: TenantTable,
    shed_watermark: usize,
    partitions: usize,
    ingest_batch: usize,
    ingest_batch_deadline: Duration,
    idle_poll: Duration,
    auth_deadline: Duration,
    quota_slow_after: u64,
    quota_penalty: Duration,
    quota_disconnect_after: u64,
    totals: Totals,
    m_accepted: Arc<telemetry::Counter>,
    m_rejected: Arc<telemetry::Counter>,
    m_shed: Arc<telemetry::Counter>,
    m_parse_errors: Arc<telemetry::Counter>,
    m_abusive: Arc<telemetry::Counter>,
    m_connections: Arc<telemetry::Counter>,
    m_active: Arc<telemetry::Gauge>,
    m_accept_faults: Arc<telemetry::Counter>,
    m_handler_restarts: Arc<telemetry::Counter>,
    m_reload_errors: Arc<telemetry::Counter>,
    m_latency: Arc<telemetry::Histogram>,
}

impl Shared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn ingest_stats(&self) -> IngestStats {
        let t = &self.totals;
        IngestStats {
            accepted: t.accepted.load(Ordering::Relaxed),
            rejected: t.rejected.load(Ordering::Relaxed),
            shed: t.shed.load(Ordering::Relaxed),
            parse_errors: t.parse_errors.load(Ordering::Relaxed),
            abusive_disconnects: t.abusive_disconnects.load(Ordering::Relaxed),
            connections: t.connections.load(Ordering::Relaxed),
        }
    }

    fn past_drain_deadline(&self) -> bool {
        match *self.drain_deadline.lock() {
            Some(deadline) => Instant::now() >= deadline,
            None => false,
        }
    }
}

/// A running ingest daemon. Must be shut down with [`Daemon::drain`],
/// which yields the final detection summary; there is no implicit
/// drain-on-drop (dropping a live daemon leaks its threads).
pub struct Daemon {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: thread::JoinHandle<()>,
    handlers: Vec<thread::JoinHandle<()>>,
    reloader: Option<thread::JoinHandle<()>>,
    pool: DetectionPool,
}

/// Builds the buffer + detection pool and starts listening.
///
/// `tenants_path`, when given, is polled every
/// [`ServeConfig::reload_poll`] and hot-reloaded on mtime change (see
/// [`TenantTable::reload`]); `specs` is the initial tenant set (callers
/// normally pass `load_tenants(&path)?` output).
pub fn start<S, K>(
    config: ServeConfig,
    specs: Vec<TenantSpec>,
    tenants_path: Option<PathBuf>,
    vectorizer: EventVectorizer,
    scorer: S,
    sink: K,
) -> io::Result<Daemon>
where
    S: SequenceScorer + Clone + 'static,
    K: ReportSink + Clone + 'static,
{
    assert!(config.handler_threads > 0 && config.pending_connections > 0);
    let listener = TcpListener::bind(&config.listen)?;
    // Non-blocking accept, polled against the stop flag: shutdown must
    // never depend on a wake-up connection reaching the socket (which
    // can fail on an unroutable bind address or a flooded backlog and
    // would leave `drain()` joining a forever-blocked accept thread).
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    // Durable mode (`--wal-dir`): the detection pool resumes from the
    // per-partition cursors, parked unacked records are replayed into
    // the buffer before the first client connects, and every accepted
    // record is logged before it is acknowledged.
    let (pool, producer) = if config.pipeline.wal.is_some() {
        let durable = start_durable(vectorizer, scorer, sink, &config.pipeline)
            .map_err(|e| io::Error::other(format!("write-ahead log unavailable: {e}")))?;
        (durable.pool, IngestProducer::Durable(durable.producer))
    } else {
        let buffer = LogBuffer::new(
            config.pipeline.partitions,
            config.pipeline.partition_capacity,
        );
        let pool = DetectionPool::spawn(&buffer, vectorizer, scorer, sink, &config.pipeline);
        let producer = buffer.producer();
        drop(buffer); // the producer handle is now the only sender
        (pool, IngestProducer::Plain(producer))
    };

    let scope = telemetry::global().scoped("ingest");
    let shared = Arc::new(Shared {
        stop: AtomicBool::new(false),
        drain_deadline: Mutex::new(None),
        drain_timeout: config.drain_timeout,
        started: Instant::now(),
        tenants: TenantTable::new(specs, config.pipeline.partitions),
        shed_watermark: config.pipeline.shed_watermark,
        partitions: config.pipeline.partitions.max(1),
        ingest_batch: config.ingest_batch.max(1),
        ingest_batch_deadline: config.ingest_batch_deadline,
        idle_poll: config.idle_poll,
        auth_deadline: config.auth_deadline,
        quota_slow_after: config.quota_slow_after.max(1),
        quota_penalty: config.quota_penalty,
        quota_disconnect_after: config.quota_disconnect_after.max(1),
        totals: Totals::default(),
        m_accepted: scope.counter("accepted"),
        m_rejected: scope.counter("rejected"),
        m_shed: scope.counter("shed"),
        m_parse_errors: scope.counter("parse_errors"),
        m_abusive: scope.counter("abusive_disconnects"),
        m_connections: scope.counter("connections"),
        m_active: scope.gauge("connections.active"),
        m_accept_faults: scope.counter("accept.faults"),
        m_handler_restarts: scope.counter("handler.restarts"),
        m_reload_errors: scope.counter("config.reload_errors"),
        m_latency: scope.histogram("latency_us"),
        producer,
    });

    let (conn_tx, conn_rx) = bounded::<TcpStream>(config.pending_connections);
    let accept = {
        let shared = shared.clone();
        let drain_sweep = config.pending_connections;
        thread::Builder::new()
            .name("logsynergy-ingest-accept".into())
            .spawn(move || accept_loop(listener, conn_tx, shared, drain_sweep))?
    };
    let handlers = (0..config.handler_threads)
        .map(|i| {
            let shared = shared.clone();
            let rx = conn_rx.clone();
            thread::Builder::new()
                .name(format!("logsynergy-ingest-{i}"))
                .spawn(move || handler_loop(rx, shared))
        })
        .collect::<io::Result<Vec<_>>>()?;
    drop(conn_rx);
    let reloader = match tenants_path {
        Some(path) => Some({
            let shared = shared.clone();
            let poll = config.reload_poll.max(Duration::from_millis(10));
            thread::Builder::new()
                .name("logsynergy-ingest-reload".into())
                .spawn(move || reload_loop(path, poll, shared))?
        }),
        None => None,
    };

    Ok(Daemon {
        addr,
        shared,
        accept,
        handlers,
        reloader,
        pool,
    })
}

impl Daemon {
    /// The bound address (useful with a `:0` listen request).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Snapshot of the ingest-side totals. A snapshot taken on a live
    /// daemon can lag in-flight connections; for final accounting use
    /// [`Daemon::drain_with_stats`], whose snapshot is post-flush.
    pub fn ingest_stats(&self) -> IngestStats {
        self.shared.ingest_stats()
    }

    /// Live (non-revoked) tenant count — observes hot reloads.
    pub fn tenant_count(&self) -> usize {
        self.shared.tenants.len()
    }

    /// Asks the daemon to stop accepting and begin flushing; returns
    /// immediately. [`Daemon::drain`] calls this itself — use it only
    /// to begin shutdown early (e.g. from a signal-watcher thread).
    pub fn initiate_drain(&self) {
        {
            let mut deadline = self.shared.drain_deadline.lock();
            deadline.get_or_insert(Instant::now() + self.shared.drain_timeout);
        }
        self.shared.stop.store(true, Ordering::Relaxed);
        // The accept thread polls a non-blocking listener and notices
        // the flag within one idle_poll — no wake-up connection needed.
    }

    /// Graceful drain: stop accepting, give in-flight connections up to
    /// the configured drain timeout to flush, drop every producer, and
    /// join the detection workers. The returned summary's six-bucket
    /// accounting (`pattern + cache + model + degraded + shed +
    /// quarantined == windows`) covers exactly the records that were
    /// acknowledged as accepted.
    pub fn drain(self) -> PipelineSummary {
        self.drain_with_stats().1
    }

    /// [`Daemon::drain`], plus the final ingest totals. The snapshot is
    /// taken *after* every handler thread is joined, so records that
    /// in-flight connections flushed during the drain window are
    /// counted — a pre-drain [`Daemon::ingest_stats`] snapshot can show
    /// `accepted` short of the summary's `logs`.
    pub fn drain_with_stats(self) -> (IngestStats, PipelineSummary) {
        self.initiate_drain();
        let Daemon {
            shared,
            accept,
            handlers,
            reloader,
            pool,
            ..
        } = self;
        let _ = accept.join(); // drops the connection queue sender
        for h in handlers {
            let _ = h.join();
        }
        if let Some(r) = reloader {
            let _ = r.join();
        }
        let stats = shared.ingest_stats();
        // Every thread holding an Arc<Shared> is joined: this drop is the
        // last one, the producer disconnects, and the workers run to
        // end-of-stream.
        drop(shared);
        (stats, pool.join())
    }
}

fn accept_loop(
    listener: TcpListener,
    conn_tx: Sender<TcpStream>,
    shared: Arc<Shared>,
    drain_sweep: usize,
) {
    // The listener is non-blocking (see `start`): every WouldBlock pass
    // re-checks the stop flag, so drain never depends on a wake-up
    // connection reaching the socket.
    while !shared.stopping() {
        match listener.accept() {
            Ok((stream, _)) => {
                if !dispatch(stream, &conn_tx, &shared) {
                    return;
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                thread::sleep(shared.idle_poll);
            }
            // Transient accept failure (EMFILE, a reset mid-handshake):
            // back off a beat instead of spinning hot.
            Err(_) => thread::sleep(shared.idle_poll),
        }
    }
    // Sweep what raced drain initiation: a connection already in the
    // backlog when the flag flipped was sent before "stop accepting"
    // took effect, so it is still served — dropping it here would RST a
    // legitimate client mid-stream. The sweep is bounded so a flood
    // cannot extend the drain; anything past it gets the RST when the
    // listener drops.
    for _ in 0..drain_sweep {
        match listener.accept() {
            Ok((stream, _)) => {
                if !dispatch(stream, &conn_tx, &shared) {
                    return;
                }
            }
            Err(_) => break,
        }
    }
}

/// Admits one accepted connection into the handler queue. Returns
/// `false` only when the queue is gone (handlers exited) and the accept
/// loop should too.
fn dispatch(stream: TcpStream, conn_tx: &Sender<TcpStream>, shared: &Shared) -> bool {
    // Handlers rely on read timeouts, which need a blocking socket;
    // whether an accepted stream inherits the listener's non-blocking
    // mode is platform-dependent, so set it explicitly.
    if stream.set_nonblocking(false).is_err() {
        return true;
    }
    // `ingest.accept` fault point: an injected panic exercises the
    // isolation seam (the connection is lost, the daemon is not), a
    // transient error models an accept-path failure.
    let admitted = catch_unwind(AssertUnwindSafe(|| {
        match faults::inject(points::INGEST_ACCEPT) {
            Some(Fault::Panic) => panic!("{PANIC_MARKER}: ingest.accept"),
            Some(Fault::TransientError) => false,
            Some(Fault::Latency(d)) => {
                thread::sleep(d);
                true
            }
            Some(Fault::CorruptScore) | None => true,
        }
    }));
    match admitted {
        Ok(true) => {
            shared.totals.connections.fetch_add(1, Ordering::Relaxed);
            shared.m_connections.inc();
            // Blocking send: a full queue backpressures onto the TCP
            // backlog rather than accepting unboundedly.
            conn_tx.send(stream).is_ok()
        }
        Ok(false) | Err(_) => {
            shared.m_accept_faults.inc();
            true
        }
    }
}

fn handler_loop(conn_rx: Receiver<TcpStream>, shared: Arc<Shared>) {
    while let Ok(stream) = conn_rx.recv() {
        shared.m_active.add(1);
        // Panic isolation: a handler panic (e.g. an armed `ingest.parse`
        // fault) costs one connection, never the daemon.
        let outcome = catch_unwind(AssertUnwindSafe(|| handle_connection(stream, &shared)));
        shared.m_active.add(-1);
        if outcome.is_err() {
            shared.m_handler_restarts.inc();
        }
    }
}

/// Per-connection accounting, echoed back in the summary frame.
#[derive(Default)]
struct ConnCounts {
    accepted: u64,
    rejected: u64,
    shed: u64,
    parse_errors: u64,
}

/// Per-connection, per-partition micro-batches awaiting group commit
/// (same shape as `Consumer::recv_batch` on the worker side: size- and
/// deadline-bounded). A record sits here *un-acknowledged* — nothing is
/// counted accepted, shed, or refused until its batch flushes — so
/// flush-before-ack durability is unchanged; the batch just amortizes
/// the partition lock and the WAL write+flush across up to
/// `ingest_batch` records.
struct Pending {
    parts: Vec<Vec<RawLog>>,
    total: usize,
    oldest: Option<Instant>,
}

impl Pending {
    fn new(partitions: usize) -> Self {
        Pending {
            parts: (0..partitions).map(|_| Vec::new()).collect(),
            total: 0,
            oldest: None,
        }
    }

    fn push(&mut self, partition: usize, log: RawLog) {
        self.parts[partition].push(log);
        self.total += 1;
        self.oldest.get_or_insert_with(Instant::now);
    }

    fn take(&mut self, partition: usize) -> Vec<RawLog> {
        let batch = std::mem::take(&mut self.parts[partition]);
        self.total -= batch.len();
        if self.total == 0 {
            self.oldest = None;
        }
        batch
    }

    fn stale(&self, deadline: Duration) -> bool {
        self.oldest.is_some_and(|t| t.elapsed() >= deadline)
    }
}

fn handle_connection(stream: TcpStream, shared: &Shared) -> io::Result<()> {
    let _ = stream.set_read_timeout(Some(shared.idle_poll));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let opened = Instant::now();

    let mut tenant: Option<Arc<TenantHandle>> = None;
    let mut default_system = String::new();
    let mut conn = ConnCounts::default();
    let mut consecutive_rejected = 0u64;
    let mut consecutive_shed = 0u64;
    let mut draining = false;
    let mut pending = Pending::new(shared.partitions);
    // One line buffer for the whole connection, pre-sized to the line
    // budget: `read_line` appends into it and `clear()` keeps the
    // allocation, so a streaming client costs zero per-line allocations
    // here.
    let mut line = String::with_capacity(MAX_LINE_BYTES + 1);

    'conn: loop {
        if shared.stopping() && shared.past_drain_deadline() {
            draining = true;
            break;
        }
        // Deadline-bound the micro-batches: a trickling client's
        // records must not sit unacknowledged behind a batch that never
        // fills. (The read below blocks for at most `idle_poll`, which
        // bounds how stale this check can go.)
        if pending.total > 0 && pending.stale(shared.ingest_batch_deadline) {
            if let Some(t) = &tenant {
                if !flush_all(
                    &mut pending,
                    &mut conn,
                    &mut consecutive_shed,
                    t,
                    shared,
                    &mut writer,
                ) {
                    break 'conn;
                }
            }
        }
        // Checked on every pass — not only on idle timeouts — so a
        // client that keeps bytes flowing (blank-line keep-alives, a
        // steady drip) cannot dodge the deadline and camp on a handler
        // slot without ever authenticating.
        if tenant.is_none() && opened.elapsed() >= shared.auth_deadline {
            let _ = writer
                .write_all(proto::frame_error(401, "unauthorized", "auth deadline").as_bytes());
            return Ok(());
        }
        // On a read timeout the partial line (if any) stays in `line`
        // and the next pass keeps appending — no torn records. The
        // `take` bounds what a newline-free stream can accumulate:
        // past MAX_LINE_BYTES the line is rejected and the connection
        // closed instead of buffering without bound.
        let budget = (MAX_LINE_BYTES + 1).saturating_sub(line.len()) as u64;
        match (&mut reader).take(budget).read_line(&mut line) {
            Ok(0) => break, // EOF: client is done, summarize and close
            Ok(_) => {
                if line.len() > MAX_LINE_BYTES && !line.ends_with('\n') {
                    if let Some(t) = &tenant {
                        flush_all(
                            &mut pending,
                            &mut conn,
                            &mut consecutive_shed,
                            t,
                            shared,
                            &mut writer,
                        );
                    }
                    let _ = writer.write_all(
                        proto::frame_error(400, "overlong", "line exceeds 64 KiB").as_bytes(),
                    );
                    return Ok(());
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                // The client went idle: flush whatever it has pending
                // rather than holding its acks for a batch that may
                // never fill. While draining, the connection itself is
                // left open until the drain deadline (checked at the
                // top of the loop): records still in flight from the
                // client must land.
                if pending.total > 0 {
                    if let Some(t) = &tenant {
                        if !flush_all(
                            &mut pending,
                            &mut conn,
                            &mut consecutive_shed,
                            t,
                            shared,
                            &mut writer,
                        ) {
                            break 'conn;
                        }
                    }
                }
                continue;
            }
            Err(_) => break,
        }

        // `ingest.parse` fault point: panics escape to the handler's
        // isolation layer; transient errors surface as parse failures.
        let injected_parse_error = match faults::inject(points::INGEST_PARSE) {
            Some(Fault::Panic) => panic!("{PANIC_MARKER}: ingest.parse"),
            Some(Fault::TransientError) => true,
            Some(Fault::Latency(d)) => {
                thread::sleep(d);
                false
            }
            Some(Fault::CorruptScore) | None => false,
        };
        let parsed = if injected_parse_error {
            Err("injected parse fault".to_string())
        } else {
            proto::parse_line(&line, &default_system)
        };
        line.clear();

        match parsed {
            Err(_) if tenant.is_none() => {
                // Unauthenticated garbage is an auth failure, not a
                // parse statistic: close without letting anonymous input
                // inflate the counters.
                let _ = writer
                    .write_all(proto::frame_error(401, "unauthorized", "HELLO first").as_bytes());
                return Ok(());
            }
            Err(detail) => {
                conn.parse_errors += 1;
                shared.totals.parse_errors.fetch_add(1, Ordering::Relaxed);
                shared.m_parse_errors.inc();
                if let Some(t) = &tenant {
                    t.parse_errors.inc();
                }
                // Same cadence as the quota/shed paths: the first
                // malformed line is answered, then one frame per
                // ERROR_FRAME_EVERY — a garbage flood neither buys a
                // response per line nor goes permanently unanswered.
                if conn.parse_errors == 1 || conn.parse_errors.is_multiple_of(ERROR_FRAME_EVERY) {
                    let _ =
                        writer.write_all(proto::frame_error(400, "malformed", &detail).as_bytes());
                }
            }
            Ok(ClientLine::Empty) => {}
            Ok(ClientLine::Hello { token }) => {
                // Pending records belong to the tenant that admitted
                // them: land them before the handle can change (or the
                // connection closes on a bad re-HELLO).
                if let Some(t) = &tenant {
                    if !flush_all(
                        &mut pending,
                        &mut conn,
                        &mut consecutive_shed,
                        t,
                        shared,
                        &mut writer,
                    ) {
                        break 'conn;
                    }
                }
                match shared.tenants.authenticate(&token) {
                    Some(handle) => {
                        default_system = handle.name();
                        let _ = writer.write_all(proto::frame_hello_ok(&default_system).as_bytes());
                        tenant = Some(handle);
                    }
                    None => {
                        let _ = writer.write_all(
                            proto::frame_error(401, "unauthorized", "unknown token").as_bytes(),
                        );
                        return Ok(());
                    }
                }
            }
            Ok(ClientLine::Quit) => break,
            Ok(ClientLine::Record(record)) => {
                let Some(t) = &tenant else {
                    let _ = writer.write_all(
                        proto::frame_error(401, "unauthorized", "HELLO first").as_bytes(),
                    );
                    return Ok(());
                };
                if t.is_revoked() {
                    flush_all(
                        &mut pending,
                        &mut conn,
                        &mut consecutive_shed,
                        t,
                        shared,
                        &mut writer,
                    );
                    let _ = writer
                        .write_all(proto::frame_error(401, "revoked", "tenant removed").as_bytes());
                    return Ok(());
                }
                let now = shared.started.elapsed();
                if !t.admit(now) {
                    conn.rejected += 1;
                    consecutive_rejected += 1;
                    shared.totals.rejected.fetch_add(1, Ordering::Relaxed);
                    shared.m_rejected.inc();
                    t.rejected.inc();
                    if consecutive_rejected == 1
                        || consecutive_rejected.is_multiple_of(ERROR_FRAME_EVERY)
                    {
                        let retry = t.retry_after(now).as_millis() as u64;
                        let _ = writer.write_all(proto::frame_over_quota(retry).as_bytes());
                    }
                    if consecutive_rejected >= shared.quota_disconnect_after {
                        shared
                            .totals
                            .abusive_disconnects
                            .fetch_add(1, Ordering::Relaxed);
                        shared.m_abusive.inc();
                        flush_all(
                            &mut pending,
                            &mut conn,
                            &mut consecutive_shed,
                            t,
                            shared,
                            &mut writer,
                        );
                        let _ = writer.write_all(
                            proto::frame_error(429, "quota abuse", "disconnecting").as_bytes(),
                        );
                        return Ok(());
                    }
                    if consecutive_rejected >= shared.quota_slow_after {
                        // Slow-read: stop draining the flood at line rate;
                        // the client's send window fills and it is paced
                        // down to the daemon's terms.
                        thread::sleep(shared.quota_penalty);
                    }
                    continue;
                }
                consecutive_rejected = 0;

                // Admitted: park the record in its partition's
                // micro-batch. Nothing is acknowledged yet — the
                // accept/shed/refuse verdict lands when the batch
                // flushes (size cap here, deadline / idle / connection
                // exit elsewhere).
                let partition = t.route(&record.system);
                pending.push(partition, record);
                if pending.parts[partition].len() >= shared.ingest_batch
                    && !flush_partition(
                        partition,
                        &mut pending,
                        &mut conn,
                        &mut consecutive_shed,
                        t,
                        shared,
                        &mut writer,
                    )
                {
                    break 'conn;
                }
            }
        }
    }

    // EOF, QUIT, a read error, or the drain deadline: land whatever is
    // still pending so the summary frame counts every line the client
    // sent (best-effort when the buffer is already closed).
    if pending.total > 0 {
        if let Some(t) = &tenant {
            flush_all(
                &mut pending,
                &mut conn,
                &mut consecutive_shed,
                t,
                shared,
                &mut writer,
            );
        }
    }

    let _ = writer.write_all(
        proto::frame_summary(
            conn.accepted,
            conn.rejected,
            conn.shed,
            conn.parse_errors,
            draining || shared.stopping(),
        )
        .as_bytes(),
    );
    let _ = writer.flush();
    Ok(())
}

/// Flushes every non-empty partition batch of the connection. Returns
/// `false` when the buffer is gone and the connection must close.
fn flush_all(
    pending: &mut Pending,
    conn: &mut ConnCounts,
    consecutive_shed: &mut u64,
    t: &TenantHandle,
    shared: &Shared,
    writer: &mut TcpStream,
) -> bool {
    for partition in 0..pending.parts.len() {
        if !pending.parts[partition].is_empty()
            && !flush_partition(
                partition,
                pending,
                conn,
                consecutive_shed,
                t,
                shared,
                writer,
            )
        {
            return false;
        }
    }
    true
}

/// Group-commits one partition's pending micro-batch through the
/// producer and settles every record's verdict: accepted (durable and
/// enqueued), shed (watermark or full shard), or WAL-refused
/// (retryable 503). The ingest-ack latency recorded per record is the
/// flush's own elapsed time — the cost of the durability ack, which is
/// what the batch amortizes. Returns `false` when the buffer is closed
/// and the connection must end.
fn flush_partition(
    partition: usize,
    pending: &mut Pending,
    conn: &mut ConnCounts,
    consecutive_shed: &mut u64,
    t: &TenantHandle,
    shared: &Shared,
    writer: &mut TcpStream,
) -> bool {
    let batch = pending.take(partition);
    if batch.is_empty() {
        return true;
    }
    let total = batch.len();
    let t0 = Instant::now();
    // The shed watermark is re-checked at flush time — the depth read
    // at parse time would be stale by now, and shedding must still be
    // decided *before* any append so a shed record is never persisted.
    if shared.shed_watermark > 0 && shared.producer.depth(partition) >= shared.shed_watermark as u64
    {
        shed_n(
            total as u64,
            conn,
            consecutive_shed,
            t,
            shared,
            partition,
            writer,
        );
        return true;
    }
    match shared.producer.offer_batch(partition, batch) {
        Ok(n) => {
            accepted_n(n as u64, conn, t, shared, t0);
            *consecutive_shed = 0;
            true
        }
        Err((rest, PipelineError::BufferFull { .. })) => {
            let head = (total - rest.len()) as u64;
            if head > 0 {
                accepted_n(head, conn, t, shared, t0);
                *consecutive_shed = 0;
            }
            if shared.shed_watermark > 0 {
                shed_n(
                    rest.len() as u64,
                    conn,
                    consecutive_shed,
                    t,
                    shared,
                    partition,
                    writer,
                );
                true
            } else {
                // Shedding disabled: exert backpressure by blocking —
                // the client's stream stalls instead of losing records.
                let rest_total = rest.len();
                match shared.producer.send_batch(partition, rest) {
                    Ok(n) => {
                        accepted_n(n as u64, conn, t, shared, t0);
                        *consecutive_shed = 0;
                        true
                    }
                    Err((rest, PipelineError::WalAppend { partition })) => {
                        let head = (rest_total - rest.len()) as u64;
                        if head > 0 {
                            accepted_n(head, conn, t, shared, t0);
                            *consecutive_shed = 0;
                        }
                        wal_refused_n(rest.len() as u64, conn, t, shared, partition, writer);
                        true
                    }
                    Err((rest, _)) => {
                        let head = (rest_total - rest.len()) as u64;
                        if head > 0 {
                            accepted_n(head, conn, t, shared, t0);
                        }
                        let _ = writer.write_all(proto::frame_closed(partition).as_bytes());
                        false
                    }
                }
            }
        }
        Err((rest, PipelineError::WalAppend { partition })) => {
            // Transient durable-append failure: the durable prefix is
            // accepted, the unwritten suffix was refused *before*
            // anything was logged — the client may simply retry it and
            // the connection survives.
            let head = (total - rest.len()) as u64;
            if head > 0 {
                accepted_n(head, conn, t, shared, t0);
                *consecutive_shed = 0;
            }
            wal_refused_n(rest.len() as u64, conn, t, shared, partition, writer);
            true
        }
        Err((rest, _)) => {
            let head = (total - rest.len()) as u64;
            if head > 0 {
                accepted_n(head, conn, t, shared, t0);
            }
            let _ = writer.write_all(proto::frame_closed(partition).as_bytes());
            false
        }
    }
}

fn accepted_n(n: u64, conn: &mut ConnCounts, t: &TenantHandle, shared: &Shared, t0: Instant) {
    if n == 0 {
        return;
    }
    conn.accepted += n;
    shared.totals.accepted.fetch_add(n, Ordering::Relaxed);
    shared.m_accepted.add(n);
    t.accepted.add(n);
    let us = t0.elapsed().as_micros() as u64;
    for _ in 0..n {
        shared.m_latency.record(us);
        t.latency_us.record(us);
    }
}

/// A transient write-ahead-log append failure: these records were not
/// made durable and are refused with one retryable 503 naming the
/// shard. Counted with the shed bucket — like a shed record, they were
/// acknowledged as *not* ingested and the client owns the retry.
fn wal_refused_n(
    n: u64,
    conn: &mut ConnCounts,
    t: &TenantHandle,
    shared: &Shared,
    partition: usize,
    writer: &mut TcpStream,
) {
    if n == 0 {
        return;
    }
    conn.shed += n;
    shared.totals.shed.fetch_add(n, Ordering::Relaxed);
    shared.m_shed.add(n);
    t.shed.add(n);
    let _ = writer.write_all(proto::frame_log_append(partition).as_bytes());
}

fn shed_n(
    n: u64,
    conn: &mut ConnCounts,
    consecutive: &mut u64,
    t: &TenantHandle,
    shared: &Shared,
    partition: usize,
    writer: &mut TcpStream,
) {
    if n == 0 {
        return;
    }
    let before = *consecutive;
    conn.shed += n;
    *consecutive += n;
    shared.totals.shed.fetch_add(n, Ordering::Relaxed);
    shared.m_shed.add(n);
    t.shed.add(n);
    // Same cadence as before batching: the first shed in a run is
    // answered, then one frame per ERROR_FRAME_EVERY — a batch emits at
    // most one frame per flush either way.
    if before == 0 || (*consecutive / ERROR_FRAME_EVERY) > (before / ERROR_FRAME_EVERY) {
        let _ = writer.write_all(proto::frame_shed(partition).as_bytes());
    }
}

fn reload_loop(path: PathBuf, poll: Duration, shared: Arc<Shared>) {
    // Content-compare polling rather than bare mtime: filesystems with
    // second-granularity timestamps would miss a rewrite that lands in
    // the same tick as the original. The file is operator-sized (a few
    // KB); re-reading it every poll is noise. The baseline starts empty
    // — not a snapshot taken here — because the file may legitimately
    // change between `start()` parsing it and this thread's first read;
    // the resulting first-poll reload is a no-op when nothing changed
    // (reload preserves bucket fill and revokes nothing that survived).
    let mut last_text: Option<String> = None;
    while !shared.stopping() {
        thread::sleep(poll);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            // A transiently missing file (atomic-rename writers) keeps
            // the previous tenant set.
            Err(_) => continue,
        };
        if last_text.as_ref() == Some(&text) {
            continue;
        }
        match crate::tenants::parse_tenants(&text) {
            Ok(specs) => {
                shared.tenants.reload(specs);
            }
            Err(_) => {
                // A torn or invalid file keeps the previous tenant set;
                // the error is counted (once per distinct bad content),
                // not fatal.
                shared.m_reload_errors.inc();
            }
        }
        last_text = Some(text);
    }
}
