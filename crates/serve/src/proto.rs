//! The ingest wire protocol: newline-delimited requests in, NDJSON
//! frames out.
//!
//! Clients speak one line per message. The first line must authenticate
//! (`HELLO <token>` or `{"auth":"<token>"}`); after that every line is a
//! log record in either of two framings, freely mixed on one connection:
//!
//! - **NDJSON**: `{"system":"web-1","timestamp":17,"message":"..."}` —
//!   `message` is required, `system` defaults to the connection default,
//!   `timestamp` to 0. Unknown keys are ignored.
//! - **Syslog-style plain line**: `Mmm dd HH:MM:SS host payload...`
//!   (RFC 3164 shape, e.g. `Jun  9 06:06:20 combo sshd[3251]: fail`) —
//!   the hostname becomes the system, the payload the message, and the
//!   timestamp is the second offset within a non-leap year (the framing
//!   carries no year).
//!
//! `QUIT` asks for the connection summary frame and a clean close.
//!
//! Every server reply is one JSON object per line. Errors carry an
//! HTTP-flavored `code` (401 unauthorized, 400 malformed, 429 over
//! quota, 503 shedding/closed) so clients can reuse familiar retry
//! rules; `429`/`503` frames mean the record was **not** ingested.

use logsynergy_pipeline::RawLog;

/// One parsed client line.
#[derive(Clone, Debug, PartialEq)]
pub enum ClientLine {
    /// Authentication (`HELLO <token>` or `{"auth":"..."}`).
    Hello {
        /// The presented tenant token.
        token: String,
    },
    /// A log record to ingest.
    Record(RawLog),
    /// Clean end of stream: answer with the summary frame and close.
    Quit,
    /// Blank line — ignored (keep-alive friendly).
    Empty,
}

/// Parses one client line. `default_system` fills NDJSON records that
/// omit `"system"`.
pub fn parse_line(line: &str, default_system: &str) -> Result<ClientLine, String> {
    let line = line.trim();
    if line.is_empty() {
        return Ok(ClientLine::Empty);
    }
    if let Some(token) = line.strip_prefix("HELLO ") {
        let token = token.trim();
        if token.is_empty() {
            return Err("HELLO requires a token".into());
        }
        return Ok(ClientLine::Hello {
            token: token.to_string(),
        });
    }
    if line == "QUIT" {
        return Ok(ClientLine::Quit);
    }
    if line.starts_with('{') {
        return parse_ndjson(line, default_system);
    }
    parse_syslog(line)
}

fn parse_ndjson(line: &str, default_system: &str) -> Result<ClientLine, String> {
    let value = serde_json::parse_value(line).map_err(|e| format!("invalid json: {e}"))?;
    let entries = value.as_object().ok_or("json line must be an object")?;
    if let Some(token) = serde::field(entries, "auth") {
        let token = token.as_str().ok_or("auth must be a string")?;
        return Ok(ClientLine::Hello {
            token: token.to_string(),
        });
    }
    let message = serde::field(entries, "message")
        .and_then(|v| v.as_str())
        .ok_or("record needs a string \"message\"")?;
    let system = serde::field(entries, "system")
        .map(|v| v.as_str().ok_or("system must be a string"))
        .transpose()?
        .unwrap_or(default_system);
    if system.is_empty() {
        return Err("system must be non-empty".into());
    }
    let timestamp = serde::field(entries, "timestamp")
        .map(|v| v.as_u64().ok_or("timestamp must be a non-negative integer"))
        .transpose()?
        .unwrap_or(0);
    Ok(ClientLine::Record(RawLog {
        system: system.to_string(),
        timestamp,
        message: message.to_string(),
    }))
}

/// Cumulative second offsets of each month in a non-leap year.
const MONTHS: [(&str, u64); 12] = [
    ("Jan", 0),
    ("Feb", 31),
    ("Mar", 59),
    ("Apr", 90),
    ("May", 120),
    ("Jun", 151),
    ("Jul", 181),
    ("Aug", 212),
    ("Sep", 243),
    ("Oct", 273),
    ("Nov", 304),
    ("Dec", 334),
];

fn parse_syslog(line: &str) -> Result<ClientLine, String> {
    let mut parts = line.split_whitespace();
    let (month, day, time, host) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(d), Some(t), Some(h)) => (m, d, t, h),
        _ => return Err("not a syslog line: need `Mmm dd HH:MM:SS host payload`".into()),
    };
    let month_days = MONTHS
        .iter()
        .find(|(name, _)| *name == month)
        .map(|(_, d)| *d)
        .ok_or_else(|| format!("unknown month {month:?}"))?;
    let day: u64 = day.parse().map_err(|_| format!("bad day {day:?}"))?;
    if !(1..=31).contains(&day) {
        return Err(format!("day {day} out of range"));
    }
    let hms: Vec<&str> = time.split(':').collect();
    let [h, m, s] = hms[..] else {
        return Err(format!("bad time {time:?}"));
    };
    let (h, m, s): (u64, u64, u64) = match (h.parse(), m.parse(), s.parse()) {
        (Ok(h), Ok(m), Ok(s)) => (h, m, s),
        _ => return Err(format!("bad time {time:?}")),
    };
    if h > 23 || m > 59 || s > 60 {
        return Err(format!("time {time:?} out of range"));
    }
    let message = line
        .split_whitespace()
        .skip(4)
        .collect::<Vec<_>>()
        .join(" ");
    if message.is_empty() {
        return Err("syslog line has an empty payload".into());
    }
    let timestamp = (month_days + day - 1) * 86_400 + h * 3_600 + m * 60 + s;
    Ok(ClientLine::Record(RawLog {
        system: host.to_string(),
        timestamp,
        message,
    }))
}

/// Escapes `s` for embedding inside a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// `{"ok":true,...}` after a successful HELLO.
pub fn frame_hello_ok(tenant: &str) -> String {
    format!("{{\"ok\":true,\"tenant\":\"{}\"}}\n", escape_json(tenant))
}

/// A terminal or per-line error frame. Codes follow HTTP intuition:
/// 400 malformed, 401 unauthorized, 429 over quota, 503 shedding.
pub fn frame_error(code: u16, error: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"code\":{code},\"error\":\"{}\",\"detail\":\"{}\"}}\n",
        escape_json(error),
        escape_json(detail)
    )
}

/// 429 frame with the token-bucket refill hint.
pub fn frame_over_quota(retry_after_ms: u64) -> String {
    format!(
        "{{\"ok\":false,\"code\":429,\"error\":\"over quota\",\"retry_after_ms\":{retry_after_ms}}}\n"
    )
}

/// 503 frame naming the shard that shed the record.
pub fn frame_shed(partition: usize) -> String {
    format!("{{\"ok\":false,\"code\":503,\"error\":\"shedding\",\"partition\":{partition}}}\n")
}

/// Terminal 503 frame for a closed pipeline: the shard's workers are
/// gone and the connection will be dropped. Names the rejecting
/// partition so a multi-shard client can tell which route died.
pub fn frame_closed(partition: usize) -> String {
    format!(
        "{{\"ok\":false,\"code\":503,\"error\":\"closed\",\"detail\":\"pipeline gone\",\"partition\":{partition}}}\n"
    )
}

/// 503 frame for a transient durable-log append failure on a shard: the
/// record was **not** made durable (not ingested) and may be retried;
/// the connection stays open.
pub fn frame_log_append(partition: usize) -> String {
    format!("{{\"ok\":false,\"code\":503,\"error\":\"log append\",\"partition\":{partition}}}\n")
}

/// The end-of-connection accounting frame (also sent when the daemon
/// drains under SIGTERM, with `"draining":true`).
pub fn frame_summary(
    accepted: u64,
    rejected: u64,
    shed: u64,
    parse_errors: u64,
    draining: bool,
) -> String {
    format!(
        "{{\"ok\":true,\"accepted\":{accepted},\"rejected\":{rejected},\"shed\":{shed},\"parse_errors\":{parse_errors},\"draining\":{draining}}}\n"
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_both_framings() {
        assert_eq!(
            parse_line("HELLO sekrit", "d").unwrap(),
            ClientLine::Hello {
                token: "sekrit".into()
            }
        );
        assert_eq!(
            parse_line("{\"auth\":\"sekrit\"}", "d").unwrap(),
            ClientLine::Hello {
                token: "sekrit".into()
            }
        );
        assert!(parse_line("HELLO ", "d").is_err());
    }

    #[test]
    fn ndjson_record_with_defaults() {
        let ClientLine::Record(r) = parse_line("{\"message\":\"disk full\"}", "edge-7").unwrap()
        else {
            panic!("expected a record");
        };
        assert_eq!(r.system, "edge-7");
        assert_eq!(r.timestamp, 0);
        assert_eq!(r.message, "disk full");

        let ClientLine::Record(r) = parse_line(
            "{\"system\":\"db\",\"timestamp\":99,\"message\":\"slow query\",\"extra\":1}",
            "edge-7",
        )
        .unwrap() else {
            panic!("expected a record");
        };
        assert_eq!((r.system.as_str(), r.timestamp), ("db", 99));
    }

    #[test]
    fn ndjson_rejects_missing_message_and_bad_types() {
        assert!(parse_line("{\"system\":\"db\"}", "d").is_err());
        assert!(parse_line("{\"message\":7}", "d").is_err());
        assert!(parse_line("{\"message\":\"m\",\"timestamp\":-1}", "d").is_err());
        assert!(parse_line("{\"message\":\"m\",\"system\":\"\"}", "d").is_err());
        assert!(parse_line("{broken", "d").is_err());
        assert!(parse_line("[1,2]", "d").is_err());
    }

    #[test]
    fn syslog_line_maps_host_and_in_year_seconds() {
        let ClientLine::Record(r) =
            parse_line("Jun  9 06:06:20 combo sshd[3251]: connection lost", "d").unwrap()
        else {
            panic!("expected a record");
        };
        assert_eq!(r.system, "combo");
        assert_eq!(r.message, "sshd[3251]: connection lost");
        assert_eq!(r.timestamp, (151 + 8) * 86_400 + 6 * 3_600 + 6 * 60 + 20);
    }

    #[test]
    fn syslog_rejects_malformed_shapes() {
        assert!(parse_line("plain words only", "d").is_err());
        assert!(parse_line("Foo 9 06:06:20 host msg", "d").is_err());
        assert!(parse_line("Jun 99 06:06:20 host msg", "d").is_err());
        assert!(parse_line("Jun 9 06:66:20 host msg", "d").is_err());
        assert!(parse_line("Jun 9 06:06:20 host", "d").is_err());
    }

    #[test]
    fn control_lines() {
        assert_eq!(parse_line("QUIT", "d").unwrap(), ClientLine::Quit);
        assert_eq!(parse_line("   ", "d").unwrap(), ClientLine::Empty);
    }

    #[test]
    fn frames_are_single_json_lines() {
        for frame in [
            frame_hello_ok("acme"),
            frame_error(401, "unauthorized", "bad \"token\""),
            frame_over_quota(120),
            frame_shed(3),
            frame_closed(1),
            frame_log_append(2),
            frame_summary(10, 2, 1, 0, true),
        ] {
            assert!(frame.ends_with('\n'));
            let body = frame.trim_end();
            assert!(!body.contains('\n'), "one frame per line: {body}");
            serde_json::parse_value(body).expect("frame must be valid JSON");
        }
        assert!(frame_summary(1, 0, 0, 0, false).contains("\"draining\":false"));
        // Every 503 names the rejecting partition so clients can tell
        // which shard refused the record.
        assert!(frame_shed(3).contains("\"partition\":3"));
        assert!(frame_closed(1).contains("\"partition\":1"));
        assert!(frame_log_append(2).contains("\"partition\":2"));
    }
}
