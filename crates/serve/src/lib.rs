//! # logsynergy-serve
//!
//! A multi-tenant network ingest daemon for the LogSynergy detection
//! pipeline: the "collector" stage of the paper's deployment workflow
//! (§VI-A, Filebeat → Kafka) realized as a std-only TCP front door.
//!
//! Remote collectors connect over TCP, authenticate with a per-tenant
//! token, and stream newline-delimited log records — NDJSON or
//! syslog-style plain lines, freely mixed ([`proto`]). The daemon
//! enforces per-tenant token-bucket quotas and fair-share shard routing
//! ([`tenants`], [`quota`]), applies the serving pipeline's shed
//! watermark as client-visible 429/503 NDJSON frames, and feeds
//! accepted records into the same partitioned [`LogBuffer`] +
//! [`DetectionPool`] that the in-process pipeline uses — so a record
//! ingested over the wire gets the identical verdict it would get
//! in-process.
//!
//! Shutdown is a graceful drain ([`Daemon::drain`]): stop accepting,
//! flush in-flight connections under a budget, disconnect the buffer,
//! and join the detection workers into a final
//! [`PipelineSummary`] whose six-bucket accounting
//! (`pattern + cache + model + degraded + shed + quarantined ==
//! windows`) is exact. See `docs/ingest.md` for the protocol and
//! lifecycle.
//!
//! [`LogBuffer`]: logsynergy_pipeline::LogBuffer
//! [`DetectionPool`]: logsynergy_pipeline::service::DetectionPool
//! [`PipelineSummary`]: logsynergy_pipeline::PipelineSummary

#![warn(missing_docs)]

pub mod daemon;
pub mod proto;
pub mod quota;
pub mod signals;
pub mod tenants;

pub use daemon::{start, Daemon, IngestStats, ServeConfig};
pub use quota::TokenBucket;
pub use tenants::{load_tenants, parse_tenants, shard_subset, TenantSpec, TenantTable};
