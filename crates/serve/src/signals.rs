//! Minimal POSIX signal hook for graceful drain — std-only, no `libc`.
//!
//! The daemon needs exactly one bit from the OS: "a termination signal
//! arrived". `std` exposes no signal API, so on Unix this declares the
//! C `signal(2)` entry point directly and installs an async-signal-safe
//! handler that does nothing but store into a static `AtomicBool` (a
//! relaxed store is on POSIX's async-signal-safe list; nothing here
//! allocates, locks, or calls back into Rust runtime machinery). The
//! serve loop polls the flag between accepts and between reads.
//!
//! On non-Unix targets the flag simply never flips; `Daemon::drain` and
//! Ctrl-C at the process level still work.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;

static TERMINATED: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
}

#[cfg(unix)]
extern "C" fn on_termination(_signum: i32) {
    TERMINATED.store(true, Ordering::Relaxed);
}

/// Installs SIGTERM/SIGINT handlers (once per process) and returns the
/// flag they set. Safe to call from multiple daemons; they share the
/// flag, which is the right semantics for process-wide termination.
pub fn termination_flag() -> &'static AtomicBool {
    #[cfg(unix)]
    INSTALL.call_once(|| unsafe {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        signal(SIGTERM, on_termination);
        signal(SIGINT, on_termination);
    });
    #[cfg(not(unix))]
    INSTALL.call_once(|| {});
    &TERMINATED
}

/// True once SIGTERM/SIGINT has been observed.
pub fn termination_requested() -> bool {
    TERMINATED.load(Ordering::Relaxed)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(signum: i32) -> i32;
    }

    #[test]
    fn sigterm_flips_the_flag() {
        let flag = termination_flag();
        assert!(!flag.load(Ordering::Relaxed) || termination_requested());
        // Deliver a real SIGTERM to this process; with the handler
        // installed it must set the flag instead of killing the run.
        unsafe { raise(15) };
        assert!(termination_requested());
        // Leave the flag set: it is process-wide by design.
    }
}
