//! Token-bucket rate limiting for tenant ingest quotas.
//!
//! Classic leaky-bucket-as-meter: a bucket refills continuously at
//! `rate` tokens per second up to `burst` capacity, and each accepted
//! log line costs one token. Time is passed in explicitly as a
//! [`Duration`] since an arbitrary epoch (the daemon uses its start
//! instant), which keeps the arithmetic testable without sleeping.

use std::time::Duration;

/// A continuously-refilling token bucket. `rate == 0` means unmetered:
/// [`TokenBucket::try_take`] always succeeds.
#[derive(Clone, Debug)]
pub struct TokenBucket {
    /// Tokens added per second; `0.0` disables metering.
    rate: f64,
    /// Bucket capacity (maximum burst above the steady rate).
    burst: f64,
    /// Tokens currently available.
    tokens: f64,
    /// Epoch offset of the last refill.
    at: Duration,
}

impl TokenBucket {
    /// A bucket that starts full. `burst` is clamped to at least one
    /// token so a positive rate can ever admit anything.
    pub fn new(rate: f64, burst: u64) -> Self {
        let burst = (burst.max(1)) as f64;
        TokenBucket {
            rate: rate.max(0.0),
            burst,
            tokens: burst,
            at: Duration::ZERO,
        }
    }

    /// An unmetered bucket (every take succeeds).
    pub fn unmetered() -> Self {
        TokenBucket::new(0.0, 1)
    }

    /// True when this bucket never rejects.
    pub fn is_unmetered(&self) -> bool {
        self.rate == 0.0
    }

    /// The configured refill rate (tokens per second).
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// The configured burst capacity.
    pub fn burst(&self) -> u64 {
        self.burst as u64
    }

    fn refill(&mut self, now: Duration) {
        if now > self.at {
            let dt = (now - self.at).as_secs_f64();
            self.tokens = (self.tokens + dt * self.rate).min(self.burst);
        }
        // A non-monotone `now` (caller bug) just skips the refill; the
        // clock offset is still advanced so the bucket cannot wedge.
        self.at = self.at.max(now);
    }

    /// Takes one token if available. `now` is the elapsed time since the
    /// caller's epoch and must be (weakly) monotone across calls.
    pub fn try_take(&mut self, now: Duration) -> bool {
        if self.is_unmetered() {
            return true;
        }
        self.refill(now);
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }

    /// How long after `now` the next single token becomes available —
    /// the `retry_after` hint in over-quota error frames. Zero when a
    /// token is already available (or the bucket is unmetered).
    pub fn retry_after(&self, now: Duration) -> Duration {
        if self.is_unmetered() {
            return Duration::ZERO;
        }
        let mut tokens = self.tokens;
        if now > self.at {
            tokens = (tokens + (now - self.at).as_secs_f64() * self.rate).min(self.burst);
        }
        if tokens >= 1.0 {
            return Duration::ZERO;
        }
        Duration::from_secs_f64((1.0 - tokens) / self.rate)
    }

    /// Replaces rate/burst in place, keeping the current fill level
    /// (clamped to the new capacity) — hot config reload must not grant
    /// a refill-by-reload loophole or zero out earned tokens.
    pub fn reconfigure(&mut self, rate: f64, burst: u64) {
        self.rate = rate.max(0.0);
        self.burst = (burst.max(1)) as f64;
        self.tokens = self.tokens.min(self.burst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> Duration {
        Duration::from_secs_f64(s)
    }

    #[test]
    fn burst_then_steady_rate() {
        let mut b = TokenBucket::new(10.0, 5);
        // The full burst is available immediately...
        for _ in 0..5 {
            assert!(b.try_take(Duration::ZERO));
        }
        // ...then the bucket is dry until the rate refills it.
        assert!(!b.try_take(Duration::ZERO));
        assert!(!b.try_take(secs(0.05)));
        assert!(b.try_take(secs(0.11)), "10/s refills one token in 100ms");
        assert!(!b.try_take(secs(0.11)));
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut b = TokenBucket::new(100.0, 3);
        for _ in 0..3 {
            assert!(b.try_take(Duration::ZERO));
        }
        // A long idle period earns at most `burst` tokens.
        for _ in 0..3 {
            assert!(b.try_take(secs(60.0)));
        }
        assert!(!b.try_take(secs(60.0)));
    }

    #[test]
    fn retry_after_names_the_refill_gap() {
        let mut b = TokenBucket::new(2.0, 1);
        assert!(b.try_take(Duration::ZERO));
        let wait = b.retry_after(Duration::ZERO);
        assert!((wait.as_secs_f64() - 0.5).abs() < 1e-9, "2/s → 500ms/token");
        assert_eq!(b.retry_after(secs(1.0)), Duration::ZERO);
    }

    #[test]
    fn unmetered_always_admits() {
        let mut b = TokenBucket::unmetered();
        for _ in 0..10_000 {
            assert!(b.try_take(Duration::ZERO));
        }
        assert_eq!(b.retry_after(Duration::ZERO), Duration::ZERO);
    }

    #[test]
    fn reconfigure_preserves_fill_level() {
        let mut b = TokenBucket::new(1.0, 10);
        for _ in 0..10 {
            assert!(b.try_take(Duration::ZERO));
        }
        // Reload with a bigger burst: the drained bucket stays drained
        // (no refill-by-reload), but the new rate applies.
        b.reconfigure(100.0, 20);
        assert!(!b.try_take(Duration::ZERO));
        assert!(b.try_take(secs(0.02)));
        // Reload with a smaller burst clamps stored tokens.
        let mut c = TokenBucket::new(1.0, 100);
        c.reconfigure(1.0, 2);
        assert!(c.try_take(secs(0.0)));
        assert!(c.try_take(secs(0.0)));
        assert!(!c.try_take(secs(0.0)));
    }

    #[test]
    fn non_monotone_clock_does_not_mint_tokens() {
        let mut b = TokenBucket::new(10.0, 1);
        assert!(b.try_take(secs(5.0)));
        // Going backwards earns nothing and does not panic.
        assert!(!b.try_take(secs(1.0)));
    }
}
