//! Tenant configuration: a hand-rolled line format on disk, a
//! hot-reloadable authentication/quota table at runtime.
//!
//! ## File format
//!
//! One tenant per line; `#` starts a comment; blank lines ignored:
//!
//! ```text
//! # name        auth token          quota (lines/s, burst)  shards
//! tenant acme   token=acme-secret   rate=5000 burst=500     shards=2
//! tenant lab    token=lab-secret
//! ```
//!
//! Defaults: `rate=0` (unmetered), `burst=rate` (min 1), `shards=0`
//! (hash across every partition, exactly like the in-process shipper).
//! Tenant names are restricted to `[A-Za-z0-9_-]` so they can be
//! embedded in JSON frames and metric names without escaping.
//!
//! ## Reload semantics
//!
//! [`TenantTable::reload`] swaps the spec set without dropping live
//! connections: surviving tenants keep their token-bucket fill level
//! (no refill-by-reload), removed tokens are revoked — their open
//! connections observe [`TenantHandle::is_revoked`] on the next line
//! and are closed with a 401 frame.

use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use logsynergy_telemetry::{global, Counter, Histogram};
use parking_lot::{Mutex, RwLock};

use crate::quota::TokenBucket;

/// One parsed `tenant` line.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// Tenant name (`[A-Za-z0-9_-]+`), used in frames and metric names.
    pub name: String,
    /// Shared-secret auth token presented in the HELLO line.
    pub token: String,
    /// Quota in accepted lines per second; `0` = unmetered.
    pub rate: f64,
    /// Burst capacity of the token bucket.
    pub burst: u64,
    /// Size of the tenant's partition subset; `0` = all partitions.
    pub shards: usize,
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
}

/// Parses the tenants file format. Duplicate names or tokens are errors
/// (a token must identify exactly one tenant).
pub fn parse_tenants(text: &str) -> Result<Vec<TenantSpec>, String> {
    let mut specs: Vec<TenantSpec> = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let lineno = lineno + 1;
        let mut words = line.split_whitespace();
        if words.next() != Some("tenant") {
            return Err(format!("line {lineno}: expected `tenant <name> ...`"));
        }
        let name = words
            .next()
            .ok_or_else(|| format!("line {lineno}: missing tenant name"))?;
        if !valid_name(name) {
            return Err(format!(
                "line {lineno}: tenant name {name:?} must match [A-Za-z0-9_-]+"
            ));
        }
        let mut token = None;
        let mut rate = 0.0f64;
        let mut burst = None;
        let mut shards = 0usize;
        for word in words {
            let (key, value) = word
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected key=value, got {word:?}"))?;
            match key {
                "token" => token = Some(value.to_string()),
                "rate" => {
                    rate = value
                        .parse::<f64>()
                        .ok()
                        .filter(|r| r.is_finite() && *r >= 0.0)
                        .ok_or_else(|| format!("line {lineno}: bad rate {value:?}"))?
                }
                "burst" => {
                    burst = Some(
                        value
                            .parse::<u64>()
                            .map_err(|_| format!("line {lineno}: bad burst {value:?}"))?,
                    )
                }
                "shards" => {
                    shards = value
                        .parse::<usize>()
                        .map_err(|_| format!("line {lineno}: bad shards {value:?}"))?
                }
                other => return Err(format!("line {lineno}: unknown key {other:?}")),
            }
        }
        let token = token.ok_or_else(|| format!("line {lineno}: tenant {name} needs token="))?;
        if token.is_empty() {
            return Err(format!("line {lineno}: empty token"));
        }
        if specs.iter().any(|s| s.name == name) {
            return Err(format!("line {lineno}: duplicate tenant {name:?}"));
        }
        if specs.iter().any(|s| s.token == token) {
            return Err(format!("line {lineno}: token reused across tenants"));
        }
        let burst = burst.unwrap_or_else(|| (rate.ceil() as u64).max(1));
        specs.push(TenantSpec {
            name: name.to_string(),
            token,
            rate,
            burst,
            shards,
        });
    }
    if specs.is_empty() {
        return Err("no tenants defined".into());
    }
    Ok(specs)
}

/// Reads and parses a tenants file.
pub fn load_tenants(path: &Path) -> Result<Vec<TenantSpec>, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse_tenants(&text)
}

/// Same FNV-1a the buffer uses for keyed routing, reused here so a
/// tenant's shard subset is stable across restarts.
fn fnv(s: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// The fair-share partition subset for a tenant: a contiguous (mod n)
/// run of `shards` partitions starting at the tenant's hash. `shards`
/// of 0 (or ≥ the partition count) means every partition.
pub fn shard_subset(name: &str, shards: usize, partitions: usize) -> Vec<usize> {
    assert!(partitions > 0);
    if shards == 0 || shards >= partitions {
        return (0..partitions).collect();
    }
    let start = (fnv(name) % partitions as u64) as usize;
    (0..shards).map(|i| (start + i) % partitions).collect()
}

/// Per-tenant runtime state: quota bucket, shard subset, counters.
pub struct TenantHandle {
    spec: Mutex<TenantSpec>,
    bucket: Mutex<TokenBucket>,
    subset: Mutex<Vec<usize>>,
    revoked: AtomicBool,
    /// `ingest.tenant.<name>.accepted`
    pub accepted: Arc<Counter>,
    /// `ingest.tenant.<name>.rejected` (over quota)
    pub rejected: Arc<Counter>,
    /// `ingest.tenant.<name>.shed` (watermark / full shard)
    pub shed: Arc<Counter>,
    /// `ingest.tenant.<name>.parse_errors`
    pub parse_errors: Arc<Counter>,
    /// `ingest.tenant.<name>.latency_us` — per-line ingest latency
    /// (parse + route + enqueue), microseconds.
    pub latency_us: Arc<Histogram>,
}

impl TenantHandle {
    fn new(spec: TenantSpec, partitions: usize) -> Arc<Self> {
        let scope = global().scoped("ingest");
        let prefix = format!("tenant.{}", spec.name);
        let subset = shard_subset(&spec.name, spec.shards, partitions);
        Arc::new(TenantHandle {
            bucket: Mutex::new(TokenBucket::new(spec.rate, spec.burst)),
            subset: Mutex::new(subset),
            revoked: AtomicBool::new(false),
            accepted: scope.counter(&format!("{prefix}.accepted")),
            rejected: scope.counter(&format!("{prefix}.rejected")),
            shed: scope.counter(&format!("{prefix}.shed")),
            parse_errors: scope.counter(&format!("{prefix}.parse_errors")),
            latency_us: scope.histogram(&format!("{prefix}.latency_us")),
            spec: Mutex::new(spec),
        })
    }

    /// Tenant name (stable across reloads).
    pub fn name(&self) -> String {
        self.spec.lock().name.clone()
    }

    /// True once a reload removed this tenant's token; open connections
    /// must close with a 401 frame.
    pub fn is_revoked(&self) -> bool {
        self.revoked.load(Ordering::Relaxed)
    }

    /// Takes one quota token; `now` is elapsed time since daemon start.
    pub fn admit(&self, now: Duration) -> bool {
        self.bucket.lock().try_take(now)
    }

    /// Refill hint for the 429 frame.
    pub fn retry_after(&self, now: Duration) -> Duration {
        self.bucket.lock().retry_after(now)
    }

    /// The partition this tenant's record routes to: its shard subset
    /// indexed by the record's system hash, so per-system ordering holds
    /// while the tenant stays inside its fair share.
    pub fn route(&self, system: &str) -> usize {
        let subset = self.subset.lock();
        subset[(fnv(system) % subset.len() as u64) as usize]
    }

    fn apply(&self, new: TenantSpec, partitions: usize) {
        let mut spec = self.spec.lock();
        if (new.rate, new.burst) != (spec.rate, spec.burst) {
            self.bucket.lock().reconfigure(new.rate, new.burst);
        }
        if new.shards != spec.shards {
            *self.subset.lock() = shard_subset(&new.name, new.shards, partitions);
        }
        *spec = new;
    }
}

/// What a [`TenantTable::reload`] did — logged and counted.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReloadStats {
    /// Tenants added.
    pub added: usize,
    /// Tenants whose quota/shard config changed.
    pub updated: usize,
    /// Tenants revoked (token no longer present).
    pub revoked: usize,
}

/// The live token → tenant map. Shared by every connection handler and
/// the config-reload thread.
pub struct TenantTable {
    by_token: RwLock<HashMap<String, Arc<TenantHandle>>>,
    partitions: usize,
    reloads: Arc<Counter>,
}

impl TenantTable {
    /// Builds the table for a buffer with `partitions` shards.
    pub fn new(specs: Vec<TenantSpec>, partitions: usize) -> Self {
        let table = TenantTable {
            by_token: RwLock::new(HashMap::new()),
            partitions,
            reloads: global().scoped("ingest").counter("config.reloads"),
        };
        {
            let mut map = table.by_token.write();
            for spec in specs {
                map.insert(spec.token.clone(), TenantHandle::new(spec, partitions));
            }
        }
        table
    }

    /// Resolves a HELLO token.
    pub fn authenticate(&self, token: &str) -> Option<Arc<TenantHandle>> {
        let map = self.by_token.read();
        let handle = map.get(token)?;
        if handle.is_revoked() {
            return None;
        }
        Some(handle.clone())
    }

    /// Number of live (non-revoked) tenants.
    pub fn len(&self) -> usize {
        self.by_token
            .read()
            .values()
            .filter(|h| !h.is_revoked())
            .count()
    }

    /// True when no live tenant remains.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Swaps in a new spec set without disturbing live connections:
    /// kept tenants update in place (bucket fill preserved), new ones
    /// appear, missing tokens are revoked.
    pub fn reload(&self, specs: Vec<TenantSpec>) -> ReloadStats {
        let mut stats = ReloadStats::default();
        let mut map = self.by_token.write();
        // Match existing tenants by *name* so a token rotation revokes
        // the old credential but keeps the tenant's quota state.
        let mut by_name: HashMap<String, (String, Arc<TenantHandle>)> = map
            .iter()
            .map(|(tok, h)| (h.name(), (tok.clone(), h.clone())))
            .collect();
        let mut next: HashMap<String, Arc<TenantHandle>> = HashMap::new();
        for spec in specs {
            match by_name.remove(&spec.name) {
                Some((old_token, handle)) if !handle.is_revoked() => {
                    let changed = {
                        let cur = handle.spec.lock();
                        (cur.rate, cur.burst, cur.shards, cur.token.as_str())
                            != (spec.rate, spec.burst, spec.shards, spec.token.as_str())
                    };
                    if spec.token != old_token {
                        // Token rotated: the old token stops resolving
                        // immediately (it is simply not carried over).
                        stats.updated += 1;
                    } else if changed {
                        stats.updated += 1;
                    }
                    let token = spec.token.clone();
                    handle.apply(spec, self.partitions);
                    next.insert(token, handle);
                }
                _ => {
                    stats.added += 1;
                    next.insert(spec.token.clone(), TenantHandle::new(spec, self.partitions));
                }
            }
        }
        // Anything left in `by_name` vanished from the file: revoke so
        // its open connections are told to go away.
        for (_, (_, handle)) in by_name {
            if !handle.is_revoked() {
                handle.revoked.store(true, Ordering::Relaxed);
                stats.revoked += 1;
            }
        }
        *map = next;
        self.reloads.inc();
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FILE: &str = "\
# comment line
tenant acme  token=acme-secret rate=100 burst=10 shards=2

tenant lab   token=lab-secret   # trailing comment
";

    #[test]
    fn parses_defaults_and_comments() {
        let specs = parse_tenants(FILE).unwrap();
        assert_eq!(specs.len(), 2);
        assert_eq!(specs[0].name, "acme");
        assert_eq!(
            (specs[0].rate, specs[0].burst, specs[0].shards),
            (100.0, 10, 2)
        );
        assert_eq!(specs[1].token, "lab-secret");
        assert_eq!(
            (specs[1].rate, specs[1].burst, specs[1].shards),
            (0.0, 1, 0)
        );
    }

    #[test]
    fn rejects_malformed_files() {
        assert!(parse_tenants("").is_err(), "empty file");
        assert!(parse_tenants("tenant x").is_err(), "missing token");
        assert!(parse_tenants("tenant bad name token=t").is_err());
        assert!(parse_tenants("tenant a token=t\ntenant a token=u").is_err());
        assert!(parse_tenants("tenant a token=t\ntenant b token=t").is_err());
        assert!(parse_tenants("tenant a token=t rate=-3").is_err());
        assert!(parse_tenants("tenant a token=t rate=nan").is_err());
        assert!(parse_tenants("tenant a token=t color=red").is_err());
        assert!(parse_tenants("user a token=t").is_err());
    }

    #[test]
    fn shard_subsets_are_stable_and_fair() {
        let s = shard_subset("acme", 2, 8);
        assert_eq!(s.len(), 2);
        assert_eq!(s, shard_subset("acme", 2, 8), "stable across calls");
        assert_eq!(shard_subset("acme", 0, 4), vec![0, 1, 2, 3]);
        assert_eq!(shard_subset("acme", 9, 4).len(), 4, "clamped to all");
        for p in shard_subset("other", 3, 8) {
            assert!(p < 8);
        }
    }

    #[test]
    fn authenticate_and_route() {
        let table = TenantTable::new(
            parse_tenants("tenant acme token=s rate=5 burst=5 shards=2").unwrap(),
            8,
        );
        assert!(table.authenticate("nope").is_none());
        let h = table.authenticate("s").unwrap();
        assert_eq!(h.name(), "acme");
        let subset = shard_subset("acme", 2, 8);
        let p = h.route("web-1");
        assert!(subset.contains(&p), "routes stay inside the fair share");
        assert_eq!(p, h.route("web-1"), "same system, same shard");
    }

    #[test]
    fn reload_preserves_bucket_and_revokes_missing() {
        let table = TenantTable::new(
            parse_tenants("tenant a token=ta rate=1 burst=2\ntenant b token=tb").unwrap(),
            4,
        );
        let a = table.authenticate("ta").unwrap();
        // Drain a's bucket.
        assert!(a.admit(Duration::ZERO));
        assert!(a.admit(Duration::ZERO));
        assert!(!a.admit(Duration::ZERO));

        let stats = table
            .reload(parse_tenants("tenant a token=ta rate=1 burst=50\ntenant c token=tc").unwrap());
        assert_eq!(
            stats,
            ReloadStats {
                added: 1,
                updated: 1,
                revoked: 1
            }
        );
        // The live handle kept its (empty) fill level — reload is not a
        // quota refill — but the new burst applies as tokens accrue.
        assert!(!a.admit(Duration::ZERO));
        assert!(a.admit(Duration::from_secs(1)));
        // b's connections see the revocation; its token is gone.
        assert!(table.authenticate("tb").is_none());
        assert!(table.authenticate("tc").is_some());
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn reload_rotates_tokens_without_resetting_state() {
        let table = TenantTable::new(
            parse_tenants("tenant a token=old rate=1 burst=1").unwrap(),
            2,
        );
        let before = table.authenticate("old").unwrap();
        assert!(before.admit(Duration::ZERO));
        table.reload(parse_tenants("tenant a token=new rate=1 burst=1").unwrap());
        assert!(table.authenticate("old").is_none(), "old token revoked");
        let after = table.authenticate("new").unwrap();
        assert!(!after.admit(Duration::ZERO), "bucket fill carried over");
        assert!(!before.is_revoked(), "live connection keeps streaming");
    }
}
