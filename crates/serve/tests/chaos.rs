//! Deterministic chaos tests for the ingest daemon's isolation seams.
//!
//! Two fault points guard the network front door (see the table in
//! `logsynergy_pipeline::faults`): `ingest.accept` in the accept loop
//! and `ingest.parse` in the per-line path of a connection handler. The
//! recovery contract is the same shape as the pipeline's: a fault costs
//! at most one connection, never the daemon, and the drain summary's
//! six-bucket accounting stays exact over whatever was actually
//! accepted.
//!
//! Fault plans are process-global, so every test serializes on
//! `faults::test_lock()`.

#![cfg(feature = "fault-injection")]

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::faults::{points, test_lock, FaultPlan, FaultSpec};
use logsynergy_pipeline::{EventVectorizer, MemorySink, SequenceScorer};
use logsynergy_serve::{parse_tenants, start, Daemon, ServeConfig};
use logsynergy_telemetry as telemetry;

const EMBED_DIM: usize = 8;

const VOCAB: [&str; 4] = [
    "session opened for user root",
    "connection from remote peer closed abruptly after handshake timeout",
    "disk write latency elevated beyond configured threshold on volume data1",
    "packet responder terminating early",
];

#[derive(Clone)]
struct TableScorer;
impl SequenceScorer for TableScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut acc = 0.0f32;
        for &e in events {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        (acc - acc.floor()).clamp(0.0, 1.0)
    }
}

fn spawn() -> Daemon {
    let mut v = EventVectorizer::new(SystemId::SystemB, EMBED_DIM, LeiConfig::default());
    v.warm_start(VOCAB.iter().copied());
    start(
        ServeConfig {
            // Per-record flushing: these tests pin down exactly which
            // records around an injected panic were acknowledged, and a
            // handler micro-batch dying with the handler would make
            // that count racy (flushed iff the deadline happened to
            // fire first).
            ingest_batch: 1,
            ..ServeConfig::default()
        },
        parse_tenants("tenant acme token=s3").unwrap(),
        None,
        v,
        TableScorer,
        MemorySink::new(),
    )
    .expect("daemon starts")
}

/// HELLO + `n` records over one connection, half-close, read everything
/// the server says (which may end in an error if the server dropped the
/// connection mid-stream — that is the point of these tests).
fn stream(addr: SocketAddr, n: usize) -> String {
    let mut s = TcpStream::connect(addr).expect("connect");
    if s.write_all(b"HELLO s3\n").is_err() {
        // The server dropped us at accept (an armed fault) — nothing
        // more will be said on this connection.
        return String::new();
    }
    for i in 0..n {
        let line = format!(
            "{{\"system\":\"sys\",\"timestamp\":{i},\"message\":\"{}\"}}\n",
            VOCAB[i % VOCAB.len()]
        );
        if s.write_all(line.as_bytes()).is_err() {
            break;
        }
    }
    let _ = s.shutdown(std::net::Shutdown::Write);
    let mut resp = String::new();
    let _ = s.read_to_string(&mut resp);
    resp
}

/// Injected panics are expected noise; keep stderr clean while they fly.
fn with_quiet_panics<T>(f: impl FnOnce() -> T) -> T {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(prev);
    out
}

#[test]
fn parse_panic_costs_one_connection_never_the_daemon() {
    let _l = test_lock();
    let tele_before = telemetry::global().snapshot();

    let daemon = spawn();
    let addr = daemon.addr();

    // The 6th line at the parse point panics: for the first connection
    // that is HELLO + 4 accepted records, then the 5th record takes the
    // handler's unwind path and the connection dies without a summary.
    let guard = FaultPlan::seeded(21)
        .arm(
            points::INGEST_PARSE,
            FaultSpec::panic().after(5).max_fires(1),
        )
        .install();
    let doomed = with_quiet_panics(|| stream(addr, 10));
    assert_eq!(guard.fires(points::INGEST_PARSE), 1, "panic budget spent");
    assert!(
        !doomed.contains("\"accepted\""),
        "a killed connection must not receive a summary frame: {doomed}"
    );

    // The daemon is still serving: a fresh connection streams clean.
    let resp = stream(addr, 10);
    assert!(
        resp.lines().last().unwrap().contains("\"accepted\":10"),
        "{resp}"
    );
    drop(guard);

    let stats = daemon.ingest_stats();
    assert_eq!(stats.accepted, 14, "4 before the panic + 10 after");
    let summary = daemon.drain();
    assert_eq!(summary.logs, 14);
    assert_eq!(
        summary.pattern_hits
            + summary.cache_hits
            + summary.model_calls
            + summary.degraded
            + summary.shed
            + summary.quarantined,
        summary.windows,
        "six-bucket accounting must survive an injected panic"
    );

    let tele_after = telemetry::global().snapshot();
    assert_eq!(
        tele_after.counter_delta(&tele_before, "ingest.handler.restarts"),
        1,
        "one isolated handler restart per injected panic"
    );
}

#[test]
fn accept_faults_drop_the_connection_not_the_listener() {
    let _l = test_lock();
    let tele_before = telemetry::global().snapshot();

    let daemon = spawn();
    let addr = daemon.addr();

    // First accepted connection hits a transient accept fault, the
    // second an injected panic (caught in place); both are dropped
    // before reaching a handler. The third connection is served.
    let guard = FaultPlan::seeded(22)
        .arm(points::INGEST_ACCEPT, FaultSpec::transient().max_fires(1))
        .install();
    let dropped = stream(addr, 3);
    assert!(
        !dropped.contains("\"ok\""),
        "a connection dropped at accept must never be greeted: {dropped}"
    );
    drop(guard);
    let guard = FaultPlan::seeded(23)
        .arm(points::INGEST_ACCEPT, FaultSpec::panic().max_fires(1))
        .install();
    let dropped = with_quiet_panics(|| stream(addr, 3));
    assert!(!dropped.contains("\"ok\""), "{dropped}");
    assert_eq!(guard.fires(points::INGEST_ACCEPT), 1);
    drop(guard);

    let resp = stream(addr, 5);
    assert!(
        resp.lines().last().unwrap().contains("\"accepted\":5"),
        "{resp}"
    );

    let stats = daemon.ingest_stats();
    assert_eq!(
        stats.accepted, 5,
        "only the clean connection's records land"
    );
    assert_eq!(stats.connections, 1, "faulted accepts are not admitted");
    let summary = daemon.drain();
    assert_eq!(summary.logs, 5);

    let tele_after = telemetry::global().snapshot();
    assert_eq!(
        tele_after.counter_delta(&tele_before, "ingest.accept.faults"),
        2,
        "both accept faults are counted"
    );
}
