//! Multi-tenant isolation under abuse, measured over real sockets.
//!
//! An abusive tenant floods far past its token-bucket quota while a
//! well-behaved victim streams normally. Isolation holds when (a) the
//! abuser is quota-limited, slow-read paced, and finally disconnected,
//! (b) the victim loses nothing — zero rejected, zero shed — and its
//! p99 ingest latency (from the per-tenant telemetry histogram) stays
//! within 2× its solo baseline (with a small absolute floor so µs-scale
//! baselines don't turn scheduler jitter into flakes), and (c) the
//! drain summary's six-bucket accounting is still exact.
//!
//! The two tenants are pinned to *disjoint* shard subsets (asserted as
//! a precondition), so the only interference channel left is the one
//! this test is about: shared handler threads and CPU.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{EventVectorizer, MemorySink, PipelineConfig, SequenceScorer};
use logsynergy_serve::{parse_tenants, shard_subset, start, Daemon, ServeConfig};
use logsynergy_telemetry as telemetry;

const EMBED_DIM: usize = 8;

const VOCAB: [&str; 8] = [
    "session opened for user root",
    "connection from remote peer closed abruptly after handshake timeout",
    "disk write latency elevated beyond configured threshold on volume data1",
    "packet responder terminating early",
    "cache eviction pass completed",
    "replica placement policy satisfied for block",
    "authentication failure reported by gateway node",
    "heartbeat missed twice across consecutive intervals",
];

#[derive(Clone)]
struct TableScorer;
impl SequenceScorer for TableScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut acc = 0.0f32;
        for &e in events {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        (acc - acc.floor()).clamp(0.0, 1.0)
    }
}

fn vectorizer() -> EventVectorizer {
    let mut v = EventVectorizer::new(SystemId::SystemB, EMBED_DIM, LeiConfig::default());
    v.warm_start(VOCAB.iter().copied());
    v
}

fn ndjson_line(system: &str, i: usize) -> String {
    format!(
        "{{\"system\":\"{system}\",\"timestamp\":{i},\"message\":\"{}\"}}",
        VOCAB[i % VOCAB.len()]
    )
}

/// Streams `n` NDJSON records for one system over an authenticated
/// connection and returns the server's summary frame.
fn stream_records(addr: SocketAddr, token: &str, system: &str, n: usize) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("HELLO {token}\n").as_bytes())
        .unwrap();
    let mut payload = String::new();
    for i in 0..n {
        payload.push_str(&ndjson_line(system, i));
        payload.push('\n');
        if payload.len() > 1 << 16 {
            stream.write_all(payload.as_bytes()).unwrap();
            payload.clear();
        }
    }
    stream.write_all(payload.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut responses = String::new();
    stream
        .read_to_string(&mut responses)
        .expect("read responses");
    responses.lines().last().expect("summary frame").to_string()
}

/// Floods records until the daemon drops the connection for quota
/// abuse; write errors are the expected outcome, not failures.
fn flood_records(addr: SocketAddr, token: &str, system: &str, n: usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    if stream
        .write_all(format!("HELLO {token}\n").as_bytes())
        .is_err()
    {
        return;
    }
    for i in 0..n {
        let line = ndjson_line(system, i) + "\n";
        if stream.write_all(line.as_bytes()).is_err() {
            break; // disconnected as abusive — mission accomplished
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut sink = String::new();
    let _ = stream.read_to_string(&mut sink);
}

fn summary_field(frame: &str, field: &str) -> u64 {
    let value = serde_json::parse_value(frame).expect("summary frame is JSON");
    let entries = value.as_object().expect("summary frame is an object");
    serde::field(entries, field)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("summary frame missing {field}: {frame}"))
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        // Large shards: the victim must never block on capacity, so any
        // latency inflation it sees comes from contention alone.
        pipeline: PipelineConfig {
            partitions: 4,
            partition_capacity: 32_768,
            ..PipelineConfig::default()
        },
        quota_slow_after: 32,
        quota_penalty: Duration::from_micros(100),
        quota_disconnect_after: 1_000,
        ..ServeConfig::default()
    }
}

fn spawn(tenants: &str) -> Daemon {
    let specs = parse_tenants(tenants).unwrap();
    start(
        serve_config(),
        specs,
        None,
        vectorizer(),
        TableScorer,
        MemorySink::new(),
    )
    .expect("daemon starts")
}

fn p99_us(tenant: &str) -> u64 {
    telemetry::global()
        .scoped("ingest")
        .histogram(&format!("tenant.{tenant}.latency_us"))
        .quantile(0.99)
}

#[test]
fn abusive_tenant_cannot_degrade_a_victims_ingest_latency() {
    const VICTIM_LINES: usize = 20_000;

    // Distinct tenant names per phase: the telemetry registry is
    // process-global, so reusing a name would mix both phases' samples
    // into one histogram.
    let victim_subset = shard_subset("victim-mixed", 2, 4);
    let abuser_subset = shard_subset("abuser", 2, 4);
    assert!(
        victim_subset.iter().all(|p| !abuser_subset.contains(p)),
        "precondition: disjoint fair shares ({victim_subset:?} vs {abuser_subset:?})"
    );

    // ── Phase 1: solo baseline ─────────────────────────────────────
    let daemon = spawn("tenant victim-solo token=vs shards=2");
    let frame = stream_records(daemon.addr(), "vs", "sys-a", VICTIM_LINES);
    assert_eq!(summary_field(&frame, "accepted"), VICTIM_LINES as u64);
    let solo = daemon.drain();
    assert_eq!(solo.logs, VICTIM_LINES as u64);
    let p99_solo = p99_us("victim-solo");

    // ── Phase 2: same stream while an abuser floods ────────────────
    // rate=0.5 means one fresh token every 2 s — the abuser's
    // consecutive-reject run (32 fast + ~970 paced at 100 µs ≈ 100 ms)
    // cannot be reset by a refill, so the abusive disconnect at 1 000
    // consecutive rejects fires deterministically.
    let daemon = spawn(
        "tenant victim-mixed token=vm shards=2\n\
         tenant abuser token=ab rate=0.5 burst=4 shards=2",
    );
    let addr = daemon.addr();
    let abuser = std::thread::spawn(move || flood_records(addr, "ab", "flood-src", 15_000));
    let victim = std::thread::spawn(move || stream_records(addr, "vm", "sys-a", VICTIM_LINES));
    let frame = victim.join().unwrap();
    abuser.join().unwrap();

    // The victim lost nothing and was never throttled for the abuser's
    // sins.
    assert_eq!(
        summary_field(&frame, "accepted"),
        VICTIM_LINES as u64,
        "{frame}"
    );
    assert_eq!(summary_field(&frame, "rejected"), 0, "{frame}");
    assert_eq!(summary_field(&frame, "shed"), 0, "{frame}");

    // The abuser was quota-limited and ultimately disconnected.
    let stats = daemon.ingest_stats();
    assert!(stats.abusive_disconnects >= 1, "{stats:?}");
    assert!(stats.rejected > 0, "{stats:?}");
    let abuser_accepted = telemetry::global()
        .scoped("ingest")
        .counter("tenant.abuser.accepted")
        .get();
    assert!(
        abuser_accepted <= 16,
        "abuser got {abuser_accepted} lines past a burst-4 bucket"
    );
    assert_eq!(
        telemetry::global()
            .scoped("ingest")
            .counter("tenant.victim-mixed.rejected")
            .get(),
        0
    );

    // Drain still accounts for every accepted record exactly once.
    let mixed = daemon.drain();
    assert_eq!(mixed.logs, stats.accepted, "drain lost records");
    assert_eq!(
        mixed.pattern_hits
            + mixed.cache_hits
            + mixed.model_calls
            + mixed.degraded
            + mixed.shed
            + mixed.quarantined,
        mixed.windows,
        "six-bucket accounting must be exact"
    );

    // The isolation bound: mixed p99 within 2× the solo baseline, with
    // a 2 ms absolute floor so a µs-scale baseline doesn't turn OS
    // scheduling jitter into a flake.
    let p99_mixed = p99_us("victim-mixed");
    let bound = (2 * p99_solo).max(2_000);
    assert!(
        p99_mixed <= bound,
        "victim p99 degraded: solo {p99_solo} µs, under abuse {p99_mixed} µs (bound {bound} µs)"
    );
}
