//! End-to-end daemon tests over real sockets.
//!
//! The centerpiece is network/in-process parity: two tenants stream
//! 100k mixed NDJSON + syslog lines through the daemon, and every
//! verdict must be bitwise identical (`f32` probabilities included) to
//! an in-process `run_pipeline_with` run over the same records. For the
//! comparison to be meaningful the workload pins one system per
//! partition (windows are assembled per *worker* stream, so the
//! per-partition arrival order must match between the runs — a single
//! system per partition makes that order exactly the per-system send
//! order in both).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use logsynergy_lei::LeiConfig;
use logsynergy_loggen::SystemId;
use logsynergy_pipeline::{
    run_pipeline_with, EventVectorizer, MemorySink, PipelineConfig, RawLog, Report, SequenceScorer,
    WalOptions,
};
use logsynergy_serve::{parse_tenants, start, ServeConfig};

const EMBED_DIM: usize = 8;

/// Eight structurally distinct messages (no shared tokens between
/// same-length pairs) so Drain never merges them: the template space is
/// fixed after warm start and identical in every run.
const VOCAB: [&str; 8] = [
    "session opened for user root",
    "connection from remote peer closed abruptly after handshake timeout",
    "disk write latency elevated beyond configured threshold on volume data1",
    "packet responder terminating early",
    "cache eviction pass completed",
    "replica placement policy satisfied for block",
    "authentication failure reported by gateway node",
    "heartbeat missed twice across consecutive intervals",
];

/// Content-pure scorer: the verdict is a function of the embedding
/// vectors behind the window (never the event-id numbering), so runs
/// that assign ids in different orders still agree bitwise.
#[derive(Clone)]
struct TableScorer;
impl SequenceScorer for TableScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut acc = 0.0f32;
        for &e in events {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        let frac = acc - acc.floor();
        frac.clamp(0.0, 1.0)
    }
}

fn vectorizer() -> EventVectorizer {
    let mut v = EventVectorizer::new(SystemId::SystemB, EMBED_DIM, LeiConfig::default());
    v.warm_start(VOCAB.iter().copied());
    v
}

/// Per-system source: timestamps count up from 0 so both wire framings
/// can carry them exactly, messages cycle through the vocabulary with a
/// per-system phase.
fn system_source(system: &str, phase: usize, n: usize) -> Vec<RawLog> {
    (0..n)
        .map(|i| RawLog {
            system: system.to_string(),
            timestamp: i as u64,
            message: VOCAB[(i + phase) % VOCAB.len()].to_string(),
        })
        .collect()
}

/// Renders a record in the syslog framing ("Jan dd HH:MM:SS host msg")
/// whose parsed timestamp round-trips to `log.timestamp` (valid for
/// timestamps below 27 days).
fn syslog_line(log: &RawLog) -> String {
    let t = log.timestamp;
    let (day, rem) = (t / 86_400 + 1, t % 86_400);
    assert!(day <= 28);
    format!(
        "Jan {day} {:02}:{:02}:{:02} {} {}",
        rem / 3600,
        (rem % 3600) / 60,
        rem % 60,
        log.system,
        log.message
    )
}

fn ndjson_line(log: &RawLog) -> String {
    format!(
        "{{\"system\":\"{}\",\"timestamp\":{},\"message\":\"{}\"}}",
        log.system, log.timestamp, log.message
    )
}

/// Streams `logs` (alternating framings) over one authenticated
/// connection, half-closes, and returns the server's final summary
/// frame (the last response line).
fn stream_tenant(addr: SocketAddr, token: &str, logs: &[RawLog]) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("HELLO {token}\n").as_bytes())
        .unwrap();
    let mut payload = String::new();
    for (i, log) in logs.iter().enumerate() {
        if i % 2 == 0 {
            payload.push_str(&ndjson_line(log));
        } else {
            payload.push_str(&syslog_line(log));
        }
        payload.push('\n');
        if payload.len() > 1 << 16 {
            stream.write_all(payload.as_bytes()).unwrap();
            payload.clear();
        }
    }
    stream.write_all(payload.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut responses = String::new();
    stream
        .read_to_string(&mut responses)
        .expect("read responses");
    responses
        .lines()
        .last()
        .expect("server must answer with a summary frame")
        .to_string()
}

fn summary_field(frame: &str, field: &str) -> u64 {
    let value = serde_json::parse_value(frame).expect("summary frame is JSON");
    let entries = value.as_object().expect("summary frame is an object");
    serde::field(entries, field)
        .and_then(|v| v.as_u64())
        .unwrap_or_else(|| panic!("summary frame missing {field}: {frame}"))
}

fn by_system(reports: Vec<Report>, system: &str) -> Vec<Report> {
    reports.into_iter().filter(|r| r.system == system).collect()
}

#[test]
fn hundred_k_lines_match_the_in_process_run_bitwise() {
    // One system per partition (FNV % 4): web-0 → 0, web-3 → 1,
    // web-2 → 2, web-1 → 3. Tenant A owns the even partitions' systems,
    // tenant B the odd ones.
    let systems = ["web-0", "web-3", "web-2", "web-1"];
    let per_system = 25_000usize;
    let sources: Vec<Vec<RawLog>> = systems
        .iter()
        .enumerate()
        .map(|(phase, s)| system_source(s, phase, per_system))
        .collect();
    for (i, s) in systems.iter().enumerate() {
        let probe = LogsProbe::partition_of(s);
        assert_eq!(probe, i, "workload precondition: one system per partition");
    }

    let config = ServeConfig {
        pipeline: PipelineConfig {
            partitions: 4,
            partition_capacity: 4096,
            ..PipelineConfig::default()
        },
        ..ServeConfig::default()
    };
    let specs = parse_tenants("tenant tenant-a token=ta\ntenant tenant-b token=tb").unwrap();
    let sink = MemorySink::new();
    let daemon = start(
        config.clone(),
        specs,
        None,
        vectorizer(),
        TableScorer,
        sink.clone(),
    )
    .expect("daemon starts");
    let addr = daemon.addr();

    // Tenant A streams web-0 + web-2 interleaved, tenant B web-3 + web-1,
    // concurrently over two real sockets.
    let (a0, a2) = (sources[0].clone(), sources[2].clone());
    let (b3, b1) = (sources[1].clone(), sources[3].clone());
    let interleave = |x: Vec<RawLog>, y: Vec<RawLog>| -> Vec<RawLog> {
        x.into_iter()
            .zip(y)
            .flat_map(|(a, b)| [a, b])
            .collect::<Vec<_>>()
    };
    let client_a = std::thread::spawn(move || stream_tenant(addr, "ta", &interleave(a0, a2)));
    let interleave = |x: Vec<RawLog>, y: Vec<RawLog>| -> Vec<RawLog> {
        x.into_iter()
            .zip(y)
            .flat_map(|(a, b)| [a, b])
            .collect::<Vec<_>>()
    };
    let client_b = std::thread::spawn(move || stream_tenant(addr, "tb", &interleave(b3, b1)));
    let summary_a = client_a.join().unwrap();
    let summary_b = client_b.join().unwrap();
    for (tenant, frame) in [("a", &summary_a), ("b", &summary_b)] {
        assert_eq!(
            summary_field(frame, "accepted"),
            (2 * per_system) as u64,
            "tenant {tenant} summary: {frame}"
        );
        assert_eq!(summary_field(frame, "rejected"), 0, "{frame}");
        assert_eq!(summary_field(frame, "shed"), 0, "{frame}");
        assert_eq!(summary_field(frame, "parse_errors"), 0, "{frame}");
    }

    let stats = daemon.ingest_stats();
    assert_eq!(stats.accepted, (4 * per_system) as u64);
    assert_eq!(stats.parse_errors + stats.rejected + stats.shed, 0);

    // SIGTERM-equivalent: graceful drain must lose zero accepted records
    // and account for every window exactly once.
    let net = daemon.drain();
    assert_eq!(net.logs, (4 * per_system) as u64, "drain lost records");
    assert_eq!(
        net.pattern_hits
            + net.cache_hits
            + net.model_calls
            + net.degraded
            + net.shed
            + net.quarantined,
        net.windows,
        "six-bucket accounting must be exact"
    );
    assert_eq!(net.quarantined, 0);
    assert_eq!(net.shed, 0);

    // The same records in-process, same partitioning.
    let source: Vec<RawLog> = {
        let mut merged = Vec::with_capacity(4 * per_system);
        for i in 0..per_system {
            for s in &sources {
                merged.push(s[i].clone());
            }
        }
        merged
    };
    let local_sink = MemorySink::new();
    let local = run_pipeline_with(
        source,
        vectorizer(),
        TableScorer,
        local_sink.clone(),
        config.pipeline,
    );

    assert_eq!(net.logs, local.logs);
    assert_eq!(net.windows, local.windows);
    assert_eq!(net.reports, local.reports);
    assert_eq!(net.pattern_hits, local.pattern_hits);
    assert_eq!(net.cache_hits, local.cache_hits);
    assert_eq!(net.model_calls, local.model_calls);
    assert_eq!((net.degraded, net.shed), (local.degraded, local.shed));

    assert!(
        local.reports > 0,
        "workload must produce anomalies to compare"
    );
    for system in systems {
        let got = by_system(sink.reports(), system);
        let want = by_system(local_sink.reports(), system);
        assert_eq!(
            got.len(),
            want.len(),
            "{system}: report count over the wire differs"
        );
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w, "{system}: wire verdict differs from in-process");
            assert_eq!(
                g.probability.to_bits(),
                w.probability.to_bits(),
                "{system}: probability must be bitwise identical"
            );
        }
    }
}

/// Mirror of the buffer's FNV-1a routing, for workload preconditions.
struct LogsProbe;
impl LogsProbe {
    fn partition_of(system: &str) -> usize {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in system.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        (h % 4) as usize
    }
}

#[test]
fn drain_flushes_in_flight_connections() {
    let config = ServeConfig {
        drain_timeout: Duration::from_secs(10),
        pipeline: PipelineConfig {
            partitions: 2,
            ..PipelineConfig::default()
        },
        ..ServeConfig::default()
    };
    let specs = parse_tenants("tenant acme token=s3").unwrap();
    let sink = MemorySink::new();
    let daemon = start(config, specs, None, vectorizer(), TableScorer, sink).unwrap();
    let addr = daemon.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"HELLO s3\n").unwrap();
    let logs = system_source("inflight", 0, 600);
    for log in &logs[..300] {
        stream
            .write_all((ndjson_line(log) + "\n").as_bytes())
            .unwrap();
    }
    // Drain begins while the connection is open and mid-stream...
    daemon.initiate_drain();
    // ...and the remaining records, sent *after* drain started but
    // before the flush budget elapses, must still be ingested.
    for log in &logs[300..] {
        stream
            .write_all((ndjson_line(log) + "\n").as_bytes())
            .unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut responses = String::new();
    stream.read_to_string(&mut responses).unwrap();
    let last = responses.lines().last().expect("summary frame");
    assert_eq!(summary_field(last, "accepted"), 600, "{last}");
    assert!(last.contains("\"draining\":true"), "{last}");

    let summary = daemon.drain();
    assert_eq!(summary.logs, 600, "flush-then-drain must lose nothing");
}

#[test]
fn auth_is_required_and_bad_tokens_are_rejected() {
    let specs = parse_tenants("tenant acme token=good").unwrap();
    let sink = MemorySink::new();
    let daemon = start(
        ServeConfig::default(),
        specs,
        None,
        vectorizer(),
        TableScorer,
        sink,
    )
    .unwrap();
    let addr = daemon.addr();

    // Wrong token: 401 and the connection closes.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"HELLO wrong\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("\"code\":401"), "{resp}");

    // Records before HELLO: 401 and the connection closes.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"{\"message\":\"sneaky\"}\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("\"code\":401"), "{resp}");

    // Good token: records flow, malformed lines are counted and answered
    // with 400 frames without killing the connection.
    let mut s = TcpStream::connect(addr).unwrap();
    s.write_all(b"HELLO good\n").unwrap();
    s.write_all(b"not json and not syslog\n").unwrap();
    s.write_all(b"{\"message\":\"fine\"}\nQUIT\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("\"ok\":true"), "{resp}");
    assert!(resp.contains("\"code\":400"), "{resp}");
    let last = resp.lines().last().unwrap();
    assert_eq!(summary_field(last, "accepted"), 1, "{last}");
    assert_eq!(summary_field(last, "parse_errors"), 1, "{last}");

    let stats = daemon.ingest_stats();
    assert_eq!((stats.accepted, stats.parse_errors), (1, 1));
    let summary = daemon.drain();
    assert_eq!(summary.logs, 1);
}

#[test]
fn blank_line_keepalives_cannot_dodge_the_auth_deadline() {
    // Regression: the deadline used to be checked only on idle read
    // timeouts, so a client that kept bytes flowing without ever
    // authenticating camped on a handler slot forever. Now it is
    // enforced on every pass.
    let config = ServeConfig {
        auth_deadline: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let specs = parse_tenants("tenant acme token=t").unwrap();
    let daemon = start(
        config,
        specs,
        None,
        vectorizer(),
        TableScorer,
        MemorySink::new(),
    )
    .unwrap();
    let mut s = TcpStream::connect(daemon.addr()).unwrap();
    let start_t = Instant::now();
    let mut closed = false;
    while start_t.elapsed() < Duration::from_secs(5) {
        if s.write_all(b"\n").is_err() {
            closed = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        closed,
        "a never-authenticating connection streaming blank lines must be closed"
    );
    assert!(
        start_t.elapsed() >= Duration::from_millis(300),
        "closed before the auth deadline: {:?}",
        start_t.elapsed()
    );
    // The handler slot is free again: a well-behaved client still works.
    let mut ok = TcpStream::connect(daemon.addr()).unwrap();
    ok.write_all(b"HELLO t\n{\"message\":\"fine\"}\nQUIT\n")
        .unwrap();
    let mut resp = String::new();
    ok.read_to_string(&mut resp).unwrap();
    assert_eq!(summary_field(resp.lines().last().unwrap(), "accepted"), 1);
    let summary = daemon.drain();
    assert_eq!(summary.logs, 1);
}

#[test]
fn a_newline_free_flood_is_cut_off_at_the_line_cap() {
    // Regression: `read_line` used to append into an uncapped buffer, so
    // a single socket streaming bytes with no newline could grow memory
    // without bound. The daemon now rejects the line at 64 KiB and
    // disconnects.
    let specs = parse_tenants("tenant acme token=t").unwrap();
    let daemon = start(
        ServeConfig::default(),
        specs,
        None,
        vectorizer(),
        TableScorer,
        MemorySink::new(),
    )
    .unwrap();
    let mut s = TcpStream::connect(daemon.addr()).unwrap();
    s.write_all(b"HELLO t\n").unwrap();
    let chunk = [b'a'; 8192];
    let mut sent = 0usize;
    let mut cut_off = false;
    while sent < 64 << 20 {
        match s.write_all(&chunk) {
            Ok(()) => sent += chunk.len(),
            Err(_) => {
                cut_off = true;
                break;
            }
        }
    }
    assert!(
        cut_off,
        "server swallowed {sent} newline-free bytes without disconnecting"
    );
    drop(s);
    let (stats, summary) = daemon.drain_with_stats();
    assert_eq!(stats.accepted, 0);
    assert_eq!(summary.logs, 0, "no complete record was ever framed");
}

#[test]
fn parse_error_frames_are_sampled_not_per_line() {
    // Same cadence as the quota/shed paths: the first malformed line is
    // answered, then one frame per 1024 — never a frame per line, never
    // permanent silence.
    let specs = parse_tenants("tenant acme token=t").unwrap();
    let daemon = start(
        ServeConfig::default(),
        specs,
        None,
        vectorizer(),
        TableScorer,
        MemorySink::new(),
    )
    .unwrap();
    let mut s = TcpStream::connect(daemon.addr()).unwrap();
    s.write_all(b"HELLO t\n").unwrap();
    for _ in 0..5 {
        s.write_all(b"definitely not parseable\n").unwrap();
    }
    s.write_all(b"QUIT\n").unwrap();
    s.shutdown(std::net::Shutdown::Write).unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let malformed_frames = resp.lines().filter(|l| l.contains("\"code\":400")).count();
    assert_eq!(
        malformed_frames, 1,
        "five malformed lines must buy exactly one 400 frame: {resp}"
    );
    let last = resp.lines().last().unwrap();
    assert_eq!(summary_field(last, "parse_errors"), 5, "{last}");
    daemon.drain();
}

#[test]
fn tenants_file_hot_reloads_without_dropping_connections() {
    let dir = std::env::temp_dir().join(format!("logsynergy-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tenants.conf");
    std::fs::write(
        &path,
        "tenant alpha token=alpha-t\ntenant beta token=beta-t\n",
    )
    .unwrap();

    let config = ServeConfig {
        reload_poll: Duration::from_millis(20),
        ..ServeConfig::default()
    };
    let specs = parse_tenants(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let sink = MemorySink::new();
    let daemon = start(
        config,
        specs,
        Some(path.clone()),
        vectorizer(),
        TableScorer,
        sink,
    )
    .unwrap();
    let addr = daemon.addr();

    // alpha connects and starts streaming before the reload.
    let mut alpha = TcpStream::connect(addr).unwrap();
    alpha.write_all(b"HELLO alpha-t\n").unwrap();
    alpha
        .write_all(b"{\"system\":\"a1\",\"message\":\"before reload\"}\n")
        .unwrap();

    // Rewrite the file: beta is gone, gamma appears.
    std::fs::write(
        &path,
        "tenant alpha token=alpha-t\ntenant gamma token=gamma-t\n",
    )
    .unwrap();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        // Poll by trying the new tenant; the daemon reloads on mtime.
        let mut probe = TcpStream::connect(addr).unwrap();
        probe.write_all(b"HELLO gamma-t\nQUIT\n").unwrap();
        let mut resp = String::new();
        probe.read_to_string(&mut resp).unwrap();
        if resp.contains("\"tenant\":\"gamma\"") {
            break;
        }
        assert!(Instant::now() < deadline, "reload never observed: {resp}");
        std::thread::sleep(Duration::from_millis(25));
    }

    // beta's token no longer authenticates.
    let mut beta = TcpStream::connect(addr).unwrap();
    beta.write_all(b"HELLO beta-t\n").unwrap();
    let mut resp = String::new();
    beta.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("\"code\":401"), "{resp}");

    // alpha's pre-reload connection kept working the whole time.
    alpha
        .write_all(b"{\"system\":\"a1\",\"message\":\"after reload\"}\nQUIT\n")
        .unwrap();
    let mut resp = String::new();
    alpha.read_to_string(&mut resp).unwrap();
    let last = resp.lines().last().unwrap();
    assert_eq!(
        summary_field(last, "accepted"),
        2,
        "live connection must survive the reload: {last}"
    );

    let summary = daemon.drain();
    assert!(summary.logs >= 2);
    std::fs::remove_dir_all(&dir).ok();
}

/// Key-pure scorer: the verdict depends only on the window's *distinct*
/// event set — the pattern library's key granularity. The library is an
/// in-memory tier that starts empty after a daemon restart (exactly like
/// an LRU eviction), so cross-restart bitwise verdict parity requires
/// the model score to agree with any library-stored verdict, i.e. to be
/// a function of the pattern key (see `crates/pipeline/tests/durable.rs`).
#[derive(Clone)]
struct KeyScorer;
impl SequenceScorer for KeyScorer {
    fn score(&self, events: &[u32], table: &[Vec<f32>]) -> f32 {
        let mut distinct = events.to_vec();
        distinct.sort_unstable();
        distinct.dedup();
        let mut acc = 0.0f32;
        for &e in &distinct {
            for v in &table[e as usize] {
                acc += v.abs();
            }
        }
        (acc - acc.floor()).clamp(0.0, 1.0)
    }
}

/// Aperiodic per-system source (enough distinct window event-sets that
/// the key-pure scorer reports on some of them).
fn wal_source(system: &str, phase: usize, n: usize) -> Vec<RawLog> {
    (0..n)
        .map(|i| RawLog {
            system: system.to_string(),
            timestamp: i as u64,
            message: VOCAB[(i * 7 + i / 4 + phase) % VOCAB.len()].to_string(),
        })
        .collect()
}

/// Writes `logs` (alternating framings) onto an open connection.
fn write_lines(conn: &mut TcpStream, logs: &[RawLog]) {
    let mut payload = String::new();
    for (i, log) in logs.iter().enumerate() {
        if i % 2 == 0 {
            payload.push_str(&ndjson_line(log));
        } else {
            payload.push_str(&syslog_line(log));
        }
        payload.push('\n');
        if payload.len() > 1 << 16 {
            conn.write_all(payload.as_bytes()).unwrap();
            payload.clear();
        }
    }
    conn.write_all(payload.as_bytes()).unwrap();
}

/// Wire-to-disk parity: the PR 8 two-tenant socket workload rerun in
/// `--wal-dir` mode, with a SIGTERM-equivalent drain landing mid-stream
/// and a second daemon restarted over the same log directory to finish
/// the job. Cumulative accounting and per-system verdicts must be
/// bitwise identical to one uninterrupted in-process run.
#[test]
fn wal_mode_matches_the_in_process_run_bitwise_across_a_restart() {
    let systems = ["web-0", "web-3", "web-2", "web-1"];
    let per_system = 2_000usize;
    // Mid-window, mid-step: the restart boundary must be re-primed from
    // the recovered cursor context, not rounded to a window edge.
    let split = 1_013usize;
    let sources: Vec<Vec<RawLog>> = systems
        .iter()
        .enumerate()
        .map(|(phase, s)| wal_source(s, phase, per_system))
        .collect();
    for (i, s) in systems.iter().enumerate() {
        assert_eq!(LogsProbe::partition_of(s), i, "one system per partition");
    }

    let dir = std::env::temp_dir().join(format!("lswal-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServeConfig {
        drain_timeout: Duration::from_secs(10),
        pipeline: PipelineConfig {
            partitions: 4,
            partition_capacity: 4096,
            wal: Some(WalOptions {
                // Small segments so both daemon lifetimes roll segments.
                segment_max_bytes: 4096,
                ..WalOptions::at(dir.clone())
            }),
            ..PipelineConfig::default()
        },
        ..ServeConfig::default()
    };
    let tenants = || parse_tenants("tenant tenant-a token=ta\ntenant tenant-b token=tb").unwrap();
    let interleave = |x: &[RawLog], y: &[RawLog]| -> Vec<RawLog> {
        x.iter()
            .cloned()
            .zip(y.iter().cloned())
            .flat_map(|(a, b)| [a, b])
            .collect()
    };

    // First daemon lifetime: each system's prefix, with the drain
    // (SIGTERM) initiated while both tenants are still mid-stream.
    let sink1 = MemorySink::new();
    let daemon = start(
        config.clone(),
        tenants(),
        None,
        vectorizer(),
        KeyScorer,
        sink1.clone(),
    )
    .expect("daemon starts in wal mode");
    let addr = daemon.addr();

    let logs_a = interleave(&sources[0][..split], &sources[2][..split]);
    let logs_b = interleave(&sources[1][..split], &sources[3][..split]);
    let mut conn_a = TcpStream::connect(addr).unwrap();
    let mut conn_b = TcpStream::connect(addr).unwrap();
    conn_a.write_all(b"HELLO ta\n").unwrap();
    conn_b.write_all(b"HELLO tb\n").unwrap();
    let head = 200usize;
    write_lines(&mut conn_a, &logs_a[..head]);
    write_lines(&mut conn_b, &logs_b[..head]);
    // SIGTERM arrives mid-stream; everything already in flight (and
    // everything both clients flush within the drain budget) must land.
    daemon.initiate_drain();
    write_lines(&mut conn_a, &logs_a[head..]);
    write_lines(&mut conn_b, &logs_b[head..]);
    for (tenant, mut conn) in [("a", conn_a), ("b", conn_b)] {
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        conn.read_to_string(&mut resp).unwrap();
        let last = resp.lines().last().expect("summary frame");
        assert_eq!(
            summary_field(last, "accepted"),
            (2 * split) as u64,
            "tenant {tenant}: {last}"
        );
        assert_eq!(summary_field(last, "shed"), 0, "tenant {tenant}: {last}");
        assert!(
            last.contains("\"draining\":true"),
            "tenant {tenant}: {last}"
        );
    }
    let first = daemon.drain();
    assert_eq!(first.logs, (4 * split) as u64, "drain lost records");
    assert_eq!(first.crashed_workers, 0);

    // Second daemon lifetime over the same directory: the detection
    // workers resume from the per-partition cursors and the tenants
    // finish their streams.
    let sink2 = MemorySink::new();
    let daemon = start(
        config.clone(),
        tenants(),
        None,
        vectorizer(),
        KeyScorer,
        sink2.clone(),
    )
    .expect("daemon restarts over the log directory");
    let addr = daemon.addr();
    let rest = per_system - split;
    let tail_a = interleave(&sources[0][split..], &sources[2][split..]);
    let tail_b = interleave(&sources[1][split..], &sources[3][split..]);
    for (tenant, token, tail) in [("a", "ta", tail_a), ("b", "tb", tail_b)] {
        let last = stream_tenant(addr, token, &tail);
        assert_eq!(
            summary_field(&last, "accepted"),
            (2 * rest) as u64,
            "tenant {tenant}: {last}"
        );
    }
    let second = daemon.drain();

    // Cumulative exactly-once accounting across the restart.
    assert_eq!(second.logs, (4 * per_system) as u64, "cumulative log count");
    assert_eq!(second.crashed_workers, 0);
    assert_eq!(
        second.pattern_hits
            + second.cache_hits
            + second.model_calls
            + second.degraded
            + second.shed
            + second.quarantined,
        second.windows,
        "six-bucket accounting must be exact: {second:?}"
    );

    // One uninterrupted in-process run is the reference.
    let source: Vec<RawLog> = {
        let mut merged = Vec::with_capacity(4 * per_system);
        for i in 0..per_system {
            for s in &sources {
                merged.push(s[i].clone());
            }
        }
        merged
    };
    let local_sink = MemorySink::new();
    let local = run_pipeline_with(
        source,
        vectorizer(),
        KeyScorer,
        local_sink.clone(),
        PipelineConfig {
            partitions: 4,
            partition_capacity: 4096,
            ..PipelineConfig::default()
        },
    );
    assert!(local.reports > 0, "workload must report: {local:?}");
    assert_eq!(second.windows, local.windows, "no window lost or doubled");
    assert_eq!(second.reports, local.reports, "cumulative report count");
    assert_eq!(
        second.pattern_hits + second.cache_hits + second.model_calls,
        local.pattern_hits + local.cache_hits + local.model_calls,
        "every window verdicts through some tier"
    );

    // Per-system verdict streams stitch bitwise across the restart.
    let mut stitched = sink1.reports();
    stitched.extend(sink2.reports());
    for system in systems {
        let got = by_system(stitched.clone(), system);
        let want = by_system(local_sink.reports(), system);
        assert_eq!(got.len(), want.len(), "{system}: report count");
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g, w, "{system}: wire-to-disk verdict differs");
            assert_eq!(
                g.probability.to_bits(),
                w.probability.to_bits(),
                "{system}: probability must be bitwise identical"
            );
        }
    }

    // Both lifetimes drained clean: every partition's cursor covers its
    // whole stream and nothing waits for replay.
    for p in 0..4usize {
        let r = logsynergy::wal::recover_partition(&dir.join(format!("p{p}"))).unwrap();
        assert_eq!(r.cursor.next_seq, per_system as u64, "partition {p}");
        assert!(r.replay.is_empty(), "partition {p} left unacked records");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// A scorer slow enough to build queue depth, for shed-path coverage.
#[derive(Clone)]
struct SlowScorer;
impl SequenceScorer for SlowScorer {
    fn score(&self, _events: &[u32], _table: &[Vec<f32>]) -> f32 {
        std::thread::sleep(Duration::from_millis(2));
        0.1
    }
}

#[test]
fn watermark_sheds_with_429_style_frames_and_exact_accounting() {
    let config = ServeConfig {
        pipeline: PipelineConfig {
            partitions: 1,
            partition_capacity: 8,
            shed_watermark: 4,
            score_cache: 0,
            batch_windows: 1,
            ..PipelineConfig::default()
        },
        ..ServeConfig::default()
    };
    let specs = parse_tenants("tenant flood token=f").unwrap();
    let sink = MemorySink::new();
    let daemon = start(config, specs, None, vectorizer(), SlowScorer, sink).unwrap();
    let addr = daemon.addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"HELLO f\n").unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut hello = String::new();
    reader.read_line(&mut hello).unwrap();
    let logs = system_source("burst", 0, 3000);
    for log in &logs {
        stream
            .write_all((ndjson_line(log) + "\n").as_bytes())
            .unwrap();
    }
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut responses = String::new();
    reader.read_to_string(&mut responses).unwrap();
    assert!(
        responses.contains("\"code\":503"),
        "over-watermark records must be answered with shed frames: {}",
        &responses[..responses.len().min(400)]
    );
    // Regression: every 503 backpressure frame names the rejecting
    // partition (here the only one, 0) so multi-shard clients can tell
    // which route is saturated.
    assert!(
        responses.contains("\"partition\":0"),
        "503 frames must carry the rejecting partition: {}",
        &responses[..responses.len().min(400)]
    );
    let last = responses.lines().last().unwrap();
    let (accepted, shed) = (summary_field(last, "accepted"), summary_field(last, "shed"));
    assert!(shed > 0, "{last}");
    assert_eq!(accepted + shed, 3000, "every record accounted: {last}");

    let stats = daemon.ingest_stats();
    assert_eq!((stats.accepted, stats.shed), (accepted, shed));
    let summary = daemon.drain();
    assert_eq!(
        summary.logs, accepted,
        "exactly the acknowledged records reach detection"
    );
    assert_eq!(
        summary.pattern_hits
            + summary.cache_hits
            + summary.model_calls
            + summary.degraded
            + summary.shed
            + summary.quarantined,
        summary.windows
    );
}
