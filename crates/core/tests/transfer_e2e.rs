//! End-to-end transfer check: LogSynergy trained on two source systems
//! plus a sliver of the target must detect target anomalies well, and
//! removing LEI must hurt. This is the repository's load-bearing smoke
//! test for the Table IV/V and Fig. 5 experiment shapes.

use logsynergy::api::Pipeline;
use logsynergy::data::EventTextMode;
use logsynergy::detector::Detector;
use logsynergy_loggen::datasets;

fn f1(pred: &[bool], truth: &[bool]) -> (f64, f64, f64) {
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fndp = 0.0;
    for (&p, &t) in pred.iter().zip(truth) {
        match (p, t) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fndp += 1.0,
            _ => {}
        }
    }
    let prec = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let rec = if tp + fndp > 0.0 {
        tp / (tp + fndp)
    } else {
        0.0
    };
    let f1 = if prec + rec > 0.0 {
        2.0 * prec * rec / (prec + rec)
    } else {
        0.0
    };
    (prec, rec, f1)
}

fn run(mode: EventTextMode) -> (f64, f64, f64) {
    let mut p = Pipeline::scaled();
    p.text_mode = mode;
    p.train_config.epochs = 5;
    p.train_config.n_source = 1200;
    p.train_config.n_target = 300;
    p.train_config.batch_size = 128;

    // Thunderbird as target: its anomalies are fully covered by BGL+Spirit.
    let src1 = p.prepare(&datasets::bgl().generate_with(0.006, 2.0));
    let src2 = p.prepare(&datasets::spirit().generate_with(0.002, 6.0));
    let tgt = p.prepare(&datasets::thunderbird().generate_with(0.012, 3.0));

    let (model, _) = p.fit(&[&src1, &src2], &tgt);
    let (_, test) = tgt.split(p.train_config.n_target, 1500);
    let truth: Vec<bool> = test.iter().map(|s| s.label).collect();
    assert!(
        truth.iter().filter(|&&t| t).count() >= 10,
        "test set needs anomalies"
    );
    let pred = Detector::new(&model).detect(&test, &tgt.event_embeddings);
    f1(&pred, &truth)
}

#[test]
fn transfer_with_lei_achieves_high_f1() {
    let (prec, rec, f1) = run(EventTextMode::Interpreted(Default::default()));
    assert!(
        f1 > 0.8,
        "full LogSynergy should transfer well: P={prec:.3} R={rec:.3} F1={f1:.3}"
    );
}

#[test]
fn removing_lei_degrades_f1() {
    let (_, _, with_lei) = run(EventTextMode::Interpreted(Default::default()));
    let (p, r, without) = run(EventTextMode::RawTemplate);
    assert!(
        without < with_lei,
        "w/o LEI (P={p:.3} R={r:.3} F1={without:.3}) should underperform full ({with_lei:.3})"
    );
}
