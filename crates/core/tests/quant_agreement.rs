//! The int8 accuracy gate (`quant` feature): on a trained model and a
//! Table IV/V-shaped eval corpus, the quantized scorer must agree with
//! the f32 detector on ≥ 99.5% of verdicts and move F1 by ≤ 0.005.
//!
//! This is the test that keeps `--quant` honest: the quantized path is a
//! performance tier, not a different detector.

#![cfg(feature = "quant")]

use logsynergy::api::Pipeline;
use logsynergy::detector::{Detector, THRESHOLD};
use logsynergy::infer::InferencePlan;
use logsynergy::quant::QuantizedModel;
use logsynergy_loggen::datasets;

fn f1(pred: &[bool], truth: &[bool]) -> f64 {
    let mut tp = 0.0;
    let mut fp = 0.0;
    let mut fnd = 0.0;
    for (&p, &t) in pred.iter().zip(truth) {
        match (p, t) {
            (true, true) => tp += 1.0,
            (true, false) => fp += 1.0,
            (false, true) => fnd += 1.0,
            _ => {}
        }
    }
    let prec = if tp + fp > 0.0 { tp / (tp + fp) } else { 0.0 };
    let rec = if tp + fnd > 0.0 { tp / (tp + fnd) } else { 0.0 };
    if prec + rec > 0.0 {
        2.0 * prec * rec / (prec + rec)
    } else {
        0.0
    }
}

#[test]
fn int8_verdicts_agree_with_f32_within_gate() {
    let mut p = Pipeline::scaled();
    p.train_config.epochs = 5;
    p.train_config.n_source = 1200;
    p.train_config.n_target = 300;
    p.train_config.batch_size = 128;

    let src1 = p.prepare(&datasets::bgl().generate_with(0.006, 2.0));
    let src2 = p.prepare(&datasets::spirit().generate_with(0.002, 6.0));
    let tgt = p.prepare(&datasets::thunderbird().generate_with(0.012, 3.0));
    let (model, _) = p.fit(&[&src1, &src2], &tgt);

    let (calib, test) = tgt.split(p.train_config.n_target, 1500);
    let truth: Vec<bool> = test.iter().map(|s| s.label).collect();
    assert!(
        truth.iter().filter(|&&t| t).count() >= 10,
        "test set needs anomalies"
    );

    // f32 reference: the tape-backed detector (the serving default).
    let f32_scores = Detector::new(&model).scores(&test, &tgt.event_embeddings);

    // int8: calibrated on the training sliver, evaluated on held-out data.
    let calib_windows: Vec<&[u32]> = calib.iter().map(|s| s.events.as_slice()).collect();
    let plan = InferencePlan::from_model(&model);
    let calibration = plan.calibrate(&calib_windows, &tgt.event_embeddings);
    let q = QuantizedModel::from_plan(&plan, &calibration);
    let test_windows: Vec<&[u32]> = test.iter().map(|s| s.events.as_slice()).collect();
    let q_scores = q.score_windows(&test_windows, &tgt.event_embeddings);

    let f32_pred: Vec<bool> = f32_scores.iter().map(|&s| s > THRESHOLD).collect();
    let q_pred: Vec<bool> = q_scores.iter().map(|&s| s > THRESHOLD).collect();
    let agree = f32_pred.iter().zip(&q_pred).filter(|(a, b)| a == b).count();
    let agreement = agree as f64 / f32_pred.len() as f64;
    assert!(
        agreement >= 0.995,
        "verdict agreement {:.4} below the 99.5% gate ({} / {} windows)",
        agreement,
        agree,
        f32_pred.len()
    );

    let f1_f32 = f1(&f32_pred, &truth);
    let f1_q = f1(&q_pred, &truth);
    assert!(
        (f1_f32 - f1_q).abs() <= 0.005,
        "|ΔF1| {:.4} above the 0.005 gate (f32 {:.4}, int8 {:.4})",
        (f1_f32 - f1_q).abs(),
        f1_f32,
        f1_q
    );
}
