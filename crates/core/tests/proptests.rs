//! Property tests for the core data pipeline and detector invariants.

use logsynergy::config::ModelConfig;
use logsynergy::data::{batch_features, batch_labels, SeqSample};
use logsynergy::detector::Detector;
use logsynergy::model::LogSynergyModel;
use proptest::prelude::*;
use rand::SeedableRng;

fn samples_strategy(max_event: u32) -> impl Strategy<Value = Vec<SeqSample>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(0..max_event, 1..12),
            any::<bool>(),
        )
            .prop_map(|(events, label)| SeqSample { events, label }),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// batch_features always produces [B, T, D] with correct padding.
    #[test]
    fn batch_features_shape_and_padding(samples in samples_strategy(3), t in 1usize..12, d in 1usize..8) {
        let emb: Vec<Vec<f32>> = (0..3).map(|i| vec![(i + 1) as f32; d]).collect();
        let refs: Vec<&SeqSample> = samples.iter().collect();
        let x = batch_features(&refs, &emb, t, d);
        prop_assert_eq!(x.shape(), &[samples.len(), t, d]);
        for (i, s) in samples.iter().enumerate() {
            for step in 0..t {
                let off = (i * t + step) * d;
                let got = x.data()[off];
                if step < s.events.len().min(t) {
                    prop_assert_eq!(got, (s.events[step] + 1) as f32);
                } else {
                    prop_assert_eq!(got, 0.0, "padding must be zero");
                }
            }
        }
        let labels = batch_labels(&refs);
        prop_assert_eq!(labels.len(), samples.len());
        prop_assert!(labels.iter().all(|&l| l == 0.0 || l == 1.0));
    }

    /// Detector scores are probabilities regardless of inputs, and
    /// independent of batch size.
    #[test]
    fn detector_scores_are_probabilities(samples in samples_strategy(2), seed in 0u64..50) {
        let mut cfg = ModelConfig::scaled(2);
        cfg.embed_dim = 8;
        cfg.d_model = 8;
        cfg.heads = 2;
        cfg.ff = 16;
        cfg.layers = 1;
        cfg.head_hidden = 8;
        cfg.max_len = 12;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let model = LogSynergyModel::new(cfg, &mut rng);
        let emb: Vec<Vec<f32>> = vec![vec![0.5; 8], vec![-0.5; 8]];
        let a = Detector::new(&model).with_batch_size(2).scores(&samples, &emb);
        let b = Detector::new(&model).with_batch_size(64).scores(&samples, &emb);
        prop_assert_eq!(a.len(), samples.len());
        for (&x, &y) in a.iter().zip(&b) {
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!((x - y).abs() < 1e-5, "batching changed a score: {x} vs {y}");
        }
    }
}
