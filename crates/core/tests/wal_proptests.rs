//! Property tests for the WAL frame codec and recovery scan: round-trip
//! arbitrary records, then fuzz torn tails, bit-flipped bytes, and
//! truncated segments. Recovery must stop cleanly at the last valid
//! frame, never panic, and report a typed [`WalError`].

use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use logsynergy::wal::{
    self, encode_cursor, encode_record, next_frame, recover_partition, CursorFile, CursorState,
    PartitionWal, Payload, WalConfig, WalError, WalRecord,
};
use proptest::prelude::*;

static DIR_ID: AtomicU64 = AtomicU64::new(0);

/// Fresh scratch directory per proptest case.
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "lswal-prop-{}-{}",
        std::process::id(),
        DIR_ID.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn record_strategy() -> impl Strategy<Value = (String, u64, String)> {
    ("[a-z0-9._-]{0,24}", any::<u64>(), "[ -~]{0,120}")
}

/// Writes `records` through a real appender (tiny segments force rolls)
/// and returns the partition directory.
fn write_corpus(records: &[(String, u64, String)], segment_max_bytes: u64) -> PathBuf {
    let dir = scratch();
    let cfg = WalConfig {
        segment_max_bytes,
        ..WalConfig::default()
    };
    let (mut wal, _) = PartitionWal::open(&dir, cfg).unwrap();
    for (system, ts, msg) in records {
        wal.append(system, *ts, msg).unwrap();
    }
    dir
}

fn cleanup(dir: &PathBuf) {
    let _ = fs::remove_dir_all(dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary records survive a frame-level encode/decode round trip.
    #[test]
    fn frame_codec_round_trips(raw in record_strategy(), seq in any::<u64>()) {
        let (system, ts, msg) = raw;
        let rec = WalRecord { seq, system, timestamp: ts, message: msg };
        let bytes = encode_record(&rec);
        let (payload, consumed) = next_frame(&bytes).unwrap().unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(wal::decode_payload(payload).unwrap(), Payload::Record(rec));
    }

    /// Arbitrary cursor states survive the codec.
    #[test]
    fn cursor_codec_round_trips(vals in proptest::collection::vec(any::<u64>(), 9), fill in any::<u32>(), since in any::<u32>()) {
        let c = CursorState {
            next_seq: vals[0],
            window_fill: fill,
            since_last_window: since,
            pattern_hits: vals[1],
            cache_hits: vals[2],
            model_calls: vals[3],
            degraded: vals[4],
            shed: vals[5],
            quarantined: vals[6],
            retries: vals[7],
            reports: vals[8],
        };
        let bytes = encode_cursor(&c);
        let (payload, _) = next_frame(&bytes).unwrap().unwrap();
        prop_assert_eq!(wal::decode_payload(payload).unwrap(), Payload::Cursor(c));
    }

    /// Full write-then-recover round trip across segment rolls.
    #[test]
    fn recovery_round_trips_all_records(records in proptest::collection::vec(record_strategy(), 1..40)) {
        let dir = write_corpus(&records, 256);
        let r = recover_partition(&dir).unwrap();
        prop_assert!(r.tail_error.is_none());
        prop_assert_eq!(r.replay.len(), records.len());
        for (i, (rec, (system, ts, msg))) in r.replay.iter().zip(&records).enumerate() {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(&rec.system, system);
            prop_assert_eq!(rec.timestamp, *ts);
            prop_assert_eq!(&rec.message, msg);
        }
        cleanup(&dir);
    }

    /// Truncating any segment to any length never panics: recovery
    /// returns a contiguous prefix and, when bytes were actually lost
    /// mid-frame, a typed tail error.
    #[test]
    fn torn_tails_stop_cleanly(
        records in proptest::collection::vec(record_strategy(), 2..30),
        seg_pick in any::<usize>(),
        cut in any::<usize>(),
    ) {
        let dir = write_corpus(&records, 300);
        let mut segs: Vec<_> = fs::read_dir(&dir).unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("seg-").then_some(p)
            })
            .collect();
        segs.sort();
        let victim = &segs[seg_pick % segs.len()];
        let bytes = fs::read(victim).unwrap();
        let keep = cut % (bytes.len() + 1);
        let f = fs::OpenOptions::new().write(true).open(victim).unwrap();
        f.set_len(keep as u64).unwrap();
        drop(f);

        let r = recover_partition(&dir).unwrap();
        // Never more records than written; always a contiguous prefix.
        prop_assert!(r.replay.len() <= records.len());
        for (i, rec) in r.replay.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(&rec.message, &records[i].2);
        }
        if r.replay.len() < records.len() {
            let e = r.tail_error.as_ref().expect("lost records must be reported");
            prop_assert!(e.is_decode(), "typed decode error, got {e:?}");
        }
        cleanup(&dir);
    }

    /// Flipping any single byte anywhere in a segment never panics, and
    /// recovery still yields a contiguous, uncorrupted prefix.
    #[test]
    fn bit_flips_stop_cleanly(
        records in proptest::collection::vec(record_strategy(), 2..30),
        seg_pick in any::<usize>(),
        byte_pick in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let dir = write_corpus(&records, 300);
        let mut segs: Vec<_> = fs::read_dir(&dir).unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("seg-").then_some(p)
            })
            .collect();
        segs.sort();
        let victim = &segs[seg_pick % segs.len()];
        let mut bytes = fs::read(victim).unwrap();
        let at = byte_pick % bytes.len();
        bytes[at] ^= flip;
        fs::write(victim, &bytes).unwrap();

        let r = recover_partition(&dir).unwrap();
        prop_assert!(r.replay.len() <= records.len());
        for (i, rec) in r.replay.iter().enumerate() {
            prop_assert_eq!(rec.seq, i as u64);
            prop_assert_eq!(&rec.system, &records[i].0);
            prop_assert_eq!(rec.timestamp, records[i].1);
            prop_assert_eq!(&rec.message, &records[i].2);
        }
        if r.replay.len() < records.len() {
            prop_assert!(r.tail_error.is_some(), "lost records must be reported");
        }
        cleanup(&dir);
    }

    /// Hostile bytes fed straight to the frame decoder never panic.
    #[test]
    fn decoder_survives_arbitrary_bytes(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        match next_frame(&bytes) {
            Ok(Some((payload, consumed))) => {
                prop_assert!(consumed <= bytes.len());
                let _ = wal::decode_payload(payload);
            }
            Ok(None) => prop_assert!(bytes.is_empty()),
            Err(e) => prop_assert!(e.is_decode()),
        }
    }

    /// Group commit is an I/O optimisation, not a format change: the
    /// same records pushed through `append_batch` in arbitrary chunks
    /// leave byte-identical segments (and rolls at identical points) to
    /// N single `append` calls.
    #[test]
    fn append_batch_is_frame_for_frame_identical_to_single_appends(
        records in proptest::collection::vec(record_strategy(), 1..40),
        splits in proptest::collection::vec(1usize..9, 1..12),
        seg_bytes in prop_oneof![Just(256u64), Just(300), Just(1024), Just(64 * 1024)],
    ) {
        let dir_single = write_corpus(&records, seg_bytes);

        let dir_batch = scratch();
        let cfg = WalConfig { segment_max_bytes: seg_bytes, ..WalConfig::default() };
        let (mut wal, _) = PartitionWal::open(&dir_batch, cfg).unwrap();
        let entries: Vec<(&str, u64, &str)> = records
            .iter()
            .map(|(s, t, m)| (s.as_str(), *t, m.as_str()))
            .collect();
        let mut off = 0usize;
        let mut si = 0usize;
        while off < entries.len() {
            let take = splits[si % splits.len()].min(entries.len() - off);
            si += 1;
            let range = wal.append_batch(&entries[off..off + take]).unwrap();
            prop_assert_eq!(range, off as u64..(off + take) as u64);
            off += take;
        }
        drop(wal);

        let listing = |d: &PathBuf| -> Vec<(String, Vec<u8>)> {
            let mut v: Vec<_> = fs::read_dir(d)
                .unwrap()
                .map(|e| {
                    let p = e.unwrap().path();
                    let name = p.file_name().unwrap().to_str().unwrap().to_string();
                    (name, fs::read(&p).unwrap())
                })
                .collect();
            v.sort();
            v
        };
        let single = listing(&dir_single);
        let batched = listing(&dir_batch);
        prop_assert_eq!(single.len(), batched.len(), "same segment roll points");
        for ((sn, sb), (bn, bb)) in single.iter().zip(batched.iter()) {
            prop_assert_eq!(sn, bn, "same file names");
            prop_assert_eq!(sb, bb, "file {} must be byte-identical", sn);
        }
        cleanup(&dir_single);
        cleanup(&dir_batch);
    }

    /// A crash landing mid-batch-append leaves an arbitrary byte prefix
    /// of the batch on disk (the acked history before it is durable and
    /// committed). Recovery truncates to the last whole frame, replays
    /// exactly the unacked suffix that survived, and the retried
    /// remainder lands contiguously after it.
    #[test]
    fn mid_batch_tear_recovers_prefix_and_replays_unacked_suffix(
        acked in proptest::collection::vec(record_strategy(), 1..12),
        batch in proptest::collection::vec(record_strategy(), 2..20),
        cut in any::<usize>(),
    ) {
        let dir = scratch();
        let cfg = WalConfig { segment_max_bytes: 64 * 1024, ..WalConfig::default() };
        let (mut wal, _) = PartitionWal::open(&dir, cfg.clone()).unwrap();

        // Durable, acknowledged history: fully flushed and committed.
        let head: Vec<(&str, u64, &str)> = acked
            .iter()
            .map(|(s, t, m)| (s.as_str(), *t, m.as_str()))
            .collect();
        wal.append_batch(&head).unwrap();
        drop(wal);
        let committed = acked.len() as u64;
        {
            let mut cf = CursorFile::open(&dir).unwrap();
            cf.commit(&CursorState { next_seq: committed, ..CursorState::default() }).unwrap();
        }
        let seg = {
            let mut segs: Vec<_> = fs::read_dir(&dir)
                .unwrap()
                .filter_map(|e| {
                    let p = e.unwrap().path();
                    p.file_name()?.to_str()?.starts_with("seg-").then_some(p)
                })
                .collect();
            segs.sort();
            prop_assert_eq!(segs.len(), 1, "64 KiB segments must not roll here");
            segs.pop().unwrap()
        };
        let acked_bytes = fs::read(&seg).unwrap().len();

        // The doomed batch: appended, then torn at an arbitrary point
        // inside its byte range — as a kill mid-group-commit leaves it.
        let (mut wal, _) = PartitionWal::open(&dir, cfg.clone()).unwrap();
        let tail: Vec<(&str, u64, &str)> = batch
            .iter()
            .map(|(s, t, m)| (s.as_str(), *t, m.as_str()))
            .collect();
        let range = wal.append_batch(&tail).unwrap();
        prop_assert_eq!(range, committed..committed + batch.len() as u64);
        drop(wal);
        let full_bytes = fs::read(&seg).unwrap().len();
        let keep = acked_bytes + cut % (full_bytes - acked_bytes + 1);
        let f = fs::OpenOptions::new().write(true).open(&seg).unwrap();
        f.set_len(keep as u64).unwrap();
        drop(f);

        // Recovery: the acked history is intact context, the replay is
        // exactly the surviving whole-frame prefix of the unacked batch.
        let r = recover_partition(&dir).unwrap();
        prop_assert_eq!(r.cursor.next_seq, committed);
        let survived = r.replay.len();
        prop_assert!(survived <= batch.len());
        for (i, rec) in r.replay.iter().enumerate() {
            prop_assert_eq!(rec.seq, committed + i as u64, "contiguous replay");
            prop_assert_eq!(&rec.system, &batch[i].0);
            prop_assert_eq!(rec.timestamp, batch[i].1);
            prop_assert_eq!(&rec.message, &batch[i].2);
        }
        if keep == full_bytes {
            prop_assert_eq!(survived, batch.len(), "untorn batch must fully replay");
        }

        // Reseat + retry: the lost suffix re-appends with the sequence
        // numbers it is re-assigned, directly after the surviving frames.
        let (mut wal, r1) = PartitionWal::open(&dir, cfg).unwrap();
        prop_assert_eq!(r1.next_seq, committed + survived as u64);
        let retry: Vec<(&str, u64, &str)> = batch[survived..]
            .iter()
            .map(|(s, t, m)| (s.as_str(), *t, m.as_str()))
            .collect();
        let range = wal.append_batch(&retry).unwrap();
        prop_assert_eq!(range, committed + survived as u64..committed + batch.len() as u64);
        drop(wal);

        let r2 = recover_partition(&dir).unwrap();
        prop_assert!(r2.tail_error.is_none(), "retry must heal the log: {:?}", r2.tail_error);
        prop_assert_eq!(r2.replay.len(), batch.len(), "exactly the unacked records replay");
        for (i, rec) in r2.replay.iter().enumerate() {
            prop_assert_eq!(rec.seq, committed + i as u64);
            prop_assert_eq!(&rec.message, &batch[i].2);
        }
        cleanup(&dir);
    }

    /// Reopening after arbitrary truncation keeps the WAL appendable:
    /// new records land contiguously after the surviving prefix, and the
    /// committed cursor still splits context/replay correctly.
    #[test]
    fn reopen_after_damage_is_appendable(
        records in proptest::collection::vec(record_strategy(), 4..24),
        commit_at in any::<usize>(),
        cut in any::<usize>(),
    ) {
        let dir = write_corpus(&records, 300);
        let committed = (commit_at % records.len()) as u64;
        {
            let mut cf = CursorFile::open(&dir).unwrap();
            cf.commit(&CursorState { next_seq: committed, ..CursorState::default() }).unwrap();
        }
        // Damage the last segment.
        let mut segs: Vec<_> = fs::read_dir(&dir).unwrap()
            .filter_map(|e| {
                let p = e.unwrap().path();
                p.file_name()?.to_str()?.starts_with("seg-").then_some(p)
            })
            .collect();
        segs.sort();
        let victim = segs.last().unwrap();
        let bytes = fs::read(victim).unwrap();
        let keep = cut % (bytes.len() + 1);
        let f = fs::OpenOptions::new().write(true).open(victim).unwrap();
        f.set_len(keep as u64).unwrap();
        drop(f);

        let (mut wal, r1) = PartitionWal::open(&dir, WalConfig { segment_max_bytes: 300, ..WalConfig::default() }).unwrap();
        let resume = r1.next_seq;
        let seq = wal.append("post", 7, "appended after damage").unwrap();
        prop_assert_eq!(seq, resume);
        drop(wal);

        let r2 = recover_partition(&dir).unwrap();
        prop_assert!(r2.tail_error.is_none(), "reopen must heal the log: {:?}", r2.tail_error);
        prop_assert_eq!(r2.cursor.next_seq, committed);
        let last = r2.replay.last().expect("appended record must be recoverable");
        prop_assert_eq!(last.seq, resume);
        prop_assert_eq!(&last.message, "appended after damage");
        // Replay is exactly [committed, resume] — contiguous.
        for (i, rec) in r2.replay.iter().enumerate() {
            prop_assert_eq!(rec.seq, committed + i as u64);
        }
        cleanup(&dir);
    }
}

/// A corrupt frame *before* the committed cursor still recovers the
/// cursor itself (segments and cursor log are independent files).
#[test]
fn cursor_survives_segment_corruption() {
    let records: Vec<(String, u64, String)> = (0..10)
        .map(|i| (format!("s{i}"), i, format!("msg {i}")))
        .collect();
    let dir = write_corpus(&records, 10_000);
    {
        let mut cf = CursorFile::open(&dir).unwrap();
        cf.commit(&CursorState {
            next_seq: 8,
            model_calls: 2,
            reports: 2,
            ..CursorState::default()
        })
        .unwrap();
    }
    let seg = fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            p.file_name()?.to_str()?.starts_with("seg-").then_some(p)
        })
        .next()
        .unwrap();
    let mut bytes = fs::read(&seg).unwrap();
    bytes[20] ^= 0xFF;
    fs::write(&seg, &bytes).unwrap();

    let r = recover_partition(&dir).unwrap();
    assert_eq!(r.cursor.next_seq, 8, "cursor log is independent");
    assert_eq!(r.cursor.model_calls, 2);
    assert!(r.tail_error.is_some());
    assert!(matches!(
        r.tail_error,
        Some(WalError::BadCrc { .. })
            | Some(WalError::SeqGap { .. })
            | Some(WalError::BadLength(_))
    ));
    cleanup(&dir);
}
