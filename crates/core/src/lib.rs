//! # logsynergy
//!
//! A from-scratch Rust implementation of **LogSynergy** (ICDE 2025):
//! transfer-learning log anomaly detection for new software systems, built
//! on two ideas —
//!
//! - **LEI** (LLM-based Event Interpretation): standardize log syntax
//!   across systems by interpreting each log event with an LLM
//!   ([`logsynergy_lei`]);
//! - **SUFE** (System-Unified Feature Extraction): disentangle
//!   system-specific from system-unified features with a system
//!   classifier, an anomaly classifier, and a CLUB mutual-information
//!   upper bound ([`club`]), plus DAAN adversarial domain adaptation with
//!   a gradient-reversal layer ([`model`]).
//!
//! The crate exposes the full offline-training / online-detection loop of
//! the paper's Fig. 1 on top of the [`logsynergy_nn`] autograd substrate.
//!
//! ## Paper ↔ code map
//!
//! | Paper | Here |
//! |---|---|
//! | Eq. (1) `L_system` | [`logsynergy_nn::loss::cross_entropy`] on [`model::LogSynergyModel::system_logits`] |
//! | Eq. (2) `L_anomaly` | [`logsynergy_nn::loss::bce_with_logits`] on [`model::LogSynergyModel::anomaly_logits`] |
//! | Eq. (3) `L_MI` (CLUB) | [`club::Club::mi_upper_bound`] (+ the estimator's [`club::Club::learning_loss`]) |
//! | Eq. (4) `L_DA` (DAAN + GRL) | [`model::LogSynergyModel::da_losses`] with ω mixing in [`trainer::train`] |
//! | Eq. (5) total loss | assembled per batch in [`trainer::train`] |
//! | §III-B pre-processing | [`data::prepare_system`] (Drain + windows) |
//! | §III-C LEI + embedding | [`data::EventTextMode::Interpreted`] via [`logsynergy_lei`] / [`logsynergy_embed`] |
//! | §III-E online detection | [`detector::Detector`] at [`detector::THRESHOLD`] |
//! | §IV-A4 configuration | [`config::ModelConfig::paper`], [`config::TrainConfig::paper`] |
//!
//! ```no_run
//! use logsynergy::api::Pipeline;
//! use logsynergy::detector::Detector;
//! use logsynergy_loggen::datasets;
//!
//! let pipeline = Pipeline::scaled();
//! let src_a = pipeline.prepare(&datasets::bgl().generate(0.01));
//! let src_b = pipeline.prepare(&datasets::spirit().generate(0.004));
//! let target = pipeline.prepare(&datasets::system_b().generate(0.01));
//! let (model, _history) = pipeline.fit(&[&src_a, &src_b], &target);
//! let (_train, test) = target.split(200, 1000);
//! let detections = Detector::new(&model).detect(&test, &target.event_embeddings);
//! println!("{} anomalies flagged", detections.iter().filter(|&&d| d).count());
//! ```

#![warn(missing_docs)]

pub mod api;
pub mod club;
pub mod config;
pub mod data;
pub mod detector;
pub mod faults;
pub mod infer;
pub mod model;
pub mod persist;
#[cfg(feature = "quant")]
pub mod quant;
pub mod trainer;
pub mod wal;

pub use api::Pipeline;
pub use config::{ModelConfig, TrainConfig};
pub use data::{
    batch_features, batch_labels, prepare_system, EventTextMode, PreparedSystem, SeqSample,
};
pub use detector::{AnomalyReport, Detector, THRESHOLD};
pub use model::{Features, LogSynergyModel};
pub use trainer::{build_training_set, train, DaMode, EpochStats, TrainOptions, TrainingSet};
