//! High-level convenience API: prepare systems, fit a model, detect.

use rand::rngs::StdRng;
use rand::SeedableRng;

use logsynergy_embed::HashedEmbedder;
use logsynergy_loggen::LogDataset;
use logsynergy_logparse::WindowConfig;

use crate::config::{ModelConfig, TrainConfig};
use crate::data::{prepare_system, EventTextMode, PreparedSystem};
use crate::model::LogSynergyModel;
use crate::trainer::{build_training_set, train, EpochStats, TrainOptions};

/// Everything needed to run LogSynergy end-to-end on datasets.
pub struct Pipeline {
    /// Architecture (its `num_systems` is overwritten at fit time).
    pub model_config: ModelConfig,
    /// Optimization settings.
    pub train_config: TrainConfig,
    /// LEI on (interpreted) or off (raw templates).
    pub text_mode: EventTextMode,
    /// Windowing (paper default 10/5).
    pub window: WindowConfig,
    /// Ablation switches.
    pub options: TrainOptions,
    /// Embedding seed (the frozen "pre-trained model" identity).
    pub embed_seed: u64,
}

impl Pipeline {
    /// CPU-scale pipeline with LEI enabled and all modules on.
    pub fn scaled() -> Self {
        Pipeline {
            model_config: ModelConfig::scaled(2),
            train_config: TrainConfig::scaled(),
            text_mode: EventTextMode::Interpreted(Default::default()),
            window: WindowConfig::default(),
            options: TrainOptions::default(),
            embed_seed: 0xE1B,
        }
    }

    /// The frozen embedder this pipeline uses.
    pub fn embedder(&self) -> HashedEmbedder {
        HashedEmbedder::new(self.model_config.embed_dim, self.embed_seed)
    }

    /// Prepares one dataset (parse → window → interpret → embed).
    pub fn prepare(&self, dataset: &LogDataset) -> PreparedSystem {
        prepare_system(dataset, &self.text_mode, &self.embedder(), self.window)
    }

    /// Fits a model: sources contribute their first `n_source` sequences,
    /// the target its first `n_target` (§IV-A1). Returns the trained model
    /// and per-epoch statistics.
    pub fn fit(
        &self,
        sources: &[&PreparedSystem],
        target: &PreparedSystem,
    ) -> (LogSynergyModel, Vec<EpochStats>) {
        let mut mcfg = self.model_config.clone();
        mcfg.num_systems = sources.len() + 1;
        let mut rng = StdRng::seed_from_u64(self.train_config.seed);
        let mut model = LogSynergyModel::new(mcfg.clone(), &mut rng);
        let set = build_training_set(
            sources,
            target,
            self.train_config.n_source,
            self.train_config.n_target,
            mcfg.max_len,
            mcfg.embed_dim,
        );
        let history = train(&mut model, &set, &self.train_config, self.options);
        (model, history)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::Detector;
    use logsynergy_loggen::datasets;

    #[test]
    fn end_to_end_tiny_fit_and_detect() {
        let mut p = Pipeline::scaled();
        p.model_config.embed_dim = 16;
        p.model_config.d_model = 16;
        p.model_config.heads = 2;
        p.model_config.ff = 32;
        p.model_config.layers = 1;
        p.model_config.head_hidden = 16;
        p.train_config.epochs = 2;
        p.train_config.n_source = 150;
        p.train_config.n_target = 40;
        p.train_config.batch_size = 64;

        let src1 = p.prepare(&datasets::bgl().generate(0.001));
        let src2 = p.prepare(&datasets::spirit().generate(0.0004));
        let tgt = p.prepare(&datasets::system_b().generate(0.002));
        let (model, hist) = p.fit(&[&src1, &src2], &tgt);
        assert_eq!(hist.len(), 2);

        let (_, test) = tgt.split(40, 100);
        let det = Detector::new(&model);
        let scores = det.scores(&test, &tgt.event_embeddings);
        assert_eq!(scores.len(), test.len());
        assert!(scores.iter().all(|s| s.is_finite()));
    }
}
