//! CLUB — Contrastive Log-ratio Upper Bound of mutual information
//! (Cheng et al., ICML 2020), the MI estimator SUFE minimizes (Eq. 3).
//!
//! CLUB fits a variational net `q(F_s | F_u) = N(mu(F_u), diag(var(F_u)))`
//! by maximum likelihood, then upper-bounds `I(F_u; F_s)` by the contrast
//! between positive-pair and shuffled-pair log-likelihoods. Training
//! alternates two roles inside one step:
//!
//! 1. the estimator nets learn on *detached* features
//!    ([`Club::learning_loss`]);
//! 2. the feature extractor receives the MI bound's gradient through
//!    *frozen* estimator nets ([`Club::mi_upper_bound`]).

use rand::Rng;

use logsynergy_nn::graph::{Graph, ParamId, ParamStore, Var};
use logsynergy_nn::init::xavier_uniform;
use logsynergy_nn::ops;
use logsynergy_nn::Tensor;

/// The CLUB estimator's variational network: two small MLPs predicting the
/// mean and log-variance of `F_s` given `F_u`.
pub struct Club {
    // mu net: in -> hidden -> out
    mu_w1: ParamId,
    mu_b1: ParamId,
    mu_w2: ParamId,
    mu_b2: ParamId,
    // logvar net
    lv_w1: ParamId,
    lv_b1: ParamId,
    lv_w2: ParamId,
    lv_b2: ParamId,
    out_dim: usize,
}

fn bindp(g: &Graph, store: &ParamStore, id: ParamId, frozen: bool) -> Var {
    if frozen {
        g.input(store.value(id).clone())
    } else {
        g.bind(store, id)
    }
}

impl Club {
    /// Registers the estimator's parameters: predicts `out_dim`-dim `F_s`
    /// from `in_dim`-dim `F_u` through a `hidden`-wide layer.
    pub fn new<R: Rng>(
        store: &mut ParamStore,
        rng: &mut R,
        name: &str,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
    ) -> Self {
        let lin = |n: &str, i: usize, o: usize, store: &mut ParamStore, rng: &mut R| {
            (
                store.add(format!("{name}.{n}.w"), xavier_uniform(rng, i, o)),
                store.add(format!("{name}.{n}.b"), Tensor::zeros(&[o])),
            )
        };
        let (mu_w1, mu_b1) = lin("mu1", in_dim, hidden, store, rng);
        let (mu_w2, mu_b2) = lin("mu2", hidden, out_dim, store, rng);
        let (lv_w1, lv_b1) = lin("lv1", in_dim, hidden, store, rng);
        let (lv_w2, lv_b2) = lin("lv2", hidden, out_dim, store, rng);
        Club {
            mu_w1,
            mu_b1,
            mu_w2,
            mu_b2,
            lv_w1,
            lv_b1,
            lv_w2,
            lv_b2,
            out_dim,
        }
    }

    /// Runs the variational nets; `frozen` controls whether gradients reach
    /// the estimator parameters.
    fn mu_logvar(&self, g: &Graph, store: &ParamStore, x: Var, frozen: bool) -> (Var, Var) {
        let h_mu = {
            let w = bindp(g, store, self.mu_w1, frozen);
            let b = bindp(g, store, self.mu_b1, frozen);
            ops::relu(g, ops::add(g, ops::matmul(g, x, w), b))
        };
        let mu = {
            let w = bindp(g, store, self.mu_w2, frozen);
            let b = bindp(g, store, self.mu_b2, frozen);
            ops::add(g, ops::matmul(g, h_mu, w), b)
        };
        let h_lv = {
            let w = bindp(g, store, self.lv_w1, frozen);
            let b = bindp(g, store, self.lv_b1, frozen);
            ops::relu(g, ops::add(g, ops::matmul(g, x, w), b))
        };
        let lv = {
            let w = bindp(g, store, self.lv_w2, frozen);
            let b = bindp(g, store, self.lv_b2, frozen);
            // tanh keeps log-variance in [-1, 1] for numerical stability.
            ops::tanh(g, ops::add(g, ops::matmul(g, h_lv, w), b))
        };
        (mu, lv)
    }

    /// Mean per-sample Gaussian log-likelihood `log q(y | x)` (up to the
    /// constant term), shape scalar.
    fn mean_loglik(&self, g: &Graph, store: &ParamStore, x: Var, y: Var, frozen: bool) -> Var {
        let (mu, lv) = self.mu_logvar(g, store, x, frozen);
        let diff = ops::sub(g, y, mu);
        let sq = ops::square(g, diff);
        let inv_var = ops::exp(g, ops::neg(g, lv));
        let quad = ops::mul(g, sq, inv_var);
        let per_dim = ops::add(g, quad, lv); // (y-mu)^2/var + logvar
        let nll_like = ops::mean_all(g, per_dim);
        ops::scale(g, nll_like, -0.5)
    }

    /// Estimator-training loss: negative log-likelihood of positive pairs,
    /// computed on *detached* features so only the CLUB nets learn from it.
    pub fn learning_loss(&self, g: &Graph, store: &ParamStore, fu: Var, fs: Var) -> Var {
        let fu_d = ops::detach(g, fu);
        let fs_d = ops::detach(g, fs);
        let ll = self.mean_loglik(g, store, fu_d, fs_d, false);
        ops::neg(g, ll)
    }

    /// The CLUB MI upper bound with *frozen* estimator nets; gradients flow
    /// only into the features, which is what SUFE minimizes (Eq. 3).
    /// Negatives are formed by rolling `fs` one row (a derangement for
    /// batch size ≥ 2).
    pub fn mi_upper_bound(&self, g: &Graph, store: &ParamStore, fu: Var, fs: Var) -> Var {
        let shape = g.shape_of(fs);
        let b = shape[0];
        let pos = self.mean_loglik(g, store, fu, fs, true);
        if b < 2 {
            return pos; // degenerate batch: no negatives available
        }
        // Roll rows by one: y_i paired with x_{i-1}.
        let first = ops::slice_rows(g, fs, 0, 1);
        let rest = ops::slice_rows(g, fs, 1, b - 1);
        let rolled = ops::concat_rows(g, &[rest, first]);
        let neg = self.mean_loglik(g, store, fu, rolled, true);
        ops::sub(g, pos, neg)
    }

    /// Output (F_s) dimensionality.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logsynergy_nn::optim::AdamW;
    use rand::SeedableRng;

    fn store_with_club(in_dim: usize, out_dim: usize) -> (ParamStore, Club) {
        let mut rng = rand::rngs::StdRng::seed_from_u64(71);
        let mut store = ParamStore::new();
        let club = Club::new(&mut store, &mut rng, "club", in_dim, 16, out_dim);
        (store, club)
    }

    #[test]
    fn learning_loss_trains_only_club_params() {
        let (mut store, club) = store_with_club(4, 4);
        let g = Graph::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(72);
        let fu = g.leaf(Tensor::randn(&mut rng, &[8, 4], 1.0));
        let fs = g.leaf(Tensor::randn(&mut rng, &[8, 4], 1.0));
        let loss = club.learning_loss(&g, &store, fu, fs);
        g.backward(loss);
        g.write_grads(&mut store);
        assert!(
            store.grad_norm() > 0.0,
            "club params should receive gradients"
        );
        assert!(
            g.grad(fu).is_none(),
            "features must be detached in learning loss"
        );
        assert!(g.grad(fs).is_none());
    }

    #[test]
    fn mi_bound_gradients_reach_features_not_club() {
        let (mut store, club) = store_with_club(4, 4);
        let g = Graph::new();
        let mut rng = rand::rngs::StdRng::seed_from_u64(73);
        let fu = g.leaf(Tensor::randn(&mut rng, &[8, 4], 1.0));
        let fs = g.leaf(Tensor::randn(&mut rng, &[8, 4], 1.0));
        let mi = club.mi_upper_bound(&g, &store, fu, fs);
        g.backward(mi);
        g.write_grads(&mut store);
        assert_eq!(
            store.grad_norm(),
            0.0,
            "club params are frozen in the MI bound"
        );
        assert!(g.grad(fu).is_some());
        assert!(g.grad(fs).is_some());
    }

    #[test]
    fn trained_club_separates_dependent_from_independent() {
        // Train the estimator on y = x (max dependence); the bound on
        // dependent pairs must exceed the bound on independent pairs.
        let (mut store, club) = store_with_club(3, 3);
        let mut opt = AdamW::new(&store, 1e-2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(74);
        let x = Tensor::randn(&mut rng, &[64, 3], 1.0);
        for _ in 0..150 {
            let g = Graph::new();
            let fu = g.input(x.clone());
            let fs = g.input(x.clone());
            let loss = club.learning_loss(&g, &store, fu, fs);
            g.backward(loss);
            g.write_grads(&mut store);
            opt.step(&mut store);
        }
        let g = Graph::inference();
        let fu = g.input(x.clone());
        let fs_dep = g.input(x.clone());
        let fs_ind = g.input(Tensor::randn(&mut rng, &[64, 3], 1.0));
        let mi_dep = g.value(club.mi_upper_bound(&g, &store, fu, fs_dep)).item();
        let mi_ind = g.value(club.mi_upper_bound(&g, &store, fu, fs_ind)).item();
        assert!(
            mi_dep > mi_ind + 0.1,
            "dependent MI bound {mi_dep} should exceed independent {mi_ind}"
        );
        assert!(mi_dep > 0.0);
    }

    #[test]
    fn single_row_batch_degrades_gracefully() {
        let (store, club) = store_with_club(2, 2);
        let g = Graph::new();
        let fu = g.input(Tensor::ones(&[1, 2]));
        let fs = g.input(Tensor::ones(&[1, 2]));
        let mi = club.mi_upper_bound(&g, &store, fu, fs);
        assert!(g.value(mi).item().is_finite());
    }
}
