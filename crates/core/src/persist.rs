//! Model persistence: save a trained LogSynergy model to disk and load it
//! back for online serving (the offline → online handoff of Fig. 1/7).
//!
//! Format: a single JSON document holding the [`ModelConfig`] and every
//! named parameter tensor. Loading rebuilds the architecture from the
//! config (construction is deterministic in structure — parameter *names*
//! identify tensors, so initialization randomness is irrelevant) and
//! overwrites the freshly initialized values by name.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use logsynergy_nn::Tensor;

use crate::config::ModelConfig;
use crate::model::LogSynergyModel;

/// On-disk representation.
#[derive(Serialize, Deserialize)]
struct SavedModel {
    format_version: u32,
    config: ModelConfig,
    params: HashMap<String, SavedTensor>,
}

#[derive(Serialize, Deserialize)]
struct SavedTensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

const FORMAT_VERSION: u32 = 1;

/// Serializes a model to JSON bytes.
pub fn to_bytes(model: &LogSynergyModel) -> Vec<u8> {
    let params = model
        .store
        .ids()
        .map(|id| {
            let t = model.store.value(id);
            (
                model.store.name(id).to_string(),
                SavedTensor {
                    shape: t.shape().to_vec(),
                    data: t.data().to_vec(),
                },
            )
        })
        .collect();
    let saved = SavedModel {
        format_version: FORMAT_VERSION,
        config: model.config().clone(),
        params,
    };
    serde_json::to_vec(&saved).expect("model serialization cannot fail")
}

/// Deserializes a model from JSON bytes.
pub fn from_bytes(bytes: &[u8]) -> io::Result<LogSynergyModel> {
    let saved: SavedModel =
        serde_json::from_slice(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if saved.format_version != FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported model format version {}", saved.format_version),
        ));
    }
    // Rebuild the architecture; the RNG only affects initial values, which
    // are overwritten below.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut model = LogSynergyModel::new(saved.config, &mut rng);
    let ids: Vec<_> = model.store.ids().collect();
    for id in ids {
        let name = model.store.name(id).to_string();
        let st = saved.params.get(&name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("missing parameter {name}"),
            )
        })?;
        let current_shape = model.store.value(id).shape().to_vec();
        if st.shape != current_shape {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter {name}: shape {:?} != expected {:?}",
                    st.shape, current_shape
                ),
            ));
        }
        *model.store.value_mut(id) = Tensor::new(st.data.clone(), &st.shape);
    }
    Ok(model)
}

/// Saves a model to `path`.
pub fn save(model: &LogSynergyModel, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, to_bytes(model))
}

/// Loads a model from `path`.
pub fn load(path: impl AsRef<Path>) -> io::Result<LogSynergyModel> {
    from_bytes(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SeqSample;
    use crate::detector::Detector;

    fn tiny_model() -> LogSynergyModel {
        let mut cfg = ModelConfig::scaled(2);
        cfg.embed_dim = 8;
        cfg.d_model = 8;
        cfg.heads = 2;
        cfg.ff = 16;
        cfg.layers = 1;
        cfg.head_hidden = 8;
        cfg.max_len = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        LogSynergyModel::new(cfg, &mut rng)
    }

    fn embeddings() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0., 0., 0., 0., 0., 0., 0.],
            vec![0., 1.0, 0., 0., 0., 0., 0., 0.],
        ]
    }

    #[test]
    fn roundtrip_preserves_scores_exactly() {
        let model = tiny_model();
        let samples: Vec<SeqSample> = (0..6)
            .map(|i| SeqSample {
                events: vec![i % 2; 4],
                label: false,
            })
            .collect();
        let before = Detector::new(&model).scores(&samples, &embeddings());
        let bytes = to_bytes(&model);
        let loaded = from_bytes(&bytes).unwrap();
        let after = Detector::new(&loaded).scores(&samples, &embeddings());
        assert_eq!(before, after, "loaded model must score identically");
    }

    #[test]
    fn file_roundtrip() {
        let model = tiny_model();
        let dir = std::env::temp_dir().join("logsynergy_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save(&model, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.num_parameters(), model.num_parameters());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        assert!(from_bytes(b"not json").is_err());
        let model = tiny_model();
        let mut bytes = to_bytes(&model);
        // Truncate to break the document.
        bytes.truncate(bytes.len() / 2);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let model = tiny_model();
        let json = String::from_utf8(to_bytes(&model)).unwrap();
        let bumped = json.replacen("\"format_version\":1", "\"format_version\":99", 1);
        assert!(from_bytes(bumped.as_bytes()).is_err());
    }
}
