//! Model persistence: save a trained LogSynergy model to disk and load it
//! back for online serving (the offline → online handoff of Fig. 1/7).
//!
//! Format: a single JSON document holding the [`ModelConfig`] and every
//! named parameter tensor. Loading rebuilds the architecture from the
//! config (construction is deterministic in structure — parameter *names*
//! identify tensors, so initialization randomness is irrelevant) and
//! overwrites the freshly initialized values by name.

use std::collections::HashMap;
use std::io;
use std::path::Path;

use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use logsynergy_nn::Tensor;

use crate::config::ModelConfig;
use crate::model::LogSynergyModel;

/// On-disk representation.
#[derive(Serialize, Deserialize)]
struct SavedModel {
    format_version: u32,
    config: ModelConfig,
    params: HashMap<String, SavedTensor>,
}

#[derive(Serialize, Deserialize)]
struct SavedTensor {
    shape: Vec<usize>,
    data: Vec<f32>,
    /// Bit-exact sidecar for values JSON cannot carry: the serializer
    /// writes `null` for NaN/±inf, which would fail to parse back as f32.
    /// Non-finite elements are stored as `(flat_index, to_bits())` here
    /// with a `0.0` placeholder in `data`, and patched back on load.
    /// Absent (`default`) in files written before this field existed.
    #[serde(default)]
    nonfinite: Vec<(u32, u32)>,
}

impl SavedTensor {
    fn encode(data: &[f32]) -> (Vec<f32>, Vec<(u32, u32)>) {
        let mut nonfinite = Vec::new();
        let data = data
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                if v.is_finite() {
                    v
                } else {
                    nonfinite.push((i as u32, v.to_bits()));
                    0.0
                }
            })
            .collect();
        (data, nonfinite)
    }

    fn decode(&self) -> io::Result<Vec<f32>> {
        let mut data = self.data.clone();
        for &(idx, bits) in &self.nonfinite {
            let slot = data.get_mut(idx as usize).ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("non-finite sidecar index {idx} out of bounds"),
                )
            })?;
            *slot = f32::from_bits(bits);
        }
        Ok(data)
    }
}

const FORMAT_VERSION: u32 = 1;

/// Consults the fault plan at the `persist.io` injection point. Latency
/// sleeps; transient/corrupt faults surface as retryable
/// [`io::ErrorKind::Interrupted`] errors; panics propagate to the caller's
/// isolation layer. A no-op unless the `fault-injection` feature is on
/// and a plan is installed.
fn persist_fault() -> io::Result<()> {
    use crate::faults::{self, points, Fault};
    match faults::inject(points::PERSIST_IO) {
        Some(Fault::Panic) => panic!("{}: persist.io", faults::PANIC_MARKER),
        Some(Fault::Latency(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Fault::TransientError) | Some(Fault::CorruptScore) => Err(io::Error::new(
            io::ErrorKind::Interrupted,
            format!("{}: persist.io transient failure", faults::PANIC_MARKER),
        )),
        None => Ok(()),
    }
}

/// Retries an interrupted persistence operation with bounded linear
/// backoff; other error kinds (corrupt data, missing files) fail fast.
fn retry_interrupted<T>(
    max_retries: u32,
    backoff: std::time::Duration,
    mut op: impl FnMut() -> io::Result<T>,
) -> io::Result<T> {
    let mut attempt = 0u32;
    loop {
        match op() {
            Err(e) if e.kind() == io::ErrorKind::Interrupted && attempt < max_retries => {
                attempt += 1;
                std::thread::sleep(backoff);
            }
            other => return other,
        }
    }
}

/// Serializes a model to JSON bytes.
pub fn to_bytes(model: &LogSynergyModel) -> Vec<u8> {
    let params = model
        .store
        .ids()
        .map(|id| {
            let t = model.store.value(id);
            let (data, nonfinite) = SavedTensor::encode(t.data());
            (
                model.store.name(id).to_string(),
                SavedTensor {
                    shape: t.shape().to_vec(),
                    data,
                    nonfinite,
                },
            )
        })
        .collect();
    let saved = SavedModel {
        format_version: FORMAT_VERSION,
        config: model.config().clone(),
        params,
    };
    serde_json::to_vec(&saved).expect("model serialization cannot fail")
}

/// Deserializes a model from JSON bytes.
pub fn from_bytes(bytes: &[u8]) -> io::Result<LogSynergyModel> {
    let saved: SavedModel =
        serde_json::from_slice(bytes).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    if saved.format_version != FORMAT_VERSION {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unsupported model format version {}", saved.format_version),
        ));
    }
    // Rebuild the architecture; the RNG only affects initial values, which
    // are overwritten below.
    let mut rng = rand::rngs::StdRng::seed_from_u64(0);
    let mut model = LogSynergyModel::new(saved.config, &mut rng);
    let ids: Vec<_> = model.store.ids().collect();
    for id in ids {
        let name = model.store.name(id).to_string();
        let st = saved.params.get(&name).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("missing parameter {name}"),
            )
        })?;
        let current_shape = model.store.value(id).shape().to_vec();
        if st.shape != current_shape {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "parameter {name}: shape {:?} != expected {:?}",
                    st.shape, current_shape
                ),
            ));
        }
        *model.store.value_mut(id) = Tensor::new(st.decode()?, &st.shape);
    }
    Ok(model)
}

/// How many times `save`/`load` retry an interrupted I/O operation
/// (e.g. an injected transient fault) before giving up.
const IO_MAX_RETRIES: u32 = 3;
const IO_RETRY_BACKOFF: std::time::Duration = std::time::Duration::from_millis(1);

/// Saves a model to `path`, retrying interrupted writes.
pub fn save(model: &LogSynergyModel, path: impl AsRef<Path>) -> io::Result<()> {
    let bytes = to_bytes(model);
    let path = path.as_ref();
    retry_interrupted(IO_MAX_RETRIES, IO_RETRY_BACKOFF, || {
        persist_fault()?;
        std::fs::write(path, &bytes)
    })
}

/// Loads a model from `path`, retrying interrupted reads.
pub fn load(path: impl AsRef<Path>) -> io::Result<LogSynergyModel> {
    let path = path.as_ref();
    let bytes = retry_interrupted(IO_MAX_RETRIES, IO_RETRY_BACKOFF, || {
        persist_fault()?;
        std::fs::read(path)
    })?;
    from_bytes(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::SeqSample;
    use crate::detector::Detector;

    fn tiny_model() -> LogSynergyModel {
        let mut cfg = ModelConfig::scaled(2);
        cfg.embed_dim = 8;
        cfg.d_model = 8;
        cfg.heads = 2;
        cfg.ff = 16;
        cfg.layers = 1;
        cfg.head_hidden = 8;
        cfg.max_len = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        LogSynergyModel::new(cfg, &mut rng)
    }

    fn embeddings() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0., 0., 0., 0., 0., 0., 0.],
            vec![0., 1.0, 0., 0., 0., 0., 0., 0.],
        ]
    }

    #[test]
    fn roundtrip_preserves_scores_exactly() {
        let model = tiny_model();
        let samples: Vec<SeqSample> = (0..6)
            .map(|i| SeqSample {
                events: vec![i % 2; 4],
                label: false,
            })
            .collect();
        let before = Detector::new(&model).scores(&samples, &embeddings());
        let bytes = to_bytes(&model);
        let loaded = from_bytes(&bytes).unwrap();
        let after = Detector::new(&loaded).scores(&samples, &embeddings());
        assert_eq!(before, after, "loaded model must score identically");
    }

    #[test]
    fn file_roundtrip() {
        let model = tiny_model();
        let dir = std::env::temp_dir().join("logsynergy_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        save(&model, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.num_parameters(), model.num_parameters());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_bytes_are_rejected() {
        assert!(from_bytes(b"not json").is_err());
        let model = tiny_model();
        let mut bytes = to_bytes(&model);
        // Truncate to break the document.
        bytes.truncate(bytes.len() / 2);
        assert!(from_bytes(&bytes).is_err());
    }

    #[test]
    fn nonfinite_and_subnormal_weights_roundtrip_bit_exactly() {
        let mut model = tiny_model();
        // Poison one tensor with every value class JSON handles badly:
        // NaN and ±inf serialize as `null`, subnormals and -0.0 stress
        // shortest-round-trip float printing.
        let id = model.store.ids().next().unwrap();
        let poison = [
            f32::NAN,
            f32::INFINITY,
            f32::NEG_INFINITY,
            1e-41,  // subnormal
            -1e-41, // negative subnormal
            -0.0,
            f32::MIN_POSITIVE,
            f32::from_bits(0x7fc0_dead), // NaN with payload bits
        ];
        let before: Vec<u32> = {
            let t = model.store.value_mut(id);
            let data = t.data_mut();
            assert!(data.len() >= poison.len(), "tensor too small for test");
            data[..poison.len()].copy_from_slice(&poison);
            data.iter().map(|v| v.to_bits()).collect()
        };

        let loaded = from_bytes(&to_bytes(&model)).unwrap();
        let lid = loaded.store.ids().next().unwrap();
        assert_eq!(loaded.store.name(lid), model.store.name(id));
        let after: Vec<u32> = loaded
            .store
            .value(lid)
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(before, after, "weights must round-trip bit-exactly");
    }

    #[test]
    fn out_of_bounds_nonfinite_sidecar_is_rejected() {
        let model = tiny_model();
        let json = String::from_utf8(to_bytes(&model)).unwrap();
        // Inject a sidecar entry pointing past the end of its tensor.
        let broken = json.replacen("\"nonfinite\":[]", "\"nonfinite\":[[999999,1]]", 1);
        assert_ne!(json, broken, "expected an empty sidecar to patch");
        let err = match from_bytes(broken.as_bytes()) {
            Err(e) => e,
            Ok(_) => panic!("out-of-bounds sidecar index must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("out of bounds"), "{err}");
    }

    #[test]
    fn empty_sidecar_decodes_to_data_verbatim() {
        let st = SavedTensor {
            shape: vec![4],
            data: vec![0.5, -1.5, 2.0, 3.25],
            nonfinite: Vec::new(),
        };
        assert_eq!(st.decode().unwrap(), vec![0.5, -1.5, 2.0, 3.25]);
    }

    #[test]
    fn sidecar_index_at_last_element_is_in_bounds() {
        let (data, nonfinite) = SavedTensor::encode(&[1.0, 2.0, f32::INFINITY]);
        assert_eq!(nonfinite, vec![(2, f32::INFINITY.to_bits())]);
        let st = SavedTensor {
            shape: vec![3],
            data,
            nonfinite,
        };
        let decoded = st.decode().unwrap();
        assert_eq!(decoded[..2], [1.0, 2.0]);
        assert_eq!(decoded[2].to_bits(), f32::INFINITY.to_bits());
    }

    #[test]
    fn all_nan_tensor_roundtrips_bit_exactly() {
        let mut model = tiny_model();
        let id = model.store.ids().next().unwrap();
        let before: Vec<u32> = {
            let t = model.store.value_mut(id);
            for (i, v) in t.data_mut().iter_mut().enumerate() {
                // Distinct payload bits per element so an index mix-up in
                // the sidecar cannot go unnoticed.
                *v = f32::from_bits(0x7fc0_0000 | (i as u32 & 0x3f_ffff));
            }
            t.data().iter().map(|v| v.to_bits()).collect()
        };
        assert!(before.iter().all(|&b| f32::from_bits(b).is_nan()));

        let loaded = from_bytes(&to_bytes(&model)).unwrap();
        let lid = loaded.store.ids().next().unwrap();
        let after: Vec<u32> = loaded
            .store
            .value(lid)
            .data()
            .iter()
            .map(|v| v.to_bits())
            .collect();
        assert_eq!(before, after, "every NaN must keep its payload bits");
    }

    #[test]
    fn corrupted_offset_on_populated_sidecar_is_rejected() {
        // Unlike `out_of_bounds_nonfinite_sidecar_is_rejected`, this
        // corrupts a *real* sidecar entry, so the rejection path is
        // exercised on a document that legitimately used the sidecar.
        let mut model = tiny_model();
        let id = model.store.ids().next().unwrap();
        model.store.value_mut(id).data_mut()[3] = f32::NAN;
        let json = String::from_utf8(to_bytes(&model)).unwrap();
        let needle = format!("\"nonfinite\":[[3,{}]]", f32::NAN.to_bits());
        assert!(json.contains(&needle), "expected a populated sidecar");
        let broken = json.replacen(&needle, "\"nonfinite\":[[4000000,1]]", 1);
        assert_ne!(json, broken);
        let err = match from_bytes(broken.as_bytes()) {
            Err(e) => e,
            Ok(_) => panic!("corrupted sidecar offset must be rejected"),
        };
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("out of bounds"), "{err}");
        // The unbroken document still loads: rejection is specific to the
        // corrupted offset, not a side effect of the round-trip.
        from_bytes(json.as_bytes()).unwrap();
    }

    #[cfg(feature = "fault-injection")]
    #[test]
    fn transient_persist_faults_are_retried() {
        use crate::faults::{points, FaultPlan, FaultSpec};
        let _l = crate::faults::test_lock();
        let model = tiny_model();
        let dir = std::env::temp_dir().join("logsynergy_persist_fault_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.json");
        // Two transient faults, three retries: both save and load see one
        // failure each and recover.
        let guard = FaultPlan::seeded(11)
            .arm(points::PERSIST_IO, FaultSpec::transient().max_fires(2))
            .install();
        save(&model, &path).unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(guard.fires(points::PERSIST_IO), 2);
        assert_eq!(loaded.num_parameters(), model.num_parameters());
        drop(guard);
        // An unbounded transient storm exhausts the retry budget.
        let _guard = FaultPlan::seeded(11)
            .arm(points::PERSIST_IO, FaultSpec::transient())
            .install();
        let err = match load(&path) {
            Err(e) => e,
            Ok(_) => panic!("persistent transient storm must exhaust retries"),
        };
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let model = tiny_model();
        let json = String::from_utf8(to_bytes(&model)).unwrap();
        let bumped = json.replacen("\"format_version\":1", "\"format_version\":99", 1);
        assert!(from_bytes(bumped.as_bytes()).is_err());
    }
}
