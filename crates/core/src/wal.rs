//! Segmented write-ahead log for durable log transport.
//!
//! A [`PartitionWal`] sits between ingest and one partition of the
//! in-memory `LogBuffer`: every accepted record is appended to a
//! CRC32-framed, append-only segment file and flushed *before* the
//! producer acknowledges it, so a process kill can never lose an acked
//! record. Detection workers periodically commit a [`CursorState`] — the
//! durable ack: the next unprocessed sequence number plus the window
//! assembler state and the six-bucket counters at that point. Recovery
//! ([`recover_partition`]) reads the last valid cursor, re-reads the
//! segments, and splits the surviving records into *context* (the tail
//! the window assembler had buffered but not yet emitted — re-primed, not
//! re-counted) and *replay* (records at or past the cursor — re-processed
//! exactly once).
//!
//! On-disk layout, one directory per partition:
//!
//! ```text
//! <dir>/
//!   seg-0000000000000000.wal     8-byte magic, then frames
//!   seg-00000000000004c8.wal     segment base = first seq it holds
//!   cursor.log                   8-byte magic, then cursor frames
//! ```
//!
//! Every frame is `[len: u32 LE][crc32: u32 LE][payload]` with the CRC
//! taken over the payload; the payload's first byte is a kind tag
//! (record or cursor). Decoding stops cleanly at the first torn or
//! corrupt frame and reports a typed [`WalError`] — it never panics on
//! hostile bytes (pinned by `tests/wal_proptests.rs`).
//!
//! Durability contract: appends are flushed with `write(2)` before the
//! ack, which survives a process kill (SIGKILL); surviving an OS crash
//! or power loss would additionally need `fsync`, which this module
//! deliberately does not issue on the hot path (sequential buffered I/O,
//! no mmap). Segment roll is size- or age-based; fully-acked segments
//! behind the commit horizon are retired, keeping
//! [`WalConfig::retain_segments`] of history for replay tooling.
//!
//! Fault points: `wal.append` (record and cursor-log appends),
//! `wal.roll` (segment close/open), `wal.recover` (recovery scan), and
//! the existing `persist.io` (cursor-log compaction rewrite) — all
//! compiled out with the `fault-injection` feature off.

use std::collections::VecDeque;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, BufWriter, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::faults::{self, points, Fault};
use logsynergy_telemetry as telemetry;

/// 8-byte magic opening every segment file.
pub const SEGMENT_MAGIC: &[u8; 8] = b"LSWALSG1";
/// 8-byte magic opening the cursor log.
pub const CURSOR_MAGIC: &[u8; 8] = b"LSWALCR1";
/// Payload kind tag for a log record frame.
pub const KIND_RECORD: u8 = 1;
/// Payload kind tag for a cursor-commit frame.
pub const KIND_CURSOR: u8 = 2;
/// Sanity cap on a single frame payload; anything larger is corruption.
pub const MAX_PAYLOAD: u32 = 1 << 20;
/// Cursor log size that triggers a compacting rewrite.
const CURSOR_COMPACT_AT: u64 = 64 * 1024;

/// Errors from WAL encode/decode, append, and recovery.
///
/// Decode-side variants ([`WalError::BadLength`], [`WalError::BadCrc`],
/// [`WalError::Truncated`], [`WalError::BadKind`], [`WalError::BadMagic`],
/// [`WalError::SeqGap`]) describe *where a scan stopped*; recovery treats
/// them as a clean end-of-log, surfacing them as
/// [`Recovered::tail_error`] rather than failing.
#[derive(Debug)]
pub enum WalError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// File does not start with the expected magic bytes.
    BadMagic,
    /// Frame length field is zero or exceeds [`MAX_PAYLOAD`].
    BadLength(u32),
    /// Frame CRC32 mismatch (bit flip or torn write).
    BadCrc {
        /// CRC stored in the frame header.
        stored: u32,
        /// CRC computed over the payload bytes.
        computed: u32,
    },
    /// Buffer ends mid-frame (torn tail).
    Truncated {
        /// Bytes the frame header promised.
        needed: usize,
        /// Bytes actually present.
        got: usize,
    },
    /// Unknown payload kind tag.
    BadKind(u8),
    /// Payload too short for its declared kind.
    ShortPayload,
    /// Record sequence numbers are not contiguous.
    SeqGap {
        /// Sequence number the scan expected next.
        expected: u64,
        /// Sequence number actually found.
        got: u64,
    },
    /// Injected transient fault (chaos testing only).
    Injected(&'static str),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "WAL I/O error: {e}"),
            WalError::BadMagic => write!(f, "WAL file has bad magic"),
            WalError::BadLength(n) => write!(f, "WAL frame length {n} out of range"),
            WalError::BadCrc { stored, computed } => {
                write!(
                    f,
                    "WAL frame CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
            WalError::Truncated { needed, got } => {
                write!(f, "WAL frame truncated: needed {needed} bytes, got {got}")
            }
            WalError::BadKind(k) => write!(f, "WAL frame has unknown kind tag {k}"),
            WalError::ShortPayload => write!(f, "WAL frame payload too short for its kind"),
            WalError::SeqGap { expected, got } => {
                write!(f, "WAL sequence gap: expected {expected}, got {got}")
            }
            WalError::Injected(what) => write!(f, "injected transient WAL fault: {what}"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

impl WalError {
    /// True for decode-side errors that recovery treats as a clean stop
    /// (torn tail / corruption), as opposed to environmental failures.
    pub fn is_decode(&self) -> bool {
        matches!(
            self,
            WalError::BadMagic
                | WalError::BadLength(_)
                | WalError::BadCrc { .. }
                | WalError::Truncated { .. }
                | WalError::BadKind(_)
                | WalError::ShortPayload
                | WalError::SeqGap { .. }
        )
    }
}

/// Consults the fault plan at a WAL injection point. Latency sleeps;
/// transient/corrupt faults surface as retryable [`WalError::Injected`];
/// panics propagate to the caller's isolation layer. A no-op unless the
/// `fault-injection` feature is on and a plan is installed.
fn wal_fault(point: &'static str, what: &'static str) -> Result<(), WalError> {
    match faults::inject(point) {
        Some(Fault::Panic) => panic!("{}: {what}", faults::PANIC_MARKER),
        Some(Fault::Latency(d)) => {
            std::thread::sleep(d);
            Ok(())
        }
        Some(Fault::TransientError) | Some(Fault::CorruptScore) => Err(WalError::Injected(what)),
        None => Ok(()),
    }
}

/// One durable log record: the raw ingest triple plus the partition-local
/// sequence number assigned at append time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Partition-local sequence number (contiguous from 0).
    pub seq: u64,
    /// Originating system name.
    pub system: String,
    /// Record timestamp (caller-defined units).
    pub timestamp: u64,
    /// Raw log message.
    pub message: String,
}

/// The durable ack a detection worker commits after finishing a batch:
/// everything below `next_seq` is fully accounted, and the window
/// assembler held `window_fill` trailing records with
/// `since_last_window` arrivals since the last emitted window. The
/// six-bucket counters snapshot the accounting at the commit point so a
/// restart resumes with exact totals (no window double-counted or lost).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CursorState {
    /// First sequence number not yet accounted.
    pub next_seq: u64,
    /// Records buffered in the window assembler at commit time.
    pub window_fill: u32,
    /// Records seen since the last emitted window.
    pub since_last_window: u32,
    /// Pattern-library tier verdicts so far.
    pub pattern_hits: u64,
    /// Score-cache tier verdicts so far.
    pub cache_hits: u64,
    /// Model tier verdicts so far.
    pub model_calls: u64,
    /// Windows resolved by degraded cheap-tier scoring.
    pub degraded: u64,
    /// Windows shed under backpressure.
    pub shed: u64,
    /// Windows quarantined to the dead-letter queue.
    pub quarantined: u64,
    /// Transient retries performed.
    pub retries: u64,
    /// Anomaly reports delivered to the sink.
    pub reports: u64,
}

/// A decoded frame payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Payload {
    /// A log record frame (segment files).
    Record(WalRecord),
    /// A cursor-commit frame (cursor log).
    Cursor(CursorState),
}

// ---------------------------------------------------------------------------
// CRC32 + frame codec
// ---------------------------------------------------------------------------

/// CRC32 (IEEE 802.3 polynomial, reflected) lookup tables, built at
/// compile time. Table 0 is the classic byte-at-a-time table; tables
/// 1–7 extend it for the slicing-by-8 kernel, which breaks the
/// per-byte dependency chain and processes eight input bytes per
/// iteration — the CRC is the hottest per-record cost of a batched
/// append once the flush syscall is amortized away.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB88320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
            i += 1;
        }
        t += 1;
    }
    tables
};

/// CRC32 (IEEE) of `bytes`, slicing-by-8.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c: u32 = 0xFFFF_FFFF;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in chunks.by_ref() {
        let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ c;
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        c = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC32_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WalError> {
        if self.buf.len() - self.pos < n {
            return Err(WalError::ShortPayload);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WalError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, WalError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WalError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, WalError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WalError::ShortPayload)
    }
}

/// Encodes a record payload and wraps it in a CRC frame.
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 1 + 8 + 8 + 8 + rec.system.len() + rec.message.len());
    encode_record_into(&mut out, rec.seq, &rec.system, rec.timestamp, &rec.message);
    out
}

/// Appends one framed record to `out` without intermediate allocations:
/// the payload is written in place behind an 8-byte placeholder, then
/// the length/CRC header is patched over it. Byte-for-byte identical to
/// [`encode_record`] — group commit concatenates these, so the on-disk
/// layout of a batch must be indistinguishable from N single appends.
fn encode_record_into(out: &mut Vec<u8>, seq: u64, system: &str, timestamp: u64, message: &str) {
    let head = out.len();
    out.extend_from_slice(&[0u8; 8]);
    out.push(KIND_RECORD);
    put_u64(out, seq);
    put_u64(out, timestamp);
    put_u32(out, system.len() as u32);
    out.extend_from_slice(system.as_bytes());
    put_u32(out, message.len() as u32);
    out.extend_from_slice(message.as_bytes());
    let payload_len = (out.len() - head - 8) as u32;
    let crc = crc32(&out[head + 8..]);
    out[head..head + 4].copy_from_slice(&payload_len.to_le_bytes());
    out[head + 4..head + 8].copy_from_slice(&crc.to_le_bytes());
}

/// Encodes a cursor payload and wraps it in a CRC frame.
pub fn encode_cursor(c: &CursorState) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 + 8 + 4 + 4 + 8 * 8);
    payload.push(KIND_CURSOR);
    put_u64(&mut payload, c.next_seq);
    put_u32(&mut payload, c.window_fill);
    put_u32(&mut payload, c.since_last_window);
    for v in [
        c.pattern_hits,
        c.cache_hits,
        c.model_calls,
        c.degraded,
        c.shed,
        c.quarantined,
        c.retries,
        c.reports,
    ] {
        put_u64(&mut payload, v);
    }
    frame(payload)
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    put_u32(&mut out, crc32(&payload));
    out.extend_from_slice(&payload);
    out
}

/// Decodes one frame payload (the bytes *after* the 8-byte frame
/// header) into a [`Payload`].
pub fn decode_payload(payload: &[u8]) -> Result<Payload, WalError> {
    let mut r = Reader::new(payload);
    match r.u8()? {
        KIND_RECORD => {
            let seq = r.u64()?;
            let timestamp = r.u64()?;
            let system = r.str()?;
            let message = r.str()?;
            Ok(Payload::Record(WalRecord {
                seq,
                system,
                timestamp,
                message,
            }))
        }
        KIND_CURSOR => {
            let next_seq = r.u64()?;
            let window_fill = r.u32()?;
            let since_last_window = r.u32()?;
            let mut vals = [0u64; 8];
            for v in vals.iter_mut() {
                *v = r.u64()?;
            }
            Ok(Payload::Cursor(CursorState {
                next_seq,
                window_fill,
                since_last_window,
                pattern_hits: vals[0],
                cache_hits: vals[1],
                model_calls: vals[2],
                degraded: vals[3],
                shed: vals[4],
                quarantined: vals[5],
                retries: vals[6],
                reports: vals[7],
            }))
        }
        k => Err(WalError::BadKind(k)),
    }
}

/// Reads the next frame from `buf`. Returns `Ok(None)` at a clean end
/// (empty buffer), `Ok(Some((payload, consumed)))` for a valid frame,
/// and a typed [`WalError`] for a torn or corrupt one. Never panics.
pub fn next_frame(buf: &[u8]) -> Result<Option<(&[u8], usize)>, WalError> {
    if buf.is_empty() {
        return Ok(None);
    }
    if buf.len() < 8 {
        return Err(WalError::Truncated {
            needed: 8,
            got: buf.len(),
        });
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if len == 0 || len > MAX_PAYLOAD {
        return Err(WalError::BadLength(len));
    }
    let total = 8 + len as usize;
    if buf.len() < total {
        return Err(WalError::Truncated {
            needed: total,
            got: buf.len(),
        });
    }
    let stored = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let payload = &buf[8..total];
    let computed = crc32(payload);
    if stored != computed {
        return Err(WalError::BadCrc { stored, computed });
    }
    Ok(Some((payload, total)))
}

// ---------------------------------------------------------------------------
// Segment + cursor file scanning
// ---------------------------------------------------------------------------

/// Result of scanning one file's frames: everything decoded up to the
/// first invalid frame, the byte length of the valid prefix (magic
/// included), and the typed error that stopped the scan, if any.
struct FileScan {
    payloads: Vec<Payload>,
    valid_len: u64,
    tail_error: Option<WalError>,
}

/// Scans `bytes` (a whole file) expecting `magic` then frames. Stops
/// cleanly at the first invalid frame. A kind tag other than `want_kind`
/// is treated as corruption.
fn scan_file(bytes: &[u8], magic: &[u8; 8], want_kind: u8) -> FileScan {
    if bytes.len() < 8 || &bytes[..8] != magic {
        return FileScan {
            payloads: Vec::new(),
            valid_len: 0,
            tail_error: Some(WalError::BadMagic),
        };
    }
    let mut payloads = Vec::new();
    let mut pos = 8usize;
    let tail_error = loop {
        match next_frame(&bytes[pos..]) {
            Ok(None) => break None,
            Ok(Some((payload, consumed))) => {
                if payload.first() != Some(&want_kind) {
                    break Some(WalError::BadKind(payload.first().copied().unwrap_or(0)));
                }
                match decode_payload(payload) {
                    Ok(p) => {
                        payloads.push(p);
                        pos += consumed;
                    }
                    Err(e) => break Some(e),
                }
            }
            Err(e) => break Some(e),
        }
    };
    FileScan {
        payloads,
        valid_len: pos as u64,
        tail_error,
    }
}

fn segment_path(dir: &Path, base: u64) -> PathBuf {
    dir.join(format!("seg-{base:016x}.wal"))
}

fn cursor_path(dir: &Path) -> PathBuf {
    dir.join("cursor.log")
}

/// Lists segment bases in `dir`, sorted ascending. Non-segment files are
/// ignored.
fn list_segments(dir: &Path) -> Result<Vec<u64>, WalError> {
    let mut bases = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(bases),
        Err(e) => return Err(e.into()),
    };
    for entry in entries {
        let name = entry?.file_name();
        let name = name.to_string_lossy();
        if let Some(hex) = name
            .strip_prefix("seg-")
            .and_then(|s| s.strip_suffix(".wal"))
        {
            if let Ok(base) = u64::from_str_radix(hex, 16) {
                bases.push(base);
            }
        }
    }
    bases.sort_unstable();
    Ok(bases)
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

/// Everything recovery learned about one partition's WAL.
#[derive(Debug, Default)]
pub struct Recovered {
    /// Last durably committed cursor (zeroed if none was ever written).
    pub cursor: CursorState,
    /// Records the window assembler had buffered at the commit point
    /// (`[next_seq - window_fill, next_seq)`) — re-prime, don't re-count.
    pub context: Vec<WalRecord>,
    /// Unaccounted records (`[next_seq, ..)`) — re-process exactly once.
    pub replay: Vec<WalRecord>,
    /// Next sequence number a fresh append would be assigned.
    pub next_seq: u64,
    /// Where and why the segment scan stopped early, if it did. `None`
    /// means every frame on disk was valid.
    pub tail_error: Option<WalError>,
}

/// Read-only recovery scan of one partition directory. Safe to call any
/// number of times (idempotent): it never writes, so a crash mid-recovery
/// is retried by simply calling it again.
///
/// Corruption anywhere stops the scan at the last valid frame — the
/// typed error lands in [`Recovered::tail_error`], records past it are
/// dropped, and the function still succeeds. Only environmental failures
/// (I/O errors) and injected transients return `Err`.
pub fn recover_partition(dir: &Path) -> Result<Recovered, WalError> {
    wal_fault(points::WAL_RECOVER, "WAL recovery scan")?;

    // Cursor log: last valid cursor frame wins; a torn tail just means
    // the previous commit is the durable one.
    let mut cursor = CursorState::default();
    match fs::read(cursor_path(dir)) {
        Ok(bytes) => {
            let scan = scan_file(&bytes, CURSOR_MAGIC, KIND_CURSOR);
            if let Some(Payload::Cursor(c)) = scan.payloads.last() {
                cursor = *c;
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e.into()),
    }

    let ctx_start = cursor.next_seq.saturating_sub(cursor.window_fill as u64);
    let bases = list_segments(dir)?;
    let mut records: VecDeque<WalRecord> = VecDeque::new();
    let mut expected: Option<u64> = None;
    let mut tail_error = None;
    for (i, &base) in bases.iter().enumerate() {
        // Skip segments that end before the replay horizon entirely.
        if let Some(&next_base) = bases.get(i + 1) {
            if next_base <= ctx_start {
                expected = Some(next_base);
                continue;
            }
        }
        if let Some(exp) = expected {
            // A base gap is corruption — except the *reseat* a reopen
            // writes when acked records were destroyed: a fresh segment
            // based exactly at the committed cursor, jumping over a
            // fully-acked hole.
            let reseat = exp <= cursor.next_seq && base == cursor.next_seq;
            if base != exp && !reseat {
                tail_error = Some(WalError::SeqGap {
                    expected: exp,
                    got: base,
                });
                break;
            }
        }
        wal_fault(points::WAL_RECOVER, "WAL segment scan")?;
        let bytes = fs::read(segment_path(dir, base))?;
        let scan = scan_file(&bytes, SEGMENT_MAGIC, KIND_RECORD);
        let mut seq_cursor = base;
        let mut stop = scan.tail_error;
        for p in scan.payloads {
            let Payload::Record(rec) = p else {
                unreachable!()
            };
            if rec.seq != seq_cursor {
                stop = Some(WalError::SeqGap {
                    expected: seq_cursor,
                    got: rec.seq,
                });
                break;
            }
            seq_cursor += 1;
            if rec.seq >= ctx_start {
                records.push_back(rec);
            }
        }
        expected = Some(seq_cursor);
        // Any stop inside a segment orphans everything after it: later
        // frames (and segments) can't be trusted to be contiguous.
        if let Some(e) = stop {
            tail_error = Some(e);
            break;
        }
    }

    let next_seq = expected.unwrap_or(0).max(cursor.next_seq);
    let mut context = Vec::new();
    let mut replay = Vec::new();
    for rec in records {
        if rec.seq < cursor.next_seq {
            context.push(rec);
        } else {
            replay.push(rec);
        }
    }
    Ok(Recovered {
        cursor,
        context,
        replay,
        next_seq,
        tail_error,
    })
}

// ---------------------------------------------------------------------------
// Appender
// ---------------------------------------------------------------------------

/// Tuning knobs for one partition's WAL.
#[derive(Clone, Debug)]
pub struct WalConfig {
    /// Roll to a new segment once the current one exceeds this size.
    pub segment_max_bytes: u64,
    /// Roll to a new segment once the current one is this old (checked
    /// on append).
    pub segment_max_age: Duration,
    /// Fully-acked segments to keep behind the commit horizon before
    /// retiring them (history for replay tooling).
    pub retain_segments: usize,
}

impl Default for WalConfig {
    fn default() -> Self {
        WalConfig {
            segment_max_bytes: 8 * 1024 * 1024,
            segment_max_age: Duration::from_secs(60),
            retain_segments: 2,
        }
    }
}

struct WalStats {
    records: Arc<telemetry::Counter>,
    bytes: Arc<telemetry::Counter>,
    rolls: Arc<telemetry::Counter>,
    retired: Arc<telemetry::Counter>,
    batches: Arc<telemetry::Counter>,
    flush_coalesced: Arc<telemetry::Counter>,
    batch_size: Arc<telemetry::Histogram>,
    append_us: Arc<telemetry::Histogram>,
}

impl WalStats {
    fn resolve() -> Self {
        let tele = telemetry::global().scoped("wal");
        WalStats {
            records: tele.counter("records"),
            bytes: tele.counter("bytes"),
            rolls: tele.counter("segment_rolls"),
            retired: tele.counter("segments_retired"),
            batches: tele.counter("batches"),
            flush_coalesced: tele.counter("flush_coalesced"),
            batch_size: tele.histogram("batch_size"),
            append_us: tele.histogram("append_us"),
        }
    }
}

/// Append handle for one partition's segmented WAL.
///
/// [`PartitionWal::open`] runs recovery first, truncates any torn tail,
/// deletes orphaned segments past a corruption point, and positions the
/// writer for append. Each [`PartitionWal::append`] assigns the next
/// sequence number, rolls the segment if needed, writes one frame, and
/// flushes before returning — the returned seq is durably on disk
/// (process-kill durable; see the module docs for the fsync caveat).
/// [`PartitionWal::append_batch`] group-commits N records with one
/// write+flush per segment touched, byte-identical to N single appends.
pub struct PartitionWal {
    dir: PathBuf,
    config: WalConfig,
    writer: BufWriter<File>,
    /// True after a failed write/flush: the segment may hold a partial
    /// frame past `seg_bytes` (or the `BufWriter` retained bytes), so
    /// the writer must be reseated before the next append.
    writer_torn: bool,
    seg_bytes: u64,
    seg_records: u64,
    seg_opened: Instant,
    next_seq: u64,
    segments: Vec<u64>,
    ack_horizon: Arc<AtomicU64>,
    stats: WalStats,
    /// Reusable group-commit encode buffer (frames are coalesced here
    /// before the single `write_all`); cleared between appends, so its
    /// capacity amortizes across the WAL's lifetime.
    scratch: Vec<u8>,
}

impl PartitionWal {
    /// Recovers `dir` (creating it if absent) and opens it for append.
    pub fn open(dir: &Path, config: WalConfig) -> Result<(Self, Recovered), WalError> {
        fs::create_dir_all(dir)?;
        let recovered = recover_partition(dir)?;
        let ctx_start = recovered
            .cursor
            .next_seq
            .saturating_sub(recovered.cursor.window_fill as u64);

        // Walk segments with the same acceptance rules as recovery,
        // truncating the segment the scan stopped in and deleting every
        // segment past the stop point — they are unreachable once
        // appends resume at `recovered.next_seq`.
        let all = list_segments(dir)?;
        let mut keep: Vec<u64> = Vec::new();
        let mut expected: Option<u64> = None;
        let mut stopped = false;
        for (i, &base) in all.iter().enumerate() {
            if stopped {
                fs::remove_file(segment_path(dir, base))?;
                continue;
            }
            if let Some(&next_base) = all.get(i + 1) {
                if next_base <= ctx_start {
                    keep.push(base);
                    expected = Some(next_base);
                    continue;
                }
            }
            if let Some(exp) = expected {
                let reseat = exp <= recovered.cursor.next_seq && base == recovered.cursor.next_seq;
                if base != exp && !reseat {
                    stopped = true;
                    fs::remove_file(segment_path(dir, base))?;
                    continue;
                }
            }
            let path = segment_path(dir, base);
            let bytes = fs::read(&path)?;
            if bytes.len() < 8 || &bytes[..8] != SEGMENT_MAGIC {
                stopped = true;
                fs::remove_file(&path)?;
                continue;
            }
            // Valid prefix = contiguous well-formed record frames.
            let mut pos = 8usize;
            let mut seq = base;
            while let Ok(Some((payload, consumed))) = next_frame(&bytes[pos..]) {
                match decode_payload(payload) {
                    Ok(Payload::Record(r)) if r.seq == seq => {
                        seq += 1;
                        pos += consumed;
                    }
                    _ => break,
                }
            }
            if (pos as u64) < bytes.len() as u64 {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(pos as u64)?;
                stopped = true;
            }
            keep.push(base);
            expected = Some(seq);
        }

        let ack_horizon = Arc::new(AtomicU64::new(ctx_start));
        let stats = WalStats::resolve();
        let mut bases = keep;

        // Append in place only when the last kept segment ends exactly
        // at the resume point; otherwise (no segments, or acked records
        // destroyed with the cursor ahead of disk) reseat a fresh
        // segment based at `next_seq`.
        let (writer, seg_bytes, seg_records) = match bases.last() {
            Some(&base) if expected == Some(recovered.next_seq) => {
                let path = segment_path(dir, base);
                let mut f = OpenOptions::new().write(true).open(&path)?;
                let len = f.seek(SeekFrom::End(0))?;
                (BufWriter::new(f), len, recovered.next_seq - base)
            }
            _ => {
                let base = recovered.next_seq;
                let path = segment_path(dir, base);
                let mut f = File::create(&path)?;
                f.write_all(SEGMENT_MAGIC)?;
                f.flush()?;
                bases.push(base);
                (BufWriter::new(f), 8, 0)
            }
        };

        Ok((
            PartitionWal {
                dir: dir.to_path_buf(),
                config,
                writer,
                writer_torn: false,
                seg_bytes,
                seg_records,
                seg_opened: Instant::now(),
                next_seq: recovered.next_seq,
                segments: bases,
                ack_horizon,
                stats,
                scratch: Vec::new(),
            },
            recovered,
        ))
    }

    /// Next sequence number an append would be assigned.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Shared commit horizon: the committer stores
    /// `next_seq - window_fill` here after each durable ack; segment
    /// retirement reads it.
    pub fn ack_horizon(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.ack_horizon)
    }

    /// Appends one record, flushing before return. The returned sequence
    /// number is durably on disk when this returns `Ok`.
    ///
    /// A failed append (I/O error from the write or flush, e.g. ENOSPC)
    /// is retryable: the segment is reseated — reopened and truncated to
    /// the last known-good offset — before the error returns (or, if
    /// that too fails, on the next append), so a retried append with the
    /// same sequence number can never land behind a torn partial frame.
    pub fn append(&mut self, system: &str, timestamp: u64, message: &str) -> Result<u64, WalError> {
        let seq = self.next_seq;
        self.append_batch(&[(system, timestamp, message)])?;
        Ok(seq)
    }

    /// Group commit: appends a batch of `(system, timestamp, message)`
    /// records, reserving the contiguous sequence range
    /// `next_seq .. next_seq + records.len()`. The frames are encoded
    /// into one contiguous buffer and issued with a single
    /// `write_all`+flush — splitting only where a segment roll lands
    /// mid-batch — so the on-disk layout is frame-for-frame identical to N single
    /// [`PartitionWal::append`] calls, at one syscall pair per segment
    /// instead of one per record. On `Ok` every record in the range is
    /// durably on disk.
    ///
    /// Failure semantics extend the reseat-before-retry contract to
    /// batch granularity. Chunks flushed before the failure point are
    /// durable and `next_seq` has advanced past them; the failing chunk
    /// never lands partially — the writer is reseated to the last
    /// durably-flushed offset before (or, if the reseat itself fails,
    /// after) the error surfaces. `next_seq() - start` therefore tells
    /// the caller exactly which prefix of the batch is durable: those
    /// records must still be enqueued downstream (WAL order == buffer
    /// order), while the suffix was never written and is free to retry
    /// with the sequence numbers it will be re-assigned.
    pub fn append_batch(
        &mut self,
        records: &[(&str, u64, &str)],
    ) -> Result<std::ops::Range<u64>, WalError> {
        let start = self.next_seq;
        if records.is_empty() {
            return Ok(start..start);
        }
        let t0 = Instant::now();
        let mut buf = std::mem::take(&mut self.scratch);
        buf.clear();
        let mut flushes = 0u64;
        let result = self.append_batch_chunks(records, &mut buf, &mut flushes);
        buf.clear();
        self.scratch = buf;
        let appended = self.next_seq - start;
        if appended > 0 {
            self.stats.batches.inc();
            self.stats.batch_size.record(appended);
            // Flushes this batch avoided relative to one per record.
            self.stats.flush_coalesced.add(appended - flushes);
            self.stats.append_us.record(t0.elapsed().as_micros() as u64);
        }
        result?;
        Ok(start..self.next_seq)
    }

    /// The body of [`PartitionWal::append_batch`]: encodes frames into
    /// `buf`, flushing the accumulated chunk wherever a segment roll
    /// falls (the roll decision per frame is exactly the single-append
    /// `maybe_roll`, with the unwritten chunk counted toward the live
    /// segment's size) and once at the end. `flushes` counts the
    /// write+flush syscall pairs actually issued.
    fn append_batch_chunks(
        &mut self,
        records: &[(&str, u64, &str)],
        buf: &mut Vec<u8>,
        flushes: &mut u64,
    ) -> Result<(), WalError> {
        // Records encoded into `buf` but not yet written.
        let mut chunk = 0u64;
        for &(system, timestamp, message) in records {
            // One fault consult per record — the same cadence as N
            // single appends, so a seeded plan cannot tell a batched
            // producer from a per-record one. A panic here is a crash
            // landing mid-batch: flushed chunks are durable, the
            // encoded-but-unwritten tail never reaches disk.
            wal_fault(points::WAL_APPEND, "WAL append")?;
            if self.writer_torn {
                self.reseat_writer()?;
            }
            let frame_start = buf.len();
            encode_record_into(buf, self.next_seq + chunk, system, timestamp, message);
            let frame_len = (buf.len() - frame_start) as u64;
            if self.seg_records + chunk > 0 {
                let over_size =
                    self.seg_bytes + frame_start as u64 + frame_len > self.config.segment_max_bytes;
                let over_age = self.seg_opened.elapsed() >= self.config.segment_max_age;
                if over_size || over_age {
                    // The roll lands before this frame: group-commit
                    // the chunk into the closing segment, roll, and
                    // restart the chunk with this frame at its front.
                    self.flush_chunk(&buf[..frame_start], chunk, flushes)?;
                    chunk = 0;
                    self.roll()?;
                    buf.copy_within(frame_start.., 0);
                    buf.truncate(frame_len as usize);
                }
            }
            chunk += 1;
        }
        self.flush_chunk(buf, chunk, flushes)
    }

    /// One group-commit write: the chunk's frames land with a single
    /// `write_all` + flush. On `Ok` every record in the chunk is
    /// durable and the sequence/segment counters advance past it; on
    /// `Err` the writer is reseated and nothing in the chunk survives.
    fn flush_chunk(
        &mut self,
        bytes: &[u8],
        records: u64,
        flushes: &mut u64,
    ) -> Result<(), WalError> {
        if records == 0 {
            return Ok(());
        }
        if let Err(e) = self.write_frame(bytes) {
            self.fail_writer();
            return Err(e.into());
        }
        *flushes += 1;
        self.seg_bytes += bytes.len() as u64;
        self.seg_records += records;
        self.next_seq += records;
        self.stats.records.add(records);
        self.stats.bytes.add(bytes.len() as u64);
        Ok(())
    }

    fn write_frame(&mut self, frame: &[u8]) -> io::Result<()> {
        self.writer.write_all(frame)?;
        self.writer.flush()
    }

    /// Marks the writer torn and tries to reseat it immediately; if the
    /// reseat itself fails the flag stays set and the next append
    /// retries it before writing anything.
    fn fail_writer(&mut self) {
        self.writer_torn = true;
        let _ = self.reseat_writer();
    }

    /// Reopens the live segment and truncates it to the last known-good
    /// offset (`seg_bytes`), discarding any partial frame a failed
    /// append left on disk and any bytes the old `BufWriter` retained.
    fn reseat_writer(&mut self) -> Result<(), WalError> {
        let base = *self.segments.last().expect("an open segment always exists");
        let mut f = OpenOptions::new()
            .write(true)
            .open(segment_path(&self.dir, base))?;
        f.set_len(self.seg_bytes)?;
        f.seek(SeekFrom::Start(self.seg_bytes))?;
        // `into_parts` discards the old writer's retained bytes without
        // the flush-on-drop a plain replacement would trigger — that
        // flush could re-write the torn bytes behind the truncation.
        let old = std::mem::replace(&mut self.writer, BufWriter::new(f));
        let _ = old.into_parts();
        self.writer_torn = false;
        Ok(())
    }

    /// Test-only: a failed append's aftermath — junk bytes past the
    /// last good frame and a torn writer, as a short write under
    /// ENOSPC/EIO would leave them.
    #[cfg(test)]
    fn simulate_torn_append(&mut self, junk: &[u8]) {
        self.writer.write_all(junk).unwrap();
        self.writer.flush().unwrap();
        self.writer_torn = true;
    }

    /// Closes the current segment and opens a fresh one based at the
    /// next sequence number, then retires fully-acked history.
    fn roll(&mut self) -> Result<(), WalError> {
        wal_fault(points::WAL_ROLL, "WAL segment roll")?;
        if let Err(e) = self.writer.flush() {
            self.fail_writer();
            return Err(e.into());
        }
        let base = self.next_seq;
        let path = segment_path(&self.dir, base);
        let mut f = File::create(&path)?;
        f.write_all(SEGMENT_MAGIC)?;
        f.flush()?;
        self.writer = BufWriter::new(f);
        self.seg_bytes = 8;
        self.seg_records = 0;
        self.seg_opened = Instant::now();
        self.segments.push(base);
        self.stats.rolls.inc();
        self.retire_segments()?;
        Ok(())
    }

    /// Deletes segments wholly behind the commit horizon, keeping
    /// [`WalConfig::retain_segments`] of acked history.
    fn retire_segments(&mut self) -> Result<(), WalError> {
        let horizon = self.ack_horizon.load(Ordering::Relaxed);
        // A segment is fully acked iff the *next* segment's base is at
        // or below the horizon (its records all have seq < horizon).
        let mut acked = 0usize;
        for i in 0..self.segments.len().saturating_sub(1) {
            if self.segments[i + 1] <= horizon {
                acked = i + 1;
            } else {
                break;
            }
        }
        let retire = acked.saturating_sub(self.config.retain_segments);
        if retire == 0 {
            return Ok(());
        }
        for &base in &self.segments[..retire] {
            fs::remove_file(segment_path(&self.dir, base))?;
            self.stats.retired.inc();
        }
        self.segments.drain(..retire);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Cursor file (durable acks)
// ---------------------------------------------------------------------------

/// Append handle for one partition's cursor log — the durable ack
/// stream. Owned by the detection worker; one [`CursorFile::commit`] per
/// finished batch. Compacts itself (rewrite + rename, consulting the
/// `persist.io` fault point) once the log grows past a threshold, since
/// only the last valid frame matters.
pub struct CursorFile {
    path: PathBuf,
    writer: BufWriter<File>,
    bytes: u64,
    commits: Arc<telemetry::Counter>,
}

impl CursorFile {
    /// Opens (creating if absent) the cursor log in `dir`, truncating
    /// any torn tail so appends extend a valid prefix. A file whose
    /// header never made it to disk intact is recreated from scratch.
    pub fn open(dir: &Path) -> Result<Self, WalError> {
        fs::create_dir_all(dir)?;
        let path = cursor_path(dir);
        let valid_len = match fs::read(&path) {
            Ok(bytes) => {
                let scan = scan_file(&bytes, CURSOR_MAGIC, KIND_CURSOR);
                if scan.valid_len < 8 {
                    // Empty, short, or garbage header (a kill between
                    // `File::create` and the magic write, or corrupted
                    // first bytes): recreate the file with a fresh magic.
                    // Appending behind invalid header bytes would make
                    // every future recovery see `BadMagic` and ignore
                    // all committed cursors forever.
                    None
                } else {
                    if scan.tail_error.is_some() && scan.valid_len < bytes.len() as u64 {
                        let f = OpenOptions::new().write(true).open(&path)?;
                        f.set_len(scan.valid_len)?;
                    }
                    Some(scan.valid_len)
                }
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };
        let (file, bytes) = match valid_len {
            Some(len) => {
                let mut f = OpenOptions::new().write(true).open(&path)?;
                f.seek(SeekFrom::Start(len))?;
                (f, len)
            }
            None => {
                let mut f = File::create(&path)?;
                f.write_all(CURSOR_MAGIC)?;
                f.flush()?;
                (f, 8)
            }
        };
        Ok(CursorFile {
            path,
            writer: BufWriter::new(file),
            bytes,
            commits: telemetry::global().scoped("wal").counter("commits"),
        })
    }

    /// Durably commits a cursor: one frame appended and flushed. On `Ok`,
    /// the ack survives a process kill.
    pub fn commit(&mut self, c: &CursorState) -> Result<(), WalError> {
        wal_fault(points::WAL_APPEND, "WAL cursor-log append")?;
        let frame = encode_cursor(c);
        if self.bytes + frame.len() as u64 > CURSOR_COMPACT_AT {
            self.compact(&frame)?;
        } else {
            self.writer.write_all(&frame)?;
            self.writer.flush()?;
            self.bytes += frame.len() as u64;
        }
        self.commits.inc();
        Ok(())
    }

    /// Rewrites the log as magic + one frame via tmp-file + rename.
    fn compact(&mut self, frame: &[u8]) -> Result<(), WalError> {
        if let Some(Fault::Panic) = faults::inject(points::PERSIST_IO) {
            panic!("{}: WAL cursor-log compaction", faults::PANIC_MARKER);
        }
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(CURSOR_MAGIC)?;
            f.write_all(frame)?;
            f.flush()?;
        }
        fs::rename(&tmp, &self.path)?;
        let mut f = OpenOptions::new().write(true).open(&self.path)?;
        let len = f.seek(SeekFrom::End(0))?;
        self.writer = BufWriter::new(f);
        self.bytes = len;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lswal-unit-{}-{}-{tag}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn rec(seq: u64, msg: &str) -> WalRecord {
        WalRecord {
            seq,
            system: "sys-a".into(),
            timestamp: 1000 + seq,
            message: msg.into(),
        }
    }

    #[test]
    fn frame_round_trip_record_and_cursor() {
        let r = rec(42, "disk full on /var");
        let bytes = encode_record(&r);
        let (payload, consumed) = next_frame(&bytes).unwrap().unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(decode_payload(payload).unwrap(), Payload::Record(r));

        let c = CursorState {
            next_seq: 7,
            window_fill: 10,
            since_last_window: 3,
            pattern_hits: 1,
            cache_hits: 2,
            model_calls: 3,
            degraded: 4,
            shed: 5,
            quarantined: 6,
            retries: 7,
            reports: 8,
        };
        let bytes = encode_cursor(&c);
        let (payload, _) = next_frame(&bytes).unwrap().unwrap();
        assert_eq!(decode_payload(payload).unwrap(), Payload::Cursor(c));
    }

    #[test]
    fn bit_flip_is_a_typed_crc_error() {
        let mut bytes = encode_record(&rec(0, "hello"));
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        match next_frame(&bytes) {
            Err(WalError::BadCrc { .. }) => {}
            other => panic!("expected BadCrc, got {other:?}"),
        }
    }

    #[test]
    fn append_recover_round_trip_across_rolls() {
        let dir = tmp_dir("roundtrip");
        let cfg = WalConfig {
            segment_max_bytes: 160,
            ..WalConfig::default()
        };
        {
            let (mut wal, recovered) = PartitionWal::open(&dir, cfg.clone()).unwrap();
            assert_eq!(recovered.next_seq, 0);
            for i in 0..20 {
                let seq = wal
                    .append("sys-a", 1000 + i, &format!("event {i}"))
                    .unwrap();
                assert_eq!(seq, i);
            }
        }
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "160-byte segments must have rolled"
        );
        let recovered = recover_partition(&dir).unwrap();
        assert!(recovered.tail_error.is_none());
        assert_eq!(recovered.next_seq, 20);
        assert_eq!(recovered.replay.len(), 20);
        for (i, r) in recovered.replay.iter().enumerate() {
            assert_eq!(r.seq, i as u64);
            assert_eq!(r.message, format!("event {i}"));
        }
    }

    #[test]
    fn cursor_commits_split_context_and_replay() {
        let dir = tmp_dir("cursor");
        let (mut wal, _) = PartitionWal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..30 {
            wal.append("sys-a", i, &format!("m{i}")).unwrap();
        }
        let mut cf = CursorFile::open(&dir).unwrap();
        cf.commit(&CursorState {
            next_seq: 12,
            window_fill: 10,
            since_last_window: 2,
            model_calls: 1,
            reports: 1,
            ..CursorState::default()
        })
        .unwrap();
        let r = recover_partition(&dir).unwrap();
        assert_eq!(r.cursor.next_seq, 12);
        assert_eq!(r.context.len(), 10, "window_fill records re-primed");
        assert_eq!(r.context[0].seq, 2);
        assert_eq!(r.replay.len(), 18, "unacked tail replayed");
        assert_eq!(r.replay[0].seq, 12);
        assert_eq!(r.next_seq, 30);
    }

    #[test]
    fn last_valid_cursor_wins_and_torn_cursor_tail_is_ignored() {
        let dir = tmp_dir("cursor-tail");
        let (mut wal, _) = PartitionWal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..5 {
            wal.append("s", i, "m").unwrap();
        }
        let mut cf = CursorFile::open(&dir).unwrap();
        cf.commit(&CursorState {
            next_seq: 2,
            ..CursorState::default()
        })
        .unwrap();
        cf.commit(&CursorState {
            next_seq: 4,
            ..CursorState::default()
        })
        .unwrap();
        drop(cf);
        // Torn tail: half a frame of garbage.
        let mut bytes = fs::read(cursor_path(&dir)).unwrap();
        bytes.extend_from_slice(&[9, 0, 0, 0, 1, 2]);
        fs::write(cursor_path(&dir), &bytes).unwrap();
        let r = recover_partition(&dir).unwrap();
        assert_eq!(r.cursor.next_seq, 4, "last valid cursor frame wins");
        // Reopening for commit truncates the torn tail.
        let mut cf = CursorFile::open(&dir).unwrap();
        cf.commit(&CursorState {
            next_seq: 5,
            ..CursorState::default()
        })
        .unwrap();
        let r = recover_partition(&dir).unwrap();
        assert_eq!(r.cursor.next_seq, 5);
    }

    #[test]
    fn torn_segment_tail_stops_cleanly_and_open_truncates() {
        let dir = tmp_dir("torn");
        {
            let (mut wal, _) = PartitionWal::open(&dir, WalConfig::default()).unwrap();
            for i in 0..10 {
                wal.append("s", i, &format!("msg {i}")).unwrap();
            }
        }
        let base = list_segments(&dir).unwrap()[0];
        let path = segment_path(&dir, base);
        let full = fs::read(&path).unwrap();
        // Chop mid-frame: keep all but the last 5 bytes.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full.len() as u64 - 5).unwrap();
        drop(f);

        let r = recover_partition(&dir).unwrap();
        assert_eq!(r.replay.len(), 9, "last record torn off");
        assert!(matches!(r.tail_error, Some(WalError::Truncated { .. })));

        // Reopen for append: tail truncated, appends continue seamlessly.
        let (mut wal, r) = PartitionWal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(r.next_seq, 9);
        wal.append("s", 99, "after recovery").unwrap();
        drop(wal);
        let r = recover_partition(&dir).unwrap();
        assert!(r.tail_error.is_none());
        assert_eq!(r.replay.len(), 10);
        assert_eq!(r.replay[9].message, "after recovery");
    }

    #[test]
    fn failed_append_reseats_the_segment_before_retry() {
        let dir = tmp_dir("reseat");
        let (mut wal, _) = PartitionWal::open(&dir, WalConfig::default()).unwrap();
        for i in 0..3 {
            wal.append("s", i, &format!("m{i}")).unwrap();
        }
        // A failed append leaves half a frame on disk and the writer
        // torn; the retried append (same seq) must land behind the last
        // good frame, not behind the junk.
        wal.simulate_torn_append(&[7, 0, 0, 0, 0xde, 0xad]);
        let seq = wal.append("s", 3, "after failure").unwrap();
        assert_eq!(seq, 3);
        drop(wal);
        let r = recover_partition(&dir).unwrap();
        assert!(
            r.tail_error.is_none(),
            "torn bytes must not survive the reseat: {:?}",
            r.tail_error
        );
        assert_eq!(r.replay.len(), 4);
        assert_eq!(r.replay[3].seq, 3);
        assert_eq!(r.replay[3].message, "after failure");
    }

    #[test]
    fn append_batch_round_trips_across_rolls() {
        let dir = tmp_dir("batch-roundtrip");
        let cfg = WalConfig {
            segment_max_bytes: 160,
            ..WalConfig::default()
        };
        let messages: Vec<String> = (0..25).map(|i| format!("batched event {i}")).collect();
        {
            let (mut wal, _) = PartitionWal::open(&dir, cfg).unwrap();
            let entries: Vec<(&str, u64, &str)> = messages
                .iter()
                .enumerate()
                .map(|(i, m)| ("sys-a", 1000 + i as u64, m.as_str()))
                .collect();
            let range = wal.append_batch(&entries).unwrap();
            assert_eq!(range, 0..25);
            assert_eq!(wal.next_seq(), 25);
        }
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "160-byte segments must have rolled mid-batch"
        );
        let r = recover_partition(&dir).unwrap();
        assert!(r.tail_error.is_none());
        assert_eq!(r.replay.len(), 25);
        for (i, rec) in r.replay.iter().enumerate() {
            assert_eq!(rec.seq, i as u64);
            assert_eq!(rec.message, messages[i]);
        }
    }

    #[test]
    fn append_batch_is_byte_identical_to_single_appends() {
        let cfg = WalConfig {
            segment_max_bytes: 200,
            ..WalConfig::default()
        };
        let entries: Vec<(String, u64, String)> = (0..18)
            .map(|i| (format!("sys-{}", i % 3), i, format!("event payload {i}")))
            .collect();
        let refs: Vec<(&str, u64, &str)> = entries
            .iter()
            .map(|(s, t, m)| (s.as_str(), *t, m.as_str()))
            .collect();

        let singles = tmp_dir("parity-singles");
        {
            let (mut wal, _) = PartitionWal::open(&singles, cfg.clone()).unwrap();
            for &(system, ts, msg) in &refs {
                wal.append(system, ts, msg).unwrap();
            }
        }
        let batched = tmp_dir("parity-batched");
        {
            let (mut wal, _) = PartitionWal::open(&batched, cfg).unwrap();
            wal.append_batch(&refs).unwrap();
        }

        let a = list_segments(&singles).unwrap();
        let b = list_segments(&batched).unwrap();
        assert_eq!(a, b, "same segment bases, same roll points");
        for base in a {
            assert_eq!(
                fs::read(segment_path(&singles, base)).unwrap(),
                fs::read(segment_path(&batched, base)).unwrap(),
                "segment {base:#x} must be byte-identical"
            );
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let dir = tmp_dir("batch-empty");
        let (mut wal, _) = PartitionWal::open(&dir, WalConfig::default()).unwrap();
        assert_eq!(wal.append_batch(&[]).unwrap(), 0..0);
        assert_eq!(wal.next_seq(), 0);
    }

    #[test]
    fn failed_batch_reseats_and_the_retry_lands_clean() {
        let dir = tmp_dir("batch-reseat");
        let (mut wal, _) = PartitionWal::open(&dir, WalConfig::default()).unwrap();
        wal.append_batch(&[("s", 0, "m0"), ("s", 1, "m1")]).unwrap();
        // A failed group commit leaves junk past the last good frame and
        // a torn writer; the retried batch (same starting seq) must land
        // behind the flushed prefix, not behind the junk.
        wal.simulate_torn_append(&[13, 0, 0, 0, 0xbe, 0xef, 0x01]);
        let range = wal
            .append_batch(&[("s", 2, "after failure"), ("s", 3, "and another")])
            .unwrap();
        assert_eq!(range, 2..4);
        drop(wal);
        let r = recover_partition(&dir).unwrap();
        assert!(
            r.tail_error.is_none(),
            "torn bytes must not survive the reseat: {:?}",
            r.tail_error
        );
        assert_eq!(r.replay.len(), 4);
        assert_eq!(r.replay[2].message, "after failure");
        assert_eq!(r.replay[3].message, "and another");
    }

    #[test]
    fn cursor_open_recreates_empty_short_or_garbage_header() {
        // SIGKILL between File::create and the magic write: empty file.
        let dir = tmp_dir("cursor-empty");
        fs::create_dir_all(&dir).unwrap();
        fs::write(cursor_path(&dir), b"").unwrap();
        let mut cf = CursorFile::open(&dir).unwrap();
        cf.commit(&CursorState {
            next_seq: 3,
            ..CursorState::default()
        })
        .unwrap();
        let r = recover_partition(&dir).unwrap();
        assert_eq!(r.cursor.next_seq, 3, "commit readable behind fresh magic");

        // Short header: fewer than 8 bytes ever hit disk.
        let dir = tmp_dir("cursor-short");
        fs::create_dir_all(&dir).unwrap();
        fs::write(cursor_path(&dir), b"LSW").unwrap();
        let mut cf = CursorFile::open(&dir).unwrap();
        cf.commit(&CursorState {
            next_seq: 5,
            ..CursorState::default()
        })
        .unwrap();
        assert_eq!(recover_partition(&dir).unwrap().cursor.next_seq, 5);

        // Corrupted magic with well-formed frames behind it: nothing
        // after a bad header is trustworthy — recreate, don't append.
        let dir = tmp_dir("cursor-badmagic");
        fs::create_dir_all(&dir).unwrap();
        let mut bytes = b"XXXXXXXX".to_vec();
        bytes.extend_from_slice(&encode_cursor(&CursorState {
            next_seq: 9,
            ..CursorState::default()
        }));
        fs::write(cursor_path(&dir), &bytes).unwrap();
        let mut cf = CursorFile::open(&dir).unwrap();
        cf.commit(&CursorState {
            next_seq: 4,
            ..CursorState::default()
        })
        .unwrap();
        let r = recover_partition(&dir).unwrap();
        assert_eq!(
            r.cursor.next_seq, 4,
            "stale frames behind bad magic dropped"
        );
    }

    #[test]
    fn retention_retires_fully_acked_segments() {
        let dir = tmp_dir("retention");
        let cfg = WalConfig {
            segment_max_bytes: 160,
            retain_segments: 1,
            ..WalConfig::default()
        };
        let (mut wal, _) = PartitionWal::open(&dir, cfg).unwrap();
        let horizon = wal.ack_horizon();
        for i in 0..40 {
            wal.append("s", i, &format!("event {i}")).unwrap();
            horizon.store(i, Ordering::Relaxed);
        }
        let n_live = list_segments(&dir).unwrap().len();
        assert!(n_live < 8, "acked segments must be retired, kept {n_live}");
        // Everything at/after the horizon must still be recoverable.
        let r = recover_partition(&dir).unwrap();
        assert!(r.replay.iter().any(|rec| rec.seq == 39));
    }

    #[test]
    fn age_based_roll() {
        let dir = tmp_dir("age");
        let cfg = WalConfig {
            segment_max_age: Duration::from_millis(5),
            ..WalConfig::default()
        };
        let (mut wal, _) = PartitionWal::open(&dir, cfg).unwrap();
        wal.append("s", 0, "first").unwrap();
        std::thread::sleep(Duration::from_millis(10));
        wal.append("s", 1, "second").unwrap();
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        let r = recover_partition(&dir).unwrap();
        assert_eq!(r.replay.len(), 2);
    }

    #[test]
    fn cursor_log_compacts_past_threshold() {
        let dir = tmp_dir("compact");
        fs::create_dir_all(&dir).unwrap();
        let mut cf = CursorFile::open(&dir).unwrap();
        // Each cursor frame is ~89 bytes; force well past the 64 KiB cap.
        for i in 0..1000 {
            cf.commit(&CursorState {
                next_seq: i,
                ..CursorState::default()
            })
            .unwrap();
        }
        let len = fs::metadata(cursor_path(&dir)).unwrap().len();
        assert!(
            len < CURSOR_COMPACT_AT,
            "cursor log must compact, got {len}"
        );
        let r = recover_partition(&dir).unwrap();
        assert_eq!(r.cursor.next_seq, 999);
    }
}
