//! Online detection (paper §III-E): score sequences with the trained
//! `F` + `C_anomaly`, threshold at 0.5, and build anomaly reports that
//! combine the LEI interpretations with the score.

use logsynergy_nn::graph::Graph;
use logsynergy_nn::Tensor;

use crate::data::{PreparedSystem, SeqSample};
use crate::model::LogSynergyModel;

/// The paper's fixed decision threshold (§III-E, §IV-A3).
pub const THRESHOLD: f32 = 0.5;

/// An anomaly report, as emitted to operators in deployment (§VI-A
/// "Report"): the triggering sequence, its interpretations, and the score.
#[derive(Clone, Debug)]
pub struct AnomalyReport {
    /// Anomaly probability from `C_anomaly`.
    pub probability: f32,
    /// Event interpretations of the sequence, in order.
    pub interpretations: Vec<String>,
    /// Event template ids, in order.
    pub events: Vec<u32>,
}

/// Batch scorer over a trained model.
pub struct Detector<'a> {
    model: &'a LogSynergyModel,
    batch_size: usize,
}

impl<'a> Detector<'a> {
    /// Creates a detector with a default inference batch size.
    pub fn new(model: &'a LogSynergyModel) -> Self {
        Detector {
            model,
            batch_size: 256,
        }
    }

    /// Sets the inference batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    /// Anomaly probabilities for `samples` (embeddings looked up in the
    /// sample's own system's table).
    pub fn scores(&self, samples: &[SeqSample], embeddings: &[Vec<f32>]) -> Vec<f32> {
        let cfg = self.model.config();
        let (t, d) = (cfg.max_len, cfg.embed_dim);
        let mut out = Vec::with_capacity(samples.len());
        let mut dummy_rng = rand::rngs::mock::StepRng::new(0, 1);
        for chunk in samples.chunks(self.batch_size) {
            let b = chunk.len();
            let mut xb = vec![0.0f32; b * t * d];
            for (row, s) in chunk.iter().enumerate() {
                for (step, &e) in s.events.iter().take(t).enumerate() {
                    xb[(row * t + step) * d..(row * t + step + 1) * d]
                        .copy_from_slice(&embeddings[e as usize]);
                }
            }
            let g = Graph::inference();
            let x = g.input(Tensor::new(xb, &[b, t, d]));
            let f = self.model.features(&g, x, &mut dummy_rng);
            let logits = self.model.anomaly_logits(&g, f);
            out.extend(
                g.value(logits)
                    .data()
                    .iter()
                    .map(|&l| 1.0 / (1.0 + (-l).exp())),
            );
        }
        out
    }

    /// Binary decisions at the paper's 0.5 threshold.
    pub fn detect(&self, samples: &[SeqSample], embeddings: &[Vec<f32>]) -> Vec<bool> {
        self.scores(samples, embeddings)
            .into_iter()
            .map(|p| p > THRESHOLD)
            .collect()
    }

    /// Scores `samples` and produces a report for each detection, wiring in
    /// the system's event interpretations.
    pub fn reports(&self, samples: &[SeqSample], prepared: &PreparedSystem) -> Vec<AnomalyReport> {
        let scores = self.scores(samples, &prepared.event_embeddings);
        samples
            .iter()
            .zip(scores)
            .filter(|(_, p)| *p > THRESHOLD)
            .map(|(s, p)| AnomalyReport {
                probability: p,
                interpretations: s
                    .events
                    .iter()
                    .map(|&e| prepared.event_texts[e as usize].clone())
                    .collect(),
                events: s.events.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use logsynergy_loggen::SystemId;
    use rand::SeedableRng;

    fn tiny_model() -> LogSynergyModel {
        let mut cfg = ModelConfig::scaled(2);
        cfg.embed_dim = 8;
        cfg.d_model = 8;
        cfg.heads = 2;
        cfg.ff = 16;
        cfg.layers = 1;
        cfg.head_hidden = 8;
        cfg.max_len = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        LogSynergyModel::new(cfg, &mut rng)
    }

    fn embeddings() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ]
    }

    #[test]
    fn scores_are_probabilities() {
        let model = tiny_model();
        let det = Detector::new(&model);
        let samples: Vec<SeqSample> = (0..10)
            .map(|i| SeqSample {
                events: vec![i % 2; 4],
                label: false,
            })
            .collect();
        let scores = det.scores(&samples, &embeddings());
        assert_eq!(scores.len(), 10);
        assert!(scores.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn detect_applies_half_threshold() {
        let model = tiny_model();
        let det = Detector::new(&model);
        let samples: Vec<SeqSample> = (0..6)
            .map(|_| SeqSample {
                events: vec![0; 4],
                label: false,
            })
            .collect();
        let scores = det.scores(&samples, &embeddings());
        let flags = det.detect(&samples, &embeddings());
        for (p, f) in scores.iter().zip(flags) {
            assert_eq!(f, *p > THRESHOLD);
        }
    }

    #[test]
    fn batching_does_not_change_scores() {
        let model = tiny_model();
        let samples: Vec<SeqSample> = (0..9)
            .map(|i| SeqSample {
                events: vec![i % 2, 0, 1, 0],
                label: false,
            })
            .collect();
        let a = Detector::new(&model)
            .with_batch_size(3)
            .scores(&samples, &embeddings());
        let b = Detector::new(&model)
            .with_batch_size(100)
            .scores(&samples, &embeddings());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn reports_carry_interpretations() {
        let model = tiny_model();
        let det = Detector::new(&model);
        let prepared = PreparedSystem {
            system: SystemId::SystemB,
            sequences: vec![],
            event_embeddings: embeddings(),
            event_texts: vec!["normal event".into(), "anomalous event".into()],
            templates: vec!["t0".into(), "t1".into()],
            review_stats: Default::default(),
        };
        let samples: Vec<SeqSample> = (0..20)
            .map(|i| SeqSample {
                events: vec![i % 2; 4],
                label: false,
            })
            .collect();
        let reports = det.reports(&samples, &prepared);
        for r in &reports {
            assert!(r.probability > THRESHOLD);
            assert_eq!(r.interpretations.len(), 4);
            assert!(r.interpretations[0].ends_with("event"));
        }
    }
}
