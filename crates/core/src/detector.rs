//! Online detection (paper §III-E): score sequences with the trained
//! `F` + `C_anomaly`, threshold at 0.5, and build anomaly reports that
//! combine the LEI interpretations with the score.

use std::sync::Arc;

use logsynergy_nn::graph::Graph;
use logsynergy_nn::kernels::arena;
use logsynergy_nn::Tensor;

use crate::data::{PreparedSystem, SeqSample};
use crate::model::LogSynergyModel;

/// The paper's fixed decision threshold (§III-E, §IV-A3).
pub const THRESHOLD: f32 = 0.5;

/// Scores one chunked sweep of `windows` through the model on `graph`,
/// resetting the tape between chunks so every forward re-traces into
/// recycled arena buffers. Shared by [`Detector`] (one-shot tape) and
/// [`InferenceSession`] (long-lived tape).
fn forward_scores(
    model: &LogSynergyModel,
    graph: &Graph,
    batch_size: usize,
    windows: &[&[u32]],
    embeddings: &[Vec<f32>],
    out: &mut Vec<f32>,
) {
    let cfg = model.config();
    let (t, d) = (cfg.max_len, cfg.embed_dim);
    let mut dummy_rng = rand::rngs::mock::StepRng::new(0, 1);
    for chunk in windows.chunks(batch_size) {
        graph.reset();
        let b = chunk.len();
        // Embedding-gather scratch comes from the kernel arena: after the
        // first call the buffer is recycled from the previous tape, so the
        // steady-state hot path performs no allocator round-trips.
        let mut xb = arena::take_zeroed(b * t * d);
        for (row, events) in chunk.iter().enumerate() {
            for (step, &e) in events.iter().take(t).enumerate() {
                xb[(row * t + step) * d..(row * t + step + 1) * d]
                    .copy_from_slice(&embeddings[e as usize]);
            }
        }
        let x = graph.input(Tensor::new(xb, &[b, t, d]));
        let f = model.features(graph, x, &mut dummy_rng);
        let logits = model.anomaly_logits(graph, f);
        graph.with_value(logits, |l| {
            out.extend(l.data().iter().map(|&v| 1.0 / (1.0 + (-v).exp())));
        });
    }
    graph.reset();
}

/// A reusable inference workflow over a shared trained model: one
/// long-lived inference tape plus arena-recycled scratch, so batched
/// serving calls stop paying per-call graph and buffer allocations.
///
/// Scores are a pure function of `(model, window, embeddings)` — bitwise
/// identical whatever the batch size or how calls are grouped (the PR 1
/// kernel determinism contract extends to the batch dimension because
/// every output element's reduction order is fixed per row).
pub struct InferenceSession {
    model: Arc<LogSynergyModel>,
    batch_size: usize,
    graph: Graph,
}

impl InferenceSession {
    /// Creates a session over a shared model with the default batch size.
    pub fn new(model: Arc<LogSynergyModel>) -> Self {
        InferenceSession {
            model,
            batch_size: 256,
            graph: Graph::inference(),
        }
    }

    /// Sets the maximum forward batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    /// The underlying model.
    pub fn model(&self) -> &LogSynergyModel {
        &self.model
    }

    /// A sibling session over the same shared model with a fresh tape
    /// (e.g. one per serving worker thread).
    pub fn fork(&self) -> Self {
        InferenceSession {
            model: Arc::clone(&self.model),
            batch_size: self.batch_size,
            graph: Graph::inference(),
        }
    }

    /// Anomaly probabilities for a batch of raw event-id windows.
    pub fn score_windows(&mut self, windows: &[&[u32]], embeddings: &[Vec<f32>]) -> Vec<f32> {
        let mut out = Vec::with_capacity(windows.len());
        forward_scores(
            &self.model,
            &self.graph,
            self.batch_size,
            windows,
            embeddings,
            &mut out,
        );
        out
    }

    /// Anomaly probability for a single window.
    pub fn score_one(&mut self, events: &[u32], embeddings: &[Vec<f32>]) -> f32 {
        let mut out = Vec::with_capacity(1);
        forward_scores(
            &self.model,
            &self.graph,
            self.batch_size,
            &[events],
            embeddings,
            &mut out,
        );
        out[0]
    }
}

/// An anomaly report, as emitted to operators in deployment (§VI-A
/// "Report"): the triggering sequence, its interpretations, and the score.
#[derive(Clone, Debug)]
pub struct AnomalyReport {
    /// Anomaly probability from `C_anomaly`.
    pub probability: f32,
    /// Event interpretations of the sequence, in order.
    pub interpretations: Vec<String>,
    /// Event template ids, in order.
    pub events: Vec<u32>,
}

/// Batch scorer over a trained model.
pub struct Detector<'a> {
    model: &'a LogSynergyModel,
    batch_size: usize,
}

impl<'a> Detector<'a> {
    /// Creates a detector with a default inference batch size.
    pub fn new(model: &'a LogSynergyModel) -> Self {
        Detector {
            model,
            batch_size: 256,
        }
    }

    /// Sets the inference batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    /// Anomaly probabilities for `samples` (embeddings looked up in the
    /// sample's own system's table).
    pub fn scores(&self, samples: &[SeqSample], embeddings: &[Vec<f32>]) -> Vec<f32> {
        let windows: Vec<&[u32]> = samples.iter().map(|s| s.events.as_slice()).collect();
        let graph = Graph::inference();
        let mut out = Vec::with_capacity(samples.len());
        forward_scores(
            self.model,
            &graph,
            self.batch_size,
            &windows,
            embeddings,
            &mut out,
        );
        out
    }

    /// Binary decisions at the paper's 0.5 threshold.
    pub fn detect(&self, samples: &[SeqSample], embeddings: &[Vec<f32>]) -> Vec<bool> {
        self.scores(samples, embeddings)
            .into_iter()
            .map(|p| p > THRESHOLD)
            .collect()
    }

    /// Scores `samples` and produces a report for each detection, wiring in
    /// the system's event interpretations.
    pub fn reports(&self, samples: &[SeqSample], prepared: &PreparedSystem) -> Vec<AnomalyReport> {
        let scores = self.scores(samples, &prepared.event_embeddings);
        samples
            .iter()
            .zip(scores)
            .filter(|(_, p)| *p > THRESHOLD)
            .map(|(s, p)| AnomalyReport {
                probability: p,
                interpretations: s
                    .events
                    .iter()
                    .map(|&e| prepared.event_texts[e as usize].clone())
                    .collect(),
                events: s.events.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use logsynergy_loggen::SystemId;
    use rand::SeedableRng;

    fn tiny_model() -> LogSynergyModel {
        let mut cfg = ModelConfig::scaled(2);
        cfg.embed_dim = 8;
        cfg.d_model = 8;
        cfg.heads = 2;
        cfg.ff = 16;
        cfg.layers = 1;
        cfg.head_hidden = 8;
        cfg.max_len = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        LogSynergyModel::new(cfg, &mut rng)
    }

    fn embeddings() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
        ]
    }

    #[test]
    fn scores_are_probabilities() {
        let model = tiny_model();
        let det = Detector::new(&model);
        let samples: Vec<SeqSample> = (0..10)
            .map(|i| SeqSample {
                events: vec![i % 2; 4],
                label: false,
            })
            .collect();
        let scores = det.scores(&samples, &embeddings());
        assert_eq!(scores.len(), 10);
        assert!(scores.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }

    #[test]
    fn detect_applies_half_threshold() {
        let model = tiny_model();
        let det = Detector::new(&model);
        let samples: Vec<SeqSample> = (0..6)
            .map(|_| SeqSample {
                events: vec![0; 4],
                label: false,
            })
            .collect();
        let scores = det.scores(&samples, &embeddings());
        let flags = det.detect(&samples, &embeddings());
        for (p, f) in scores.iter().zip(flags) {
            assert_eq!(f, *p > THRESHOLD);
        }
    }

    #[test]
    fn batching_does_not_change_scores() {
        let model = tiny_model();
        let samples: Vec<SeqSample> = (0..9)
            .map(|i| SeqSample {
                events: vec![i % 2, 0, 1, 0],
                label: false,
            })
            .collect();
        let a = Detector::new(&model)
            .with_batch_size(3)
            .scores(&samples, &embeddings());
        let b = Detector::new(&model)
            .with_batch_size(100)
            .scores(&samples, &embeddings());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn session_matches_detector_bitwise() {
        let model = Arc::new(tiny_model());
        let samples: Vec<SeqSample> = (0..13)
            .map(|i| SeqSample {
                events: vec![i % 2, (i + 1) % 2, 0, 1],
                label: false,
            })
            .collect();
        let via_detector = Detector::new(&model).scores(&samples, &embeddings());
        let windows: Vec<&[u32]> = samples.iter().map(|s| s.events.as_slice()).collect();

        let mut session = InferenceSession::new(Arc::clone(&model)).with_batch_size(4);
        let batched = session.score_windows(&windows, &embeddings());
        // Reusing the same session (tape already traced once) must not
        // perturb anything either.
        let again = session.score_windows(&windows, &embeddings());
        let one_by_one: Vec<f32> = windows
            .iter()
            .map(|w| session.score_one(w, &embeddings()))
            .collect();

        for (i, &expect) in via_detector.iter().enumerate() {
            assert_eq!(expect.to_bits(), batched[i].to_bits(), "window {i} batched");
            assert_eq!(expect.to_bits(), again[i].to_bits(), "window {i} reused");
            assert_eq!(
                expect.to_bits(),
                one_by_one[i].to_bits(),
                "window {i} single"
            );
        }
    }

    #[test]
    fn reports_carry_interpretations() {
        let model = tiny_model();
        let det = Detector::new(&model);
        let prepared = PreparedSystem {
            system: SystemId::SystemB,
            sequences: vec![],
            event_embeddings: embeddings(),
            event_texts: vec!["normal event".into(), "anomalous event".into()],
            templates: vec!["t0".into(), "t1".into()],
            review_stats: Default::default(),
        };
        let samples: Vec<SeqSample> = (0..20)
            .map(|i| SeqSample {
                events: vec![i % 2; 4],
                label: false,
            })
            .collect();
        let reports = det.reports(&samples, &prepared);
        for r in &reports {
            assert!(r.probability > THRESHOLD);
            assert_eq!(r.interpretations.len(), 4);
            assert!(r.interpretations[0].ends_with("event"));
        }
    }
}
