//! Int8 quantized scoring (`quant` feature): the serving forward of
//! [`crate::infer::InferencePlan`] with every weight GEMM replaced by a
//! calibrated symmetric-int8 `i8×i8 → i32` kernel
//! ([`logsynergy_nn::kernels::qgemm`]).
//!
//! Quantization scheme:
//! - **Weights**: per-output-channel symmetric scales
//!   (`scale_j = absmax(column j) / 127`), stored transposed `[out, in]`
//!   so each channel's weights are one contiguous dot product.
//! - **Activations**: per-tensor symmetric scales fixed by a calibration
//!   run ([`crate::infer::InferencePlan::calibrate`]) over representative
//!   windows — no runtime range tracking on the hot path.
//! - **Accumulation**: exact `i32`; dequantization multiplies by the
//!   precomputed `activation_scale · weight_scale_j` and adds the f32
//!   bias. Everything between GEMMs — layer norm, softmax, the attention
//!   score/value products, GELU, residuals, pooling — stays f32, so the
//!   only approximation is the int8 rounding of GEMM operands.
//!
//! The f32 path remains the serving default; this path is opt-in
//! (`--quant`) and is gated by an accuracy test: verdict agreement with
//! f32 ≥ 99.5% and |ΔF1| ≤ 0.005 on held-out eval corpora.

use logsynergy_nn::infer as nni;
use logsynergy_nn::infer_fast as nnf;
use logsynergy_nn::kernels::qgemm;
use logsynergy_nn::layers::Activation;

use crate::infer::{Calibration, InferencePlan};
use crate::model::LogSynergyModel;

/// One quantized linear layer: transposed int8 weights (packed for the
/// serving kernel), per-channel dequantization scales, calibrated
/// activation scale, f32 bias.
struct QLinear {
    /// `[out, in]` int8 weights in the kernel's packed layout.
    wq: qgemm::PackedWeights,
    /// `deq[j] = activation_scale · weight_scale_j`.
    deq: Vec<f32>,
    bias: Option<Vec<f32>>,
    /// Per-tensor activation scale (`calibrated absmax / 127`).
    a_scale: f32,
    in_dim: usize,
    out_dim: usize,
}

impl QLinear {
    /// Quantizes a `[in, out]` f32 weight matrix against a calibrated
    /// activation `absmax`.
    fn quantize(
        w: &[f32],
        bias: Option<&[f32]>,
        in_dim: usize,
        out_dim: usize,
        act_absmax: f32,
    ) -> Self {
        assert_eq!(w.len(), in_dim * out_dim);
        let a_scale = qgemm::scale_for(act_absmax);
        let mut wq = vec![0i8; out_dim * in_dim];
        let mut deq = vec![0f32; out_dim];
        let mut col = vec![0f32; in_dim];
        for j in 0..out_dim {
            for i in 0..in_dim {
                col[i] = w[i * out_dim + j];
            }
            let ws = qgemm::scale_for(qgemm::absmax(&col));
            qgemm::quantize(&col, ws, &mut wq[j * in_dim..(j + 1) * in_dim]);
            deq[j] = a_scale * ws;
        }
        QLinear {
            wq: qgemm::PackedWeights::pack(wq, in_dim, out_dim),
            deq,
            bias: bias.map(|b| b.to_vec()),
            a_scale,
            in_dim,
            out_dim,
        }
    }

    /// `out[m, out_dim] = deq(int8_gemm(quant(x), wqᵀ)) + bias`.
    fn forward(&self, x: &[f32], m: usize, out: &mut [f32], qa: &mut [i16], acc: &mut [i32]) {
        let (k, n) = (self.in_dim, self.out_dim);
        let kp = self.wq.kp();
        let qa = &mut qa[..m * kp];
        let acc = &mut acc[..m * n];
        qgemm::quantize_rows_i16(&x[..m * k], self.a_scale, qa, k, kp);
        qgemm::qgemm_nt_packed(qa, &self.wq, acc, m);
        qgemm::dequant_bias_rows(acc, &self.deq, self.bias.as_deref(), &mut out[..m * n]);
    }

    /// `out[m, out_dim] += deq(int8_gemm(quant(x), wqᵀ)) + bias` — the
    /// residual-fused variant for the attention-output and FFN-output
    /// projections, which saves a separate read-modify-write add pass.
    fn forward_add(&self, x: &[f32], m: usize, out: &mut [f32], qa: &mut [i16], acc: &mut [i32]) {
        let (k, n) = (self.in_dim, self.out_dim);
        let kp = self.wq.kp();
        let qa = &mut qa[..m * kp];
        let acc = &mut acc[..m * n];
        qgemm::quantize_rows_i16(&x[..m * k], self.a_scale, qa, k, kp);
        qgemm::qgemm_nt_packed(qa, &self.wq, acc, m);
        qgemm::dequant_bias_add_rows(acc, &self.deq, self.bias.as_deref(), &mut out[..m * n]);
    }
}

/// Quantized encoder block: int8 GEMMs, f32 everything else.
struct QLayer {
    ln1_gamma: Vec<f32>,
    ln1_beta: Vec<f32>,
    ln1_eps: f32,
    qkv: QLinear,
    wo: QLinear,
    ln2_gamma: Vec<f32>,
    ln2_beta: Vec<f32>,
    ln2_eps: f32,
    ff1: QLinear,
    ff2: QLinear,
}

/// The frozen serving model with calibrated int8 weight GEMMs.
///
/// `score_windows` takes `&self` — quantized scoring is stateless per
/// call (scratch is allocated per invocation), so one instance can be
/// shared across serving workers without locking.
pub struct QuantizedModel {
    t: usize,
    embed: usize,
    d: usize,
    heads: usize,
    head_dim: usize,
    ff: usize,
    half: usize,
    batch_size: usize,
    input: QLinear,
    pos: Vec<f32>,
    layers: Vec<QLayer>,
    ln_out_gamma: Vec<f32>,
    ln_out_beta: Vec<f32>,
    ln_out_eps: f32,
    head: Vec<QLinear>,
    head_act: Activation,
}

/// Forward scratch: the f32 buffers of the fused plan plus the int8/i32
/// GEMM operands.
struct QScratch {
    x: Vec<f32>,
    h: Vec<f32>,
    n: Vec<f32>,
    qkv: Vec<f32>,
    concat: Vec<f32>,
    hidden: Vec<f32>,
    attn: nni::AttnScratch,
    pooled: Vec<f32>,
    feat: Vec<f32>,
    head: Vec<f32>,
    qa: Vec<i16>,
    acc: Vec<i32>,
}

impl QuantizedModel {
    /// Quantizes a fused plan against the activation ranges in `calib`.
    pub fn from_plan(plan: &InferencePlan, calib: &Calibration) -> Self {
        // Pin the int8-kernel marker string into any binary that links this
        // path: scripts/ci.sh greps the default build for its absence.
        std::hint::black_box(qgemm::QGEMM_MARKER);
        assert_eq!(
            calib.layers.len(),
            plan.layers.len(),
            "calibration does not match plan depth"
        );
        let d = plan.d;
        let input = QLinear::quantize(
            &plan.input_w,
            plan.input_b.as_deref(),
            plan.embed,
            d,
            calib.input,
        );
        let layers = plan
            .layers
            .iter()
            .zip(&calib.layers)
            .map(|(l, c)| QLayer {
                ln1_gamma: l.ln1_gamma.clone(),
                ln1_beta: l.ln1_beta.clone(),
                ln1_eps: l.ln1_eps,
                qkv: QLinear::quantize(&l.wqkv, Some(&l.bqkv), d, 3 * d, c.qkv_in),
                wo: QLinear::quantize(&l.wo, l.bo.as_deref(), d, d, c.wo_in),
                ln2_gamma: l.ln2_gamma.clone(),
                ln2_beta: l.ln2_beta.clone(),
                ln2_eps: l.ln2_eps,
                ff1: QLinear::quantize(&l.ff1_w, l.ff1_b.as_deref(), d, plan.ff, c.ff1_in),
                ff2: QLinear::quantize(&l.ff2_w, l.ff2_b.as_deref(), plan.ff, d, c.ff2_in),
            })
            .collect();
        let head = plan
            .head
            .iter()
            .enumerate()
            .map(|(hi, hl)| {
                let act_absmax = if hi == 0 {
                    calib.unified
                } else {
                    calib.head_hidden[hi - 1]
                };
                QLinear::quantize(&hl.w, hl.b.as_deref(), hl.in_dim, hl.out_dim, act_absmax)
            })
            .collect();
        QuantizedModel {
            t: plan.t,
            embed: plan.embed,
            d,
            heads: plan.heads,
            head_dim: plan.head_dim,
            ff: plan.ff,
            half: plan.half,
            batch_size: plan.batch_size.min(Self::DEFAULT_CHUNK),
            input,
            pos: plan.pos.clone(),
            layers,
            ln_out_gamma: plan.ln_out_gamma.clone(),
            ln_out_beta: plan.ln_out_beta.clone(),
            ln_out_eps: plan.ln_out_eps,
            head,
            head_act: plan.head_act,
        }
    }

    /// Cache-tuned default micro-batch for the int8 forward. Unlike the
    /// f32 plan, each quantized GEMM streams an extra i16 operand and an
    /// i32 accumulator block alongside the f32 activations; at the f32
    /// path's default chunk (32 windows) that working set falls out of L2
    /// and the forward goes memory-bound (~10% slower end to end, worse
    /// beyond). 16 windows per chunk keeps it resident; scores are
    /// batch-size-invariant bit for bit either way (tested), so this is
    /// purely a throughput knob — `with_batch_size` still overrides.
    const DEFAULT_CHUNK: usize = 16;

    /// Convenience: plan + calibrate + quantize in one step.
    pub fn from_model(
        model: &LogSynergyModel,
        calib_windows: &[&[u32]],
        embeddings: &[Vec<f32>],
    ) -> Self {
        let plan = InferencePlan::from_model(model);
        let calib = plan.calibrate(calib_windows, embeddings);
        QuantizedModel::from_plan(&plan, &calib)
    }

    /// Sets the maximum forward batch size.
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    fn scratch(&self) -> QScratch {
        let rows = self.batch_size * self.t;
        let head_max = self
            .head
            .iter()
            .map(|h| h.in_dim.max(h.out_dim))
            .max()
            .unwrap_or(1)
            .max(self.d);
        // qa rows are padded to the kernel's 32-wide stride; acc holds the
        // widest i32 output block.
        let max_dim = self.embed.max(3 * self.d).max(self.ff).max(head_max);
        let gemm_in = rows * max_dim.next_multiple_of(32);
        QScratch {
            x: vec![0.0; rows * self.embed],
            h: vec![0.0; rows * self.d],
            n: vec![0.0; rows * self.d],
            qkv: vec![0.0; rows * 3 * self.d],
            concat: vec![0.0; rows * self.d],
            hidden: vec![0.0; rows * self.ff],
            attn: nni::AttnScratch::new(self.t, self.head_dim),
            pooled: vec![0.0; self.batch_size * self.d],
            feat: vec![0.0; self.batch_size * head_max],
            head: vec![0.0; self.batch_size * head_max],
            qa: vec![0; gemm_in],
            acc: vec![0; gemm_in],
        }
    }

    /// Anomaly probabilities for a batch of raw event-id windows — the
    /// int8 counterpart of [`InferencePlan::score_windows`].
    pub fn score_windows(&self, windows: &[&[u32]], embeddings: &[Vec<f32>]) -> Vec<f32> {
        let mut out = Vec::with_capacity(windows.len());
        let mut s = self.scratch();
        for chunk in windows.chunks(self.batch_size) {
            self.forward_chunk(&mut s, chunk, embeddings, &mut out);
        }
        out
    }

    /// Anomaly probability for a single window.
    pub fn score_one(&self, events: &[u32], embeddings: &[Vec<f32>]) -> f32 {
        self.score_windows(&[events], embeddings)[0]
    }

    fn forward_chunk(
        &self,
        s: &mut QScratch,
        chunk: &[&[u32]],
        embeddings: &[Vec<f32>],
        out: &mut Vec<f32>,
    ) {
        let (b, t, d, embed) = (chunk.len(), self.t, self.d, self.embed);
        let rows = b * t;
        let x = &mut s.x[..rows * embed];
        x.fill(0.0);
        for (row, events) in chunk.iter().enumerate() {
            for (step, &e) in events.iter().take(t).enumerate() {
                x[(row * t + step) * embed..(row * t + step + 1) * embed]
                    .copy_from_slice(&embeddings[e as usize]);
            }
        }

        let h = &mut s.h[..rows * d];
        self.input.forward(x, rows, h, &mut s.qa, &mut s.acc);
        nni::add_pos_inplace(h, &self.pos, b, t, d);

        for layer in &self.layers {
            let n = &mut s.n[..rows * d];
            nnf::layer_norm_into(h, &layer.ln1_gamma, &layer.ln1_beta, layer.ln1_eps, n);
            let qkv = &mut s.qkv[..rows * 3 * d];
            layer.qkv.forward(n, rows, qkv, &mut s.qa, &mut s.acc);
            let concat = &mut s.concat[..rows * d];
            let scale = 1.0 / (self.head_dim as f32).sqrt();
            nnf::attention_sweep_packed(
                qkv,
                b,
                t,
                self.heads,
                self.head_dim,
                scale,
                concat,
                &mut s.attn,
            );
            layer.wo.forward_add(concat, rows, h, &mut s.qa, &mut s.acc);

            nnf::layer_norm_into(h, &layer.ln2_gamma, &layer.ln2_beta, layer.ln2_eps, n);
            let hidden = &mut s.hidden[..rows * self.ff];
            layer.ff1.forward(n, rows, hidden, &mut s.qa, &mut s.acc);
            nnf::gelu_inplace(hidden);
            layer
                .ff2
                .forward_add(hidden, rows, h, &mut s.qa, &mut s.acc);
        }

        let n = &mut s.n[..rows * d];
        nnf::layer_norm_into(h, &self.ln_out_gamma, &self.ln_out_beta, self.ln_out_eps, n);
        let pooled = &mut s.pooled[..b * d];
        nni::mean_pool_into(n, b, t, d, pooled);
        let feat = &mut s.feat[..b * self.half];
        for r in 0..b {
            feat[r * self.half..(r + 1) * self.half]
                .copy_from_slice(&pooled[r * d..r * d + self.half]);
        }

        let n_head = self.head.len();
        for (hi, hl) in self.head.iter().enumerate() {
            let dst = &mut s.head[..b * hl.out_dim];
            hl.forward(&s.feat[..b * hl.in_dim], b, dst, &mut s.qa, &mut s.acc);
            if hi + 1 < n_head {
                match self.head_act {
                    Activation::Relu => nni::relu_inplace(dst),
                    Activation::Gelu => nnf::gelu_inplace(dst),
                    Activation::Tanh => {
                        for o in dst.iter_mut() {
                            *o = o.tanh();
                        }
                    }
                }
            }
            s.feat[..b * hl.out_dim].copy_from_slice(dst);
        }
        out.extend(s.feat[..b].iter().map(|&v| 1.0 / (1.0 + (-v).exp())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;

    use rand::SeedableRng;

    fn tiny_model() -> LogSynergyModel {
        let mut cfg = ModelConfig::scaled(2);
        cfg.embed_dim = 8;
        cfg.d_model = 8;
        cfg.heads = 2;
        cfg.ff = 16;
        cfg.layers = 2;
        cfg.head_hidden = 8;
        cfg.max_len = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        LogSynergyModel::new(cfg, &mut rng)
    }

    fn embeddings() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.3, -0.4, 0.5, 0.0, 0.2, 0.0, -0.1, 0.0],
        ]
    }

    #[test]
    fn quantized_scores_track_f32_closely() {
        let model = tiny_model();
        let windows_owned: Vec<Vec<u32>> = (0..32)
            .map(|i| vec![i % 3, (i + 1) % 3, i % 2, 2])
            .collect();
        let windows: Vec<&[u32]> = windows_owned.iter().map(|w| w.as_slice()).collect();
        let plan = InferencePlan::from_model(&model);
        let f32_scores = plan.score_windows(&windows, &embeddings());
        let q = QuantizedModel::from_model(&model, &windows, &embeddings());
        let q_scores = q.score_windows(&windows, &embeddings());
        for (i, (a, b)) in f32_scores.iter().zip(&q_scores).enumerate() {
            assert!(
                (a - b).abs() < 0.05,
                "window {i}: f32 {a} vs int8 {b} drifted"
            );
        }
    }

    #[test]
    fn quantized_scores_are_deterministic() {
        let model = tiny_model();
        let windows_owned: Vec<Vec<u32>> = (0..9).map(|i| vec![i % 3, 0, 1, 2]).collect();
        let windows: Vec<&[u32]> = windows_owned.iter().map(|w| w.as_slice()).collect();
        let q = QuantizedModel::from_model(&model, &windows, &embeddings());
        let a = q.score_windows(&windows, &embeddings());
        let b = q.with_batch_size(2).score_windows(&windows, &embeddings());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "int8 scoring must not depend on batch size"
            );
        }
    }
}
