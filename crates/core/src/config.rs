//! Configuration for the LogSynergy model and trainer.

use serde::{Deserialize, Serialize};

/// Network architecture configuration (paper §IV-A4).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Event-embedding dimension fed into the model.
    pub embed_dim: usize,
    /// Transformer model width (must be even: it splits into
    /// system-unified and system-specific halves of `d_model / 2` each,
    /// matching the paper's equal-dimension constraint in §III-D2).
    pub d_model: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward width inside encoder blocks.
    pub ff: usize,
    /// Encoder layers.
    pub layers: usize,
    /// Maximum sequence (window) length.
    pub max_len: usize,
    /// Dropout probability during training.
    pub dropout: f32,
    /// Hidden width of the classifier/CLUB/domain MLPs.
    pub head_hidden: usize,
    /// Number of systems participating in training (source + target), i.e.
    /// `K` of the system-classification loss Eq. (1).
    pub num_systems: usize,
}

impl ModelConfig {
    /// The paper's configuration (§IV-A4): 6 encoder layers, 12 heads,
    /// FFN 2048, 768-dim embeddings. Heavy on CPU — used for documentation
    /// and scale benches, not the default experiments.
    pub fn paper(num_systems: usize) -> Self {
        ModelConfig {
            embed_dim: 768,
            d_model: 768,
            heads: 12,
            ff: 2048,
            layers: 6,
            max_len: 10,
            dropout: 0.1,
            head_hidden: 256,
            num_systems,
        }
    }

    /// CPU-scale configuration used by the default experiments; preserves
    /// every architectural element at reduced width.
    pub fn scaled(num_systems: usize) -> Self {
        ModelConfig {
            embed_dim: 64,
            d_model: 64,
            heads: 4,
            ff: 128,
            layers: 2,
            max_len: 10,
            dropout: 0.1,
            head_hidden: 64,
            num_systems,
        }
    }

    /// Width of each disentangled feature half.
    pub fn half_dim(&self) -> usize {
        self.d_model / 2
    }

    /// Panics if the configuration is internally inconsistent.
    pub fn validate(&self) {
        assert!(
            self.d_model.is_multiple_of(2),
            "d_model must be even to split F_u/F_s"
        );
        assert!(
            self.d_model.is_multiple_of(self.heads),
            "heads must divide d_model"
        );
        assert!(
            self.num_systems >= 2,
            "need at least one source and one target system"
        );
        assert!(self.max_len > 0 && self.embed_dim > 0);
    }
}

/// Training configuration (paper §IV-A4 defaults, scaled variant for CPU).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainConfig {
    /// AdamW learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Weight of the mutual-information loss, λ_MI of Eq. (5).
    pub lambda_mi: f32,
    /// Weight of the domain-adaptation loss, λ_DA of Eq. (5).
    pub lambda_da: f32,
    /// GRL strength (adversarial reversal factor).
    pub grl_lambda: f32,
    /// Global gradient-norm clip (0 disables).
    pub grad_clip: f32,
    /// Sequences per *source* system (n_s).
    pub n_source: usize,
    /// Sequences from the target system (n_t).
    pub n_target: usize,
    /// RNG seed for shuffling/dropout/init.
    pub seed: u64,
}

impl TrainConfig {
    /// Paper values: lr 1e-4, 10 epochs, batch 1024, λ = 0.01,
    /// n_s = 50 000, n_t = 5 000.
    pub fn paper() -> Self {
        TrainConfig {
            lr: 1e-4,
            epochs: 10,
            batch_size: 1024,
            lambda_mi: 0.01,
            lambda_da: 0.01,
            grl_lambda: 1.0,
            grad_clip: 5.0,
            n_source: 50_000,
            n_target: 5_000,
            seed: 0x5EED,
        }
    }

    /// CPU-scale defaults keeping the paper's ratios (n_s : n_t = 10 : 1).
    pub fn scaled() -> Self {
        TrainConfig {
            lr: 1e-3,
            epochs: 6,
            batch_size: 128,
            lambda_mi: 0.01,
            lambda_da: 0.01,
            grl_lambda: 1.0,
            grad_clip: 5.0,
            n_source: 2_000,
            n_target: 200,
            seed: 0x5EED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_section_4a4() {
        let m = ModelConfig::paper(3);
        assert_eq!(m.layers, 6);
        assert_eq!(m.heads, 12);
        assert_eq!(m.ff, 2048);
        let t = TrainConfig::paper();
        assert_eq!(t.epochs, 10);
        assert_eq!(t.batch_size, 1024);
        assert!((t.lr - 1e-4).abs() < 1e-9);
        assert!((t.lambda_mi - 0.01).abs() < 1e-9);
        assert!((t.lambda_da - 0.01).abs() < 1e-9);
        assert_eq!(t.n_source, 50_000);
        assert_eq!(t.n_target, 5_000);
    }

    #[test]
    fn scaled_keeps_source_target_ratio() {
        let t = TrainConfig::scaled();
        assert_eq!(t.n_source / t.n_target, 10);
    }

    #[test]
    fn validate_rejects_odd_d_model() {
        let mut m = ModelConfig::scaled(3);
        m.d_model = 65;
        let r = std::panic::catch_unwind(move || m.validate());
        assert!(r.is_err());
    }

    #[test]
    fn half_dim_splits_evenly() {
        let m = ModelConfig::scaled(3);
        assert_eq!(m.half_dim() * 2, m.d_model);
    }

    #[test]
    fn configs_serialize_roundtrip() {
        let m = ModelConfig::scaled(4);
        let s = serde_json::to_string(&m).unwrap();
        let back: ModelConfig = serde_json::from_str(&s).unwrap();
        assert_eq!(back.d_model, m.d_model);
    }
}
