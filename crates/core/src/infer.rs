//! Fused, graph-free inference for the frozen serving model (`F` +
//! `C_anomaly`): the tape-based [`crate::detector::InferenceSession`]
//! re-traces the autograd graph every chunk; this plan runs the same math
//! straight through reused scratch buffers with the transformer hot path
//! fused — QKV as one `[d, 3d]` GEMM, attention per `(batch, head)`
//! against a single `[T, T]` score scratch, and the GELU fast path applied
//! in place inside the MLP sweep.
//!
//! **Bitwise contract:** scores are bit-identical to
//! `InferenceSession::score_windows` / `Detector::scores` for every window
//! and batch size. Every step reuses the exact tape kernels (see
//! [`logsynergy_nn::infer`]); the test suite pins this end-to-end on a
//! trained model.
//!
//! The plan also drives **calibration** for the int8 path (`quant`
//! feature): [`InferencePlan::calibrate`] runs the f32 forward over a
//! corpus and records the absolute maximum seen at every GEMM input,
//! which fixes the per-tensor activation scales of the quantized model.

use logsynergy_nn::infer as nni;
use logsynergy_nn::layers::{Activation, Linear};

use crate::model::LogSynergyModel;

/// Copied frozen weights for one encoder block, QKV pre-concatenated.
pub(crate) struct LayerPlan {
    pub(crate) ln1_gamma: Vec<f32>,
    pub(crate) ln1_beta: Vec<f32>,
    pub(crate) ln1_eps: f32,
    /// `[d, 3d]`: columns are `Wq | Wk | Wv` (bit-neutral vs three GEMMs —
    /// each GEMM output element depends only on its A-row and B-column).
    pub(crate) wqkv: Vec<f32>,
    pub(crate) bqkv: Vec<f32>,
    pub(crate) wo: Vec<f32>,
    pub(crate) bo: Option<Vec<f32>>,
    pub(crate) ln2_gamma: Vec<f32>,
    pub(crate) ln2_beta: Vec<f32>,
    pub(crate) ln2_eps: f32,
    pub(crate) ff1_w: Vec<f32>,
    pub(crate) ff1_b: Option<Vec<f32>>,
    pub(crate) ff2_w: Vec<f32>,
    pub(crate) ff2_b: Option<Vec<f32>>,
}

/// One classifier-head linear layer.
pub(crate) struct HeadLayer {
    pub(crate) w: Vec<f32>,
    pub(crate) b: Option<Vec<f32>>,
    pub(crate) in_dim: usize,
    pub(crate) out_dim: usize,
}

/// Absolute maxima observed at every GEMM input during a calibration run —
/// the per-tensor activation ranges the int8 path quantizes against.
#[derive(Clone, Debug, Default)]
pub struct Calibration {
    /// Gathered embedding input to the input projection.
    pub input: f32,
    /// Per encoder block, in order.
    pub layers: Vec<LayerCalibration>,
    /// Unified feature half entering the first head layer.
    pub unified: f32,
    /// Hidden head activations (post-ReLU), one per inner head layer.
    pub head_hidden: Vec<f32>,
}

/// Per-block GEMM-input maxima.
#[derive(Clone, Copy, Debug, Default)]
pub struct LayerCalibration {
    /// `ln1` output (input to the fused QKV projection).
    pub qkv_in: f32,
    /// Attention head concat (input to the output projection).
    pub wo_in: f32,
    /// `ln2` output (input to the feed-forward expansion).
    pub ff1_in: f32,
    /// GELU output (input to the feed-forward contraction).
    pub ff2_in: f32,
}

fn absmax_update(slot: &mut f32, xs: &[f32]) {
    for &x in xs {
        let a = x.abs();
        if a > *slot {
            *slot = a;
        }
    }
}

/// Reused forward scratch, sized once for the plan's batch size.
struct Scratch {
    x: Vec<f32>,
    h: Vec<f32>,
    n: Vec<f32>,
    qkv: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    concat: Vec<f32>,
    a: Vec<f32>,
    hidden: Vec<f32>,
    attn: nni::AttnScratch,
    pooled: Vec<f32>,
    feat: Vec<f32>,
    head: Vec<f32>,
}

impl Scratch {
    #[allow(clippy::too_many_arguments)]
    fn new(
        bs: usize,
        t: usize,
        embed: usize,
        d: usize,
        head_dim: usize,
        ff: usize,
        head_max: usize,
    ) -> Self {
        let rows = bs * t;
        Scratch {
            x: vec![0.0; rows * embed],
            h: vec![0.0; rows * d],
            n: vec![0.0; rows * d],
            qkv: vec![0.0; rows * 3 * d],
            q: vec![0.0; rows * d],
            k: vec![0.0; rows * d],
            v: vec![0.0; rows * d],
            concat: vec![0.0; rows * d],
            a: vec![0.0; rows * d],
            hidden: vec![0.0; rows * ff],
            attn: nni::AttnScratch::new(t, head_dim),
            pooled: vec![0.0; bs * d],
            feat: vec![0.0; bs * head_max],
            head: vec![0.0; bs * head_max],
        }
    }
}

/// A frozen, fused inference plan over copied model weights.
///
/// Build once per worker with [`InferencePlan::from_model`], then call
/// [`InferencePlan::score_windows`] — same signature and bit-identical
/// output as the tape session, several times faster.
pub struct InferencePlan {
    pub(crate) t: usize,
    pub(crate) embed: usize,
    pub(crate) d: usize,
    pub(crate) heads: usize,
    pub(crate) head_dim: usize,
    pub(crate) ff: usize,
    pub(crate) half: usize,
    pub(crate) batch_size: usize,
    pub(crate) input_w: Vec<f32>,
    pub(crate) input_b: Option<Vec<f32>>,
    pub(crate) pos: Vec<f32>,
    pub(crate) layers: Vec<LayerPlan>,
    pub(crate) ln_out_gamma: Vec<f32>,
    pub(crate) ln_out_beta: Vec<f32>,
    pub(crate) ln_out_eps: f32,
    pub(crate) head: Vec<HeadLayer>,
    pub(crate) head_act: Activation,
}

fn copy_linear(model: &LogSynergyModel, lin: &Linear) -> (Vec<f32>, Option<Vec<f32>>) {
    let w = model.store.value(lin.w_id()).data().to_vec();
    let b = lin.b_id().map(|id| model.store.value(id).data().to_vec());
    (w, b)
}

impl InferencePlan {
    /// Copies the frozen serving weights (`input_proj`, encoder,
    /// `C_anomaly`) out of `model` into fused layout.
    pub fn from_model(model: &LogSynergyModel) -> Self {
        let cfg = model.config();
        let d = cfg.d_model;
        let enc = model.encoder();
        let (input_w, input_b) = copy_linear(model, model.input_proj());
        let pos = model.store.value(enc.pos_id()).data().to_vec();
        let layers = enc
            .layer_stack()
            .iter()
            .map(|layer| {
                let (wq, bq) = copy_linear(model, layer.attn().wq());
                let (wk, bk) = copy_linear(model, layer.attn().wk());
                let (wv, bv) = copy_linear(model, layer.attn().wv());
                // Interleave columns: row r of wqkv = wq[r] | wk[r] | wv[r].
                let mut wqkv = vec![0.0f32; d * 3 * d];
                for r in 0..d {
                    wqkv[r * 3 * d..r * 3 * d + d].copy_from_slice(&wq[r * d..(r + 1) * d]);
                    wqkv[r * 3 * d + d..r * 3 * d + 2 * d].copy_from_slice(&wk[r * d..(r + 1) * d]);
                    wqkv[r * 3 * d + 2 * d..(r + 1) * 3 * d]
                        .copy_from_slice(&wv[r * d..(r + 1) * d]);
                }
                let mut bqkv = vec![0.0f32; 3 * d];
                for (s, b) in [&bq, &bk, &bv].into_iter().enumerate() {
                    if let Some(b) = b {
                        bqkv[s * d..(s + 1) * d].copy_from_slice(b);
                    }
                }
                let (wo, bo) = copy_linear(model, layer.attn().wo());
                let (ff1_w, ff1_b) = copy_linear(model, layer.ff1());
                let (ff2_w, ff2_b) = copy_linear(model, layer.ff2());
                LayerPlan {
                    ln1_gamma: model.store.value(layer.ln1().gamma_id()).data().to_vec(),
                    ln1_beta: model.store.value(layer.ln1().beta_id()).data().to_vec(),
                    ln1_eps: layer.ln1().eps(),
                    wqkv,
                    bqkv,
                    wo,
                    bo,
                    ln2_gamma: model.store.value(layer.ln2().gamma_id()).data().to_vec(),
                    ln2_beta: model.store.value(layer.ln2().beta_id()).data().to_vec(),
                    ln2_eps: layer.ln2().eps(),
                    ff1_w,
                    ff1_b,
                    ff2_w,
                    ff2_b,
                }
            })
            .collect();
        let head = model
            .c_anomaly()
            .layers()
            .iter()
            .map(|lin| {
                let (w, b) = copy_linear(model, lin);
                HeadLayer {
                    w,
                    b,
                    in_dim: lin.in_dim(),
                    out_dim: lin.out_dim(),
                }
            })
            .collect();
        InferencePlan {
            t: cfg.max_len,
            embed: cfg.embed_dim,
            d,
            heads: cfg.heads,
            head_dim: d / cfg.heads,
            ff: cfg.ff,
            half: cfg.half_dim(),
            batch_size: 256,
            input_w,
            input_b,
            pos,
            layers,
            ln_out_gamma: model.store.value(enc.ln_out().gamma_id()).data().to_vec(),
            ln_out_beta: model.store.value(enc.ln_out().beta_id()).data().to_vec(),
            ln_out_eps: enc.ln_out().eps(),
            head,
            head_act: model.c_anomaly().activation(),
        }
    }

    /// Sets the maximum forward batch size (default 256, matching the tape
    /// session).
    pub fn with_batch_size(mut self, batch_size: usize) -> Self {
        assert!(batch_size > 0);
        self.batch_size = batch_size;
        self
    }

    fn scratch(&self) -> Scratch {
        let head_max = self
            .head
            .iter()
            .map(|h| h.in_dim.max(h.out_dim))
            .max()
            .unwrap_or(1)
            .max(self.d);
        Scratch::new(
            self.batch_size,
            self.t,
            self.embed,
            self.d,
            self.head_dim,
            self.ff,
            head_max,
        )
    }

    /// Anomaly probabilities for a batch of raw event-id windows — the
    /// fused equivalent of `InferenceSession::score_windows`.
    pub fn score_windows(&self, windows: &[&[u32]], embeddings: &[Vec<f32>]) -> Vec<f32> {
        let mut out = Vec::with_capacity(windows.len());
        let mut scratch = self.scratch();
        for chunk in windows.chunks(self.batch_size) {
            self.forward_chunk(&mut scratch, chunk, embeddings, &mut out, None);
        }
        out
    }

    /// Anomaly probability for a single window.
    pub fn score_one(&self, events: &[u32], embeddings: &[Vec<f32>]) -> f32 {
        self.score_windows(&[events], embeddings)[0]
    }

    /// Runs the f32 forward over `windows` and records the absolute
    /// maximum at every GEMM input — the activation ranges the int8 path
    /// calibrates its per-tensor scales against.
    pub fn calibrate(&self, windows: &[&[u32]], embeddings: &[Vec<f32>]) -> Calibration {
        let mut calib = Calibration {
            layers: vec![LayerCalibration::default(); self.layers.len()],
            head_hidden: vec![0.0; self.head.len().saturating_sub(1)],
            ..Default::default()
        };
        let mut out = Vec::with_capacity(windows.len());
        let mut scratch = self.scratch();
        for chunk in windows.chunks(self.batch_size) {
            self.forward_chunk(&mut scratch, chunk, embeddings, &mut out, Some(&mut calib));
        }
        calib
    }

    /// One fused forward over up to `batch_size` windows, appending
    /// sigmoid probabilities to `out`. Mirrors the tape's `forward_scores`
    /// chunk body step for step.
    fn forward_chunk(
        &self,
        s: &mut Scratch,
        chunk: &[&[u32]],
        embeddings: &[Vec<f32>],
        out: &mut Vec<f32>,
        mut calib: Option<&mut Calibration>,
    ) {
        let (b, t, d, embed) = (chunk.len(), self.t, self.d, self.embed);
        let rows = b * t;
        // Gather [b*t, embed], zero-padded beyond each window's length.
        let x = &mut s.x[..rows * embed];
        x.fill(0.0);
        for (row, events) in chunk.iter().enumerate() {
            for (step, &e) in events.iter().take(t).enumerate() {
                x[(row * t + step) * embed..(row * t + step + 1) * embed]
                    .copy_from_slice(&embeddings[e as usize]);
            }
        }
        if let Some(c) = calib.as_deref_mut() {
            absmax_update(&mut c.input, x);
        }

        // Input projection, then positional embeddings.
        let h = &mut s.h[..rows * d];
        nni::linear_into(x, &self.input_w, self.input_b.as_deref(), h, rows, embed, d);
        nni::add_pos_inplace(h, &self.pos, b, t, d);

        for (li, layer) in self.layers.iter().enumerate() {
            let n = &mut s.n[..rows * d];
            nni::layer_norm_into(h, &layer.ln1_gamma, &layer.ln1_beta, layer.ln1_eps, n);
            if let Some(c) = calib.as_deref_mut() {
                absmax_update(&mut c.layers[li].qkv_in, n);
            }
            // Fused QKV: one [d, 3d] GEMM, then split for the head sweep.
            let qkv = &mut s.qkv[..rows * 3 * d];
            nni::linear_into(n, &layer.wqkv, Some(&layer.bqkv), qkv, rows, d, 3 * d);
            for r in 0..rows {
                s.q[r * d..(r + 1) * d].copy_from_slice(&qkv[r * 3 * d..r * 3 * d + d]);
                s.k[r * d..(r + 1) * d].copy_from_slice(&qkv[r * 3 * d + d..r * 3 * d + 2 * d]);
                s.v[r * d..(r + 1) * d].copy_from_slice(&qkv[r * 3 * d + 2 * d..(r + 1) * 3 * d]);
            }
            let concat = &mut s.concat[..rows * d];
            let scale = 1.0 / (self.head_dim as f32).sqrt();
            nni::attention_sweep(
                &s.q[..rows * d],
                &s.k[..rows * d],
                &s.v[..rows * d],
                b,
                t,
                self.heads,
                self.head_dim,
                scale,
                concat,
                &mut s.attn,
            );
            if let Some(c) = calib.as_deref_mut() {
                absmax_update(&mut c.layers[li].wo_in, concat);
            }
            let a = &mut s.a[..rows * d];
            nni::linear_into(concat, &layer.wo, layer.bo.as_deref(), a, rows, d, d);
            nni::add_inplace(h, a);

            nni::layer_norm_into(h, &layer.ln2_gamma, &layer.ln2_beta, layer.ln2_eps, n);
            if let Some(c) = calib.as_deref_mut() {
                absmax_update(&mut c.layers[li].ff1_in, n);
            }
            if let Some(c) = calib.as_deref_mut() {
                // The GELU output feeds ff2; record it by replaying the
                // sweep's hidden stage (same buffer the sweep fills).
                let hidden = &mut s.hidden[..rows * self.ff];
                nni::linear_into(
                    n,
                    &layer.ff1_w,
                    layer.ff1_b.as_deref(),
                    hidden,
                    rows,
                    d,
                    self.ff,
                );
                nni::gelu_inplace(hidden);
                absmax_update(&mut c.layers[li].ff2_in, hidden);
            }
            nni::mlp_sweep(
                n,
                &layer.ff1_w,
                layer.ff1_b.as_deref(),
                &layer.ff2_w,
                layer.ff2_b.as_deref(),
                a,
                &mut s.hidden[..rows * self.ff],
                rows,
                d,
                self.ff,
            );
            nni::add_inplace(h, a);
        }

        // Final norm, mean pool over time, unified half.
        let n = &mut s.n[..rows * d];
        nni::layer_norm_into(h, &self.ln_out_gamma, &self.ln_out_beta, self.ln_out_eps, n);
        let pooled = &mut s.pooled[..b * d];
        nni::mean_pool_into(n, b, t, d, pooled);
        let feat = &mut s.feat[..b * self.half];
        for r in 0..b {
            feat[r * self.half..(r + 1) * self.half]
                .copy_from_slice(&pooled[r * d..r * d + self.half]);
        }
        if let Some(c) = calib.as_deref_mut() {
            absmax_update(&mut c.unified, feat);
        }

        // Classifier head: activation between (not after) layers.
        let n_head = self.head.len();
        let mut cur_width = self.half;
        for (hi, hl) in self.head.iter().enumerate() {
            debug_assert_eq!(cur_width, hl.in_dim);
            let dst = &mut s.head[..b * hl.out_dim];
            nni::linear_into(
                &s.feat[..b * hl.in_dim],
                &hl.w,
                hl.b.as_deref(),
                dst,
                b,
                hl.in_dim,
                hl.out_dim,
            );
            if hi + 1 < n_head {
                match self.head_act {
                    Activation::Relu => nni::relu_inplace(dst),
                    Activation::Gelu => nni::gelu_inplace(dst),
                    Activation::Tanh => {
                        for o in dst.iter_mut() {
                            *o = o.tanh();
                        }
                    }
                }
                if let Some(c) = calib.as_deref_mut() {
                    absmax_update(&mut c.head_hidden[hi], dst);
                }
            }
            s.feat[..b * hl.out_dim].copy_from_slice(dst);
            cur_width = hl.out_dim;
        }
        debug_assert_eq!(cur_width, 1);
        out.extend(s.feat[..b].iter().map(|&v| 1.0 / (1.0 + (-v).exp())));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::data::SeqSample;
    use crate::detector::Detector;

    use rand::SeedableRng;

    fn tiny_model() -> LogSynergyModel {
        let mut cfg = ModelConfig::scaled(2);
        cfg.embed_dim = 8;
        cfg.d_model = 8;
        cfg.heads = 2;
        cfg.ff = 16;
        cfg.layers = 2;
        cfg.head_hidden = 8;
        cfg.max_len = 4;
        let mut rng = rand::rngs::StdRng::seed_from_u64(101);
        LogSynergyModel::new(cfg, &mut rng)
    }

    fn embeddings() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.3, -0.4, 0.5, 0.0, 0.2, 0.0, -0.1, 0.0],
        ]
    }

    #[test]
    fn plan_matches_detector_bitwise() {
        let model = tiny_model();
        let samples: Vec<SeqSample> = (0..13)
            .map(|i| SeqSample {
                events: vec![i % 3, (i + 1) % 2, 0, 2],
                label: false,
            })
            .collect();
        let want = Detector::new(&model).scores(&samples, &embeddings());
        let windows: Vec<&[u32]> = samples.iter().map(|s| s.events.as_slice()).collect();
        let plan = InferencePlan::from_model(&model).with_batch_size(4);
        let got = plan.score_windows(&windows, &embeddings());
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(g.to_bits(), w.to_bits(), "window {i}: {g} vs {w}");
        }
    }

    #[test]
    fn plan_handles_short_probe_windows_bitwise() {
        // Probe windows are shorter than max_len; the tape zero-pads the
        // gather. The plan must reproduce that exactly.
        let model = tiny_model();
        let samples: Vec<SeqSample> = vec![
            SeqSample {
                events: vec![0],
                label: false,
            },
            SeqSample {
                events: vec![1, 2],
                label: false,
            },
            SeqSample {
                events: vec![2, 0, 1],
                label: false,
            },
        ];
        let want = Detector::new(&model).scores(&samples, &embeddings());
        let windows: Vec<&[u32]> = samples.iter().map(|s| s.events.as_slice()).collect();
        let plan = InferencePlan::from_model(&model);
        let got = plan.score_windows(&windows, &embeddings());
        for (g, w) in got.iter().zip(&want) {
            assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    #[test]
    fn batch_size_does_not_change_plan_bits() {
        let model = tiny_model();
        let windows_owned: Vec<Vec<u32>> = (0..17)
            .map(|i| vec![i % 3, i % 2, 2, (i + 2) % 3])
            .collect();
        let windows: Vec<&[u32]> = windows_owned.iter().map(|w| w.as_slice()).collect();
        let a = InferencePlan::from_model(&model)
            .with_batch_size(1)
            .score_windows(&windows, &embeddings());
        let b = InferencePlan::from_model(&model)
            .with_batch_size(100)
            .score_windows(&windows, &embeddings());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn calibration_records_positive_ranges() {
        let model = tiny_model();
        let windows_owned: Vec<Vec<u32>> = (0..8).map(|i| vec![i % 3, 1, 0, 2]).collect();
        let windows: Vec<&[u32]> = windows_owned.iter().map(|w| w.as_slice()).collect();
        let plan = InferencePlan::from_model(&model);
        let calib = plan.calibrate(&windows, &embeddings());
        assert!(calib.input > 0.0);
        assert!(calib.unified > 0.0);
        assert_eq!(calib.layers.len(), 2);
        for l in &calib.layers {
            assert!(l.qkv_in > 0.0 && l.wo_in > 0.0 && l.ff1_in > 0.0 && l.ff2_in > 0.0);
        }
        assert_eq!(calib.head_hidden.len(), 1);
    }
}
