//! Deterministic fault injection for chaos testing the serving stack.
//!
//! A [`FaultPlan`] is a seeded set of rules, each armed at a named
//! *injection point* (see [`points`]) with a fault kind, a firing
//! probability, and optional first-call / max-fires bounds. Installing a
//! plan makes [`inject`] consult it; dropping the returned [`FaultGuard`]
//! disarms everything. Decisions are a pure function of
//! `(seed, point, call index)` via SplitMix64, so a given plan fires the
//! same faults on every run — chaos tests are reproducible.
//!
//! The whole mechanism is compiled in only under the `fault-injection`
//! cargo feature. Without it, [`inject`] is a `const`-`None` inline
//! function, the optimizer deletes every call site, and release binaries
//! carry zero injected code (CI greps the release binary for the
//! [`PANIC_MARKER`] string to prove it).
//!
//! Injected faults model the production failure taxonomy:
//!
//! - [`Fault::Panic`] — a worker bug: the injection point panics
//!   (payload carries [`PANIC_MARKER`]); recovery layers catch it.
//! - [`Fault::Latency`] — a slow dependency: the point sleeps before
//!   proceeding normally.
//! - [`Fault::TransientError`] — a retryable failure: the point reports
//!   an error without doing the work.
//! - [`Fault::CorruptScore`] — a poisoned value: the point yields a
//!   non-finite score the validation layer must catch.

use std::time::Duration;

/// Marker embedded in every injected panic payload and error message.
/// Release builds must not contain this string (checked by CI).
pub const PANIC_MARKER: &str = "logsynergy-fault-injected";

/// Well-known injection point names used across the workspace.
pub mod points {
    /// Producer-side buffer enqueue ([`Producer::send`] in the pipeline).
    pub const BUFFER_PUSH: &str = "buffer.push";
    /// Worker-side micro-batch drain (`Consumer::recv_batch`).
    pub const BATCH_DRAIN: &str = "batch.drain";
    /// Window-score cache lookup in the detection tiering.
    pub const CACHE_LOOKUP: &str = "cache.lookup";
    /// Model-tier batched scoring call.
    pub const MODEL_SCORE: &str = "model.score";
    /// Model persistence I/O (`persist::save` / `persist::load`).
    pub const PERSIST_IO: &str = "persist.io";
    /// Ingest daemon connection accept (`logsynergy-serve` accept loop).
    pub const INGEST_ACCEPT: &str = "ingest.accept";
    /// Ingest daemon line parsing (`logsynergy-serve` protocol decoder).
    pub const INGEST_PARSE: &str = "ingest.parse";
    /// WAL record append (segment write + flush in [`crate::wal`]).
    pub const WAL_APPEND: &str = "wal.append";
    /// WAL segment roll (close/open/retention in [`crate::wal`]).
    pub const WAL_ROLL: &str = "wal.roll";
    /// WAL recovery scan (cursor + segment replay in [`crate::wal`]).
    pub const WAL_RECOVER: &str = "wal.recover";
}

/// A fault to inject at a point, decided by [`inject`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Panic at the injection point (worker-crash simulation).
    Panic,
    /// Sleep this long, then proceed normally (slow-dependency
    /// simulation).
    Latency(Duration),
    /// Report a retryable failure without doing the work.
    TransientError,
    /// Produce a detectably corrupt (non-finite) score.
    CorruptScore,
}

/// One armed rule: fire `kind` at `point` with `probability`, skipping
/// the first `after` calls and firing at most `max_fires` times.
#[derive(Clone, Debug)]
pub struct FaultSpec {
    /// What to inject.
    pub kind: Fault,
    /// Per-call firing probability in `[0, 1]` (1.0 = every call).
    pub probability: f64,
    /// Number of initial calls at the point that never fire.
    pub after: u64,
    /// Cap on total fires for this rule (`u64::MAX` = unbounded).
    pub max_fires: u64,
}

impl FaultSpec {
    /// A rule that always fires, from the first call, unbounded.
    pub fn new(kind: Fault) -> Self {
        FaultSpec {
            kind,
            probability: 1.0,
            after: 0,
            max_fires: u64::MAX,
        }
    }

    /// Convenience: an always-firing panic rule.
    pub fn panic() -> Self {
        Self::new(Fault::Panic)
    }

    /// Convenience: an added-latency rule.
    pub fn latency(d: Duration) -> Self {
        Self::new(Fault::Latency(d))
    }

    /// Convenience: a transient-error rule.
    pub fn transient() -> Self {
        Self::new(Fault::TransientError)
    }

    /// Convenience: a corrupt-score rule.
    pub fn corrupt_score() -> Self {
        Self::new(Fault::CorruptScore)
    }

    /// Sets the per-call firing probability.
    pub fn with_probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    /// Skips the first `n` calls at the point.
    pub fn after(mut self, n: u64) -> Self {
        self.after = n;
        self
    }

    /// Caps total fires.
    pub fn max_fires(mut self, n: u64) -> Self {
        self.max_fires = n;
        self
    }
}

/// A seeded, thread-safe plan of armed fault rules.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    // Only read by the feature-gated `imp::install`; without the feature
    // the plan is inert and the fields are deliberately dead.
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    seed: u64,
    #[cfg_attr(not(feature = "fault-injection"), allow(dead_code))]
    rules: Vec<(String, FaultSpec)>,
}

impl FaultPlan {
    /// An empty plan with a deterministic seed.
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Arms a rule at a named injection point.
    pub fn arm(mut self, point: &str, spec: FaultSpec) -> Self {
        self.rules.push((point.to_string(), spec));
        self
    }

    /// Installs the plan process-wide; faults fire until the guard drops.
    ///
    /// Without the `fault-injection` feature this is a no-op (nothing
    /// consults the plan). Plans do not stack: installing replaces any
    /// previously active plan, so chaos tests must serialize.
    pub fn install(self) -> FaultGuard {
        imp::install(self)
    }
}

pub use imp::{inject, FaultGuard};

/// Serializes tests that install fault plans: plans are process-global
/// and do not stack, so concurrent installs would race. Hold the returned
/// guard for the duration of the test.
#[cfg(feature = "fault-injection")]
pub fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(feature = "fault-injection")]
mod imp {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, RwLock};

    struct RuleState {
        point: String,
        spec: FaultSpec,
        calls: AtomicU64,
        fires: AtomicU64,
    }

    struct PlanState {
        seed: u64,
        rules: Vec<RuleState>,
    }

    fn active() -> &'static RwLock<Option<Arc<PlanState>>> {
        static ACTIVE: RwLock<Option<Arc<PlanState>>> = RwLock::new(None);
        &ACTIVE
    }

    /// Keeps the plan armed; disarms on drop.
    pub struct FaultGuard {
        state: Arc<PlanState>,
    }

    impl FaultGuard {
        /// Total fires recorded at `point` across all rules so far.
        pub fn fires(&self, point: &str) -> u64 {
            self.state
                .rules
                .iter()
                .filter(|r| r.point == point)
                .map(|r| r.fires.load(Ordering::Relaxed))
                .sum()
        }
    }

    impl Drop for FaultGuard {
        fn drop(&mut self) {
            let mut slot = active().write().unwrap_or_else(|e| e.into_inner());
            if let Some(cur) = slot.as_ref() {
                if Arc::ptr_eq(cur, &self.state) {
                    *slot = None;
                }
            }
        }
    }

    pub(super) fn install(plan: FaultPlan) -> FaultGuard {
        let state = Arc::new(PlanState {
            seed: plan.seed,
            rules: plan
                .rules
                .into_iter()
                .map(|(point, spec)| RuleState {
                    point,
                    spec,
                    calls: AtomicU64::new(0),
                    fires: AtomicU64::new(0),
                })
                .collect(),
        });
        *active().write().unwrap_or_else(|e| e.into_inner()) = Some(state.clone());
        FaultGuard { state }
    }

    fn splitmix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn fnv(s: &str) -> u64 {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Consults the active plan at a named injection point.
    ///
    /// Each call advances the matching rules' call counters; whether a
    /// given call fires is a pure function of `(seed, point, call index)`,
    /// so runs with the same plan replay the same fault schedule.
    pub fn inject(point: &str) -> Option<Fault> {
        let plan = active().read().unwrap_or_else(|e| e.into_inner()).clone()?;
        for rule in plan.rules.iter().filter(|r| r.point == point) {
            let n = rule.calls.fetch_add(1, Ordering::Relaxed);
            if n < rule.spec.after {
                continue;
            }
            if rule.fires.load(Ordering::Relaxed) >= rule.spec.max_fires {
                continue;
            }
            let draw = splitmix64(plan.seed ^ fnv(point) ^ n.wrapping_add(1));
            let unit = (draw >> 11) as f64 / (1u64 << 53) as f64;
            if unit < rule.spec.probability {
                rule.fires.fetch_add(1, Ordering::Relaxed);
                return Some(rule.spec.kind);
            }
        }
        None
    }
}

#[cfg(not(feature = "fault-injection"))]
mod imp {
    use super::*;

    /// Inert guard; the build has no injection machinery.
    pub struct FaultGuard;

    impl FaultGuard {
        /// Always 0 without the `fault-injection` feature.
        pub fn fires(&self, _point: &str) -> u64 {
            0
        }
    }

    pub(super) fn install(_plan: FaultPlan) -> FaultGuard {
        FaultGuard
    }

    /// Always `None`; inlines away entirely in release builds.
    #[inline(always)]
    pub fn inject(_point: &str) -> Option<Fault> {
        None
    }
}

#[cfg(all(test, feature = "fault-injection"))]
mod tests {
    use super::*;

    /// Plans are process-global; serialize the tests that install them.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        test_lock()
    }

    #[test]
    fn uninstalled_plan_never_fires() {
        let _l = lock();
        assert_eq!(inject(points::MODEL_SCORE), None);
    }

    #[test]
    fn guard_disarms_on_drop() {
        let _l = lock();
        let guard = FaultPlan::seeded(7)
            .arm(points::MODEL_SCORE, FaultSpec::transient())
            .install();
        assert_eq!(inject(points::MODEL_SCORE), Some(Fault::TransientError));
        drop(guard);
        assert_eq!(inject(points::MODEL_SCORE), None);
    }

    #[test]
    fn after_and_max_fires_bound_the_schedule() {
        let _l = lock();
        let guard = FaultPlan::seeded(7)
            .arm(
                points::CACHE_LOOKUP,
                FaultSpec::panic().after(2).max_fires(3),
            )
            .install();
        let fired: Vec<bool> = (0..10)
            .map(|_| inject(points::CACHE_LOOKUP).is_some())
            .collect();
        assert_eq!(
            fired,
            [false, false, true, true, true, false, false, false, false, false]
        );
        assert_eq!(guard.fires(points::CACHE_LOOKUP), 3);
    }

    #[test]
    fn probability_schedule_is_deterministic_per_seed() {
        let _l = lock();
        let schedule = |seed: u64| -> Vec<bool> {
            let _guard = FaultPlan::seeded(seed)
                .arm(
                    points::BUFFER_PUSH,
                    FaultSpec::latency(Duration::from_millis(1)).with_probability(0.5),
                )
                .install();
            (0..64)
                .map(|_| inject(points::BUFFER_PUSH).is_some())
                .collect()
        };
        let a = schedule(42);
        let b = schedule(42);
        let c = schedule(43);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&fires), "p=0.5 over 64 calls: {fires}");
    }

    #[test]
    fn rules_match_their_point_only() {
        let _l = lock();
        let _guard = FaultPlan::seeded(1)
            .arm(points::PERSIST_IO, FaultSpec::corrupt_score())
            .install();
        assert_eq!(inject(points::MODEL_SCORE), None);
        assert_eq!(inject(points::PERSIST_IO), Some(Fault::CorruptScore));
    }
}
