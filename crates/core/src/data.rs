//! The data pipeline: raw logs → Drain events → windows → event texts
//! (LEI interpretations or raw templates) → embeddings (paper §III-B/C).

use logsynergy_embed::HashedEmbedder;
use logsynergy_lei::{interpret_with_review, LeiConfig, LlmInterpreter, ReviewPolicy, ReviewStats};
use logsynergy_loggen::{LogDataset, SystemId};
use logsynergy_logparse::{windows, Drain, DrainConfig, WindowConfig};
use logsynergy_nn::Tensor;

/// One windowed training/evaluation sample.
#[derive(Clone, Debug)]
pub struct SeqSample {
    /// Event (template) ids inside the window, in log order.
    pub events: Vec<u32>,
    /// Sequence-level anomaly label.
    pub label: bool,
}

/// How event ids are turned into text before embedding.
#[derive(Clone, Debug)]
pub enum EventTextMode {
    /// Full LogSynergy: LEI interpretations (with the given LLM config),
    /// reviewed per §VI-B2.
    Interpreted(LeiConfig),
    /// Ablation "w/o LEI": embed the raw template text directly.
    RawTemplate,
}

/// A system's fully prepared data: sequences plus per-template embeddings.
pub struct PreparedSystem {
    /// Which system this is.
    pub system: SystemId,
    /// All windowed sequences in stream order.
    pub sequences: Vec<SeqSample>,
    /// Template id → embedding vector.
    pub event_embeddings: Vec<Vec<f32>>,
    /// Template id → text that was embedded (interpretation or template).
    pub event_texts: Vec<String>,
    /// Template id → raw Drain template text.
    pub templates: Vec<String>,
    /// Operator review statistics from LEI (zeroes in raw mode).
    pub review_stats: ReviewStats,
}

impl PreparedSystem {
    /// Continuous (non-shuffled) split, per §IV-A1: the first `n_train`
    /// sequences train, the rest test. `max_test` caps the test set for
    /// CPU-budget runs (0 = no cap).
    pub fn split(&self, n_train: usize, max_test: usize) -> (Vec<SeqSample>, Vec<SeqSample>) {
        let n_train = n_train.min(self.sequences.len());
        let train = self.sequences[..n_train].to_vec();
        let mut test = self.sequences[n_train..].to_vec();
        if max_test > 0 && test.len() > max_test {
            test.truncate(max_test);
        }
        (train, test)
    }

    /// First `n` sequences (used for the target's continuous training
    /// slice).
    pub fn head(&self, n: usize) -> Vec<SeqSample> {
        self.sequences[..n.min(self.sequences.len())].to_vec()
    }

    /// `n` sequences spread evenly across the whole stream — the source
    /// systems' selection. Sources are *mature* systems whose full history
    /// is available; the §IV-A1 continuous-split leakage concern applies to
    /// the target system only.
    pub fn spread(&self, n: usize) -> Vec<SeqSample> {
        let len = self.sequences.len();
        if n >= len {
            return self.sequences.clone();
        }
        (0..n)
            .map(|i| self.sequences[i * len / n].clone())
            .collect()
    }

    /// Number of anomalous sequences.
    pub fn num_anomalous(&self) -> usize {
        self.sequences.iter().filter(|s| s.label).count()
    }
}

/// Prepares a system end-to-end: parse, window, interpret, embed.
pub fn prepare_system(
    dataset: &LogDataset,
    mode: &EventTextMode,
    embedder: &HashedEmbedder,
    window: WindowConfig,
) -> PreparedSystem {
    let mut drain = Drain::new(DrainConfig::default());
    let events = drain.parse_all(dataset.messages());
    let labels = dataset.labels();
    let seqs = windows(&events, &labels, window);
    let sequences = seqs
        .into_iter()
        .map(|s| SeqSample {
            events: s.events.iter().map(|e| e.0).collect(),
            label: s.anomalous,
        })
        .collect();

    let templates: Vec<String> = drain.templates().iter().map(|t| t.text()).collect();
    let (event_texts, review_stats) = match mode {
        EventTextMode::Interpreted(cfg) => {
            let lei = LlmInterpreter::new(cfg.clone());
            let policy = ReviewPolicy::default();
            let (interps, stats) = interpret_with_review(&lei, dataset.system, &templates, &policy);
            (interps.into_iter().map(|i| i.text).collect(), stats)
        }
        EventTextMode::RawTemplate => (templates.clone(), ReviewStats::default()),
    };
    let event_embeddings = event_texts.iter().map(|t| embedder.embed(t)).collect();

    PreparedSystem {
        system: dataset.system,
        sequences,
        event_embeddings,
        event_texts,
        templates,
        review_stats,
    }
}

/// Builds a `[B, T, D]` feature tensor for a batch of samples, looking up
/// each event's embedding and zero-padding/truncating to `max_len`.
pub fn batch_features(
    samples: &[&SeqSample],
    embeddings: &[Vec<f32>],
    max_len: usize,
    dim: usize,
) -> Tensor {
    let b = samples.len();
    let mut data = vec![0.0f32; b * max_len * dim];
    for (i, s) in samples.iter().enumerate() {
        for (t, &e) in s.events.iter().take(max_len).enumerate() {
            let emb = &embeddings[e as usize];
            debug_assert_eq!(emb.len(), dim);
            data[(i * max_len + t) * dim..(i * max_len + t + 1) * dim].copy_from_slice(emb);
        }
    }
    Tensor::new(data, &[b, max_len, dim])
}

/// Anomaly labels of a batch as `f32`.
pub fn batch_labels(samples: &[&SeqSample]) -> Vec<f32> {
    samples
        .iter()
        .map(|s| if s.label { 1.0 } else { 0.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logsynergy_loggen::datasets;

    fn tiny() -> LogDataset {
        datasets::system_b().generate(0.0008)
    }

    #[test]
    fn prepare_interprets_and_embeds_every_template() {
        let ds = tiny();
        let embedder = HashedEmbedder::new(32, 1);
        let prep = prepare_system(
            &ds,
            &EventTextMode::Interpreted(LeiConfig::default()),
            &embedder,
            WindowConfig::default(),
        );
        assert!(!prep.sequences.is_empty());
        assert_eq!(prep.event_embeddings.len(), prep.templates.len());
        assert_eq!(prep.event_texts.len(), prep.templates.len());
        assert!(
            prep.templates.len() < 100,
            "few hundred templates at most (paper §VI-B2)"
        );
        // Every sequence's events must index into the template table.
        for s in &prep.sequences {
            for &e in &s.events {
                assert!((e as usize) < prep.templates.len());
            }
        }
    }

    #[test]
    fn raw_mode_embeds_templates_verbatim() {
        let ds = tiny();
        let embedder = HashedEmbedder::new(32, 1);
        let prep = prepare_system(
            &ds,
            &EventTextMode::RawTemplate,
            &embedder,
            WindowConfig::default(),
        );
        assert_eq!(prep.event_texts, prep.templates);
        assert_eq!(prep.review_stats, ReviewStats::default());
    }

    #[test]
    fn lei_and_raw_modes_differ_in_texts() {
        let ds = tiny();
        let embedder = HashedEmbedder::new(32, 1);
        let a = prepare_system(
            &ds,
            &EventTextMode::Interpreted(LeiConfig::default()),
            &embedder,
            WindowConfig::default(),
        );
        let b = prepare_system(
            &ds,
            &EventTextMode::RawTemplate,
            &embedder,
            WindowConfig::default(),
        );
        assert_ne!(a.event_texts, b.event_texts);
    }

    #[test]
    fn split_is_continuous_and_disjoint() {
        let ds = tiny();
        let embedder = HashedEmbedder::new(16, 1);
        let prep = prepare_system(
            &ds,
            &EventTextMode::RawTemplate,
            &embedder,
            WindowConfig::default(),
        );
        let (train, test) = prep.split(10, 5);
        assert_eq!(train.len(), 10);
        assert_eq!(test.len(), 5);
        assert_eq!(train[0].events, prep.sequences[0].events);
        assert_eq!(test[0].events, prep.sequences[10].events);
    }

    #[test]
    fn batch_features_shapes_and_padding() {
        let emb = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let s1 = SeqSample {
            events: vec![0, 1],
            label: false,
        };
        let s2 = SeqSample {
            events: vec![1],
            label: true,
        };
        let x = batch_features(&[&s1, &s2], &emb, 3, 2);
        assert_eq!(x.shape(), &[2, 3, 2]);
        assert_eq!(&x.data()[0..4], &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(&x.data()[4..6], &[0.0, 0.0]); // padded step
        assert_eq!(batch_labels(&[&s1, &s2]), vec![0.0, 1.0]);
    }
}
